"""Golden-file regression tests for the CLI's rendered output.

Pins the exact text of the deterministic commands (``table5``,
``figure2`` at a fixed seed/resolution) and the stable structure of
``table1`` (whose measured-time column is wall-clock derived and masked
before comparison). Any formatting or numeric drift fails loudly;
intentional changes are recorded with ``pytest --update-golden``.
"""

import re

from repro.cli import main


def _normalize(text: str) -> str:
    """Strip trailing whitespace: ascii_table pads the last column."""
    return "\n".join(line.rstrip() for line in text.splitlines()) + "\n"


def _mask_measured_times(text: str) -> str:
    """Replace the trailing measured-seconds token of each table1 row.

    The last column is a wall-clock measurement and legitimately varies
    run to run; the rest of the table (disciplines, solvers, the
    paper's kernel fractions) must not.
    """
    lines = []
    for line in text.splitlines():
        stripped = line.rstrip()
        lines.append(re.sub(r"(\| )\d+(?:\.\d+)?(?:e-?\d+)?$", r"\1<measured>", stripped))
    return "\n".join(lines) + "\n"


def _run_cli(argv, capsys) -> str:
    assert main(argv) == 0
    return capsys.readouterr().out


class TestGoldenCli:
    def test_table5_matches_golden(self, capsys, golden):
        golden("table5", _normalize(_run_cli(["table5"], capsys)))

    def test_figure2_fixed_seed_matches_golden(self, capsys, golden):
        golden("figure2", _normalize(_run_cli(["figure2", "--resolution", "24"], capsys)))

    def test_table1_structure_matches_golden(self, capsys, golden):
        golden("table1", _mask_measured_times(_run_cli(["table1"], capsys)))

    def test_health_report_matches_golden(self, capsys, golden):
        """The degraded-board aging story is fully seeded (die, drift
        walk, per-solve problems), so the rendered report — ladder
        verdicts, gate rejections, quarantine and recalibration
        counters — is pinned byte for byte."""
        golden(
            "health_report",
            _normalize(
                _run_cli(
                    [
                        "health-report",
                        "--solves",
                        "4",
                        "--seed",
                        "1",
                        "--degradation",
                        "offset_drift_sigma=0.1,seed=5",
                        "--analog-time-limit",
                        "20",
                    ],
                    capsys,
                )
            ),
        )

    def test_consecutive_same_seed_runs_identical(self, capsys):
        """Two figure2 runs at the same settings render byte-identically
        (the golden files above are meaningful only if this holds)."""
        first = _run_cli(["figure2", "--resolution", "24"], capsys)
        second = _run_cli(["figure2", "--resolution", "24"], capsys)
        assert first == second

    def test_masking_is_stable_across_runs(self, capsys):
        first = _mask_measured_times(_run_cli(["table1"], capsys))
        second = _mask_measured_times(_run_cli(["table1"], capsys))
        assert first == second
