"""Admission control: a bounded priority queue that rejects with reasons.

The queue is the service's front door and its backpressure mechanism.
It is deliberately a plain synchronous data structure — the service
runs it from a single event-loop thread, and keeping it loop-free
makes it directly checkable by the Hypothesis property suite
(``tests/service/test_admission_properties.py``): the bound is never
exceeded, every rejection names one of
:data:`~repro.service.api.REJECTION_REASONS`, and among admitted
entries the pop order is exactly ``(-priority, arrival)`` — higher
priority first, FIFO within a priority level, regardless of tenant
interleaving.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["AdmissionQueue", "QueueEntry"]


@dataclass(order=True)
class QueueEntry:
    """One admitted-but-not-yet-dispatched request.

    Ordering is by the explicit sort key only; ``payload`` carries
    whatever the service attached (never compared).
    """

    sort_key: tuple = field(init=False, repr=False)
    key: str = field(compare=False)
    tenant: str = field(compare=False, default="default")
    priority: int = field(compare=False, default=0)
    seq: int = field(compare=False, default=0)
    payload: Any = field(compare=False, default=None)

    def __post_init__(self) -> None:
        # Max-heap on priority via negation; seq breaks ties FIFO.
        self.sort_key = (-self.priority, self.seq)


class AdmissionQueue:
    """Bounded, tenant-aware priority queue; rejects with a reason.

    Parameters
    ----------
    capacity:
        Hard bound on queued entries. ``offer`` beyond it returns
        ``"queue_full"`` — the caller converts that into backpressure
        (wait and retry) or a refusal, but never a silent drop.
    tenant_quota:
        Optional per-tenant cap on *queued* entries, so one noisy
        tenant cannot occupy the whole queue and starve the rest.
    """

    def __init__(self, capacity: int, tenant_quota: Optional[int] = None):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if tenant_quota is not None and tenant_quota < 1:
            raise ValueError("tenant_quota must be at least 1 when set")
        self.capacity = int(capacity)
        self.tenant_quota = tenant_quota
        self._heap: List[QueueEntry] = []
        self._queued_keys: set = set()
        self._tenant_counts: Dict[str, int] = {}
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def has_space(self) -> bool:
        return len(self._heap) < self.capacity

    def queued_for(self, tenant: str) -> int:
        return self._tenant_counts.get(tenant, 0)

    def offer(
        self,
        key: str,
        tenant: str = "default",
        priority: int = 0,
        payload: Any = None,
    ) -> Optional[str]:
        """Try to admit one entry; returns a rejection reason or ``None``.

        Checks run most-specific first: a duplicate key is a caller
        bug worth naming even when the queue is also full.
        """
        if key in self._queued_keys:
            return "duplicate_request"
        if (
            self.tenant_quota is not None
            and self._tenant_counts.get(tenant, 0) >= self.tenant_quota
        ):
            return "tenant_quota"
        if len(self._heap) >= self.capacity:
            return "queue_full"
        entry = QueueEntry(
            key=key, tenant=tenant, priority=priority, seq=self._seq, payload=payload
        )
        self._seq += 1
        heapq.heappush(self._heap, entry)
        self._queued_keys.add(key)
        self._tenant_counts[tenant] = self._tenant_counts.get(tenant, 0) + 1
        return None

    def pop(self) -> QueueEntry:
        """Remove and return the highest-priority (then oldest) entry."""
        entry = heapq.heappop(self._heap)
        self._queued_keys.discard(entry.key)
        remaining = self._tenant_counts.get(entry.tenant, 0) - 1
        if remaining > 0:
            self._tenant_counts[entry.tenant] = remaining
        else:
            self._tenant_counts.pop(entry.tenant, None)
        return entry
