"""The explicit degradation ladder: how a solve is allowed to fail.

The paper's whole pitch is graceful degradation — a 5.38 %-RMS analog
seed still lands the digital Newton polish in the quadratic basin
(Fig. 6), and when it doesn't, Section 5 falls back to homotopy
continuation. The ladder makes that story an explicit, inspectable
policy instead of ad-hoc nested fallbacks:

1. ``hybrid`` — analog-seeded undamped Newton polish (the headline
   method, Section 6.2);
2. ``damped_newton`` — damped Newton with the halving restart
   schedule, recovered from whatever seed is available, then
   best-effort re-polished at the tight tolerance (this rung absorbs
   the former ``HybridSolver._recover``);
3. ``homotopy`` — global (Newton) homotopy continuation from the naive
   guess, needing no structure at all (Section 3.2);
4. structured failure — a :class:`LadderResult` with ``converged
   False`` and every rung's diagnosis, never an exception.

Every rung is recorded as a ``ladder_rung`` span; each downgrade bumps
the ``ladder_fallbacks`` counter. A cooperative
:class:`~repro.runtime.api.Deadline` is checked between rungs and (via
the Newton ``iteration_hook``) inside them, so a deadline always
surfaces as ``timed_out`` rather than as unbounded work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.analog.engine import AnalogAccelerator
from repro.nonlinear.homotopy import HomotopySchedule, newton_homotopy_solve
from repro.nonlinear.newton import (
    IterationHook,
    LinearKernel,
    LinearSolverLike,
    NewtonOptions,
    NewtonResult,
    damped_newton_with_restarts,
    newton_solve,
)
from repro.nonlinear.systems import NonlinearSystem
from repro.runtime.api import Deadline, DeadlineExceeded
from repro.runtime.faults import InjectedWorkerCrash
from repro.trace.tracer import TracerLike, as_tracer

__all__ = [
    "DEFAULT_RUNGS",
    "RungAttempt",
    "LadderResult",
    "DegradationLadder",
    "damped_recovery",
]

DEFAULT_RUNGS: Tuple[str, ...] = ("hybrid", "damped_newton", "homotopy")

# Mirrors repro.core.hybrid: polish "to double-precision epsilon".
_DOUBLE_EPS = float(np.finfo(np.float64).eps)

# Tolerance floor for the damped recovery rung — loose enough for a
# damped search from a bad seed to terminate, tight enough that a
# recovered solution is a solution by any practical measure (see
# HybridSolver.FALLBACK_TOLERANCE_FLOOR, which this keeps in sync).
FALLBACK_TOLERANCE_FLOOR = 1e-9


def damped_recovery(
    system: NonlinearSystem,
    seed: np.ndarray,
    polish_options: NewtonOptions,
    fallback_options: NewtonOptions,
    solver: LinearSolverLike,
    tracer: Optional[TracerLike] = None,
    iteration_hook: Optional[IterationHook] = None,
) -> NewtonResult:
    """Damped-restart recovery from a bad seed, then best-effort polish.

    The runtime's ``damped_newton`` rung, shared with
    :class:`repro.core.HybridSolver` (whose private ``_recover`` this
    absorbed): run the damped baseline under the relaxed fallback
    options; if it converges, attempt a final polish at the tight
    tolerance, folding the recovery's restart/iteration/linear-solve
    bill into the polished result so no accounting is lost. The
    reported ``converged`` honestly reflects whichever tolerance was
    actually achieved.
    """
    tracer = as_tracer(tracer)
    recovery = damped_newton_with_restarts(
        system, seed, fallback_options, solver, tracer=tracer, iteration_hook=iteration_hook
    )
    if not recovery.converged:
        return recovery
    polish = newton_solve(
        system, recovery.u, polish_options, solver, tracer=tracer, iteration_hook=iteration_hook
    )
    if not polish.converged:
        # The relaxed-tolerance solution stands; report it honestly
        # (converged at fallback_options.tolerance, residual_norm says
        # exactly how far it got).
        return recovery
    # Fold the recovery's work into the polished result.
    polish.restarts += recovery.restarts
    polish.total_iterations_including_restarts = (
        recovery.total_iterations_including_restarts + polish.iterations
    )
    if recovery.total_linear_stats is not None:
        merged = recovery.total_linear_stats
        merged.merge(polish.linear_stats)
        polish.total_linear_stats = merged
    return polish


@dataclass
class RungAttempt:
    """What one ladder rung did: the per-rung line of the failure story."""

    rung: str
    converged: bool
    residual_norm: float
    iterations: int = 0
    error: Optional[str] = None
    u: Optional[np.ndarray] = field(default=None, repr=False)


@dataclass
class LadderResult:
    """The ladder's terminal verdict for one solve attempt."""

    u: Optional[np.ndarray]
    converged: bool
    rung: Optional[str]
    residual_norm: float
    attempts: List[RungAttempt] = field(default_factory=list)
    timed_out: bool = False

    @property
    def rungs_tried(self) -> Tuple[str, ...]:
        return tuple(attempt.rung for attempt in self.attempts)


class DegradationLadder:
    """Runs the rungs in order until one converges or the ladder is spent.

    Parameters mirror :class:`repro.core.HybridSolver` (the hybrid rung
    *is* that pipeline); ``schedule`` configures the homotopy rung's
    lambda sweep. ``rungs`` reorders or prunes the ladder (e.g.
    ``("damped_newton",)`` for digital-only batches).
    """

    def __init__(
        self,
        accelerator: Optional[AnalogAccelerator] = None,
        polish_options: Optional[NewtonOptions] = None,
        fallback_options: Optional[NewtonOptions] = None,
        schedule: Optional[HomotopySchedule] = None,
        rungs: Tuple[str, ...] = DEFAULT_RUNGS,
        settle_max_steps: int = 1_000_000,
    ):
        self.accelerator = accelerator or AnalogAccelerator()
        if settle_max_steps < 1:
            raise ValueError("settle_max_steps must be at least 1")
        self.settle_max_steps = int(settle_max_steps)
        self.polish_options = polish_options or NewtonOptions(
            damping=1.0, tolerance=1e3 * _DOUBLE_EPS, max_iterations=100
        )
        self.fallback_options = fallback_options or NewtonOptions(
            damping=self.polish_options.damping,
            tolerance=max(self.polish_options.tolerance, FALLBACK_TOLERANCE_FLOOR),
            max_iterations=max(self.polish_options.max_iterations, 200),
            divergence_threshold=self.polish_options.divergence_threshold,
        )
        self.schedule = schedule or HomotopySchedule(steps=20)
        unknown = set(rungs) - set(DEFAULT_RUNGS)
        if unknown:
            raise ValueError(f"unknown ladder rungs: {sorted(unknown)}")
        if not rungs:
            raise ValueError("the ladder needs at least one rung")
        self.rungs = tuple(rungs)

    def solve(
        self,
        system: NonlinearSystem,
        initial_guess: Optional[np.ndarray] = None,
        value_bound: float = 3.0,
        analog_time_limit: float = 60.0,
        deadline: Optional[Deadline] = None,
        tracer: Optional[TracerLike] = None,
        iteration_hook: Optional[IterationHook] = None,
        rungs: Optional[Tuple[str, ...]] = None,
    ) -> LadderResult:
        """Descend the ladder; always returns a :class:`LadderResult`.

        Only :class:`~repro.runtime.api.DeadlineExceeded` (converted to
        ``timed_out``) and
        :class:`~repro.runtime.faults.InjectedWorkerCrash` (which must
        escape — it stands in for the process dying) interrupt the
        descent; any other exception inside a rung is recorded as that
        rung's failure and the next rung runs.
        """
        tracer = as_tracer(tracer)
        guess = (
            np.zeros(system.dimension)
            if initial_guess is None
            else np.asarray(initial_guess, dtype=float)
        )
        hook = self._compose_hook(deadline, iteration_hook)
        attempts: List[RungAttempt] = []
        best_u: Optional[np.ndarray] = None
        best_norm = float("inf")
        seed = guess  # running best starting point for digital rungs
        timed_out = False

        with tracer.span("ladder", dimension=system.dimension) as ladder_span:
            for index, rung in enumerate(rungs or self.rungs):
                if deadline is not None and deadline.expired:
                    timed_out = True
                    break
                if index > 0:
                    tracer.counter("ladder_fallbacks")
                with tracer.span("ladder_rung", rung=rung) as rung_span:
                    try:
                        if rung == "hybrid":
                            result, seed = self._hybrid_rung(
                                system, guess, value_bound, analog_time_limit, tracer, hook
                            )
                        elif rung == "damped_newton":
                            result = self._damped_rung(system, seed, tracer, hook)
                        else:  # homotopy
                            result = self._homotopy_rung(system, guess, tracer, hook)
                    except DeadlineExceeded:
                        rung_span.update(outcome="timeout")
                        attempts.append(
                            RungAttempt(
                                rung=rung,
                                converged=False,
                                residual_norm=best_norm,
                                error="deadline exceeded",
                            )
                        )
                        timed_out = True
                        break
                    except InjectedWorkerCrash:
                        raise
                    except Exception as exc:
                        # A rung blowing up is a rung failing; the
                        # ladder's contract is a structured verdict.
                        tracer.counter("ladder_rung_errors")
                        rung_span.update(outcome="error", error=f"{type(exc).__name__}: {exc}")
                        attempts.append(
                            RungAttempt(
                                rung=rung,
                                converged=False,
                                residual_norm=float("inf"),
                                error=f"{type(exc).__name__}: {exc}",
                            )
                        )
                        continue
                    attempts.append(result)
                    rung_span.update(
                        outcome="converged" if result.converged else "failed",
                        residual_norm=result.residual_norm,
                        iterations=result.iterations,
                    )
                    if result.residual_norm < best_norm and result.u is not None:
                        best_norm = result.residual_norm
                        best_u = result.u
                    if result.converged:
                        ladder_span.update(rung=rung, converged=True)
                        return LadderResult(
                            u=result.u,
                            converged=True,
                            rung=rung,
                            residual_norm=result.residual_norm,
                            attempts=attempts,
                        )
            ladder_span.update(converged=False, timed_out=timed_out)
        return LadderResult(
            u=best_u,
            converged=False,
            rung=None,
            residual_norm=best_norm,
            attempts=attempts,
            timed_out=timed_out,
        )

    # -- rungs ----------------------------------------------------------

    @staticmethod
    def _compose_hook(
        deadline: Optional[Deadline], extra: Optional[IterationHook]
    ) -> Optional[IterationHook]:
        if deadline is None and extra is None:
            return None

        def hook(iteration: int, residual_norm: float) -> None:
            if extra is not None:
                extra(iteration, residual_norm)
            if deadline is not None:
                deadline.check()

        return hook

    def _hybrid_rung(
        self,
        system: NonlinearSystem,
        guess: np.ndarray,
        value_bound: float,
        analog_time_limit: float,
        tracer: TracerLike,
        hook: Optional[IterationHook],
    ):
        """Analog seed + undamped polish; returns (attempt, seed)."""
        analog = self.accelerator.solve(
            system,
            initial_guess=guess,
            value_bound=value_bound,
            time_limit=analog_time_limit,
            tracer=tracer,
            settle_max_steps=self.settle_max_steps,
        )
        if analog.converged and not analog.seed_accepted:
            # The seed gate refused the settled analog solution (it is
            # worse than the naive guess — a degraded board). Fail the
            # rung *without* burning the doomed undamped polish; the
            # ladder falls straight to damped_newton from the guess.
            quality = analog.seed_quality
            detail = f" (quality {quality.quality:.3g} > {quality.threshold:.3g})" if quality else ""
            attempt = RungAttempt(
                rung="hybrid",
                converged=False,
                residual_norm=float(analog.residual_norm),
                error=f"analog seed rejected by quality gate{detail}",
            )
            return attempt, guess
        seed = analog.solution if analog.converged else guess
        solver = LinearKernel()
        polish = newton_solve(
            system, seed, self.polish_options, solver, tracer=tracer, iteration_hook=hook
        )
        attempt = _attempt_from_newton("hybrid", polish)
        return attempt, seed

    def _damped_rung(
        self,
        system: NonlinearSystem,
        seed: np.ndarray,
        tracer: TracerLike,
        hook: Optional[IterationHook],
    ) -> RungAttempt:
        result = damped_recovery(
            system,
            seed,
            self.polish_options,
            self.fallback_options,
            LinearKernel(),
            tracer=tracer,
            iteration_hook=hook,
        )
        return _attempt_from_newton("damped_newton", result)

    def _homotopy_rung(
        self,
        system: NonlinearSystem,
        guess: np.ndarray,
        tracer: TracerLike,
        hook: Optional[IterationHook],
    ) -> RungAttempt:
        result = newton_homotopy_solve(
            system, guess, schedule=self.schedule, tracer=tracer, iteration_hook=hook
        )
        norm = float(system.residual_norm(result.u)) if result.u is not None else float("inf")
        return RungAttempt(
            rung="homotopy",
            converged=bool(result.converged),
            residual_norm=norm,
            iterations=result.corrector_iterations,
            u=result.u,
        )


def _attempt_from_newton(rung: str, result: NewtonResult) -> RungAttempt:
    return RungAttempt(
        rung=rung,
        converged=bool(result.converged),
        residual_norm=float(result.residual_norm),
        iterations=int(result.iterations),
        error=result.failure_reason,
        u=result.u,
    )
