"""Iterative linear solvers: relaxation and Krylov methods.

These are the *digital* kernels that dominate the runtime of the PDE
solvers profiled in Table 1 of the paper: Bi-CGstab (SPEC 410.bwaves),
preconditioned conjugate gradients (OpenFOAM), and SOR/CG (deal.II).
Inside the paper's baseline damped-Newton solver the linear system
``J delta = F`` is handed to one of these kernels each iteration; the
performance models in :mod:`repro.perf` charge time and energy using
the iteration and operation counts reported in :class:`IterativeResult`.

All solvers accept either a :class:`~repro.linalg.sparse.CsrMatrix` or a
dense ``numpy`` array (dense inputs are wrapped transparently), a right
hand side, and an optional :class:`~repro.linalg.preconditioners.Preconditioner`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Union

import numpy as np

from repro.linalg.preconditioners import IdentityPreconditioner, Preconditioner
from repro.linalg.sparse import CsrMatrix

__all__ = [
    "IterativeResult",
    "jacobi",
    "gauss_seidel",
    "sor",
    "conjugate_gradient",
    "bicgstab",
    "gmres",
]

MatrixLike = Union[CsrMatrix, np.ndarray]


@dataclass
class IterativeResult:
    """Outcome of an iterative solve.

    Attributes
    ----------
    x:
        Final iterate.
    converged:
        True if the residual tolerance was met within the iteration cap.
    iterations:
        Number of iterations performed.
    residual_norm:
        Final 2-norm of ``b - A x``.
    residual_history:
        Residual norm after each iteration (including the initial one).
    matvec_count:
        Number of operator applications; the dominant cost driver used
        by the performance models.
    """

    x: np.ndarray
    converged: bool
    iterations: int
    residual_norm: float
    residual_history: List[float] = field(default_factory=list)
    matvec_count: int = 0


class _Operator:
    """Uniform matvec wrapper counting applications."""

    def __init__(self, a: MatrixLike):
        self._a = a
        self.count = 0
        if isinstance(a, CsrMatrix):
            self.shape = a.shape
        else:
            arr = np.asarray(a, dtype=float)
            if arr.ndim != 2:
                raise ValueError("matrix operand must be 2-D")
            self._a = arr
            self.shape = arr.shape

    def __call__(self, x: np.ndarray) -> np.ndarray:
        self.count += 1
        if isinstance(self._a, CsrMatrix):
            return self._a.matvec(x)
        return self._a @ x

    def row_access(self) -> CsrMatrix:
        """CSR view for relaxation sweeps (dense input gets converted)."""
        if isinstance(self._a, CsrMatrix):
            return self._a
        dense = self._a
        from repro.linalg.sparse import CooBuilder

        builder = CooBuilder(*dense.shape)
        rows, cols = np.nonzero(dense)
        for r, c in zip(rows, cols):
            builder.add(int(r), int(c), float(dense[r, c]))
        return builder.to_csr()


def _prepare(a: MatrixLike, b: np.ndarray, x0: Optional[np.ndarray]):
    op = _Operator(a)
    b = np.asarray(b, dtype=float)
    if b.shape[0] != op.shape[0]:
        raise ValueError(f"rhs length {b.shape[0]} != num_rows {op.shape[0]}")
    x = np.zeros(op.shape[1]) if x0 is None else np.array(x0, dtype=float, copy=True)
    return op, b, x


def _stop_norm(b: np.ndarray, tol: float) -> float:
    return tol * max(float(np.linalg.norm(b)), 1e-30)


def jacobi(
    a: MatrixLike,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-10,
    max_iterations: int = 10_000,
) -> IterativeResult:
    """Jacobi relaxation ``x <- x + D^-1 (b - A x)``."""
    op, b, x = _prepare(a, b, x0)
    csr = op.row_access()
    diag = csr.diagonal()
    if np.any(diag == 0.0):
        raise ValueError("Jacobi requires a nonzero diagonal")
    threshold = _stop_norm(b, tol)
    history: List[float] = []
    for it in range(max_iterations):
        residual = b - op(x)
        norm = float(np.linalg.norm(residual))
        history.append(norm)
        if norm <= threshold:
            return IterativeResult(x, True, it, norm, history, op.count)
        x = x + residual / diag
    norm = float(np.linalg.norm(b - op(x)))
    history.append(norm)
    return IterativeResult(x, norm <= threshold, max_iterations, norm, history, op.count)


def gauss_seidel(
    a: MatrixLike,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-10,
    max_iterations: int = 10_000,
) -> IterativeResult:
    """Gauss-Seidel relaxation (SOR with ``omega = 1``)."""
    return sor(a, b, omega=1.0, x0=x0, tol=tol, max_iterations=max_iterations)


def sor(
    a: MatrixLike,
    b: np.ndarray,
    omega: float = 1.5,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-10,
    max_iterations: int = 10_000,
) -> IterativeResult:
    """Successive over-relaxation with factor ``omega`` in (0, 2)."""
    if not 0.0 < omega < 2.0:
        raise ValueError(f"omega must be in (0, 2), got {omega}")
    op, b, x = _prepare(a, b, x0)
    csr = op.row_access()
    diag = csr.diagonal()
    if np.any(diag == 0.0):
        raise ValueError("SOR requires a nonzero diagonal")
    threshold = _stop_norm(b, tol)
    history: List[float] = []
    n = csr.num_rows
    for it in range(max_iterations):
        for i in range(n):
            cols, vals = csr.row(i)
            sigma = float(vals @ x[cols]) - diag[i] * x[i]
            x[i] = (1.0 - omega) * x[i] + omega * (b[i] - sigma) / diag[i]
        residual = b - op(x)
        norm = float(np.linalg.norm(residual))
        history.append(norm)
        if norm <= threshold:
            return IterativeResult(x, True, it + 1, norm, history, op.count)
    return IterativeResult(x, False, max_iterations, history[-1], history, op.count)


def conjugate_gradient(
    a: MatrixLike,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    preconditioner: Optional[Preconditioner] = None,
    tol: float = 1e-10,
    max_iterations: int = 10_000,
) -> IterativeResult:
    """(Preconditioned) conjugate gradients for SPD systems."""
    op, b, x = _prepare(a, b, x0)
    precond = preconditioner or IdentityPreconditioner()
    threshold = _stop_norm(b, tol)
    r = b - op(x)
    z = precond.apply(r)
    p = z.copy()
    rz = float(r @ z)
    history = [float(np.linalg.norm(r))]
    if history[-1] <= threshold:
        return IterativeResult(x, True, 0, history[-1], history, op.count)
    for it in range(max_iterations):
        ap = op(p)
        pap = float(p @ ap)
        if pap <= 0.0:
            # Not SPD along this direction; report failure honestly.
            return IterativeResult(x, False, it, history[-1], history, op.count)
        alpha = rz / pap
        x = x + alpha * p
        r = r - alpha * ap
        norm = float(np.linalg.norm(r))
        history.append(norm)
        if norm <= threshold:
            return IterativeResult(x, True, it + 1, norm, history, op.count)
        z = precond.apply(r)
        rz_next = float(r @ z)
        p = z + (rz_next / rz) * p
        rz = rz_next
    return IterativeResult(x, False, max_iterations, history[-1], history, op.count)


def bicgstab(
    a: MatrixLike,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    preconditioner: Optional[Preconditioner] = None,
    tol: float = 1e-10,
    max_iterations: int = 10_000,
) -> IterativeResult:
    """Bi-CGstab for general (nonsymmetric) systems.

    This is the dominant kernel of the paper's SPEC 410.bwaves profile
    (Table 1) and our default inner solver for Newton steps on Burgers'
    Jacobians, which are nonsymmetric because of the advective terms.
    """
    op, b, x = _prepare(a, b, x0)
    precond = preconditioner or IdentityPreconditioner()
    threshold = _stop_norm(b, tol)
    r = b - op(x)
    r_hat = r.copy()
    rho = alpha = omega = 1.0
    v = np.zeros_like(r)
    p = np.zeros_like(r)
    history = [float(np.linalg.norm(r))]
    if history[-1] <= threshold:
        return IterativeResult(x, True, 0, history[-1], history, op.count)
    for it in range(max_iterations):
        rho_next = float(r_hat @ r)
        if rho_next == 0.0:
            return IterativeResult(x, False, it, history[-1], history, op.count)
        beta = (rho_next / rho) * (alpha / omega) if it > 0 else 0.0
        p = r + beta * (p - omega * v) if it > 0 else r.copy()
        rho = rho_next
        phat = precond.apply(p)
        v = op(phat)
        denom = float(r_hat @ v)
        if denom == 0.0:
            return IterativeResult(x, False, it, history[-1], history, op.count)
        alpha = rho / denom
        s = r - alpha * v
        norm_s = float(np.linalg.norm(s))
        if norm_s <= threshold:
            x = x + alpha * phat
            history.append(norm_s)
            return IterativeResult(x, True, it + 1, norm_s, history, op.count)
        shat = precond.apply(s)
        t = op(shat)
        tt = float(t @ t)
        if tt == 0.0:
            return IterativeResult(x, False, it, history[-1], history, op.count)
        omega = float(t @ s) / tt
        if omega == 0.0:
            return IterativeResult(x, False, it, history[-1], history, op.count)
        x = x + alpha * phat + omega * shat
        r = s - omega * t
        norm = float(np.linalg.norm(r))
        history.append(norm)
        if norm <= threshold:
            return IterativeResult(x, True, it + 1, norm, history, op.count)
    return IterativeResult(x, False, max_iterations, history[-1], history, op.count)


def gmres(
    a: MatrixLike,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    preconditioner: Optional[Preconditioner] = None,
    tol: float = 1e-10,
    restart: int = 50,
    max_iterations: int = 10_000,
) -> IterativeResult:
    """Restarted GMRES(m) with left preconditioning.

    GMRES is the robust fallback when the Burgers Jacobian approaches
    singularity near Reynolds number 2.0, where Bi-CGstab may break
    down (Section 6.2 of the paper).
    """
    op, b, x = _prepare(a, b, x0)
    precond = preconditioner or IdentityPreconditioner()
    n = b.shape[0]
    restart = max(1, min(restart, n))
    history: List[float] = []
    total_inner = 0
    true_resid = b - op(x)
    history.append(float(np.linalg.norm(true_resid)))
    threshold_true = _stop_norm(b, tol)
    if history[-1] <= threshold_true:
        return IterativeResult(x, True, 0, history[-1], history, op.count)
    while total_inner < max_iterations:
        r = precond.apply(b - op(x))
        beta = float(np.linalg.norm(r))
        if beta == 0.0:
            break
        q = np.zeros((restart + 1, n))
        h = np.zeros((restart + 1, restart))
        q[0] = r / beta
        g = np.zeros(restart + 1)
        g[0] = beta
        cs = np.zeros(restart)
        sn = np.zeros(restart)
        k_used = 0
        for k in range(restart):
            total_inner += 1
            w = precond.apply(op(q[k]))
            for j in range(k + 1):
                h[j, k] = float(w @ q[j])
                w -= h[j, k] * q[j]
            h[k + 1, k] = float(np.linalg.norm(w))
            if h[k + 1, k] > 1e-14:
                q[k + 1] = w / h[k + 1, k]
            # Apply stored Givens rotations to the new column.
            for j in range(k):
                temp = cs[j] * h[j, k] + sn[j] * h[j + 1, k]
                h[j + 1, k] = -sn[j] * h[j, k] + cs[j] * h[j + 1, k]
                h[j, k] = temp
            denom = float(np.hypot(h[k, k], h[k + 1, k]))
            if denom == 0.0:
                k_used = k + 1
                break
            cs[k] = h[k, k] / denom
            sn[k] = h[k + 1, k] / denom
            h[k, k] = denom
            h[k + 1, k] = 0.0
            g[k + 1] = -sn[k] * g[k]
            g[k] = cs[k] * g[k]
            k_used = k + 1
            history.append(abs(float(g[k + 1])))
            if abs(g[k + 1]) <= tol * max(beta, 1e-30) or total_inner >= max_iterations:
                break
        # Solve the small triangular system and update x.
        y = np.zeros(k_used)
        for i in range(k_used - 1, -1, -1):
            y[i] = (g[i] - float(h[i, i + 1 : k_used] @ y[i + 1 : k_used])) / h[i, i]
        x = x + q[:k_used].T @ y
        true_norm = float(np.linalg.norm(b - op(x)))
        history.append(true_norm)
        if true_norm <= threshold_true:
            return IterativeResult(x, True, total_inner, true_norm, history, op.count)
    true_norm = float(np.linalg.norm(b - op(x)))
    return IterativeResult(x, true_norm <= threshold_true, total_inner, true_norm, history, op.count)
