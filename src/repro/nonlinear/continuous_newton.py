"""The continuous Newton method as an ODE (Section 2.2 of the paper).

Shrinking the damped Newton step to an infinitesimal gives the
continuous Newton flow

    du/dtau = -J(u)^{-1} F(u)

whose trajectories follow the *Newton vector field* to a root. Along
the flow, ``F(u(tau)) = F(u(0)) exp(-tau)`` exactly — every component
of the residual decays at unit rate — which is why the flow is far less
sensitive to initial conditions than its discretizations and why the
basin picture of Figure 2 is contiguous.

Two fidelities are provided, matching the ablation in DESIGN.md:

* **behavioral** — each RHS evaluation solves ``J delta = F`` exactly
  (LU / Krylov). This is what the paper's simulated scaled-up
  accelerator does (Section 6.1).
* **circuit** — the state is augmented with the quotient value
  ``delta`` produced by the analog gradient-descent feedback block of
  Figure 1, integrating the coupled two-timescale system

      d delta/dtau = -gain * J^T (J delta - F)     (fast loop)
      du/dtau      = -delta                        (slow loop)

  which is the actual circuit topology of the prototype chip.

The settle time of the flow is the analog accelerator's solution time;
:mod:`repro.perf.analog_model` converts it to seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

import numpy as np

from repro.linalg.dense import SingularMatrixError, solve_dense
from repro.linalg.sparse import CsrMatrix
from repro.nonlinear.newton import LinearSolver, default_linear_solver
from repro.nonlinear.systems import NonlinearSystem
from repro.ode.dormand_prince import integrate_rk45
from repro.ode.events import SettleDetector, integrate_until_settled
from repro.ode.solution import OdeSolution

__all__ = [
    "ContinuousNewtonResult",
    "continuous_newton_solve",
    "newton_flow_rhs",
]


@dataclass
class ContinuousNewtonResult:
    """Outcome of a continuous Newton integration.

    ``settle_time`` is in the flow's natural time units; the analog
    performance model multiplies by the circuit time constant to get
    wall-clock seconds.
    """

    u: np.ndarray
    converged: bool
    settle_time: float
    residual_norm: float
    solution: OdeSolution
    fidelity: str


def newton_flow_rhs(
    system: NonlinearSystem,
    linear_solver: Optional[LinearSolver] = None,
) -> Callable[[float, np.ndarray], np.ndarray]:
    """RHS of the behavioral Newton flow ``du/dtau = -J^{-1} F``.

    Near points where the Jacobian is singular the exact flow blows up;
    the physical circuit instead saturates, so we regularize: if the
    solve fails, fall back to the damped least-squares direction
    ``-(J^T J + eps I)^{-1} J^T F``.
    """
    solve = linear_solver or default_linear_solver

    def rhs(_tau: float, u: np.ndarray) -> np.ndarray:
        residual = system.residual(u)
        jacobian = system.jacobian(u)
        try:
            delta = solve(jacobian, residual)
            if not np.all(np.isfinite(delta)):
                raise SingularMatrixError("non-finite Newton direction")
        except SingularMatrixError:
            dense = jacobian.to_dense() if isinstance(jacobian, CsrMatrix) else np.asarray(jacobian)
            gram = dense.T @ dense + 1e-8 * np.eye(dense.shape[1])
            delta = solve_dense(gram, dense.T @ residual)
        return -delta

    return rhs


def _circuit_rhs(
    system: NonlinearSystem,
    gain: float,
) -> Callable[[float, np.ndarray], np.ndarray]:
    """RHS of the circuit-fidelity flow over the augmented state
    ``[u, delta]`` (Figure 1's topology)."""
    n = system.dimension

    def rhs(_tau: float, state: np.ndarray) -> np.ndarray:
        u = state[:n]
        delta = state[n:]
        residual = system.residual(u)
        jacobian = system.jacobian(u)
        if isinstance(jacobian, CsrMatrix):
            j_delta = jacobian.matvec(delta)
            grad = jacobian.rmatvec(j_delta - residual)
        else:
            j_delta = jacobian @ delta
            grad = jacobian.T @ (j_delta - residual)
        return np.concatenate([-delta, -gain * grad])

    return rhs


def continuous_newton_solve(
    system: NonlinearSystem,
    u0: np.ndarray,
    time_limit: float = 60.0,
    fidelity: str = "behavioral",
    gain: float = 100.0,
    derivative_tolerance: float = 1e-7,
    dwell: float = 0.05,
    rtol: float = 1e-7,
    atol: float = 1e-10,
    linear_solver: Optional[LinearSolver] = None,
    residual_tolerance: float = 1e-5,
    max_steps: int = 1_000_000,
) -> ContinuousNewtonResult:
    """Integrate the continuous Newton flow from ``u0`` until settled.

    Parameters
    ----------
    fidelity:
        ``"behavioral"`` (exact inner solve per RHS evaluation) or
        ``"circuit"`` (augmented state with the gradient-descent
        quotient loop; ``gain`` sets the inner-loop bandwidth).
    residual_tolerance:
        The run counts as converged only if it settled *and* the final
        residual is below this — settling far from a root (e.g. at a
        saturation rail) is reported honestly as failure.
    max_steps:
        Accepted-step budget for the integrator. A badly degraded
        board's flow can shrink the adaptive step until covering the
        time limit costs unbounded wall-clock; a real board's settle
        window is wall-clock bounded, so the simulation's must be too.
        Exhausting the budget reads out wherever the flow stands —
        an unsettled, unconverged run the seed gate then rejects.
    """
    u0 = np.asarray(u0, dtype=float)
    if u0.shape != (system.dimension,):
        raise ValueError(f"u0 must have shape ({system.dimension},), got {u0.shape}")
    if fidelity not in ("behavioral", "circuit"):
        raise ValueError(f"unknown fidelity {fidelity!r}")

    if fidelity == "behavioral":
        rhs = newton_flow_rhs(system, linear_solver)
        y0 = u0
        solution = integrate_until_settled(
            rhs,
            y0,
            time_limit=time_limit,
            derivative_tolerance=derivative_tolerance,
            dwell=dwell,
            rtol=rtol,
            atol=atol,
            max_steps=max_steps,
        )
    else:
        rhs = _circuit_rhs(system, gain)
        y0 = np.concatenate([u0, np.zeros(system.dimension)])
        # Settle on the slow (u) components only: the fast quotient loop
        # hovers at its noise floor amplified by the loop gain, which is
        # invisible at the integrator outputs the ADCs actually measure.
        detector = SettleDetector(derivative_tolerance=derivative_tolerance, dwell=dwell)
        n = system.dimension

        def masked_detector(t: float, y: np.ndarray, dy_dt: np.ndarray) -> bool:
            return detector(t, y[:n], dy_dt[:n])

        solution = integrate_rk45(
            rhs,
            0.0,
            y0,
            time_limit,
            rtol=rtol,
            atol=atol,
            max_steps=max_steps,
            step_callback=masked_detector,
        )
    u_final = solution.final_state[: system.dimension]
    residual_norm = system.residual_norm(u_final)
    settle_time = solution.settle_time if solution.settle_time is not None else solution.final_time
    return ContinuousNewtonResult(
        u=u_final,
        converged=solution.settled and residual_norm <= residual_tolerance,
        settle_time=settle_time,
        residual_norm=residual_norm,
        solution=solution,
        fidelity=fidelity,
    )
