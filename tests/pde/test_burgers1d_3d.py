"""Tests for the 1-D Burgers stencil (2nd/4th order) and 3-D splitting."""

import numpy as np
import pytest

from repro.nonlinear.newton import NewtonOptions, newton_solve
from repro.nonlinear.systems import check_jacobian
from repro.pde.burgers1d import Burgers1DStencilSystem, stencil_width
from repro.pde.burgers3d import Burgers3DSplitStepper


def make_1d(n=15, reynolds=1.0, order=2, seed=0, weight=1.0):
    rng = np.random.default_rng(seed)
    return Burgers1DStencilSystem(
        num_nodes=n,
        reynolds=reynolds,
        rhs=rng.uniform(-1.0, 1.0, n),
        left=rng.uniform(-0.5, 0.5),
        right=rng.uniform(-0.5, 0.5),
        weight=weight,
        order=order,
    )


class TestStencilWidth:
    def test_widths(self):
        assert stencil_width(2) == 3
        assert stencil_width(4) == 5
        with pytest.raises(ValueError):
            stencil_width(3)


class TestBurgers1D:
    @pytest.mark.parametrize("order", [2, 4])
    def test_jacobian_matches_fd(self, order):
        system = make_1d(n=9, order=order)
        rng = np.random.default_rng(1)
        check_jacobian(system, rng.uniform(-1.0, 1.0, 9), rtol=1e-4, atol=1e-4)

    @pytest.mark.parametrize("order", [2, 4])
    def test_newton_solves(self, order):
        system = make_1d(n=15, order=order, seed=2)
        result = newton_solve(system, np.zeros(15), NewtonOptions(tolerance=1e-11, max_iterations=60))
        assert result.converged
        assert system.residual_norm(result.u) < 1e-10

    def test_fourth_order_more_accurate_on_smooth_problem(self):
        # Manufactured smooth solution on the unit interval: compare
        # discretization error of the two orders at equal node count.
        def solve_error(order, n):
            spacing = 1.0 / (n + 1)
            xs = (np.arange(n) + 1) * spacing
            target = np.sin(np.pi * xs) * 0.5
            reynolds, weight = 1.0, 0.1

            # Continuous residual of the PDE operator at the target:
            # u + w (u u' - u''/Re).
            up = 0.5 * np.pi * np.cos(np.pi * xs)
            upp = -0.5 * np.pi**2 * np.sin(np.pi * xs)
            rhs_exact = target + weight * (target * up - upp / reynolds)
            system = Burgers1DStencilSystem(
                num_nodes=n,
                reynolds=reynolds,
                rhs=rhs_exact,
                left=0.0,
                right=0.0,
                weight=weight,
                spacing=spacing,
                order=order,
            )
            result = newton_solve(system, target.copy(), NewtonOptions(tolerance=1e-12))
            assert result.converged
            return float(np.max(np.abs(result.u - target)))

        error2 = solve_error(2, 31)
        error4 = solve_error(4, 31)
        assert error4 < error2 / 20.0

    def test_fourth_order_costs_more_tile_inputs(self):
        # The Section 7 trade-off, in accelerator resource units.
        second = make_1d(order=2)
        fourth = make_1d(order=4)
        assert fourth.tile_inputs_per_variable() > second.tile_inputs_per_variable()

    def test_validation(self):
        with pytest.raises(ValueError):
            make_1d(n=2)
        with pytest.raises(ValueError):
            Burgers1DStencilSystem(5, -1.0, np.zeros(5))
        with pytest.raises(ValueError):
            Burgers1DStencilSystem(5, 1.0, np.zeros(4))
        with pytest.raises(ValueError):
            Burgers1DStencilSystem(5, 1.0, np.zeros(5), order=3)


class TestBurgers3D:
    def test_constant_zero_is_fixed_point(self):
        stepper = Burgers3DSplitStepper(n=5, reynolds=1.0, dt=0.1)
        field = np.zeros((5, 5, 5))
        out = stepper.step(field)
        np.testing.assert_allclose(out, 0.0, atol=1e-12)

    def test_diffusion_decays_bump(self):
        n = 7
        stepper = Burgers3DSplitStepper(n=n, reynolds=0.5, dt=0.05)
        field = np.zeros((n, n, n))
        field[3, 3, 3] = 1.0
        out = stepper.evolve(field, num_steps=3)
        assert np.max(np.abs(out)) < 1.0
        # Mass spreads to the neighbours.
        assert out[2, 3, 3] > 0.0

    def test_lines_accounting(self):
        n = 5
        stepper = Burgers3DSplitStepper(n=n, reynolds=1.0, dt=0.1)
        stepper.step(np.zeros((n, n, n)))
        assert stepper.lines_solved == stepper.lines_per_step() == 3 * n * n

    def test_custom_line_solver_invoked(self):
        calls = []

        def spy(system, guess):
            calls.append(system.dimension)
            from repro.pde.burgers3d import _default_line_solver

            return _default_line_solver(system, guess)

        stepper = Burgers3DSplitStepper(n=5, reynolds=1.0, dt=0.1, line_solver=spy)
        stepper.step(np.full((5, 5, 5), 0.1))
        assert len(calls) == 75
        assert all(dim == 5 for dim in calls)

    def test_symmetry_preserved(self):
        # A centrally symmetric field stays symmetric under splitting.
        n = 7
        stepper = Burgers3DSplitStepper(n=n, reynolds=1.0, dt=0.05)
        xs = np.arange(n) - n // 2
        gx, gy, gz = np.meshgrid(xs, xs, xs, indexing="ij")
        field = np.exp(-(gx**2 + gy**2 + gz**2) / 4.0)
        out = stepper.step(field)
        np.testing.assert_allclose(out, out[::-1, ::-1, ::-1], atol=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            Burgers3DSplitStepper(n=2, reynolds=1.0, dt=0.1)
        with pytest.raises(ValueError):
            Burgers3DSplitStepper(n=5, reynolds=1.0, dt=0.0)
        stepper = Burgers3DSplitStepper(n=5, reynolds=1.0, dt=0.1)
        with pytest.raises(ValueError):
            stepper.step(np.zeros((4, 4, 4)))
        with pytest.raises(ValueError):
            stepper.evolve(np.zeros((5, 5, 5)), num_steps=0)
