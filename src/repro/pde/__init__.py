"""PDE substrate: grids, stencils, discretization, and model problems.

Section 4 of the paper converts nonlinear PDEs into the nonlinear
systems of algebraic equations the accelerator solves, via

* **space discretization** — second-order central finite differences on
  a structured grid (:mod:`repro.pde.grid`, :mod:`repro.pde.stencils`),
* **time stepping** — the implicit, second-order Crank-Nicolson scheme
  (:mod:`repro.pde.timestepping`), yielding one nonlinear system per
  time step.

The model problems are:

* the 2-D viscous Burgers' equation, the paper's benchmark PDE, with
  analytic sparse Jacobian (:mod:`repro.pde.burgers`);
* a 1-D semilinear reaction-diffusion equation, the source of the
  Equation-2 coupled quadratic system
  (:mod:`repro.pde.reaction_diffusion`);
* the linear Poisson equation as an elliptic reference and workload
  building block (:mod:`repro.pde.poisson`).
"""

from repro.pde.grid import Grid2D
from repro.pde.stencils import (
    pad_with_boundary,
    central_x,
    central_y,
    laplacian_5pt,
)
from repro.pde.boundary import DirichletBoundary
from repro.pde.burgers import (
    BurgersStencilSystem,
    BurgersTimeStepper,
    random_burgers_system,
    reynolds_character,
)
from repro.pde.timestepping import (
    Bdf2System,
    CrankNicolsonSystem,
    ImplicitEulerSystem,
    ImplicitStepper,
    SpatialOperator,
    TrajectoryResult,
)
from repro.pde.reaction_diffusion import ReactionDiffusion1D
from repro.pde.poisson import PoissonProblem
from repro.pde.bratu import BratuProblem1D, BratuProblem2D, BRATU_1D_CRITICAL, BRATU_2D_CRITICAL
from repro.pde.burgers1d import Burgers1DStencilSystem, stencil_width
from repro.pde.burgers3d import Burgers3DSplitStepper
from repro.pde.advection import AdvectionSolver1D

__all__ = [
    "Grid2D",
    "pad_with_boundary",
    "central_x",
    "central_y",
    "laplacian_5pt",
    "DirichletBoundary",
    "BurgersStencilSystem",
    "BurgersTimeStepper",
    "random_burgers_system",
    "reynolds_character",
    "CrankNicolsonSystem",
    "ImplicitEulerSystem",
    "Bdf2System",
    "ImplicitStepper",
    "TrajectoryResult",
    "SpatialOperator",
    "ReactionDiffusion1D",
    "PoissonProblem",
    "BratuProblem1D",
    "BratuProblem2D",
    "BRATU_1D_CRITICAL",
    "BRATU_2D_CRITICAL",
    "Burgers1DStencilSystem",
    "stencil_width",
    "Burgers3DSplitStepper",
    "AdvectionSolver1D",
]
