"""Figure 9: time and energy on the GPU, baseline vs seeded, at Re = 2.

"The problem setup here is the 2D Burgers' equation with Re = 2.0, at
which point Newton's method may have poor convergence. ... We use
red-black nonlinear Gauss-Seidel to split the 32x32 problems to fit
[the 16x16 accelerator]. ... Figure 9 shows seeding the GPU decreases
the solution time for 32x32 Burgers' equations by 5.7x, and the energy
by 11.6x."

Pipeline per trial:

* baseline: damped Newton with restarts, each step's linear solve
  charged to the GPU QR model (honest accounting: failed-damping
  restarts are GPU work too);
* seeded: red-black Gauss-Seidel over <=16x16 blocks, each block solved
  by the simulated analog accelerator, then undamped GPU Newton from
  the assembled seed;
* energy: model power x modeled time for the GPU, and the analog
  area/power model for the accelerator's (negligible) share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.analog.engine import AnalogAccelerator
from repro.core.gauss_seidel import RedBlackGaussSeidel
from repro.linalg.kernel import LinearKernel, LinearSolverStats
from repro.nonlinear.newton import (
    NewtonOptions,
    damped_newton_with_restarts,
    newton_solve,
)
from repro.perf.analog_model import AnalogTimingModel
from repro.perf.gpu_model import GpuModel
from repro.pde.burgers import BurgersStencilSystem, random_burgers_system
from repro.reporting import ascii_table, render_kernel_stats
from repro.trace.tracer import NULL_TRACER, TracerLike, as_tracer

__all__ = ["Figure9Result", "run_figure9", "PAPER_FIGURE9"]

# Paper Figure 9: size -> (baseline s, analog seeding s, seeded digital s,
#                          baseline J, analog J, seeded J).
PAPER_FIGURE9 = {
    16: (0.51, 0.0001, 0.30, 23.9, 4.8e-5, 8.8),
    32: (2.75, 0.0030, 0.48, 194.2, 1.2e-3, 16.7),
}


@dataclass
class Figure9Result:
    rows_data: List[dict]
    kernel_stats: Optional[LinearSolverStats] = None

    def rows(self) -> List[dict]:
        return self.rows_data

    def render(self) -> str:
        table = ascii_table(self.rows_data)
        stats = render_kernel_stats(self.kernel_stats, label="digital linear kernel")
        return f"{table}\n\n{stats}" if stats else table

    def row_at(self, grid_n: int) -> Optional[dict]:
        for row in self.rows_data:
            if row["problem size"] == f"{grid_n}x{grid_n}":
                return row
        return None


def _analog_subdomain_solver(
    accelerator: AnalogAccelerator,
    settle_units: List[float],
    tracer: TracerLike = NULL_TRACER,
):
    """Subdomain solver plugging the accelerator into Gauss-Seidel."""

    def solve(system: BurgersStencilSystem, guess: np.ndarray) -> np.ndarray:
        result = accelerator.solve(
            system, initial_guess=guess, value_bound=3.0, tracer=tracer
        )
        settle_units.append(result.settle_time_units)
        if result.converged:
            return result.solution
        return guess

    return solve


def run_figure9(
    grid_sizes: Tuple[int, ...] = (16, 32),
    reynolds: float = 2.0,
    trials: int = 1,
    seed: int = 0,
    block_size: int = 16,
    gpu_model: Optional[GpuModel] = None,
    analog_model: Optional[AnalogTimingModel] = None,
    gs_tolerance: float = 0.02,
    max_sweeps: int = 3,
    tracer: Optional[TracerLike] = None,
) -> Figure9Result:
    """Run the GPU-scale comparison at the paper's Re = 2.0.

    ``tracer`` records the baseline and polish legs' Newton/linear
    spans plus one ``analog_settle`` span per Gauss-Seidel subdomain
    solve.
    """
    gpu_model = gpu_model or GpuModel()
    analog_model = analog_model or AnalogTimingModel()
    tracer = as_tracer(tracer)
    newton_options = NewtonOptions(tolerance=1e-11, max_iterations=60)
    sweep_stats = LinearSolverStats()
    rows = []
    for grid_n in grid_sizes:
        baseline_times, seed_times, polish_times = [], [], []
        seed_unit_totals = []
        for trial in range(trials):
            rng = np.random.default_rng(seed + 104729 * trial)
            system, _ = random_burgers_system(grid_n, reynolds, rng)
            # Naive full-range initial guess: the no-warm-history regime
            # where the paper's seeding benefit appears.
            guess = rng.uniform(-2.0, 2.0, system.dimension)
            jacobian = system.jacobian(guess)
            # Per-trial kernel: baseline and seeded-polish legs share the
            # trial's factorization; sweep_stats aggregates across trials.
            kernel = LinearKernel(stats=sweep_stats)

            baseline = damped_newton_with_restarts(
                system,
                guess,
                newton_options,
                linear_solver=kernel,
                min_damping=1.0 / 64.0,
                tracer=tracer,
            )
            if not baseline.converged:
                continue
            baseline_times.append(
                gpu_model.solve_seconds(baseline, jacobian, count_restarts=True)
            )

            # Seeded pipeline: analog-backed red-black Gauss-Seidel...
            accelerator = AnalogAccelerator(seed=seed + trial)
            settle_units: List[float] = []
            decomposition = RedBlackGaussSeidel(
                system,
                block_size=block_size,
                subdomain_solver=_analog_subdomain_solver(accelerator, settle_units, tracer),
            )
            gs = decomposition.solve(
                initial_guess=guess, tolerance=gs_tolerance, max_sweeps=max_sweeps
            )
            # Sequential analog time: same-color blocks run in parallel
            # on the accelerator, colors alternate (2 serial phases per
            # sweep).
            colors_present = len({block.color for block in decomposition.blocks})
            serial_phases = colors_present * gs.sweeps
            mean_settle = float(np.mean(settle_units)) if settle_units else 0.0
            seed_unit_totals.append(mean_settle * serial_phases)
            seed_times.append(analog_model.seconds(mean_settle) * serial_phases)

            # ...then undamped GPU Newton from the assembled seed.
            polish = newton_solve(system, gs.u, newton_options, linear_solver=kernel, tracer=tracer)
            if not polish.converged:
                polish = damped_newton_with_restarts(
                    system, gs.u, newton_options, linear_solver=kernel, tracer=tracer
                )
            polish_times.append(gpu_model.solve_seconds(polish, jacobian))
        if not baseline_times:
            continue
        baseline_s = float(np.mean(baseline_times))
        seeding_s = float(np.mean(seed_times))
        seeded_s = float(np.mean(polish_times))
        baseline_j = gpu_model.energy_joules(baseline_s)
        analog_j = analog_model.energy_joules(
            min(grid_n, block_size), float(np.mean(seed_unit_totals))
        )
        seeded_j = gpu_model.energy_joules(seeded_s)
        rows.append(
            {
                "problem size": f"{grid_n}x{grid_n}",
                "digital baseline (s)": baseline_s,
                "analog seeding (s)": seeding_s,
                "digital seeded (s)": seeded_s,
                "time speedup": baseline_s / max(seeded_s, 1e-12),
                "baseline energy (J)": baseline_j,
                "analog energy (J)": analog_j,
                "seeded energy (J)": seeded_j,
                "energy savings": baseline_j / max(seeded_j + analog_j, 1e-12),
            }
        )
    return Figure9Result(rows_data=rows, kernel_stats=sweep_stats)
