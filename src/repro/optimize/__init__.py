"""Continuous-time linear programming (Section 9's second pointer).

The paper's conclusion lists linear programming among the "continuous
algorithms [that] point the way to additional analog kernels". This
package carries that extension end to end, in the same hybrid shape as
the headline method:

* :mod:`repro.optimize.simplex` — a from-scratch two-phase dense
  simplex solver: the exact digital baseline;
* :mod:`repro.optimize.barrier_flow` — the analog-style kernel: the
  log-barrier *central-path gradient flow*, a smooth ODE whose settled
  state is a near-optimal interior point;
* :mod:`repro.optimize.hybrid_lp` — the hybrid pipeline: the flow's
  interior point identifies the optimal active set, and a single
  linear solve lands exactly on the optimal vertex — digital simplex
  only runs as the fallback when the identification check fails.
"""

from repro.optimize.simplex import LinearProgram, SimplexResult, simplex_solve
from repro.optimize.barrier_flow import BarrierFlowResult, barrier_flow_solve
from repro.optimize.hybrid_lp import HybridLpResult, hybrid_lp_solve

__all__ = [
    "LinearProgram",
    "SimplexResult",
    "simplex_solve",
    "BarrierFlowResult",
    "barrier_flow_solve",
    "HybridLpResult",
    "hybrid_lp_solve",
]
