"""Tests for analog components and the Fabric/Chip/Tile hierarchy."""

import numpy as np
import pytest

from repro.analog.components import Adc, Dac, Fanout, Integrator, Multiplier
from repro.analog.fabric import (
    Fabric,
    FabricCapacityError,
    INTEGRATORS_PER_TILE,
    MULTIPLIERS_PER_TILE,
    TILES_PER_CHIP,
)
from repro.analog.noise import NoiseModel


@pytest.fixture
def noise():
    return NoiseModel()


class TestComponents:
    def test_multiplier_product(self, noise):
        mul = Multiplier("m", noise)
        np.testing.assert_allclose(mul.evaluate(np.array(0.5), np.array(0.4)), 0.2)

    def test_multiplier_gain_error_applies(self, noise):
        mul = Multiplier("m", noise, gain_error=0.1)
        assert mul.evaluate(np.array(0.5), np.array(0.4)) == pytest.approx(0.22)

    def test_multiplier_saturates(self, noise):
        mul = Multiplier("m", noise)
        mul.set_gain(10.0)
        assert mul.evaluate(np.array(0.9), np.array(0.9)) == pytest.approx(1.0)

    def test_fanout_copies(self, noise):
        fan = Fanout("f", noise)
        out = fan.evaluate(np.array(0.3), copies=3)
        assert out.shape == (3,)
        np.testing.assert_allclose(out, 0.3)

    def test_fanout_validation(self, noise):
        with pytest.raises(ValueError):
            Fanout("f", noise).evaluate(np.array(0.1), copies=0)

    def test_integrator_initial_condition_quantized(self, noise):
        integ = Integrator("i", noise)
        integ.set_initial(0.123456789)
        step = 2.0 / 2**noise.dac_bits
        assert abs(integ.initial_condition - 0.123456789) <= step / 2

    def test_dac_output_quantized_and_railed(self, noise):
        dac = Dac("d", noise)
        dac.set_constant(5.0)
        assert dac.output() <= 1.0

    def test_adc_measure_quantizes(self, noise):
        adc = Adc("a", noise)
        rng = np.random.default_rng(0)
        out = adc.measure(0.5, rng)
        assert abs(out - 0.5) < 0.05

    def test_adc_averaging_reduces_variance(self):
        noisy = NoiseModel(thermal_noise_sigma=0.05)
        adc = Adc("a", noisy)
        rng = np.random.default_rng(0)
        singles = [adc.measure(0.3, rng) for _ in range(200)]
        averaged = [adc.analog_avg(0.3, repeats=16, rng=rng) for _ in range(200)]
        assert np.std(averaged) < np.std(singles)

    def test_adc_repeats_validation(self, noise):
        with pytest.raises(ValueError):
            Adc("a", noise).analog_avg(0.1, repeats=0, rng=np.random.default_rng(0))

    def test_allocation_protocol(self, noise):
        mul = Multiplier("m", noise)
        mul.allocate("problem1")
        with pytest.raises(RuntimeError):
            mul.allocate("problem2")
        mul.release()
        mul.allocate("problem2")


class TestFabric:
    def test_prototype_board_has_eight_tiles(self):
        fabric = Fabric(num_chips=2)
        assert fabric.num_tiles == 8

    def test_tile_inventory(self):
        fabric = Fabric(num_chips=1)
        tile = fabric.chips[0].tiles[0]
        assert len(tile.integrators) == INTEGRATORS_PER_TILE
        assert len(tile.multipliers) == MULTIPLIERS_PER_TILE
        assert len(fabric.chips[0].tiles) == TILES_PER_CHIP

    def test_for_variables_rounds_up(self):
        fabric = Fabric.for_variables(9)
        assert fabric.num_tiles == 12  # 3 chips

    def test_calibration_assigns_residual_errors(self):
        fabric = Fabric(num_chips=1)
        fabric.calibrate()
        errors = [c.gain_error for c in fabric.chips[0].tiles[0].components()]
        assert any(e != 0.0 for e in errors)
        assert np.std(errors) < 0.1

    def test_same_seed_same_die(self):
        a = Fabric(num_chips=1, seed=5)
        b = Fabric(num_chips=1, seed=5)
        a.calibrate()
        b.calibrate()
        ea = [c.gain_error for c in a.chips[0].tiles[0].components()]
        eb = [c.gain_error for c in b.chips[0].tiles[0].components()]
        np.testing.assert_array_equal(ea, eb)

    def test_allocation_and_capacity(self):
        fabric = Fabric(num_chips=1)
        fabric.calibrate()
        tiles = fabric.allocate_tiles(3, "p")
        assert len(tiles) == 3
        assert len(fabric.free_tiles()) == 1
        with pytest.raises(FabricCapacityError):
            fabric.allocate_tiles(2, "q")

    def test_lifecycle_enforced(self):
        fabric = Fabric(num_chips=1)
        with pytest.raises(RuntimeError):
            fabric.cfg_commit()  # not calibrated
        fabric.calibrate()
        with pytest.raises(RuntimeError):
            fabric.exec_start()  # not committed
        fabric.cfg_commit()
        fabric.exec_start()
        with pytest.raises(RuntimeError):
            fabric.allocate_tiles(1, "p")  # executing
        fabric.exec_stop()
        fabric.allocate_tiles(1, "p")

    def test_release_all(self):
        fabric = Fabric(num_chips=1)
        fabric.calibrate()
        fabric.allocate_tiles(4, "p")
        fabric.connect("a", "b")
        fabric.release_all()
        assert len(fabric.free_tiles()) == 4
        assert not fabric.connections

    def test_validation(self):
        with pytest.raises(ValueError):
            Fabric(num_chips=0)
        with pytest.raises(ValueError):
            Fabric.for_variables(0)
