"""Geometric multigrid for the five-point Poisson operator.

Table 5 of the paper summarizes the authors' prior linear-algebra
accelerator ([22, 23]): its analog-digital partitioning was "digital
decomposition using multigrid; analog solves recursively on linear
equation residual". This module supplies that decomposition: a classic
V-cycle with red-black Gauss-Seidel smoothing, full-weighting
restriction and bilinear prolongation on square grids.

The coarse-grid *residual equation* solver is pluggable — plugging in
:class:`repro.analog.engine.AnalogAccelerator` reproduces the prior
work's scheme, while the default recursion is a pure-digital V-cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

__all__ = ["MultigridPoisson", "MultigridResult"]

CoarseSolver = Callable[[np.ndarray], np.ndarray]


@dataclass
class MultigridResult:
    """Outcome of a multigrid solve."""

    solution: np.ndarray
    converged: bool
    cycles: int
    residual_history: List[float] = field(default_factory=list)

    @property
    def convergence_factor(self) -> float:
        """Geometric-mean residual reduction per cycle."""
        h = self.residual_history
        if len(h) < 2 or h[0] == 0.0:
            return 0.0
        return float((h[-1] / h[0]) ** (1.0 / (len(h) - 1)))


class MultigridPoisson:
    """V-cycle solver for ``-Lap(u) = f`` on an ``n x n`` interior grid.

    ``n`` must be ``2^k - 1`` so the grid hierarchy nests (the standard
    vertex-centered coarsening). Dirichlet zero boundaries; lift
    nonzero boundaries into the right-hand side first (see
    :meth:`repro.pde.poisson.PoissonProblem.rhs`).
    """

    def __init__(
        self,
        n: int,
        spacing: float = 1.0,
        pre_smooth: int = 2,
        post_smooth: int = 2,
        coarsest: int = 1,
        coarse_solver: Optional[CoarseSolver] = None,
    ):
        if n < 1 or (n + 1) & n != 0:
            raise ValueError(f"grid size must be 2^k - 1, got {n}")
        if spacing <= 0.0:
            raise ValueError("spacing must be positive")
        if pre_smooth < 0 or post_smooth < 0:
            raise ValueError("smoothing counts must be nonnegative")
        if pre_smooth == 0 and post_smooth == 0:
            raise ValueError("at least one smoothing pass is required")
        self.n = n
        self.spacing = float(spacing)
        self.pre_smooth = pre_smooth
        self.post_smooth = post_smooth
        self.coarsest = coarsest
        self.coarse_solver = coarse_solver

    # -- grid operators -------------------------------------------------

    @staticmethod
    def apply_operator(u: np.ndarray, h: float) -> np.ndarray:
        """``-Lap(u)`` with zero Dirichlet ghosts."""
        padded = np.pad(u, 1)
        lap = (
            padded[:-2, 1:-1]
            + padded[2:, 1:-1]
            + padded[1:-1, :-2]
            + padded[1:-1, 2:]
            - 4.0 * padded[1:-1, 1:-1]
        ) / h**2
        return -lap

    @staticmethod
    def _smooth_red_black(u: np.ndarray, f: np.ndarray, h: float, sweeps: int) -> np.ndarray:
        """Red-black Gauss-Seidel: vectorized over each color."""
        n = u.shape[0]
        ii, jj = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
        red = (ii + jj) % 2 == 0
        black = ~red
        for _ in range(sweeps):
            for mask in (red, black):
                padded = np.pad(u, 1)
                neighbours = (
                    padded[:-2, 1:-1] + padded[2:, 1:-1] + padded[1:-1, :-2] + padded[1:-1, 2:]
                )
                update = (h**2 * f + neighbours) / 4.0
                u = np.where(mask, update, u)
        return u

    @staticmethod
    def _restrict(residual: np.ndarray) -> np.ndarray:
        """Full-weighting restriction to the next coarser grid."""
        n = residual.shape[0]
        coarse_n = (n - 1) // 2
        padded = np.pad(residual, 1)
        # Coarse node (I, J) sits at fine node (2I+1, 2J+1).
        ci = 2 * np.arange(coarse_n)[:, None] + 1
        cj = 2 * np.arange(coarse_n)[None, :] + 1
        pi, pj = ci + 1, cj + 1  # padded coordinates
        center = padded[pi, pj]
        edges = padded[pi - 1, pj] + padded[pi + 1, pj] + padded[pi, pj - 1] + padded[pi, pj + 1]
        corners = (
            padded[pi - 1, pj - 1]
            + padded[pi - 1, pj + 1]
            + padded[pi + 1, pj - 1]
            + padded[pi + 1, pj + 1]
        )
        return (4.0 * center + 2.0 * edges + corners) / 16.0

    @staticmethod
    def _prolong(coarse: np.ndarray, fine_n: int) -> np.ndarray:
        """Bilinear interpolation to the next finer grid."""
        padded = np.pad(coarse, 1)
        fine = np.zeros((fine_n, fine_n))
        cn = coarse.shape[0]
        # Fine nodes coincident with coarse nodes.
        fi = 2 * np.arange(cn) + 1
        fine[np.ix_(fi, fi)] = coarse
        # Horizontal midpoints (average of left/right coarse values).
        mid = np.arange(cn + 1) * 2
        fine[np.ix_(fi, mid)] = 0.5 * (padded[1:-1, :-1] + padded[1:-1, 1:])
        fine[np.ix_(mid, fi)] = 0.5 * (padded[:-1, 1:-1] + padded[1:, 1:-1])
        # Cell centers (average of four coarse corners).
        fine[np.ix_(mid, mid)] = 0.25 * (
            padded[:-1, :-1] + padded[:-1, 1:] + padded[1:, :-1] + padded[1:, 1:]
        )
        return fine

    # -- cycles -----------------------------------------------------------

    def _v_cycle(self, u: np.ndarray, f: np.ndarray, h: float) -> np.ndarray:
        n = u.shape[0]
        if n <= self.coarsest:
            if self.coarse_solver is not None:
                return self.coarse_solver(f).reshape(n, n)
            # Exact solve on the tiny coarsest grid by dense inversion.
            size = n * n
            dense = np.zeros((size, size))
            for k in range(size):
                e = np.zeros(size)
                e[k] = 1.0
                dense[:, k] = self.apply_operator(e.reshape(n, n), h).ravel()
            return np.linalg.solve(dense, f.ravel()).reshape(n, n)
        u = self._smooth_red_black(u, f, h, self.pre_smooth)
        residual = f - self.apply_operator(u, h)
        coarse_residual = self._restrict(residual)
        correction = self._v_cycle(
            np.zeros_like(coarse_residual), coarse_residual, 2.0 * h
        )
        u = u + self._prolong(correction, n)
        return self._smooth_red_black(u, f, h, self.post_smooth)

    def solve(
        self,
        f: np.ndarray,
        u0: Optional[np.ndarray] = None,
        tol: float = 1e-10,
        max_cycles: int = 50,
    ) -> MultigridResult:
        """Iterate V-cycles until the residual norm drops by ``tol``."""
        f = np.asarray(f, dtype=float)
        if f.shape != (self.n, self.n):
            raise ValueError(f"rhs must have shape ({self.n}, {self.n})")
        u = np.zeros_like(f) if u0 is None else np.array(u0, dtype=float, copy=True)
        h = self.spacing
        history = [float(np.linalg.norm(f - self.apply_operator(u, h)))]
        threshold = tol * max(history[0], 1e-30)
        for cycle in range(1, max_cycles + 1):
            u = self._v_cycle(u, f, h)
            norm = float(np.linalg.norm(f - self.apply_operator(u, h)))
            history.append(norm)
            if norm <= threshold:
                return MultigridResult(
                    solution=u, converged=True, cycles=cycle, residual_history=history
                )
        return MultigridResult(
            solution=u, converged=False, cycles=max_cycles, residual_history=history
        )
