"""Tests for the continuous eigenanalysis flows."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nonlinear.flows import dominant_eigenpairs, oja_flow, rayleigh_quotient


def random_symmetric(n, seed):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    return (a + a.T) / 2.0


class TestRayleighQuotient:
    def test_eigenvector_gives_eigenvalue(self):
        a = np.diag([3.0, 1.0])
        assert rayleigh_quotient(a, np.array([1.0, 0.0])) == pytest.approx(3.0)

    def test_zero_vector_rejected(self):
        with pytest.raises(ValueError):
            rayleigh_quotient(np.eye(2), np.zeros(2))


class TestOjaFlow:
    def test_finds_dominant_eigenpair_diagonal(self):
        a = np.diag([5.0, 2.0, -1.0])
        result = oja_flow(a, seed=0)
        assert result.settled
        assert result.eigenvalue == pytest.approx(5.0, abs=1e-4)
        assert abs(result.eigenvector[0]) == pytest.approx(1.0, abs=1e-3)

    def test_all_negative_spectrum_handled_by_shift(self):
        a = np.diag([-1.0, -4.0, -9.0])
        result = oja_flow(a, seed=1)
        assert result.settled
        assert result.eigenvalue == pytest.approx(-1.0, abs=1e-4)

    @pytest.mark.parametrize("n", [2, 4, 6])
    def test_matches_numpy_eigh(self, n):
        a = random_symmetric(n, seed=n)
        expected = float(np.max(np.linalg.eigvalsh(a)))
        result = oja_flow(a, seed=7)
        assert result.eigenvalue == pytest.approx(expected, abs=1e-4)
        assert result.residual_norm < 1e-3

    def test_unit_norm_output(self):
        result = oja_flow(random_symmetric(5, 0), seed=3)
        assert np.linalg.norm(result.eigenvector) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            oja_flow(np.ones((2, 3)))
        with pytest.raises(ValueError):
            oja_flow(np.array([[0.0, 1.0], [0.0, 0.0]]))  # nonsymmetric
        with pytest.raises(ValueError):
            oja_flow(np.eye(2), w0=np.zeros(2))

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=1000))
    def test_property_dominant_value_recovered(self, seed):
        a = random_symmetric(4, seed)
        expected = float(np.max(np.linalg.eigvalsh(a)))
        result = oja_flow(a, seed=seed + 1)
        assert result.eigenvalue == pytest.approx(expected, abs=1e-3)


class TestDeflation:
    def test_top_three_of_diagonal(self):
        a = np.diag([7.0, 4.0, 2.0, -3.0])
        pairs = dominant_eigenpairs(a, count=3, seed=0)
        values = [p.eigenvalue for p in pairs]
        np.testing.assert_allclose(values, [7.0, 4.0, 2.0], atol=1e-3)

    def test_matches_numpy_on_random_matrix(self):
        a = random_symmetric(5, seed=11)
        expected = np.sort(np.linalg.eigvalsh(a))[::-1][:3]
        pairs = dominant_eigenpairs(a, count=3, seed=5)
        values = [p.eigenvalue for p in pairs]
        np.testing.assert_allclose(values, expected, atol=1e-3)

    def test_eigenvectors_orthogonal(self):
        a = random_symmetric(5, seed=12)
        pairs = dominant_eigenpairs(a, count=2, seed=2)
        dot = abs(float(pairs[0].eigenvector @ pairs[1].eigenvector))
        assert dot < 1e-3

    def test_validation(self):
        with pytest.raises(ValueError):
            dominant_eigenpairs(np.eye(3), count=0)
        with pytest.raises(ValueError):
            dominant_eigenpairs(np.eye(3), count=4)
