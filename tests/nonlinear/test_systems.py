"""Tests for the NonlinearSystem protocol and example systems."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nonlinear.systems import (
    CallableSystem,
    CoupledQuadraticSystem,
    CubicRootSystem,
    SimpleSquareSystem,
    check_jacobian,
    finite_difference_jacobian,
)

finite_floats = st.floats(min_value=-3.0, max_value=3.0, allow_nan=False)


class TestCubicRootSystem:
    def test_real_root_is_zero_residual(self):
        system = CubicRootSystem()
        np.testing.assert_allclose(system.residual(np.array([1.0, 0.0])), 0.0, atol=1e-14)

    def test_all_three_roots(self):
        system = CubicRootSystem()
        for root in CubicRootSystem.roots():
            assert system.residual_norm(root) < 1e-12

    @settings(max_examples=30, deadline=None)
    @given(finite_floats, finite_floats)
    def test_property_jacobian_matches_finite_differences(self, x, y):
        check_jacobian(CubicRootSystem(), np.array([x, y]), rtol=1e-4, atol=1e-4)

    def test_residual_matches_complex_arithmetic(self):
        system = CubicRootSystem()
        z = complex(0.3, -0.7)
        f = z**3 - 1.0
        np.testing.assert_allclose(
            system.residual(np.array([z.real, z.imag])), [f.real, f.imag], atol=1e-14
        )

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            CubicRootSystem().residual(np.zeros(3))


class TestCoupledQuadraticSystem:
    def test_residual_formula(self):
        system = CoupledQuadraticSystem(rhs0=2.0, rhs1=-1.0)
        u = np.array([1.0, 2.0])
        expected = np.array([1.0 + 1.0 + 2.0 - 2.0, 4.0 + 2.0 - 1.0 + 1.0])
        np.testing.assert_allclose(system.residual(u), expected)

    @settings(max_examples=30, deadline=None)
    @given(finite_floats, finite_floats, finite_floats, finite_floats)
    def test_property_jacobian_matches_fd(self, a, b, x, y):
        check_jacobian(CoupledQuadraticSystem(a, b), np.array([x, y]), rtol=1e-4, atol=1e-4)

    def test_real_roots_satisfy_system(self):
        system = CoupledQuadraticSystem(rhs0=1.0, rhs1=1.0)
        roots = system.real_roots()
        assert roots.shape[0] >= 1
        for root in roots:
            assert system.residual_norm(root) < 1e-8

    def test_root_count_depends_on_rhs(self):
        # Large negative RHS pushes the paraboloids apart: no real roots.
        none = CoupledQuadraticSystem(rhs0=-100.0, rhs1=0.0).real_roots()
        some = CoupledQuadraticSystem(rhs0=1.0, rhs1=1.0).real_roots()
        assert none.shape[0] == 0
        assert some.shape[0] >= 2

    @settings(max_examples=25, deadline=None)
    @given(finite_floats, finite_floats)
    def test_property_all_reported_roots_are_roots(self, a, b):
        system = CoupledQuadraticSystem(a, b)
        for root in system.real_roots():
            assert system.residual_norm(root) < 1e-6


class TestSimpleSquareSystem:
    def test_roots_enumeration(self):
        system = SimpleSquareSystem(dimension=3)
        roots = system.roots()
        assert roots.shape == (8, 3)
        for root in roots:
            assert system.residual_norm(root) < 1e-14
        # All sign combinations distinct.
        assert len({tuple(r) for r in roots.tolist()}) == 8

    def test_jacobian_is_diagonal(self):
        system = SimpleSquareSystem(dimension=2)
        jac = system.jacobian(np.array([2.0, -3.0]))
        np.testing.assert_allclose(jac, np.diag([4.0, -6.0]))

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            SimpleSquareSystem(dimension=0)


class TestCallableSystem:
    def test_wraps_residual_and_jacobian(self):
        system = CallableSystem(
            2,
            residual=lambda u: np.array([u[0] ** 2 - 1.0, u[1] - 2.0]),
            jacobian=lambda u: np.array([[2.0 * u[0], 0.0], [0.0, 1.0]]),
        )
        check_jacobian(system, np.array([1.5, 0.5]))

    def test_fd_jacobian_fallback(self):
        system = CallableSystem(1, residual=lambda u: np.array([np.sin(u[0])]))
        jac = system.jacobian(np.array([0.3]))
        assert jac[0, 0] == pytest.approx(np.cos(0.3), rel=1e-5)

    def test_bad_residual_shape_rejected(self):
        system = CallableSystem(2, residual=lambda u: np.array([1.0]))
        with pytest.raises(ValueError):
            system.residual(np.zeros(2))

    def test_dimension_validated(self):
        with pytest.raises(ValueError):
            CallableSystem(0, residual=lambda u: u)


class TestFiniteDifferenceJacobian:
    def test_linear_function_exact(self):
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        jac = finite_difference_jacobian(lambda u: a @ u, np.array([0.5, -0.5]))
        np.testing.assert_allclose(jac, a, rtol=1e-6)

    def test_check_jacobian_raises_on_wrong_jacobian(self):
        system = CallableSystem(
            1,
            residual=lambda u: np.array([u[0] ** 2]),
            jacobian=lambda u: np.array([[1.0]]),  # wrong: should be 2u
        )
        with pytest.raises(AssertionError):
            check_jacobian(system, np.array([3.0]))
