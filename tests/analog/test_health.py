"""Unit and property tests for the analog device health layer.

Covers the four pieces of :mod:`repro.analog.health` in isolation and
wired into the accelerator:

* :class:`DegradationModel` / :class:`DegradationSchedule` — spec
  parsing and validation, seeded determinism of the drift walks,
  pickling (the runtime ships schedules to worker processes), and the
  recalibration contract (drift re-nulls, hardware faults persist);
* :class:`SeedQualityGate` — the relative-residual score, and the
  NaN/Inf clamp that keeps a broken seed's verdict finite;
* :class:`HealthMonitor` / :class:`TileHealth` — flagging thresholds,
  min-observation hysteresis, settled-vs-unsettled accounting,
  quarantine bookkeeping and recalibration pressure;
* the engine wiring — a healthy board's seeds pass the gate and leave
  the monitor clean; a drifted board's seed is rejected with the full
  ``analog_health`` span story.

The Hypothesis properties pin the two safety invariants the chaos tier
relies on: allocation NEVER hands out a quarantined tile, and
recalibration always resets drift state while preserving hardware
faults.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analog.engine import AnalogAccelerator, solution_error
from repro.analog.fabric import TILES_PER_CHIP, Fabric, FabricCapacityError
from repro.analog.health import (
    NONFINITE_QUALITY,
    DegradationModel,
    DegradationSchedule,
    HealthMonitor,
    SeedQualityGate,
    TileHealth,
)
from repro.nonlinear.systems import CoupledQuadraticSystem, SimpleSquareSystem
from repro.pde.burgers import random_burgers_system
from repro.trace.tracer import Tracer


def _burgers_system(seed=0):
    return random_burgers_system(2, 1.0, np.random.default_rng(seed))


# ---------------------------------------------------------------------------
# DegradationModel
# ---------------------------------------------------------------------------


class TestDegradationModel:
    def test_default_model_is_inactive(self):
        assert not DegradationModel().active

    def test_any_fault_knob_makes_it_active(self):
        assert DegradationModel(offset_drift_sigma=0.1).active
        assert DegradationModel(gain_drift_bias=0.01).active
        assert DegradationModel(stuck_tiles=("chip0.tile1",)).active
        assert DegradationModel(dead_dac_rate=0.5).active

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError, match="nonnegative"):
            DegradationModel(offset_drift_sigma=-0.1)
        with pytest.raises(ValueError, match="nonnegative"):
            DegradationModel(gain_drift_sigma=-1.0)

    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError, match="stuck_tile_rate"):
            DegradationModel(stuck_tile_rate=1.5)
        with pytest.raises(ValueError, match="dead_dac_rate"):
            DegradationModel(dead_dac_rate=-0.01)

    def test_from_spec_parses_floats_ints_and_lists(self):
        model = DegradationModel.from_spec(
            "offset_drift_sigma=0.2,gain_drift_sigma=0.05,seed=7,"
            "stuck_tiles=chip0.tile1;chip0.tile3,dead_dacs=chip1.tile0.dac2"
        )
        assert model.offset_drift_sigma == 0.2
        assert model.gain_drift_sigma == 0.05
        assert model.seed == 7
        assert model.stuck_tiles == ("chip0.tile1", "chip0.tile3")
        assert model.dead_dacs == ("chip1.tile0.dac2",)

    def test_from_spec_tolerates_blank_parts(self):
        model = DegradationModel.from_spec("offset_drift_sigma=0.1,, ")
        assert model.offset_drift_sigma == 0.1

    def test_from_spec_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="key=value"):
            DegradationModel.from_spec("made_up_knob=1.0")

    def test_from_spec_rejects_bare_words(self):
        with pytest.raises(ValueError, match="key=value"):
            DegradationModel.from_spec("offset_drift_sigma")

    def test_model_is_picklable(self):
        model = DegradationModel(offset_drift_sigma=0.1, stuck_tiles=("a",))
        assert pickle.loads(pickle.dumps(model)) == model


# ---------------------------------------------------------------------------
# DegradationSchedule
# ---------------------------------------------------------------------------


def _calibrated_fabric(seed=0, schedule=None):
    fabric = Fabric(num_chips=2, seed=seed, degradation=schedule)
    fabric.calibrate()
    return fabric


class TestDegradationSchedule:
    def test_same_seed_walks_are_identical(self):
        """Two schedules built from the same model replay the same drift
        on two separately constructed fabrics — the draws are keyed by
        (seed, purpose, step, component name), never by object or
        process identity."""
        model = DegradationModel(gain_drift_sigma=0.02, offset_drift_sigma=0.05, seed=3)
        first, second = DegradationSchedule(model), DegradationSchedule(model)
        for schedule in (first, second):
            fabric = _calibrated_fabric(schedule=schedule)
            fabric.degradation = schedule
            for _ in range(3):
                schedule.advance(fabric)
        assert first.step == second.step == 3
        assert first.gain_drift == second.gain_drift
        assert first.offset_drift == second.offset_drift

    def test_pickled_schedule_continues_the_same_walk(self):
        """A schedule round-tripped through pickle (the worker-process
        boundary) continues the walk exactly where the original would."""
        model = DegradationModel(offset_drift_sigma=0.05, seed=11)
        original = DegradationSchedule(model)
        fabric = _calibrated_fabric(schedule=original)
        original.advance(fabric)
        clone = pickle.loads(pickle.dumps(original))
        fabric_a = _calibrated_fabric(schedule=original)
        fabric_b = _calibrated_fabric(schedule=clone)
        original.advance(fabric_a)
        clone.advance(fabric_b)
        assert original.offset_drift == clone.offset_drift
        assert original.step == clone.step == 2

    def test_apply_is_idempotent(self):
        """Applying twice never compounds: component error = calibrated
        baseline + accumulated drift, not drift-on-drift."""
        model = DegradationModel(gain_drift_sigma=0.02, offset_drift_sigma=0.05, seed=1)
        schedule = DegradationSchedule(model)
        fabric = _calibrated_fabric(schedule=schedule)
        schedule.advance(fabric)
        component = fabric.chips[0].tiles[0].components()[0]
        once = (component.gain_error, component.offset)
        schedule.apply(fabric)
        schedule.apply(fabric)
        assert (component.gain_error, component.offset) == once

    def test_explicit_stuck_tiles_pin_the_datapath(self):
        model = DegradationModel(stuck_tiles=("chip0.tile1",))
        schedule = DegradationSchedule(model)
        fabric = _calibrated_fabric(schedule=schedule)
        schedule.advance(fabric)
        stuck = fabric.chips[0].tiles[1]
        assert stuck.stuck
        full_scale = fabric.noise.full_scale
        assert all(m.offset == full_scale for m in stuck.multipliers)
        # Its datapath offset is rail-sized; a healthy tile's is tiny.
        assert abs(stuck.datapath_offset()) > 0.5 * full_scale
        assert abs(fabric.chips[0].tiles[0].datapath_offset()) < 0.1 * full_scale

    def test_dead_dac_appears_as_full_scale_offset(self):
        model = DegradationModel(dead_dacs=("chip0.tile0.dac1",))
        schedule = DegradationSchedule(model)
        fabric = _calibrated_fabric(schedule=schedule)
        schedule.advance(fabric)
        tile = fabric.chips[0].tiles[0]
        assert tile.dacs[1].dead
        assert tile.datapath_offset() >= 0.9 * fabric.noise.full_scale

    def test_reset_renulls_drift_but_keeps_hardware_faults(self):
        model = DegradationModel(
            offset_drift_sigma=0.1,
            stuck_tiles=("chip0.tile2",),
            dead_dacs=("chip1.tile3.dac0",),
            seed=5,
        )
        schedule = DegradationSchedule(model)
        fabric = _calibrated_fabric(schedule=schedule)
        schedule.advance(fabric)
        assert schedule.offset_drift and schedule.drift_magnitude() > 0.0
        schedule.reset()
        assert schedule.offset_drift == {} and schedule.gain_drift == {}
        assert schedule.drift_magnitude() == 0.0
        assert schedule.resets == 1
        assert "chip0.tile2" in schedule.stuck_tiles
        assert "chip1.tile3.dac0" in schedule.dead_dacs

    def test_recalibrate_returns_components_to_baseline(self):
        """Fabric.recalibrate re-trims: every non-stuck component lands
        back on its calibrated baseline, drift gone."""
        model = DegradationModel(gain_drift_sigma=0.05, offset_drift_sigma=0.1, seed=2)
        schedule = DegradationSchedule(model)
        fabric = Fabric(num_chips=2, seed=0, degradation=schedule)
        fabric.calibrate()
        schedule.advance(fabric)
        drifted = fabric.chips[0].tiles[0].components()[0]
        assert drifted.gain_error != drifted.calibrated_gain_error
        fabric.recalibrate()
        for chip in fabric.chips:
            for tile in chip.tiles:
                for component in tile.components():
                    assert component.gain_error == component.calibrated_gain_error
                    assert component.offset == component.calibrated_offset

    def test_inactive_model_advances_without_state(self):
        schedule = DegradationSchedule(DegradationModel())
        fabric = _calibrated_fabric(schedule=schedule)
        schedule.advance(fabric)
        assert schedule.step == 1
        assert not schedule.gain_drift and not schedule.offset_drift
        assert not schedule.stuck_tiles and not schedule.dead_dacs

    def test_exec_start_ages_the_board(self):
        """The fabric lifecycle is the clock: each exec_start advances
        the attached schedule by exactly one step."""
        model = DegradationModel(offset_drift_sigma=0.01, seed=9)
        schedule = DegradationSchedule(model)
        fabric = Fabric(num_chips=1, seed=0, degradation=schedule)
        fabric.calibrate()
        for expected in (1, 2):
            fabric.cfg_commit()
            fabric.exec_start()
            fabric.exec_stop()
            assert schedule.step == expected


# ---------------------------------------------------------------------------
# SeedQualityGate
# ---------------------------------------------------------------------------


class TestSeedQualityGate:
    def test_better_than_guess_is_accepted(self):
        gate = SeedQualityGate()
        verdict = gate.assess(np.zeros(3), residual_norm=0.5, reference_norm=10.0)
        assert verdict.accepted and verdict.finite
        assert verdict.quality == pytest.approx(0.05)

    def test_worse_than_guess_is_rejected(self):
        gate = SeedQualityGate()
        verdict = gate.assess(np.zeros(3), residual_norm=20.0, reference_norm=10.0)
        assert not verdict.accepted
        assert verdict.quality == pytest.approx(2.0)

    def test_exactly_at_threshold_is_accepted(self):
        verdict = SeedQualityGate().assess(np.zeros(2), 10.0, 10.0)
        assert verdict.accepted and verdict.quality == pytest.approx(1.0)

    def test_nan_solution_clamps_to_nonfinite_quality(self):
        verdict = SeedQualityGate().assess(
            np.array([1.0, np.nan]), residual_norm=0.1, reference_norm=10.0
        )
        assert not verdict.accepted and not verdict.finite
        assert verdict.quality == NONFINITE_QUALITY
        assert np.isfinite(verdict.quality)

    def test_inf_residual_clamps_to_nonfinite_quality(self):
        verdict = SeedQualityGate().assess(
            np.zeros(2), residual_norm=float("inf"), reference_norm=10.0
        )
        assert not verdict.accepted and verdict.quality == NONFINITE_QUALITY

    def test_nonfinite_reference_clamps_too(self):
        verdict = SeedQualityGate().assess(
            np.zeros(2), residual_norm=0.1, reference_norm=float("nan")
        )
        assert not verdict.accepted and not verdict.finite

    def test_zero_reference_uses_floor_not_division_blowup(self):
        verdict = SeedQualityGate().assess(np.zeros(2), 1.0, 0.0)
        assert np.isfinite(verdict.quality)
        assert verdict.quality == pytest.approx(1.0 / 1e-12)  # the floor
        assert not verdict.accepted

    def test_disabled_gate_accepts_anything(self):
        gate = SeedQualityGate(enabled=False)
        verdict = gate.assess(np.array([np.inf]), float("nan"), 1.0)
        assert verdict.accepted and not verdict.finite

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            SeedQualityGate(max_relative_residual=0.0)
        with pytest.raises(ValueError):
            SeedQualityGate(reference_floor=-1.0)


class TestSolutionErrorGuards:
    def test_nan_seed_yields_finite_huge_error(self):
        error = solution_error(np.array([np.nan, 1.0]), np.zeros(2), scale=3.0)
        assert np.isfinite(error)
        assert error > 1e3

    def test_inf_seed_yields_finite_huge_error(self):
        error = solution_error(np.array([np.inf, -np.inf]), np.zeros(2))
        assert np.isfinite(error) and error > 1e3

    def test_finite_seeds_unaffected(self):
        assert solution_error(np.array([1.0, 1.0]), np.array([1.0, 1.0])) == 0.0


# ---------------------------------------------------------------------------
# TileHealth / HealthMonitor
# ---------------------------------------------------------------------------


class TestTileHealth:
    def test_first_observation_seeds_the_ewma(self):
        tile = TileHealth(name="t")
        tile.observe(residual=0.4, settle_time=3.0, saturated=False, alpha=0.5)
        assert tile.residual_ewma == 0.4 and tile.settle_ewma == 3.0

    def test_unsettled_observation_counts_saturation_only(self):
        tile = TileHealth(name="t")
        tile.observe(residual=99.0, settle_time=60.0, saturated=True, alpha=0.5, settled=False)
        assert tile.saturation_count == 1
        assert tile.observations == 0 and tile.residual_ewma == 0.0

    def test_nonfinite_residual_clamps(self):
        tile = TileHealth(name="t")
        tile.observe(residual=float("nan"), settle_time=1.0, saturated=False, alpha=0.5)
        assert tile.residual_ewma == NONFINITE_QUALITY


class TestHealthMonitor:
    def _observe(self, monitor, residuals, settled=True, saturated=None, settle=3.0):
        names = [f"chip0.tile{i}" for i in range(len(residuals))]
        if saturated is None:
            saturated = np.zeros(len(residuals), dtype=bool)
        return monitor.observe_solve(names, np.asarray(residuals), settle, saturated, settled=settled)

    def test_one_bad_solve_is_weather_two_is_climate(self):
        monitor = HealthMonitor(drift_tolerance=0.5, min_observations=2)
        assert self._observe(monitor, [2.0, 0.1]) == []
        assert self._observe(monitor, [2.0, 0.1]) == ["chip0.tile0"]
        assert monitor.flagged() == ("chip0.tile0",)
        assert "calibration tolerance" in monitor.tiles["chip0.tile0"].flag_reason

    def test_unsettled_solves_never_drift_flag(self):
        monitor = HealthMonitor(drift_tolerance=0.5, min_observations=2)
        for _ in range(5):
            assert self._observe(monitor, [50.0, 50.0], settled=False) == []
        assert monitor.flagged() == ()
        assert monitor.unsettled_solves == 5 and monitor.settled_solves == 0

    def test_saturation_limit_flags_even_unsettled(self):
        monitor = HealthMonitor(saturation_limit=3)
        saturated = np.array([True, False])
        self._observe(monitor, [0.1, 0.1], settled=False, saturated=saturated)
        self._observe(monitor, [0.1, 0.1], settled=False, saturated=saturated)
        newly = self._observe(monitor, [0.1, 0.1], settled=False, saturated=saturated)
        assert newly == ["chip0.tile0"]
        assert "saturated" in monitor.tiles["chip0.tile0"].flag_reason

    def test_settle_anomaly_recorded_not_flagged(self):
        monitor = HealthMonitor(settle_anomaly_factor=5.0)
        self._observe(monitor, [0.1], settle=2.0)
        self._observe(monitor, [0.1], settle=50.0)
        assert monitor.settle_anomalies == 1
        assert monitor.flagged() == ()

    def test_quarantine_pressure_schedules_recalibration(self):
        monitor = HealthMonitor(drift_tolerance=0.5, min_observations=1, recalibration_pressure=0.25)
        self._observe(monitor, [9.0, 0.1, 0.1, 0.1])
        newly = monitor.quarantine_flagged()
        assert newly == ["chip0.tile0"]
        assert monitor.tiles_quarantined == 1
        assert monitor.quarantine_pressure(8) == pytest.approx(0.125)
        assert not monitor.should_recalibrate(8)
        assert monitor.should_recalibrate(4)

    def test_quarantine_flagged_is_idempotent(self):
        monitor = HealthMonitor(drift_tolerance=0.5, min_observations=1)
        self._observe(monitor, [9.0])
        assert monitor.quarantine_flagged() == ["chip0.tile0"]
        assert monitor.quarantine_flagged() == []
        assert monitor.tiles_quarantined == 1

    def test_recalibration_resets_statistics_and_lifts_quarantine(self):
        monitor = HealthMonitor(drift_tolerance=0.5, min_observations=1)
        self._observe(monitor, [9.0, 0.1])
        monitor.quarantine_flagged()
        monitor.note_recalibration()
        assert monitor.recalibrations == 1
        assert monitor.tiles == {} and monitor.quarantined == ()
        assert monitor.solves_observed == 0 and monitor.settled_solves == 0
        # The monotone counters survive the reset — they reconcile
        # against trace spans, which are never un-emitted.
        assert monitor.tiles_quarantined == 1

    def test_counters_dict_names_match_runtime_reconciliation(self):
        monitor = HealthMonitor()
        assert set(monitor.counters()) == {
            "seeds_rejected",
            "tiles_quarantined",
            "recalibrations",
        }

    def test_render_report_mentions_everything(self):
        monitor = HealthMonitor(drift_tolerance=0.5, min_observations=1)
        self._observe(monitor, [9.0, 0.1])
        monitor.quarantine_flagged()
        report = monitor.render_report()
        assert "analog health report" in report
        assert "chip0.tile0" in report and "quarantined" in report
        assert "tiles_quarantined" in report

    def test_render_report_without_solves(self):
        assert "(no solves observed)" in HealthMonitor().render_report()

    def test_board_summary_on_idle_board_has_no_rates(self):
        # Zero settled attempts must yield None rates, never a
        # ZeroDivisionError — the health-report renderer shows "-".
        summary = HealthMonitor().board_summary()
        assert summary["solves_observed"] == 0
        assert summary["settle_rate"] is None
        assert summary["rejection_rate"] is None
        assert summary["mean_residual_ewma"] is None

    def test_board_summary_rates_after_observations(self):
        monitor = HealthMonitor(drift_tolerance=0.5, min_observations=1)
        self._observe(monitor, [0.1, 0.2])
        self._observe(monitor, [0.1, 0.2], settled=False)
        summary = monitor.board_summary()
        assert summary["solves_observed"] == 2
        assert summary["settled_solves"] == 1
        assert summary["settle_rate"] == pytest.approx(0.5)
        assert summary["rejection_rate"] == pytest.approx(0.0)
        assert summary["mean_residual_ewma"] is not None

    def test_validation(self):
        with pytest.raises(ValueError):
            HealthMonitor(drift_tolerance=0.0)
        with pytest.raises(ValueError):
            HealthMonitor(min_observations=0)
        with pytest.raises(ValueError):
            HealthMonitor(saturation_limit=0)
        with pytest.raises(ValueError):
            HealthMonitor(recalibration_pressure=1.5)
        with pytest.raises(ValueError):
            HealthMonitor(ewma_alpha=0.0)

    def test_inherits_tolerance_from_calibration_config(self):
        from repro.analog.calibration import CalibrationConfig

        config = CalibrationConfig(drift_tolerance=0.77)
        assert HealthMonitor(calibration=config).drift_tolerance == 0.77


# ---------------------------------------------------------------------------
# Safety properties (Hypothesis)
# ---------------------------------------------------------------------------


TILE_NAMES = [f"chip{c}.tile{t}" for c in range(2) for t in range(TILES_PER_CHIP)]


class TestQuarantineAllocationProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        quarantined=st.sets(st.sampled_from(TILE_NAMES), max_size=7),
        demand=st.integers(min_value=1, max_value=8),
    )
    def test_allocation_never_hands_out_a_quarantined_tile(self, quarantined, demand):
        """The core quarantine invariant: whatever subset of the board
        the monitor has pulled, allocation either serves the demand
        entirely from healthy tiles or refuses with the quarantine
        count in the error — it never silently allocates a pulled tile."""
        monitor = HealthMonitor(drift_tolerance=0.5, min_observations=1)
        for name in quarantined:
            health = monitor.tile(name)
            health.flagged = True
        monitor.quarantine_flagged()
        fabric = _calibrated_fabric()
        monitor.apply_quarantine(fabric)
        healthy = fabric.num_tiles - len(quarantined)
        if demand <= healthy:
            tiles = fabric.allocate_tiles(demand, owner="prop")
            assert len(tiles) == demand
            assert not {tile.name for tile in tiles} & quarantined
        else:
            with pytest.raises(FabricCapacityError) as excinfo:
                fabric.allocate_tiles(demand, owner="prop")
            if quarantined:
                assert "quarantined" in str(excinfo.value)

    @settings(max_examples=25, deadline=None)
    @given(quarantined=st.sets(st.sampled_from(TILE_NAMES), max_size=8))
    def test_apply_quarantine_marks_exactly_the_monitor_set(self, quarantined):
        monitor = HealthMonitor()
        for name in quarantined:
            monitor.tile(name).flagged = True
        monitor.quarantine_flagged()
        fabric = _calibrated_fabric()
        monitor.apply_quarantine(fabric)
        marked = {
            tile.name for chip in fabric.chips for tile in chip.tiles if tile.quarantined
        }
        assert marked == quarantined


class TestRecalibrationProperty:
    @settings(max_examples=20, deadline=None)
    @given(
        gain_sigma=st.floats(min_value=0.0, max_value=0.1),
        offset_sigma=st.floats(min_value=0.001, max_value=0.3),
        steps=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_reset_always_clears_drift_and_keeps_hardware(self, gain_sigma, offset_sigma, steps, seed):
        """Recalibration re-nulls every drift walk regardless of how the
        model is parameterised or how long it has run, and never loses
        a hardware fault."""
        model = DegradationModel(
            gain_drift_sigma=gain_sigma,
            offset_drift_sigma=offset_sigma,
            stuck_tiles=("chip0.tile0",),
            seed=seed,
        )
        schedule = DegradationSchedule(model)
        fabric = _calibrated_fabric(schedule=schedule)
        for _ in range(steps):
            schedule.advance(fabric)
        assert schedule.drift_magnitude() > 0.0
        stuck_before = set(schedule.stuck_tiles)
        dead_before = set(schedule.dead_dacs)
        schedule.reset()
        assert schedule.gain_drift == {} and schedule.offset_drift == {}
        assert schedule.stuck_tiles == stuck_before
        assert schedule.dead_dacs == dead_before
        # And a fresh apply leaves non-stuck components at baseline.
        schedule.apply(fabric)
        component = fabric.chips[1].tiles[0].components()[0]
        assert component.gain_error == component.calibrated_gain_error


# ---------------------------------------------------------------------------
# Engine wiring
# ---------------------------------------------------------------------------


class TestAcceleratorHealthWiring:
    def test_healthy_board_seed_passes_the_gate(self):
        system, guess = _burgers_system()
        accelerator = AnalogAccelerator(seed=0)
        result = accelerator.solve(system, initial_guess=guess)
        assert result.converged
        assert result.seed_accepted
        assert result.seed_quality is not None and result.seed_quality.finite
        assert result.seed_quality.quality < 1.0
        assert accelerator.health.seeds_rejected == 0
        assert accelerator.health.flagged() == ()

    def test_drifted_board_seed_is_rejected_and_span_says_so(self):
        """One large-offset drift step: the settled solution is worse
        than the naive guess, the gate refuses it, and the
        ``analog_health`` span carries the verdict."""
        system, guess = _burgers_system()
        model = DegradationModel(offset_drift_sigma=0.3, seed=4)
        accelerator = AnalogAccelerator(seed=0, degradation=model)
        tracer = Tracer()
        result = accelerator.solve(system, initial_guess=guess, time_limit=20.0, tracer=tracer)
        assert result.converged  # the flow settled — on a bad board
        assert not result.seed_accepted
        assert result.seed_quality.quality > result.seed_quality.threshold
        assert accelerator.health.seeds_rejected == 1
        spans = tracer.spans_named("analog_health")
        assert len(spans) == 1
        assert spans[0].attrs["seed_rejected"] is True
        assert spans[0].attrs["degradation_step"] == 1
        assert tracer.counters["seeds_rejected"] == 1

    def test_unsettled_solve_does_not_pollute_drift_statistics(self):
        """A run that exhausts its time budget must not teach the
        monitor anything about calibration drift."""
        system, guess = _burgers_system()
        accelerator = AnalogAccelerator(seed=0)
        result = accelerator.solve(system, initial_guess=guess, time_limit=1e-3)
        assert not result.converged
        assert accelerator.health.unsettled_solves == 1
        assert all(h.observations == 0 for h in accelerator.health.tiles.values())
        assert accelerator.health.flagged() == ()

    def test_quarantined_tiles_force_a_bigger_board(self):
        """With tiles quarantined, the auto-sized fabric grows until the
        problem fits on healthy tiles only — degradation shrinks the
        margin, not the solvable problem size."""
        system, guess = _burgers_system()
        accelerator = AnalogAccelerator(seed=0)
        for name in ("chip0.tile0", "chip0.tile1"):
            accelerator.health.tile(name).flagged = True
        accelerator.health.quarantine_flagged()
        fabric = accelerator._fabric_for(system.dimension)
        assert fabric.num_tiles == 12  # grew from 2 chips to 3
        free = {tile.name for tile in fabric.free_tiles()}
        assert len(free) >= system.dimension
        assert not free & set(accelerator.health.quarantined)
        result = accelerator.solve(system, initial_guess=guess)
        assert result.converged

    def test_seed_quality_fields_survive_homotopy_path(self):
        accelerator = AnalogAccelerator(seed=0)
        simple = SimpleSquareSystem(2)
        hard = CoupledQuadraticSystem(1.0, 1.0)
        tracer = Tracer()
        result = accelerator.solve_with_homotopy(
            simple, hard, np.array([1.0, 1.0]), tracer=tracer
        )
        assert result.converged
        assert result.seed_accepted
        assert tracer.spans_named("analog_health")
