"""Benchmark: Table 4 — area/power model for scaled-up accelerators.

Regenerates every row of the paper's table from the per-variable
area/power model and checks the paper's qualitative claims: a 16x16
solver is CPU-die-sized while drawing well under a watt, with power
density orders of magnitude below digital dies.
"""

import pytest

from repro.analog.area_power import AreaPowerModel
from repro.experiments.table4 import run_table4


def test_table4(benchmark):
    result = benchmark.pedantic(run_table4, rounds=1, iterations=1)
    print("\n" + result.render())

    # Every row within 1% of the paper.
    assert result.max_relative_deviation() < 0.01

    rows = {row["solver size"]: row for row in result.rows()}
    # 16x16 is "roughly the same size as CPU dies" (~350 mm^2)...
    assert 300.0 < rows["16 x 16"]["chip area (mm^2)"] < 400.0
    # ...while drawing under half a watt.
    assert rows["16 x 16"]["power use (mW)"] < 500.0


def test_power_density_about_400x_below_cpu(benchmark):
    # CPUs dissipate on the order of 50 W/cm^2; the paper claims the
    # analog design is ~400x lower.
    model = AreaPowerModel()
    density = benchmark.pedantic(
        model.power_density_w_per_cm2, args=(16,), rounds=1, iterations=1
    )
    cpu_density = 50.0
    assert 100.0 < cpu_density / density < 1500.0
