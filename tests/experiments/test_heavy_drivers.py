"""Small-scale smoke tests of the Figure 8/9 drivers.

The benches exercise these at paper scale; here they run on tiny grids
so the unit suite covers their plumbing (row structure, accounting,
paper-reference data) quickly.
"""

import numpy as np
import pytest

from repro.experiments.figure8 import PAPER_FIGURE8, run_figure8
from repro.experiments.figure9 import PAPER_FIGURE9, run_figure9


class TestFigure8Driver:
    def test_small_grid_rows(self):
        result = run_figure8(grid_n=4, reynolds_values=(0.25,), trials=2)
        row = result.row_at(0.25)
        assert row is not None
        assert row["baseline digital (s)"] > 0.0
        assert row["seeded digital (s)"] > 0.0
        assert row["analog seed (s)"] > 0.0
        assert row["speedup"] > 0.0

    def test_paper_reference_series(self):
        assert PAPER_FIGURE8[2.00] == (0.81, 0.05)
        assert len(PAPER_FIGURE8) == 9

    def test_missing_reynolds_returns_none(self):
        result = run_figure8(grid_n=4, reynolds_values=(0.25,), trials=1)
        assert result.row_at(99.0) is None


class TestFigure9Driver:
    def test_small_grid_pipeline(self):
        result = run_figure9(grid_sizes=(4,), trials=2, seed=0, block_size=2)
        row = result.row_at(4)
        assert row is not None
        # All three phases accounted.
        assert row["digital baseline (s)"] > 0.0
        assert row["analog seeding (s)"] > 0.0
        assert row["digital seeded (s)"] > 0.0
        # Energy fields consistent with times under one power model.
        assert row["baseline energy (J)"] > row["seeded energy (J)"] * 0.0
        assert row["energy savings"] > 0.0

    def test_paper_reference_data(self):
        assert PAPER_FIGURE9[16][0] == 0.51
        assert PAPER_FIGURE9[32][2] == 0.48

    def test_render_contains_rows(self):
        result = run_figure9(grid_sizes=(4,), trials=1, seed=0, block_size=2)
        if result.rows():
            assert "4x4" in result.render()
