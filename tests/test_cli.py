"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "table4" in out
    assert "figure9" in out


def test_table4_prints_rows(capsys):
    assert main(["table4"]) == 0
    out = capsys.readouterr().out
    assert "16 x 16" in out
    assert "352" in out


def test_table5_prints_matrix(capsys):
    assert main(["table5"]) == 0
    assert "this work" in capsys.readouterr().out


def test_figure2_small(capsys):
    assert main(["figure2", "--resolution", "24"]) == 0
    assert "contiguity" in capsys.readouterr().out


def test_figure6_small(capsys):
    assert main(["figure6", "--trials", "5"]) == 0
    out = capsys.readouterr().out
    assert "total RMS error" in out


def test_figure7_tiny(capsys):
    assert main(["figure7", "--grids", "2", "--reynolds", "1.0", "--trials", "1"]) == 0
    out = capsys.readouterr().out
    assert "2x2" in out
    # The linear-kernel accounting is surfaced with the figure.
    assert "digital linear kernel" in out
    assert "preconditioner builds" in out


def test_sweep_serial(capsys):
    assert main(["sweep", "--experiments", "table2,table4", "--workers", "1"]) == 0
    out = capsys.readouterr().out
    assert "sweep of 2 experiment(s)" in out
    assert "table2" in out and "table4" in out


def test_sweep_rejects_unknown_experiment():
    with pytest.raises(ValueError, match="unknown experiment"):
        main(["sweep", "--experiments", "figure99"])


def test_list_mentions_sweep(capsys):
    assert main(["list"]) == 0
    assert "sweep" in capsys.readouterr().out


def test_health_report_healthy_board(capsys):
    assert main(["health-report", "--solves", "2"]) == 0
    out = capsys.readouterr().out
    assert "degradation off" in out
    assert "analog health report" in out
    assert "seeds_rejected" in out


def test_health_report_rejects_bad_degradation_spec():
    with pytest.raises(SystemExit):
        main(["health-report", "--degradation", "not_a_knob=1.0"])


def test_health_report_fleet_renders_idle_boards(capsys):
    # More boards than solves: some boards never settle anything. Their
    # rate columns must render "-", not raise ZeroDivisionError.
    assert (
        main(
            [
                "health-report",
                "--solves",
                "2",
                "--boards",
                "4",
                "--settle-max-steps",
                "2000",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "fleet boards:" in out
    assert "fleet of 4 board(s)" in out
    idle_rows = [
        line
        for line in out.splitlines()
        if line.startswith(("2 ", "3 ")) and "| -" in line
    ]
    assert idle_rows, out


def test_list_mentions_health_report(capsys):
    assert main(["list"]) == 0
    assert "health-report" in capsys.readouterr().out


def test_serve_batch_with_degradation(capsys):
    assert (
        main(
            [
                "serve-batch",
                "--requests",
                "2",
                "--workers",
                "1",
                "--seed",
                "3",
                "--analog-time-limit",
                "1e-3",
                "--degradation",
                "offset_drift_sigma=0.05,seed=2",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "outcome" in out or "converged" in out


def test_requires_command(capsys):
    with pytest.raises(SystemExit):
        main([])


def test_rejects_unknown_command():
    with pytest.raises(SystemExit):
        main(["figure99"])
