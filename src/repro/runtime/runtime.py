"""Batched, fault-tolerant solve orchestration (the serving layer).

:class:`Runtime` turns the library's solvers into something that can
face traffic: requests enter a bounded work queue, fan out over a
process pool (sharing the degrade-to-serial posture of
:mod:`repro.experiments.parallel`), and every one of them ends in a
:class:`~repro.runtime.api.SolveOutcome` — converged, failed, or
timed out — no matter what the attempt did: returned garbage, ran
past its deadline, or took the whole worker process down with it.

Supervision model:

* **deadlines** — enforced cooperatively inside the worker (a
  :class:`~repro.runtime.api.Deadline` checked every Newton iteration)
  and, in pooled mode, by a parent-side watchdog with a grace margin:
  a truly wedged attempt is abandoned (its eventual result discarded)
  and accounted as a ``timeout``;
* **retries** — bounded per request
  (:class:`~repro.runtime.api.RetryPolicy`), exponential backoff with
  jitter drawn from a seeded stream keyed by (seed, request, attempt),
  so the schedule is identical at any worker count. Each retry runs
  with a fresh accelerator die (new analog mismatch pattern) — the
  hybrid-restart pattern of Burns et al. (arXiv:2410.06397);
* **worker crashes** — a broken pool charges every in-flight attempt
  one crashed attempt and degrades the rest of the window to
  in-process execution (a fresh fork after an abrupt process death is
  not a bet worth making); the crash is recorded in counters, outcome
  fault lists, and the trace manifest;
* **degradation** — inside each attempt the
  :class:`~repro.runtime.ladder.DegradationLadder` descends
  analog-seeded hybrid -> damped Newton -> homotopy before reporting
  structured failure.

Tracing: the parent records ``runtime_batch`` > ``solve_attempt`` >
``retry`` spans and absorbs each worker's span stream (ladder rungs,
Newton iterations, analog settles) under the corresponding
``solve_attempt`` via :meth:`repro.trace.Tracer.absorb`, so one trace
file tells the whole batch's story. Worker span timestamps are
re-based onto the parent's ``perf_counter`` clock at absorb time —
each process has its own clock origin, so raw worker timestamps would
not be comparable to parent spans (durations are unaffected); counters
(``runtime_retries``, ``runtime_timeouts``, ``runtime_faults``,
``worker_crashes``, ``requests_*``) reconcile exactly with the
returned outcomes.
"""

from __future__ import annotations

import concurrent.futures
import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analog.engine import AnalogAccelerator
from repro.analog.health import DegradationModel, DegradationSchedule
from repro.certify.certificate import CertifyPolicy, certify_solution
from repro.checkpoint.signals import GracefulShutdown, RunInterrupted
from repro.fleet.board import BoardAssignment
from repro.fleet.scheduler import AnalogFleet, FleetConfig
from repro.reporting import ascii_table
from repro.runtime.api import (
    Deadline,
    DeadlineExceeded,
    PoolBroken,
    QueueFull,
    RetryPolicy,
    SolveOutcome,
    SolveRequest,
    stable_seed,
)
from repro.runtime.faults import FaultInjector, InjectedWorkerCrash
from repro.runtime.ladder import DEFAULT_RUNGS, DegradationLadder
from repro.trace.tracer import Tracer, TracerLike, as_tracer

__all__ = ["AttemptReport", "BatchResult", "Runtime"]

# Parent-side watchdog fires this far past the cooperative deadline:
# the in-worker check should always win unless the attempt is wedged.
_DEADLINE_GRACE_FACTOR = 1.5
_DEADLINE_GRACE_FLOOR = 0.5


@dataclass
class AttemptReport:
    """What one attempt (one worker execution) reported back.

    ``status`` here may additionally be ``"crashed"`` — synthesized by
    the parent when the worker died — which the terminal
    :class:`~repro.runtime.api.SolveOutcome` maps to ``"failed"`` if
    no retry remains.
    """

    request_id: str
    attempt: int
    status: str
    rung: Optional[str] = None
    residual_norm: float = float("inf")
    iterations: int = 0
    solution: Optional[Any] = None
    error: Optional[str] = None
    rungs_tried: Tuple[str, ...] = ()
    faults: Tuple[str, ...] = ()
    spans: List[dict] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    elapsed: float = 0.0
    health: Optional[Dict[str, Any]] = None
    certificate: Optional[Any] = None
    """Attached parent-side by :meth:`Runtime._process_report` when the
    attempt's converged answer passed certification; never crosses the
    process boundary."""


def _execute_attempt(
    request: SolveRequest,
    attempt: int,
    runtime_seed: int,
    faults: Optional[FaultInjector],
    traced: bool,
    allow_process_exit: bool,
    ladder_kwargs: Optional[Dict[str, Any]] = None,
    degradation: Optional[DegradationModel] = None,
    board: Optional[BoardAssignment] = None,
) -> AttemptReport:
    """Run one solve attempt; top-level so the pool can pickle it.

    Builds the problem, the per-attempt accelerator (die seeded from
    (runtime seed, request, attempt) — every retry gets fresh silicon),
    and the degradation ladder, then descends it under the cooperative
    deadline. Injected worker crashes escape (that is their job);
    everything else becomes a structured report.

    ``degradation`` is the runtime-level aging model applied to each
    attempt's board (its schedule seeded per attempt so any worker
    reproduces it bitwise); a ``degrade_analog`` fault for this attempt
    takes precedence.

    ``board`` is the fleet's routing decision for this attempt. It
    supersedes the single-board streams: the die and drift-walk seeds
    come from the assigned board (board 0 of a one-board fleet gives
    exactly the single-board streams, the bitwise-equality anchor),
    its per-board degradation model replaces ``degradation``, and a
    vetoed or fleet-exhausted assignment strips the hybrid rung — the
    attempt degrades straight to the digital rungs without paying for
    a settle.
    """
    t0 = time.perf_counter()
    fault_log: List[str] = []
    if faults is not None:
        faults.maybe_crash_worker(request.request_id, attempt, allow_process_exit)
    worker_tracer: Optional[Tracer] = Tracer() if traced else None
    status = "failed"
    rung: Optional[str] = None
    norm = float("inf")
    iterations = 0
    solution = None
    error: Optional[str] = None
    rungs_tried: Tuple[str, ...] = ()
    health: Optional[Dict[str, Any]] = None
    try:
        system, guess = request.problem.build()
        schedule = (
            faults.degradation_schedule(request.request_id, attempt, fault_log)
            if faults is not None
            else None
        )
        if schedule is None:
            if board is not None:
                if board.degradation is not None and not board.fleet_exhausted:
                    schedule = DegradationSchedule(
                        board.degradation, seed=board.degradation_seed
                    )
            elif degradation is not None:
                schedule = DegradationSchedule(
                    degradation,
                    seed=stable_seed(
                        runtime_seed, request.request_id, attempt, "degradation"
                    ),
                )
        die_seed = (
            board.die_seed
            if board is not None
            else stable_seed(runtime_seed, request.request_id, attempt, "die") % (2**31)
        )
        accelerator = AnalogAccelerator(
            seed=die_seed,
            fault_hook=(
                faults.analog_hook(request.request_id, attempt, fault_log)
                if faults is not None
                else None
            ),
            degradation=schedule,
        )
        ladder = DegradationLadder(accelerator=accelerator, **(ladder_kwargs or {}))
        deadline = (
            Deadline(request.deadline_seconds)
            if request.deadline_seconds is not None
            else None
        )
        hook = (
            faults.iteration_hook(request.request_id, attempt, fault_log)
            if faults is not None
            else None
        )
        rungs = request.rungs
        if board is not None and board.skip_analog:
            # Predictive veto or fleet exhaustion: the settle is not
            # paid for; the ladder starts at the digital rungs.
            base = (
                rungs
                if rungs is not None
                else ((ladder_kwargs or {}).get("rungs") or DEFAULT_RUNGS)
            )
            rungs = tuple(r for r in base if r != "hybrid") or ("damped_newton",)
        result = ladder.solve(
            system,
            initial_guess=guess,
            value_bound=request.value_bound,
            analog_time_limit=request.analog_time_limit,
            deadline=deadline,
            tracer=worker_tracer,
            iteration_hook=hook,
            rungs=rungs,
        )
        rungs_tried = result.rungs_tried
        norm = float(result.residual_norm)
        solution = result.u
        if result.converged and solution is not None and faults is not None:
            # The silent-corruption seam: fires AFTER the ladder has
            # accepted the answer, and deliberately leaves the reported
            # residual_norm at its converged value — the solver's own
            # bookkeeping cannot see this fault, only the independent
            # certificate can.
            corrupt = faults.corruption_hook(request.request_id, attempt, fault_log)
            if corrupt is not None:
                solution = corrupt(solution)
        if schedule is not None:
            health = schedule.state_dict()
        if result.converged:
            status, rung = "converged", result.rung
            iterations = sum(a.iterations for a in result.attempts)
        elif result.timed_out:
            status, error = "timeout", "deadline exceeded"
        else:
            failures = "; ".join(
                f"{a.rung}: {a.error or 'did not converge'}" for a in result.attempts
            )
            status, error = "failed", f"ladder exhausted ({failures})"
    except InjectedWorkerCrash:
        raise
    except DeadlineExceeded:
        status, error = "timeout", "deadline exceeded"
    except Exception as exc:  # total: the runtime's contract is no escapes
        status, error = "failed", f"{type(exc).__name__}: {exc}"
    return AttemptReport(
        request_id=request.request_id,
        attempt=attempt,
        status=status,
        rung=rung,
        residual_norm=norm,
        iterations=iterations,
        solution=solution,
        error=error,
        rungs_tried=rungs_tried,
        faults=tuple(fault_log),
        spans=[record.to_record() for record in worker_tracer.spans] if worker_tracer else [],
        counters=dict(worker_tracer.counters) if worker_tracer else {},
        gauges=dict(worker_tracer.gauges) if worker_tracer else {},
        elapsed=time.perf_counter() - t0,
        health=health,
    )


class _RequestState:
    """Parent-side bookkeeping for one request across its attempts.

    ``batch_counters`` / ``trace_counters`` / ``trace_gauges`` attribute
    every counter bump and absorbed worker metric to the request that
    caused it — the write-ahead journal commits them with the outcome,
    so a resumed batch replays each completed request's exact
    contribution and its totals stay bitwise-identical to an
    uninterrupted run's.
    """

    __slots__ = (
        "request",
        "attempts_started",
        "history",
        "faults",
        "last_report",
        "batch_counters",
        "trace_counters",
        "trace_gauges",
        "assignments",
        "pending_fleet_events",
        "escalations",
    )

    def __init__(self, request: SolveRequest):
        self.request = request
        self.attempts_started = 0
        self.history: List[str] = []
        self.faults: List[str] = []
        self.last_report: Optional[AttemptReport] = None
        self.batch_counters: Dict[str, float] = {}
        self.trace_counters: Dict[str, float] = {}
        self.trace_gauges: Dict[str, float] = {}
        self.assignments: Dict[int, BoardAssignment] = {}
        self.pending_fleet_events: Dict[str, float] = {}
        self.escalations = 0


@dataclass
class BatchResult:
    """All outcomes of one batch plus how it was executed.

    ``replayed`` counts outcomes restored from a write-ahead journal
    rather than re-solved; ``interrupted`` marks a batch cut short by
    SIGTERM/Ctrl-C — its ``outcomes`` then hold only the requests that
    reached a terminal state before the shutdown point.
    """

    outcomes: List[SolveOutcome]
    mode: str  # "parallel" or "serial"
    workers: int
    elapsed_seconds: float
    counters: Dict[str, float] = field(default_factory=dict)
    replayed: int = 0
    interrupted: bool = False
    total_requests: Optional[int] = None

    def outcome_for(self, request_id: str) -> Optional[SolveOutcome]:
        for outcome in self.outcomes:
            if outcome.request_id == request_id:
                return outcome
        return None

    @property
    def completed(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.ok)

    @property
    def failed(self) -> int:
        return sum(1 for outcome in self.outcomes if not outcome.ok)

    def summary_rows(self) -> List[dict]:
        return [
            {
                "request": outcome.request_id,
                "status": outcome.status,
                "rung": outcome.rung or "-",
                "attempts": outcome.attempts,
                "retries": outcome.retries,
                "residual": outcome.residual_norm,
                "faults": ",".join(outcome.faults) or "-",
            }
            for outcome in self.outcomes
        ]

    def render(self) -> str:
        headline = (
            f"batch of {len(self.outcomes)} request(s), {self.mode} execution "
            f"({self.workers} worker(s)), {self.completed} converged / "
            f"{self.failed} not, {self.elapsed_seconds:.2f}s"
        )
        if self.replayed:
            headline += f" [{self.replayed} replayed from journal]"
        if self.interrupted:
            total = self.total_requests if self.total_requests is not None else "?"
            headline += f" [INTERRUPTED: {len(self.outcomes)}/{total} requests terminal]"
        parts = [
            headline,
            ascii_table(self.summary_rows()),
        ]
        if self.counters:
            counter_rows = [
                {"counter": name, "value": self.counters[name]}
                for name in sorted(self.counters)
            ]
            parts.append(ascii_table(counter_rows))
        return "\n\n".join(parts)


class Runtime:
    """The fault-tolerant batch solve runtime.

    Parameters
    ----------
    workers:
        Process-pool width; 1 runs in-process (still fully supervised,
        but worker-crash faults are simulated by exception and true
        hangs can only be caught cooperatively).
    queue_limit:
        Bound on the admission queue. :meth:`submit` raises
        :class:`~repro.runtime.api.QueueFull` beyond it;
        :meth:`run_batch` admits oversized batches window by window.
    retry:
        Bounded-retry/backoff policy (default: 3 attempts).
    seed:
        Root of every derived stream: backoff jitter, fault draws,
        per-attempt accelerator dies.
    faults:
        Optional :class:`~repro.runtime.faults.FaultInjector` (chaos
        testing seam).
    ladder_kwargs:
        Forwarded to each attempt's
        :class:`~repro.runtime.ladder.DegradationLadder` (options,
        schedule, rung order). Must be picklable.
    degradation:
        Optional :class:`~repro.analog.health.DegradationModel` aging
        every attempt's analog board (schedules are seeded per
        ``(seed, request, attempt)`` so worker count never changes the
        drift). A ``degrade_analog`` fault takes precedence for the
        attempts it fires on.
    fleet:
        Optional fleet of analog boards: a
        :class:`~repro.fleet.scheduler.FleetConfig` (the runtime builds
        and owns the fleet, boards inheriting ``degradation`` unless
        the config overrides per board) or an already-built
        :class:`~repro.fleet.scheduler.AnalogFleet` (the service's
        shared-fleet mode: every shard draws boards from one fleet).
        Each attempt is routed to the healthiest eligible board
        (``fleet_route``/``predictive_gate`` spans); a predictive veto
        or an exhausted fleet skips the hybrid rung entirely. A
        one-board fleet with default thresholds reproduces the
        single-board path bitwise.
    journal:
        Optional write-ahead journal (duck-typed;
        :class:`repro.checkpoint.BatchJournal`). When set, the runtime
        appends ``batch_started`` / ``request_accepted`` /
        ``attempt_started`` / ``outcome_committed`` records around the
        work it does, so a killed batch resumes via
        :func:`repro.checkpoint.read_journal` without re-solving
        completed requests.
    crash_after_outcomes:
        Chaos seam: ``os._exit(9)`` immediately after this many
        outcomes have been journal-committed, simulating a SIGKILL at
        a deterministic point (kill-and-resume tests only).
    on_pool_break:
        What a broken process pool means. ``"degrade"`` (default, the
        single-host posture): charge in-flight attempts one crash each
        and finish the window in-process. ``"fail"`` (the service-shard
        posture): journal ``batch_interrupted`` and raise
        :class:`~repro.runtime.api.PoolBroken` so a supervisor can fail
        the shard over instead of letting it limp along serially.
    certify:
        A-posteriori result verification. ``True`` or a
        :class:`~repro.certify.CertifyPolicy`: every converged attempt
        is re-checked through the independent certificate before the
        outcome commits. A passing certificate rides on the outcome
        (and into the journal); a failing one voids the answer,
        condemns the producing board into fleet quarantine, and
        triggers one escalation re-solve through the ladder's
        damped-Newton rung on freshly-routed silicon. Certification
        consumes no random streams — with no failures a certified run's
        solutions are bitwise identical to an uncertified run's.
    """

    def __init__(
        self,
        workers: int = 1,
        queue_limit: int = 256,
        retry: Optional[RetryPolicy] = None,
        seed: int = 0,
        faults: Optional[FaultInjector] = None,
        ladder_kwargs: Optional[Dict[str, Any]] = None,
        poll_interval: float = 0.02,
        degradation: Optional[DegradationModel] = None,
        journal: Optional[Any] = None,
        crash_after_outcomes: Optional[int] = None,
        on_pool_break: str = "degrade",
        fleet: Optional[Any] = None,
        certify: Optional[Any] = None,
    ):
        if queue_limit < 1:
            raise ValueError("queue_limit must be at least 1")
        if on_pool_break not in ("degrade", "fail"):
            raise ValueError('on_pool_break must be "degrade" or "fail"')
        self.workers = max(1, int(workers))
        self.queue_limit = int(queue_limit)
        self.retry = retry or RetryPolicy()
        self.seed = int(seed)
        self.faults = faults
        self.ladder_kwargs = ladder_kwargs
        self.poll_interval = float(poll_interval)
        self.degradation = degradation
        self.journal = journal
        self.crash_after_outcomes = crash_after_outcomes
        self.on_pool_break = on_pool_break
        self.certify: Optional[CertifyPolicy] = CertifyPolicy.coerce(certify)
        if fleet is None:
            self.fleet: Optional[AnalogFleet] = None
            self.fleet_config: Optional[FleetConfig] = None
        elif isinstance(fleet, AnalogFleet):
            self.fleet = fleet
            self.fleet_config = fleet.config
        else:
            self.fleet_config = fleet
            self.fleet = AnalogFleet(fleet, degradation=degradation, seed=self.seed)
        self._outcomes_committed = 0
        self._queue: deque = deque()

    # -- admission ------------------------------------------------------

    def submit(self, request: SolveRequest) -> None:
        """Admit one request; raises :class:`QueueFull` at the bound."""
        if len(self._queue) >= self.queue_limit:
            raise QueueFull(
                f"work queue at its bound ({self.queue_limit}); drain before submitting"
            )
        if any(queued.request_id == request.request_id for queued in self._queue):
            raise ValueError(f"duplicate request_id {request.request_id!r} in queue")
        self._queue.append(request)

    def run_batch(
        self,
        requests: Optional[Sequence[SolveRequest]] = None,
        tracer: Optional[TracerLike] = None,
        resume: Optional[Any] = None,
        shutdown: Optional[GracefulShutdown] = None,
    ) -> BatchResult:
        """Run requests (given, plus any previously submitted) to completion.

        Every request yields exactly one
        :class:`~repro.runtime.api.SolveOutcome`, in submission order.
        Oversized batches are admitted in queue-bound-sized windows.

        ``resume`` is a :class:`repro.checkpoint.JournalReplay` from a
        prior run's journal: requests with a committed outcome are
        *replayed* (outcome, counter deltas and health state restored
        from the journal, no re-solve); the rest run normally — and
        because every random stream is keyed by
        ``stable_seed(seed, request, attempt, ...)``, the combined
        result is bitwise-identical to the uninterrupted batch.

        ``shutdown`` is a :class:`repro.checkpoint.GracefulShutdown`
        latch polled between attempts; when it trips, the batch stops
        at the next safe point, journals ``batch_interrupted``, and
        returns a partial result with ``interrupted=True`` (Ctrl-C
        lands on the same path).
        """
        tracer = as_tracer(tracer)
        all_requests = list(self._queue) + list(requests or [])
        self._queue.clear()
        ids = [request.request_id for request in all_requests]
        if len(set(ids)) != len(ids):
            raise ValueError("request_ids within a batch must be unique")
        counts: Dict[str, float] = {}

        def bump(name: str, value: float = 1, tracer_too: bool = True) -> None:
            counts[name] = counts.get(name, 0) + value
            if tracer_too:
                tracer.counter(name, value)

        t0 = time.perf_counter()
        mode = "serial"
        outcomes: Dict[str, SolveOutcome] = {}
        replayed = 0
        interrupted = False
        interrupt_reason: Optional[str] = None

        # Write-ahead: accept everything into the journal before acting.
        if self.journal is not None:
            if resume is None:
                self.journal.batch_started(
                    self, f"seed{self.seed}-n{len(all_requests)}", len(all_requests)
                )
                accepted_ids: set = set()
            else:
                accepted_ids = {request.request_id for request in resume.requests}
            for request in all_requests:
                if request.request_id not in accepted_ids:
                    self.journal.request_accepted(request)

        # Replay committed outcomes from the journal: no re-solve, and
        # their counter deltas restore both BatchResult.counters and the
        # tracer's totals to what the uninterrupted run would report.
        if resume is not None:
            for request in all_requests:
                entry = resume.replayed_outcome(request.request_id)
                if entry is None:
                    continue
                outcome, batch_counters, trace_counters, trace_gauges = entry
                if self.certify is not None:
                    # Replay does not trust the journal: every committed
                    # certificate is re-verified against its solution
                    # before the outcome is accepted back. No counters
                    # are bumped here — a resumed run's totals must stay
                    # bitwise-equal to an uninterrupted run's.
                    self._verify_replayed(request, outcome)
                outcomes[request.request_id] = outcome
                for name, value in batch_counters.items():
                    counts[name] = counts.get(name, 0) + value
                tracer.absorb([], counters=trace_counters, gauges=trace_gauges)
                replayed += 1
            if self.journal is not None:
                self.journal.batch_resumed(replayed, len(all_requests) - replayed)

        with tracer.span(
            "runtime_batch",
            requests=len(all_requests),
            workers=self.workers,
            queue_limit=self.queue_limit,
        ) as batch_span:
            remaining = [
                request
                for request in all_requests
                if request.request_id not in outcomes
            ]
            try:
                while remaining:
                    window = remaining[: self.queue_limit]
                    remaining = remaining[self.queue_limit :]
                    if self.workers > 1:
                        window_mode = self._run_pooled_window(
                            window, tracer, bump, outcomes, shutdown
                        )
                    else:
                        self._run_serial_window(
                            window, tracer, bump, outcomes, shutdown
                        )
                        window_mode = "serial"
                    if window_mode == "parallel":
                        mode = "parallel"
            except (KeyboardInterrupt, RunInterrupted) as exc:
                interrupted = True
                interrupt_reason = str(exc) or type(exc).__name__
            except PoolBroken as exc:
                # The "fail" posture: record the interruption durably so
                # the journal tells the fail-over story, then let the
                # supervisor (repro.service) see the crash.
                if self.journal is not None:
                    self.journal.batch_interrupted(f"pool broken: {exc}")
                raise
            batch_span.update(
                completed=sum(1 for o in outcomes.values() if o.ok),
                failed=sum(1 for o in outcomes.values() if not o.ok),
                mode=mode,
            )
            if interrupted:
                batch_span.update(interrupted=True)
            if replayed:
                batch_span.update(replayed=replayed)
        elapsed = time.perf_counter() - t0
        ordered = [outcomes[request_id] for request_id in ids if request_id in outcomes]
        if self.journal is not None:
            if interrupted:
                self.journal.batch_interrupted(interrupt_reason or "interrupted")
            else:
                self.journal.batch_completed(
                    sum(1 for o in ordered if o.ok),
                    sum(1 for o in ordered if not o.ok),
                )
        # The failure story survives into the trace manifest: fault and
        # crash totals are what a post-mortem reads first.
        if isinstance(tracer, Tracer):
            manifest_entry = {
                "mode": mode,
                "workers": self.workers,
                "requests": len(ordered),
                "status": "interrupted" if interrupted else "completed",
                **{name: counts[name] for name in sorted(counts)},
            }
            if replayed:
                manifest_entry["replayed"] = replayed
            tracer.manifest.setdefault("runtime", {}).update(manifest_entry)
        return BatchResult(
            outcomes=ordered,
            mode=mode,
            workers=self.workers if mode == "parallel" else 1,
            elapsed_seconds=elapsed,
            counters=counts,
            replayed=replayed,
            interrupted=interrupted,
            total_requests=len(all_requests),
        )

    # -- fleet routing --------------------------------------------------

    def _route_attempt(
        self, state: _RequestState, attempt: int, tracer: TracerLike
    ) -> Optional[BoardAssignment]:
        """Ask the fleet for a board before dispatching one attempt.

        Emits the ``fleet_route`` > ``predictive_gate`` spans and
        stashes the decision's counter events on the request state;
        they are recorded (and journal-attributed) when the attempt's
        report is processed.
        """
        if self.fleet is None:
            return None
        request = state.request
        assignment, events = self.fleet.route(request, attempt)
        for name, value in events.items():
            state.pending_fleet_events[name] = (
                state.pending_fleet_events.get(name, 0) + value
            )
        state.assignments[attempt] = assignment
        with tracer.span(
            "fleet_route",
            request=request.request_id,
            attempt=attempt,
            board=assignment.board_id,
            exhausted=assignment.fleet_exhausted,
            penalty=assignment.health_penalty,
            eligible=len(self.fleet.eligible_boards()),
        ):
            if not assignment.fleet_exhausted:
                with tracer.span(
                    "predictive_gate",
                    request=request.request_id,
                    board=assignment.board_id,
                    decision=assignment.gate_decision,
                    predicted=assignment.predicted_quality,
                    conditioning=assignment.conditioning,
                    threshold=self.fleet.gate.threshold,
                ):
                    pass
        return assignment

    # -- attempt bookkeeping -------------------------------------------

    def _process_report(
        self,
        state: _RequestState,
        report: AttemptReport,
        tracer: TracerLike,
        bump,
    ) -> Tuple[Optional[SolveOutcome], float]:
        """Record one attempt; returns (terminal outcome | None, retry delay).

        Every bump is mirrored into the request's own counter deltas
        (``state.batch_counters`` / ``state.trace_counters``) so the
        journal can commit, per outcome, exactly what this request
        contributed to the batch totals — the replay path re-applies
        those deltas instead of re-solving.
        """
        def record(name: str, value: float = 1, tracer_too: bool = True) -> None:
            bump(name, value, tracer_too)
            state.batch_counters[name] = state.batch_counters.get(name, 0) + value
            if tracer_too:
                state.trace_counters[name] = state.trace_counters.get(name, 0) + value

        if self.fleet is not None:
            assignment = state.assignments.get(report.attempt)
            if assignment is not None:
                # Board fail-over: an answer off a board killed while
                # the attempt was in flight is voided — the retry
                # re-routes, exactly like a killed shard's window.
                reason = self.fleet.invalidate_if_killed(assignment, report)
                if reason is not None:
                    report.status = "failed"
                    report.rung = None
                    report.solution = None
                    report.residual_norm = float("inf")
                    report.error = reason
                    state.faults.append("board_killed")
                    record("board_failovers")
                for name, value in self.fleet.observe(assignment, report).items():
                    record(name, value)
            if state.pending_fleet_events:
                for name, value in state.pending_fleet_events.items():
                    record(name, value)
                state.pending_fleet_events = {}
        escalate = self._certify_report(state, report, tracer, record)
        state.history.append(report.status)
        state.faults.extend(report.faults)
        state.last_report = report

        record("runtime_attempts")
        if report.status == "timeout":
            record("runtime_timeouts")
        if report.status == "crashed":
            record("worker_crashes")
            state.faults.append("worker_crash")
        if report.faults:
            record("runtime_faults", len(report.faults))
        # Health-layer counters emitted inside the worker reconcile into
        # the manifest/BatchResult totals; absorb() below already merges
        # them into the tracer's counters, so skip the double count.
        for name in ("seeds_rejected", "tiles_quarantined", "recalibrations"):
            value = report.counters.get(name, 0)
            if value:
                record(name, value, tracer_too=False)
        will_retry = (
            report.status != "converged"
            and not escalate
            and state.attempts_started < self.retry.max_attempts
        )
        delay = 0.0
        with tracer.span(
            "solve_attempt",
            request=state.request.request_id,
            attempt=report.attempt,
            status=report.status,
            rung=report.rung,
            elapsed=report.elapsed,
        ) as attempt_span:
            if report.spans or report.counters:
                tracer.absorb(report.spans, report.counters, report.gauges)
                for name, value in report.counters.items():
                    state.trace_counters[name] = state.trace_counters.get(name, 0) + value
                for name, value in report.gauges.items():
                    state.trace_gauges[name] = float(value)
            if will_retry:
                delay = self.retry.delay_for(
                    self.seed, state.request.request_id, state.attempts_started
                )
                record("runtime_retries")
                with tracer.span(
                    "retry",
                    request=state.request.request_id,
                    next_attempt=state.attempts_started,
                    delay=delay,
                ):
                    pass
                attempt_span.update(retry_scheduled=True)
        if will_retry:
            return None, delay
        if escalate:
            state.escalations += 1
            record("resolves_triggered")
            return self._escalate(state, tracer, bump)
        return self._commit(state, report, record), 0.0

    def _certify_report(
        self, state: _RequestState, report: AttemptReport, tracer: TracerLike, record
    ) -> bool:
        """Certify a converged attempt's answer; returns True to escalate.

        A passing certificate is attached to the report (and rides the
        outcome into the journal). A failing one voids the answer
        exactly like a killed board's, condemns the producing board
        into fleet quarantine (certified-bad silicon is quarantined
        even when its rejection/drift EWMAs look healthy), and —
        once per request — requests the escalation re-solve.
        """
        if (
            self.certify is None
            or report.status != "converged"
            or report.solution is None
        ):
            return False
        with tracer.span(
            "certify",
            request=state.request.request_id,
            attempt=report.attempt,
        ) as certify_span:
            certificate = certify_solution(
                state.request.problem,
                report.solution,
                value_bound=state.request.value_bound,
                policy=self.certify,
            )
            certify_span.update(
                verdict=certificate.verdict,
                relative_residual=certificate.relative_residual,
            )
        record("certificates_checked")
        if certificate.passed:
            record("certificates_passed")
            report.certificate = certificate
            return False
        record("certificates_failed")
        if "silent_corruption" in report.faults:
            record("corruption_caught")
        failed = ",".join(check.name for check in certificate.failed_checks())
        if self.fleet is not None:
            assignment = state.assignments.get(report.attempt)
            if (
                assignment is not None
                and assignment.board_id >= 0
                and report.rung == "hybrid"
            ):
                # Board-level blame: only a hybrid answer implicates the
                # silicon that settled it; digital answers do not.
                for name, value in self.fleet.condemn(
                    assignment.board_id, f"certificate failed ({failed})"
                ).items():
                    record(name, value)
        report.status = "failed"
        report.rung = None
        report.solution = None
        report.certificate = None
        report.residual_norm = float("inf")
        report.error = f"certificate failed ({failed})"
        state.faults.append("certificate_failed")
        return state.escalations == 0

    def _escalate(
        self, state: _RequestState, tracer: TracerLike, bump
    ) -> Tuple[Optional[SolveOutcome], float]:
        """Independent re-solve after a failed certificate.

        Runs the request through the ladder's damped-Newton rung only —
        a fully digital path that shares nothing with the implicated
        settle — on freshly-routed silicon (the condemned board is
        already quarantined, so a fleet assigns different hardware).
        The result feeds back through :meth:`_process_report`, which
        cross-checks it against the certificate again; a second failure
        falls through to the normal retry/fail path (escalation fires
        once per request).
        """
        from dataclasses import replace

        attempt = state.attempts_started
        state.attempts_started += 1
        self._journal_attempt(state.request.request_id, attempt)
        assignment = self._route_attempt(state, attempt, tracer)
        escalated_request = replace(state.request, rungs=("damped_newton",))
        try:
            report = _execute_attempt(
                escalated_request,
                attempt,
                self.seed,
                self.faults,
                getattr(tracer, "active", False),
                allow_process_exit=False,
                ladder_kwargs=self.ladder_kwargs,
                degradation=self.degradation,
                board=assignment,
            )
        except InjectedWorkerCrash:
            report = AttemptReport(
                request_id=state.request.request_id, attempt=attempt, status="crashed"
            )
        return self._process_report(state, report, tracer, bump)

    def _commit(self, state: _RequestState, report: AttemptReport, record) -> SolveOutcome:
        """Finalize the outcome and (when journaling) commit it durably."""
        status = report.status
        error = report.error
        if status == "crashed":
            status, error = "failed", "worker crashed"
        outcome = SolveOutcome(
            request_id=state.request.request_id,
            status=status,
            rung=report.rung,
            residual_norm=report.residual_norm,
            attempts=state.attempts_started,
            retries=state.attempts_started - 1,
            rungs_tried=report.rungs_tried,
            faults=tuple(state.faults),
            error=error,
            solution=report.solution,
            elapsed_seconds=report.elapsed,
            iterations=report.iterations,
            attempt_history=list(state.history),
            health=report.health,
            certificate=report.certificate,
        )
        if outcome.ok:
            record("requests_completed")
        else:
            record("requests_failed")
            if outcome.status == "timeout":
                record("requests_timed_out")
        if self.journal is not None:
            self.journal.outcome_committed(
                outcome, state.batch_counters, state.trace_counters, state.trace_gauges
            )
        self._outcomes_committed += 1
        if (
            self.crash_after_outcomes is not None
            and self._outcomes_committed >= self.crash_after_outcomes
        ):
            os._exit(9)  # chaos seam: SIGKILL right after a commit
        return outcome

    # -- durability hooks ----------------------------------------------

    def _journal_attempt(self, request_id: str, attempt: int) -> None:
        """Write-ahead: record the attempt before any work happens."""
        if self.journal is not None:
            self.journal.attempt_started(request_id, attempt)

    def _verify_replayed(self, request: SolveRequest, outcome: SolveOutcome) -> None:
        """Re-verify one journal-replayed outcome instead of trusting it.

        The stored certificate's digest must equal the digest recomputed
        from the stored solution (same policy, pure function), and the
        recomputation must still pass — anything else means the journal
        was modified after commit or solution and certificate were torn
        apart, which is corruption, not a crash mark.
        """
        if not outcome.ok or outcome.solution is None or outcome.certificate is None:
            return
        from repro.checkpoint.journal import JournalError

        recomputed = certify_solution(
            request.problem,
            outcome.solution,
            value_bound=request.value_bound,
            policy=self.certify,
        )
        if outcome.certificate.digest != recomputed.digest:
            raise JournalError(
                f"replay re-verification failed for {outcome.request_id!r}: stored "
                f"certificate digest {outcome.certificate.digest[:12]}... does not match "
                f"recomputed {recomputed.digest[:12]}..."
            )
        if not recomputed.passed:
            failed = ",".join(check.name for check in recomputed.failed_checks())
            raise JournalError(
                f"replay re-verification failed for {outcome.request_id!r}: committed "
                f"solution no longer certifies ({failed})"
            )

    @staticmethod
    def _check_shutdown(shutdown: Optional[GracefulShutdown]) -> None:
        if shutdown is not None and shutdown.requested:
            raise RunInterrupted("shutdown requested")

    # -- serial execution ----------------------------------------------

    def _run_serial_window(
        self,
        window: List[SolveRequest],
        tracer: TracerLike,
        bump,
        outcomes: Dict[str, SolveOutcome],
        shutdown: Optional[GracefulShutdown] = None,
    ) -> Dict[str, SolveOutcome]:
        for request in window:
            state = _RequestState(request)
            while True:
                self._check_shutdown(shutdown)
                attempt = state.attempts_started
                state.attempts_started += 1
                self._journal_attempt(request.request_id, attempt)
                assignment = self._route_attempt(state, attempt, tracer)
                try:
                    report = _execute_attempt(
                        request,
                        attempt,
                        self.seed,
                        self.faults,
                        getattr(tracer, "active", False),
                        allow_process_exit=False,
                        ladder_kwargs=self.ladder_kwargs,
                        degradation=self.degradation,
                        board=assignment,
                    )
                except InjectedWorkerCrash:
                    report = AttemptReport(
                        request_id=request.request_id, attempt=attempt, status="crashed"
                    )
                outcome, delay = self._process_report(state, report, tracer, bump)
                if outcome is not None:
                    outcomes[request.request_id] = outcome
                    break
                if delay > 0:
                    time.sleep(delay)
        return outcomes

    # -- pooled execution ----------------------------------------------

    def _run_pooled_window(
        self,
        window: List[SolveRequest],
        tracer: TracerLike,
        bump,
        outcomes: Dict[str, SolveOutcome],
        shutdown: Optional[GracefulShutdown] = None,
    ) -> str:
        """Fan a window over a process pool; degrade to serial if denied.

        Sandboxes without fork/semaphores refuse pools (the same
        posture as :func:`repro.experiments.parallel.run_parallel_sweep`)
        — the window then runs serially with identical results.

        A Ctrl-C or shutdown request mid-window terminates the pool's
        worker processes before propagating: an interrupted parent must
        never leave orphaned workers grinding on abandoned attempts.
        """
        try:
            executor = concurrent.futures.ProcessPoolExecutor(max_workers=self.workers)
        except Exception:
            self._run_serial_window(window, tracer, bump, outcomes, shutdown)
            return "serial"
        try:
            self._pooled_loop(window, executor, tracer, bump, outcomes, shutdown)
            return "parallel"
        except (KeyboardInterrupt, RunInterrupted, PoolBroken):
            for process in list(getattr(executor, "_processes", {}).values()):
                try:
                    process.terminate()
                except Exception:
                    pass
            raise
        finally:
            # wait=False: abandoned (hung) attempts may still be
            # sleeping; their processes exit once they finish.
            executor.shutdown(wait=False)

    def _pooled_loop(
        self,
        window: List[SolveRequest],
        executor: concurrent.futures.ProcessPoolExecutor,
        tracer: TracerLike,
        bump,
        outcomes: Dict[str, SolveOutcome],
        shutdown: Optional[GracefulShutdown] = None,
    ) -> Dict[str, SolveOutcome]:
        """Supervise one window on the pool until every request is terminal.

        A worker crash breaks the whole pool (every in-flight future
        raises). The supervisor charges each in-flight request one
        crashed attempt and **degrades the remainder of the window to
        in-process execution** — forking a replacement pool after an
        abrupt process death is exactly the kind of cleverness that
        deadlocks under load, so the policy is the same as everywhere
        else in this repo: degrade, don't gamble. The retry policy then
        completes the batch; nothing is lost, and the degradation is
        visible as the ``pool_degraded`` counter.
        """
        states = {request.request_id: _RequestState(request) for request in window}
        # (request_id, ready_at) admission list, submission order.
        pending: List[Tuple[str, float]] = [(request.request_id, 0.0) for request in window]
        in_flight: Dict[concurrent.futures.Future, Tuple[str, int, Optional[float]]] = {}
        traced = getattr(tracer, "active", False)
        pooled = True  # flips False once the pool breaks

        def handle(state: _RequestState, report: AttemptReport) -> None:
            outcome, delay = self._process_report(state, report, tracer, bump)
            if outcome is not None:
                outcomes[state.request.request_id] = outcome
            else:
                pending.append((state.request.request_id, time.monotonic() + delay))

        def degrade(first_crashed: List[Tuple[str, int]]) -> None:
            nonlocal pooled
            if self.on_pool_break == "fail":
                # Service-shard posture: the crashed/in-flight attempts
                # stay uncommitted in the journal (attempt_started with
                # no outcome), which is exactly what a supervisor's
                # journal-replay fail-over needs to re-route them.
                bump("pool_broken")
                raise PoolBroken(
                    f"process pool died with {len(first_crashed) + len(in_flight)} "
                    "attempt(s) in flight"
                )
            pooled = False
            bump("pool_degraded")
            crashed = list(first_crashed)
            crashed.extend(
                (request_id, attempt)
                for request_id, attempt, _watchdog in in_flight.values()
            )
            in_flight.clear()
            for request_id, attempt in crashed:
                handle(
                    states[request_id],
                    AttemptReport(request_id=request_id, attempt=attempt, status="crashed"),
                )

        def run_in_process(state: _RequestState, attempt: int) -> None:
            try:
                report = _execute_attempt(
                    state.request,
                    attempt,
                    self.seed,
                    self.faults,
                    traced,
                    allow_process_exit=False,
                    ladder_kwargs=self.ladder_kwargs,
                    degradation=self.degradation,
                    board=state.assignments.get(attempt),
                )
            except InjectedWorkerCrash:
                report = AttemptReport(
                    request_id=state.request.request_id, attempt=attempt, status="crashed"
                )
            handle(state, report)

        while pending or in_flight:
            self._check_shutdown(shutdown)
            now = time.monotonic()
            # Admit ready work up to pool width (or inline once degraded).
            still_waiting: List[Tuple[str, float]] = []
            for request_id, ready_at in pending:
                if ready_at > now or (pooled and len(in_flight) >= self.workers):
                    still_waiting.append((request_id, ready_at))
                    continue
                state = states[request_id]
                attempt = state.attempts_started
                state.attempts_started += 1
                self._journal_attempt(request_id, attempt)
                assignment = self._route_attempt(state, attempt, tracer)
                if not pooled:
                    run_in_process(state, attempt)
                    continue
                try:
                    future = executor.submit(
                        _execute_attempt,
                        state.request,
                        attempt,
                        self.seed,
                        self.faults,
                        traced,
                        True,
                        self.ladder_kwargs,
                        self.degradation,
                        assignment,
                    )
                except concurrent.futures.BrokenExecutor:
                    # The pool broke between polls; this submission is
                    # the first to notice.
                    degrade([(request_id, attempt)])
                    continue
                deadline_s = state.request.deadline_seconds
                watchdog_at = (
                    now + deadline_s * _DEADLINE_GRACE_FACTOR + _DEADLINE_GRACE_FLOOR
                    if deadline_s is not None
                    else None
                )
                in_flight[future] = (request_id, attempt, watchdog_at)
            pending[:] = still_waiting

            if not in_flight:
                if pending:
                    next_ready = min(ready_at for _, ready_at in pending)
                    time.sleep(max(0.0, min(next_ready - time.monotonic(), 0.1)))
                continue

            done, _ = concurrent.futures.wait(
                list(in_flight),
                timeout=self.poll_interval,
                return_when=concurrent.futures.FIRST_COMPLETED,
            )
            crashed: List[Tuple[str, int]] = []
            for future in done:
                request_id, attempt, _watchdog = in_flight.pop(future)
                try:
                    report = future.result()
                except concurrent.futures.BrokenExecutor:
                    crashed.append((request_id, attempt))
                    continue
                except Exception as exc:
                    # A result that cannot be returned (pickling, worker
                    # bug) is a failed attempt, not a lost request.
                    report = AttemptReport(
                        request_id=request_id,
                        attempt=attempt,
                        status="failed",
                        error=f"{type(exc).__name__}: {exc}",
                    )
                handle(states[request_id], report)

            if crashed:
                degrade(crashed)
                continue

            # Parent-side watchdog: abandon attempts wedged past their
            # deadline grace; the worker's eventual result is discarded.
            now = time.monotonic()
            for future, (request_id, attempt, watchdog_at) in list(in_flight.items()):
                if watchdog_at is not None and now >= watchdog_at and not future.done():
                    del in_flight[future]
                    handle(
                        states[request_id],
                        AttemptReport(
                            request_id=request_id,
                            attempt=attempt,
                            status="timeout",
                            error="deadline exceeded (watchdog; attempt abandoned)",
                        ),
                    )
        return outcomes
