"""Linear algebra substrate built from scratch on top of numpy arrays.

The paper's digital solvers lean on a handful of linear-algebra kernels:

* dense LU / QR for the small systems that arise inside analog blocks
  and golden-model checks (:mod:`repro.linalg.dense`),
* a CSR sparse matrix (:mod:`repro.linalg.sparse`) carrying the
  five-point-stencil Jacobians of discretized PDEs,
* the iterative Krylov and relaxation solvers named in Table 1 of the
  paper — CG, preconditioned CG, Bi-CGstab, SOR, GMRES
  (:mod:`repro.linalg.iterative`),
* preconditioners (:mod:`repro.linalg.preconditioners`),
* a Householder sparse-aware QR that stands in for the cuSolver kernel
  used by the paper's GPU baseline (:mod:`repro.linalg.qr`), and
* *continuous gradient descent*, the analog accelerator's
  Jacobian-inverse block, expressed as a gradient flow
  (:mod:`repro.linalg.gradient_flow`).
"""

from repro.linalg.dense import (
    lu_factor,
    lu_solve,
    solve_dense,
    qr_factor,
    qr_solve,
    forward_substitution,
    back_substitution,
    determinant,
    condition_estimate,
)
from repro.linalg.sparse import CsrMatrix, CooBuilder, eye, diags, csr_from_triplets
from repro.linalg.iterative import (
    IterativeResult,
    jacobi,
    gauss_seidel,
    sor,
    conjugate_gradient,
    bicgstab,
    gmres,
)
from repro.linalg.preconditioners import (
    Preconditioner,
    IdentityPreconditioner,
    JacobiPreconditioner,
    Ilu0Preconditioner,
    SsorPreconditioner,
)
from repro.linalg.kernel import LinearKernel, LinearSolverStats
from repro.linalg.qr import SparseQr, qr_operation_count
from repro.linalg.gradient_flow import GradientFlowResult, gradient_flow_solve
from repro.linalg.multigrid import MultigridPoisson, MultigridResult
from repro.linalg.refinement import RefinementResult, mixed_precision_solve

__all__ = [
    "lu_factor",
    "lu_solve",
    "solve_dense",
    "qr_factor",
    "qr_solve",
    "forward_substitution",
    "back_substitution",
    "determinant",
    "condition_estimate",
    "CsrMatrix",
    "CooBuilder",
    "eye",
    "diags",
    "csr_from_triplets",
    "IterativeResult",
    "jacobi",
    "gauss_seidel",
    "sor",
    "conjugate_gradient",
    "bicgstab",
    "gmres",
    "Preconditioner",
    "IdentityPreconditioner",
    "JacobiPreconditioner",
    "Ilu0Preconditioner",
    "SsorPreconditioner",
    "LinearKernel",
    "LinearSolverStats",
    "SparseQr",
    "qr_operation_count",
    "GradientFlowResult",
    "gradient_flow_solve",
    "MultigridPoisson",
    "MultigridResult",
    "RefinementResult",
    "mixed_precision_solve",
]
