"""Tier-1 wrapper for ``scripts/check_stats_accounting.py``.

Runs the smoke check both in-process (fast, assert-level failures show
as test failures) and as a subprocess (guards the script's standalone
``sys.path`` bootstrap).
"""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "scripts" / "check_stats_accounting.py"


def test_stats_accounting_in_process():
    sys.path.insert(0, str(REPO_ROOT / "scripts"))
    try:
        from check_stats_accounting import check_stats_accounting
    finally:
        sys.path.pop(0)
    row = check_stats_accounting(grid_n=4, seed=0)
    assert row["linear solves"] > 0
    assert row["matvecs"] >= row["inner iterations"] > 0
    assert 1 <= row["preconditioner builds"] <= row["linear solves"]
    assert row["modeled seconds"] > 0.0


def test_stats_accounting_script_runs_standalone():
    proc = subprocess.run(
        [sys.executable, str(SCRIPT)],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=str(REPO_ROOT),
    )
    assert proc.returncode == 0, proc.stderr
    assert "stats accounting OK" in proc.stdout
