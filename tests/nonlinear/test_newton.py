"""Tests for the digital Newton solvers."""

import numpy as np
import pytest

from repro.nonlinear.newton import (
    NewtonOptions,
    damped_newton_with_restarts,
    make_sparse_linear_solver,
    newton_solve,
)
from repro.nonlinear.systems import (
    CallableSystem,
    CoupledQuadraticSystem,
    CubicRootSystem,
    SimpleSquareSystem,
)


class TestNewtonSolve:
    def test_converges_on_cubic_from_good_guess(self):
        result = newton_solve(CubicRootSystem(), np.array([1.2, 0.1]))
        assert result.converged
        np.testing.assert_allclose(result.u, [1.0, 0.0], atol=1e-8)

    def test_quadratic_convergence_counts_iterations(self):
        # From a guess within the quadratic basin, very few iterations.
        result = newton_solve(CubicRootSystem(), np.array([1.05, 0.0]))
        assert result.converged
        assert result.iterations <= 6

    def test_zero_iterations_when_starting_at_root(self):
        result = newton_solve(SimpleSquareSystem(2), np.array([1.0, -1.0]))
        assert result.converged
        assert result.iterations == 0

    def test_damping_slows_but_stabilizes(self):
        system = CubicRootSystem()
        u0 = np.array([0.4, 0.3])
        full = newton_solve(system, u0, NewtonOptions(damping=1.0, max_iterations=400))
        damped = newton_solve(system, u0, NewtonOptions(damping=0.25, max_iterations=400))
        assert damped.converged
        if full.converged:
            assert damped.iterations >= full.iterations

    def test_rootless_system_reported_as_failure(self):
        # F(u) = exp(u) + 1 has no root; the residual plateaus at 1.
        system = CallableSystem(
            1,
            residual=lambda u: np.array([np.exp(u[0]) + 1.0]),
            jacobian=lambda u: np.array([[np.exp(u[0])]]),
        )
        result = newton_solve(system, np.array([0.0]), NewtonOptions(max_iterations=50))
        assert not result.converged
        assert result.failure_reason is not None

    def test_residual_blowup_detected_early(self):
        # F(u) = u + u^3 with a huge overshooting start diverges; the
        # divergence threshold must cut the run before the cap.
        system = CallableSystem(
            1,
            residual=lambda u: np.array([np.cbrt(u[0])]),
            jacobian=lambda u: np.array([[np.cbrt(u[0]) / (3.0 * u[0]) if u[0] != 0 else 1.0]]),
        )
        # Newton on cbrt doubles the iterate each step: |u| -> 2|u|.
        result = newton_solve(system, np.array([1.0]), NewtonOptions(max_iterations=500))
        assert not result.converged
        assert result.iterations < 500

    def test_singular_jacobian_reported(self):
        system = CallableSystem(
            1,
            residual=lambda u: np.array([u[0] ** 2 + 1.0]),
            jacobian=lambda u: np.array([[0.0]]),
        )
        result = newton_solve(system, np.array([0.0]))
        assert not result.converged
        assert result.failure_reason == "singular Jacobian"

    def test_residual_history_recorded(self):
        result = newton_solve(CubicRootSystem(), np.array([1.3, 0.2]))
        assert len(result.residual_history) == result.iterations + 1
        assert result.residual_history[-1] <= 1e-12

    def test_options_validation(self):
        with pytest.raises(ValueError):
            NewtonOptions(damping=0.0)
        with pytest.raises(ValueError):
            NewtonOptions(damping=1.5)
        with pytest.raises(ValueError):
            NewtonOptions(tolerance=-1.0)
        with pytest.raises(ValueError):
            NewtonOptions(max_iterations=0)

    def test_coupled_system_all_roots_reachable(self):
        system = CoupledQuadraticSystem(1.0, 1.0)
        roots = system.real_roots()
        for root in roots:
            result = newton_solve(system, root + 0.05)
            assert result.converged
            np.testing.assert_allclose(result.u, root, atol=1e-6)


class TestDampedNewtonWithRestarts:
    def test_no_restart_needed_on_easy_problem(self):
        result = damped_newton_with_restarts(CubicRootSystem(), np.array([1.2, 0.1]))
        assert result.converged
        assert result.restarts == 0
        assert result.damping_used == 1.0

    def test_restarts_reduce_damping_until_convergence(self):
        # A system where full Newton steps oscillate: F(u) = atan-like
        # shape. arctan is the classic example where Newton overshoots.
        system = CallableSystem(
            1,
            residual=lambda u: np.array([np.arctan(u[0])]),
            jacobian=lambda u: np.array([[1.0 / (1.0 + u[0] ** 2)]]),
        )
        # |u0| > ~1.39 makes classical Newton diverge for arctan.
        result = damped_newton_with_restarts(
            system, np.array([2.0]), NewtonOptions(max_iterations=200, tolerance=1e-10)
        )
        assert result.converged
        assert result.damping_used < 1.0
        assert result.restarts >= 1
        assert result.total_iterations_including_restarts > result.iterations

    def test_failure_reported_when_nothing_converges(self):
        system = CallableSystem(
            1,
            residual=lambda u: np.array([np.exp(u[0])]),
            jacobian=lambda u: np.array([[np.exp(u[0])]]),
        )
        result = damped_newton_with_restarts(
            system,
            np.array([0.0]),
            NewtonOptions(max_iterations=20),
            min_damping=1.0 / 8.0,
        )
        assert not result.converged
        assert "no damping" in result.failure_reason


class TestSparseLinearSolver:
    def test_solves_sparse_jacobian(self):
        from repro.linalg.sparse import CooBuilder

        n = 20
        builder = CooBuilder(n, n)
        for i in range(n):
            builder.add(i, i, 4.0)
            if i > 0:
                builder.add(i, i - 1, -1.0)
            if i < n - 1:
                builder.add(i, i + 1, -1.2)
        mat = builder.to_csr()
        solver = make_sparse_linear_solver()
        x_true = np.random.default_rng(0).standard_normal(n)
        x = solver(mat, mat.matvec(x_true))
        np.testing.assert_allclose(x, x_true, rtol=1e-6, atol=1e-8)

    def test_dense_passthrough(self):
        solver = make_sparse_linear_solver()
        a = np.array([[2.0, 0.0], [0.0, 4.0]])
        np.testing.assert_allclose(solver(a, np.array([2.0, 4.0])), [1.0, 1.0])

    def test_stats_recorded(self):
        from repro.linalg.sparse import CooBuilder
        from repro.nonlinear.newton import LinearSolverStats

        builder = CooBuilder(4, 4)
        for i in range(4):
            builder.add(i, i, 2.0)
        stats = LinearSolverStats()
        solver = make_sparse_linear_solver(stats=stats)
        solver(builder.to_csr(), np.ones(4))
        assert stats.solves == 1
        assert stats.matvecs >= 1


class TestDefaultPathStats:
    """Regression: the default CSR path must not drop linear stats.

    ``default_linear_solver`` used to build a throwaway solver without a
    stats sink, so ``NewtonResult.linear_stats`` came back all-zero for
    every sparse Newton solve that didn't pass an explicit solver.
    """

    def _sparse_system(self, n=16, reynolds=0.5, seed=0):
        from repro.pde.burgers import random_burgers_system

        rng = np.random.default_rng(seed)
        system, guess = random_burgers_system(int(np.sqrt(n)), reynolds, rng)
        return system, guess

    def test_newton_solve_default_path_records_stats(self):
        system, guess = self._sparse_system()
        result = newton_solve(system, guess, NewtonOptions(tolerance=1e-10))
        assert result.converged
        assert result.linear_stats.solves > 0
        assert result.linear_stats.solves == result.iterations
        assert result.linear_stats.matvecs > 0
        assert result.linear_stats.inner_iterations > 0

    def test_newton_solve_default_path_reuses_preconditioner(self):
        system, guess = self._sparse_system()
        result = newton_solve(system, guess, NewtonOptions(tolerance=1e-10))
        stats = result.linear_stats
        assert stats.solves >= 3
        assert stats.preconditioner_builds == 1

    def test_damped_restarts_total_stats_cover_failed_attempts(self):
        from repro.linalg.kernel import LinearKernel

        system, guess = self._sparse_system(reynolds=2.0, seed=3)
        kernel = LinearKernel()
        result = damped_newton_with_restarts(
            system,
            guess,
            NewtonOptions(tolerance=1e-10, max_iterations=40),
            linear_solver=kernel,
            min_damping=1.0 / 64.0,
        )
        total = result.total_linear_stats
        assert total is not None
        assert total.solves > 0
        # The honest total covers every damping attempt, not just the
        # winning one carried in result.linear_stats.
        assert total.solves >= result.linear_stats.solves
        # One kernel for the whole schedule: far fewer factorizations
        # than solves.
        assert kernel.stats.preconditioner_builds < total.solves
