"""Tests for the configurable sparse Newton linear kernel."""

import numpy as np
import pytest

from repro.linalg.sparse import CooBuilder
from repro.nonlinear.newton import LinearSolverStats, make_sparse_linear_solver


def stencil(n, asym=0.3):
    builder = CooBuilder(n, n)
    for i in range(n):
        builder.add(i, i, 4.0)
        if i > 0:
            builder.add(i, i - 1, -1.0 - asym)
        if i < n - 1:
            builder.add(i, i + 1, -1.0 + asym)
    return builder.to_csr()


@pytest.mark.parametrize("kind", ["jacobi", "ilu0", "none"])
def test_all_preconditioner_kinds_solve(kind):
    mat = stencil(30)
    x_true = np.random.default_rng(0).standard_normal(30)
    solver = make_sparse_linear_solver(preconditioner_kind=kind)
    x = solver(mat, mat.matvec(x_true))
    np.testing.assert_allclose(x, x_true, rtol=1e-6, atol=1e-8)


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        make_sparse_linear_solver(preconditioner_kind="magic")


def test_singular_system_falls_back_to_least_squares():
    # A structurally singular matrix: the kernel must still return a
    # finite direction (the regularized/lstsq emergency path).
    builder = CooBuilder(4, 4)
    for i in range(4):
        builder.add(i, 0, 1.0)  # rank-1 with zero diagonal rows 1..3
        builder.add(i, i, 1e-30)
    mat = builder.to_csr()
    solver = make_sparse_linear_solver()
    out = solver(mat, np.ones(4))
    assert np.all(np.isfinite(out))


def test_large_system_uses_lapack_fallback_quickly():
    # A 700-unknown singular-ish system must not grind through the
    # pure-Python LU (the >512 guard routes to LAPACK).
    import time

    n = 700
    builder = CooBuilder(n, n)
    for i in range(n):
        builder.add(i, i, 1e-14)  # near-singular diagonal
        if i > 0:
            builder.add(i, i - 1, 1.0)
        if i < n - 1:
            builder.add(i, i + 1, -1.0)
    mat = builder.to_csr()
    solver = make_sparse_linear_solver(max_iterations=50)
    start = time.perf_counter()
    out = solver(mat, np.ones(n))
    elapsed = time.perf_counter() - start
    assert np.all(np.isfinite(out))
    assert elapsed < 30.0


def test_stats_capture_inner_iterations():
    stats = LinearSolverStats()
    solver = make_sparse_linear_solver(stats=stats)
    mat = stencil(20)
    solver(mat, np.ones(20))
    assert stats.solves == 1
    assert stats.inner_iterations >= 1


def test_fallback_accounting_is_explicit_and_additive():
    # Regression: the dense emergency path used to leave the failed
    # Krylov attempt's stats as the whole record — the dense solve
    # itself was invisible. It is now an explicit counter, and the
    # Krylov work stays on the bill.
    # Exactly singular and inconsistent: the last row duplicates row 0
    # but its rhs demands a different value, so no Krylov attempt can
    # converge and the lstsq-backed dense path must answer.
    n = 4
    builder = CooBuilder(n, n)
    for i in range(n - 1):
        builder.add(i, i, 1.0)
    builder.add(n - 1, 0, 1.0)
    mat = builder.to_csr()
    stats = LinearSolverStats()
    solver = make_sparse_linear_solver(stats=stats)
    rhs = np.ones(n)
    rhs[-1] = 2.0
    out = solver(mat, rhs)
    assert np.all(np.isfinite(out))
    assert stats.solves == 1
    assert stats.dense_fallbacks == 1
    assert stats.matvecs >= stats.inner_iterations


def test_returned_solver_is_a_reusing_kernel():
    # make_sparse_linear_solver is now a thin adapter over LinearKernel:
    # repeated same-pattern solves share one preconditioner build.
    stats = LinearSolverStats()
    solver = make_sparse_linear_solver(stats=stats)
    mat = stencil(25)
    for _ in range(3):
        solver(mat, np.ones(25))
    assert stats.solves == 3
    assert stats.preconditioner_builds == 1
