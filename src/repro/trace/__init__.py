"""repro.trace: structured solve tracing.

Zero-dependency observability for the Newton/homotopy/analog-settle
pipeline:

* :mod:`repro.trace.tracer` — :class:`Tracer` with nestable spans,
  counters and gauges; :class:`NullTracer` keeps untraced hot paths
  allocation-free.
* :mod:`repro.trace.exporter` — JSON-lines export with a run-manifest
  header, reading, and shard merging for parallel sweeps.
* :mod:`repro.trace.summary` — per-phase time/iteration breakdowns
  (the ``repro trace-summary`` subcommand).
"""

from repro.trace.exporter import (
    SCHEMA_VERSION,
    TraceFile,
    build_manifest,
    merge_traces,
    read_trace,
    write_trace,
)
from repro.trace.summary import phase_rows, render_trace_summary, summarize_trace_file
from repro.trace.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanRecord,
    TraceNestingError,
    Tracer,
    as_tracer,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "as_tracer",
    "Span",
    "SpanRecord",
    "TraceNestingError",
    "SCHEMA_VERSION",
    "TraceFile",
    "build_manifest",
    "write_trace",
    "read_trace",
    "merge_traces",
    "phase_rows",
    "render_trace_summary",
    "summarize_trace_file",
]
