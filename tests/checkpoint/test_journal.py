"""Write-ahead batch journal: record integrity, torn-tail tolerance,
and crash-resumed batches replaying bitwise-identically."""

import json

import numpy as np
import pytest

from repro.analog.health import DegradationModel
from repro.checkpoint import BatchJournal, JournalError, read_journal
from repro.runtime import (
    FaultInjector,
    ProblemSpec,
    RetryPolicy,
    Runtime,
    SolveRequest,
)
from repro.trace.tracer import Tracer


def _requests(count=5):
    # analog_time_limit bounds the simulated settle so journal tests
    # never become the slowest thing in the suite (see test_chaos).
    return [
        SolveRequest(
            f"req-{i:04d}",
            ProblemSpec.quadratic(rhs0=1.0 + 0.1 * i),
            analog_time_limit=1e-3,
        )
        for i in range(count)
    ]


def _runtime(journal=None, **overrides):
    kwargs = dict(
        workers=1,
        seed=11,
        retry=RetryPolicy(max_attempts=2, base_delay=0.001, max_delay=0.002),
        degradation=DegradationModel(offset_drift_sigma=0.05, seed=7),
        journal=journal,
    )
    kwargs.update(overrides)
    return Runtime(**kwargs)


def _truncate_after_outcomes(path, keep, torn_tail=True):
    """Rewrite the journal as if the process died after ``keep``
    committed outcomes, optionally mid-append of the next record."""
    lines = path.read_text().splitlines()
    outcome_positions = [
        i for i, line in enumerate(lines) if json.loads(line)["kind"] == "outcome_committed"
    ]
    cut = outcome_positions[keep]
    text = "\n".join(lines[:cut]) + "\n"
    if torn_tail:
        text += lines[cut][: len(lines[cut]) // 2] + "\n"
    path.write_text(text)


def _assert_outcomes_bitwise_equal(a, b):
    assert len(a) == len(b)
    for oa, ob in zip(a, b):
        assert oa.request_id == ob.request_id
        assert oa.status == ob.status
        assert oa.rung == ob.rung
        assert oa.attempts == ob.attempts
        assert oa.retries == ob.retries
        assert oa.residual_norm == ob.residual_norm
        assert oa.faults == ob.faults
        assert oa.attempt_history == ob.attempt_history
        assert oa.health == ob.health
        if oa.solution is None:
            assert ob.solution is None
        else:
            assert oa.solution.tobytes() == ob.solution.tobytes()


class TestJournalFile:
    def test_records_are_hash_stamped_and_ordered(self, tmp_path):
        journal = BatchJournal(tmp_path / "b.journal")
        runtime = _runtime(journal=journal)
        runtime.run_batch(_requests(3))
        journal.close()
        replay = read_journal(tmp_path / "b.journal")
        assert not replay.truncated
        assert replay.completed
        kinds = [record["kind"] for record in replay.records]
        assert kinds[0] == "batch_started"
        assert kinds[-1] == "batch_completed"
        assert kinds.count("request_accepted") == 3
        assert kinds.count("outcome_committed") == 3
        # every attempt was journaled before its outcome committed
        assert kinds.index("attempt_started") < kinds.index("outcome_committed")
        seqs = [record["seq"] for record in replay.records]
        assert seqs == sorted(seqs)

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = tmp_path / "b.journal"
        runtime = _runtime(journal=BatchJournal(path))
        runtime.run_batch(_requests(3))
        runtime.journal.close()
        _truncate_after_outcomes(path, keep=2, torn_tail=True)
        replay = read_journal(path)
        assert replay.truncated
        assert len(replay.outcomes) == 2
        assert [r.request_id for r in replay.pending_requests()] == ["req-0002"]

    def test_corruption_before_the_tail_raises(self, tmp_path):
        path = tmp_path / "b.journal"
        runtime = _runtime(journal=BatchJournal(path))
        runtime.run_batch(_requests(3))
        runtime.journal.close()
        lines = path.read_text().splitlines()
        lines[2] = lines[2][:-20] + "}"  # mangle an interior record
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError):
            read_journal(path)

    def test_resume_rewrites_torn_tail(self, tmp_path):
        path = tmp_path / "b.journal"
        runtime = _runtime(journal=BatchJournal(path))
        runtime.run_batch(_requests(3))
        runtime.journal.close()
        _truncate_after_outcomes(path, keep=1, torn_tail=True)
        replay = read_journal(path)
        resumed = BatchJournal.resume(replay)
        resumed.close()
        # The torn line is gone; the file is valid end to end again.
        again = read_journal(path)
        assert not again.truncated
        assert len(again.records) == len(replay.records)


class TestCrashedBatchResume:
    def test_resumed_batch_is_bitwise_identical(self, tmp_path):
        """Kill after K outcomes, resume from the journal: outcomes,
        batch counters and trace counters all match the uninterrupted
        run exactly — completed work replays without re-solving."""
        path = tmp_path / "b.journal"
        tracer_ref = Tracer()
        reference = _runtime(journal=BatchJournal(path)).run_batch(
            _requests(), tracer=tracer_ref
        )

        _truncate_after_outcomes(path, keep=2)
        replay = read_journal(path)
        assert len(replay.outcomes) == 2

        tracer_res = Tracer()
        runtime = replay.build_runtime(journal=BatchJournal.resume(replay))
        resumed = runtime.run_batch(replay.requests, tracer=tracer_res, resume=replay)
        runtime.journal.close()

        assert resumed.replayed == 2
        _assert_outcomes_bitwise_equal(reference.outcomes, resumed.outcomes)
        assert reference.counters == resumed.counters
        assert tracer_ref.counters == tracer_res.counters

        final = read_journal(path)
        assert final.completed
        assert final.resumes == 1

    def test_runtime_config_round_trips_through_journal(self, tmp_path):
        path = tmp_path / "b.journal"
        original = _runtime(
            journal=BatchJournal(path),
            faults=FaultInjector.from_rates({"analog_spike": 0.25}, seed=3),
        )
        original.run_batch(_requests(2))
        original.journal.close()
        rebuilt = read_journal(path).build_runtime()
        assert rebuilt.seed == original.seed
        assert rebuilt.workers == original.workers
        assert rebuilt.retry == original.retry
        assert rebuilt.faults.rates == original.faults.rates
        assert rebuilt.faults.seed == original.faults.seed
        assert rebuilt.degradation.offset_drift_sigma == 0.05

    def test_degradation_health_rides_the_journal(self, tmp_path):
        """Board aging (drift walks, step counts) must continue from
        where the crashed run left off, not restart from a fresh board."""
        path = tmp_path / "b.journal"
        reference = _runtime(journal=BatchJournal(path)).run_batch(_requests())
        assert any(outcome.health for outcome in reference.outcomes)

        _truncate_after_outcomes(path, keep=3)
        replay = read_journal(path)
        runtime = replay.build_runtime(journal=BatchJournal.resume(replay))
        resumed = runtime.run_batch(replay.requests, resume=replay)
        runtime.journal.close()
        for ref_outcome, res_outcome in zip(reference.outcomes, resumed.outcomes):
            assert ref_outcome.health == res_outcome.health

    def test_resume_does_not_readmit_committed_requests(self, tmp_path):
        """Admission is exactly-once across journal replay: a resumed
        batch must not re-journal ``request_accepted`` for ids the
        prior run already accepted, nor re-commit outcomes it replays —
        one accepted record and one committed outcome per id, end to
        end, no matter where the crash fell."""
        path = tmp_path / "b.journal"
        _runtime(journal=BatchJournal(path)).run_batch(_requests())

        _truncate_after_outcomes(path, keep=2)
        replay = read_journal(path)
        runtime = replay.build_runtime(journal=BatchJournal.resume(replay))
        resumed = runtime.run_batch(replay.requests, resume=replay)
        runtime.journal.close()
        assert resumed.replayed == 2

        final = read_journal(path)
        accepted: dict = {}
        committed: dict = {}
        for record in final.records:
            if record["kind"] == "request_accepted":
                rid = record["request"]["request_id"]
                accepted[rid] = accepted.get(rid, 0) + 1
            elif record["kind"] == "outcome_committed":
                rid = record["request_id"]
                committed[rid] = committed.get(rid, 0) + 1
        expected = {f"req-{i:04d}": 1 for i in range(5)}
        assert accepted == expected
        assert committed == expected

    def test_resume_with_nothing_pending_only_replays(self, tmp_path):
        path = tmp_path / "b.journal"
        reference = _runtime(journal=BatchJournal(path)).run_batch(_requests(3))

        # Crash *after* the last outcome but before batch_completed.
        lines = path.read_text().splitlines()
        assert json.loads(lines[-1])["kind"] == "batch_completed"
        path.write_text("\n".join(lines[:-1]) + "\n")

        replay = read_journal(path)
        runtime = replay.build_runtime(journal=BatchJournal.resume(replay))
        resumed = runtime.run_batch(replay.requests, resume=replay)
        runtime.journal.close()
        assert resumed.replayed == 3
        _assert_outcomes_bitwise_equal(reference.outcomes, resumed.outcomes)
        assert read_journal(path).completed
