"""Continuous gradient descent: the analog Jacobian-inverse block.

Figure 1 of the paper shows the shaded block that computes
``delta ~= J^-1 F`` inside the continuous Newton circuit. Physically it
is a negative-feedback loop performing *continuous gradient descent* on
the least-squares energy ``E(delta) = 1/2 ||J delta - F||^2``, i.e. it
integrates the gradient flow

    d delta / d tau = -J^T (J delta - F)

until the loop settles. The settling rate is governed by the spectrum
of ``J^T J``: the flow converges like ``exp(-sigma_min^2 tau)``, which
is why near-singular Jacobians (high Reynolds number, Section 6.1) take
the analog circuit longer to settle — exactly the trend in Figure 7.

This module exposes the flow both as a standalone solver (used by the
behavioral analog engine and by tests) and as a RHS factory for
embedding in larger circuit ODEs (circuit-fidelity mode).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

import numpy as np

from repro.linalg.sparse import CsrMatrix
from repro.ode.events import integrate_until_settled

__all__ = ["GradientFlowResult", "gradient_flow_solve", "gradient_flow_rhs"]

MatrixLike = Union[CsrMatrix, np.ndarray]


@dataclass
class GradientFlowResult:
    """Outcome of a continuous-gradient-descent solve."""

    delta: np.ndarray
    settled: bool
    settle_time: float
    residual_norm: float


def _matvec(a: MatrixLike, x: np.ndarray) -> np.ndarray:
    if isinstance(a, CsrMatrix):
        return a.matvec(x)
    return a @ x


def _rmatvec(a: MatrixLike, y: np.ndarray) -> np.ndarray:
    if isinstance(a, CsrMatrix):
        return a.rmatvec(y)
    return a.T @ y


def gradient_flow_rhs(a: MatrixLike, b: np.ndarray, gain: float = 1.0) -> Callable[[float, np.ndarray], np.ndarray]:
    """RHS of the gradient flow ``d delta/dt = -gain * A^T (A delta - b)``.

    ``gain`` models the loop bandwidth of the analog feedback circuit;
    a faster inner loop (larger gain) is what lets the quotient block
    track the outer Newton dynamics (two-timescale separation).
    """
    b = np.asarray(b, dtype=float)

    def rhs(_t: float, delta: np.ndarray) -> np.ndarray:
        return -gain * _rmatvec(a, _matvec(a, delta) - b)

    return rhs


def gradient_flow_solve(
    a: MatrixLike,
    b: np.ndarray,
    delta0: Optional[np.ndarray] = None,
    gain: float = 1.0,
    time_limit: float = 1_000.0,
    derivative_tolerance: float = 1e-6,
    dwell: float = 0.01,
    rtol: float = 1e-8,
    atol: float = 1e-12,
) -> GradientFlowResult:
    """Solve ``A delta = b`` (least-squares sense) by gradient flow.

    For full-rank square ``A`` the unique equilibrium of the flow is the
    exact solution; for singular ``A`` the flow settles at the minimum-
    energy least-squares point reachable from ``delta0``, which mirrors
    the graceful behaviour of the physical circuit when the Jacobian
    degenerates.
    """
    b = np.asarray(b, dtype=float)
    n = b.shape[0] if not isinstance(a, CsrMatrix) else a.num_cols
    if isinstance(a, np.ndarray):
        n = a.shape[1]
    y0 = np.zeros(n) if delta0 is None else np.array(delta0, dtype=float, copy=True)
    solution = integrate_until_settled(
        gradient_flow_rhs(a, b, gain=gain),
        y0,
        time_limit=time_limit,
        derivative_tolerance=derivative_tolerance,
        dwell=dwell,
        rtol=rtol,
        atol=atol,
    )
    delta = solution.final_state
    residual = _matvec(a, delta) - b
    return GradientFlowResult(
        delta=delta,
        settled=solution.settled,
        settle_time=solution.settle_time if solution.settle_time is not None else solution.final_time,
        residual_norm=float(np.linalg.norm(residual)),
    )
