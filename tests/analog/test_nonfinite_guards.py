"""Direct unit tier for the two non-finite guards the certification
layer leans on: the Equation 6 error metric's clamp and the seed
quality gate's NaN/Inf handling. Both must stay finite no matter what
a saturated or dead-tile seed feeds them — a NaN that leaks past
either one poisons Newton, the health EWMAs, and every JSON record
downstream."""

import numpy as np
import pytest

from repro.analog.engine import solution_error
from repro.analog.health import NONFINITE_QUALITY, SeedQualityGate


class TestSolutionErrorNonfiniteClamp:
    def test_nan_entries_clamp_to_the_bound(self):
        # Every diff entry replaced by the 1e6*scale bound: the scaled
        # RMS collapses to exactly 1e6.
        error = solution_error(np.array([np.nan, np.nan]), np.zeros(2), scale=2.0)
        assert np.isfinite(error)
        assert error == pytest.approx(1e6)

    def test_posinf_and_neginf_clamp_symmetrically(self):
        pos = solution_error(np.array([np.inf]), np.zeros(1), scale=3.0)
        neg = solution_error(np.array([-np.inf]), np.zeros(1), scale=3.0)
        assert np.isfinite(pos) and np.isfinite(neg)
        assert pos == neg == pytest.approx(1e6)

    def test_clamp_scales_with_the_dynamic_range(self):
        # The bound is 1e6 * scale, so the *scaled* error is 1e6 for
        # any scale — a non-finite seed reads as equally catastrophic
        # at every dynamic range.
        for scale in (0.5, 1.0, 3.0, 10.0):
            error = solution_error(np.array([np.nan]), np.zeros(1), scale=scale)
            assert error == pytest.approx(1e6), scale

    def test_mixed_finite_and_nonfinite_stays_finite_and_huge(self):
        analog = np.array([1.0, np.nan, -np.inf, 2.0])
        digital = np.array([1.0, 0.0, 0.0, 2.0])
        error = solution_error(analog, digital, scale=1.0)
        assert np.isfinite(error)
        # Two of four entries at the 1e6 bound: RMS = 1e6 / sqrt(2).
        assert error == pytest.approx(1e6 / np.sqrt(2))

    def test_clamped_error_dominates_any_finite_error(self):
        bad = solution_error(np.array([np.nan]), np.zeros(1), scale=1.0)
        worst_physical = solution_error(np.array([100.0]), np.zeros(1), scale=1.0)
        assert bad > worst_physical

    def test_finite_path_is_untouched(self):
        error = solution_error(np.array([1.0, 2.0]), np.array([0.0, 0.0]), scale=2.0)
        assert error == pytest.approx(np.sqrt(2.5) / 2.0)

    def test_shape_mismatch_still_raises(self):
        with pytest.raises(ValueError):
            solution_error(np.zeros(2), np.zeros(3))


class TestSeedQualityGateNonfinite:
    GATE = SeedQualityGate()

    def test_nan_solution_is_rejected_with_clamped_quality(self):
        quality = self.GATE.assess(
            np.array([np.nan, 1.0]), residual_norm=0.1, reference_norm=1.0
        )
        assert quality.quality == NONFINITE_QUALITY
        assert not quality.finite
        assert not quality.accepted

    def test_inf_residual_norm_is_rejected(self):
        quality = self.GATE.assess(
            np.ones(2), residual_norm=np.inf, reference_norm=1.0
        )
        assert quality.quality == NONFINITE_QUALITY
        assert not quality.finite
        assert not quality.accepted

    def test_nan_reference_norm_is_rejected(self):
        quality = self.GATE.assess(
            np.ones(2), residual_norm=0.1, reference_norm=np.nan
        )
        assert quality.quality == NONFINITE_QUALITY
        assert not quality.finite
        assert not quality.accepted

    def test_quality_never_exceeds_the_sentinel(self):
        # Even a finite but astronomically bad residual clamps at the
        # sentinel, so downstream EWMAs stay in a bounded range.
        quality = self.GATE.assess(
            np.ones(2), residual_norm=1e300, reference_norm=1e-12
        )
        assert quality.quality == NONFINITE_QUALITY
        assert quality.finite  # inputs were finite; only the ratio clamped
        assert not quality.accepted

    def test_disabled_gate_still_reports_nonfinite_honestly(self):
        gate = SeedQualityGate(enabled=False)
        quality = gate.assess(
            np.array([np.inf]), residual_norm=0.1, reference_norm=1.0
        )
        assert quality.accepted  # disabled gates accept everything...
        assert not quality.finite  # ...but never lie about finiteness
        assert quality.quality == NONFINITE_QUALITY

    def test_healthy_seed_passes_finite(self):
        quality = self.GATE.assess(
            np.ones(2), residual_norm=0.1, reference_norm=1.0
        )
        assert quality.finite
        assert quality.accepted
        assert quality.quality == pytest.approx(0.1)
