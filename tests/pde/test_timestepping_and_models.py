"""Tests for theta-scheme time stepping, reaction-diffusion, Poisson."""

import numpy as np
import pytest

from repro.linalg.preconditioners import Ilu0Preconditioner
from repro.nonlinear.newton import newton_solve
from repro.nonlinear.systems import CoupledQuadraticSystem, check_jacobian
from repro.pde.boundary import DirichletBoundary
from repro.pde.grid import Grid2D
from repro.pde.poisson import PoissonProblem
from repro.pde.reaction_diffusion import ReactionDiffusion1D
from repro.pde.timestepping import (
    CrankNicolsonSystem,
    ImplicitEulerSystem,
    SpatialOperator,
)


def linear_decay_operator(rate=2.0, dimension=1):
    """N(y) = rate * y, so dy/dt = -rate*y with exact solution exp."""
    return SpatialOperator(
        dimension=dimension,
        apply=lambda y: rate * y,
        jacobian=lambda y: rate * np.eye(dimension),
    )


class TestThetaSchemes:
    def test_crank_nicolson_step_matches_trapezoid(self):
        op = linear_decay_operator(rate=2.0)
        y_prev = np.array([1.0])
        dt = 0.1
        system = CrankNicolsonSystem(op, y_prev, dt)
        result = newton_solve(system, y_prev)
        assert result.converged
        # Trapezoid for dy/dt = -2y: y1 = y0 (1 - dt) / (1 + dt) for rate 2.
        expected = (1.0 - dt) / (1.0 + dt)
        assert result.u[0] == pytest.approx(expected, rel=1e-10)

    def test_implicit_euler_step(self):
        op = linear_decay_operator(rate=2.0)
        system = ImplicitEulerSystem(op, np.array([1.0]), 0.1)
        result = newton_solve(system, np.array([1.0]))
        assert result.converged
        assert result.u[0] == pytest.approx(1.0 / 1.2, rel=1e-10)

    def test_cn_more_accurate_than_euler(self):
        rate = 1.0
        op = linear_decay_operator(rate=rate)
        dt = 0.2
        exact = np.exp(-rate * dt)
        cn = newton_solve(CrankNicolsonSystem(op, np.array([1.0]), dt), np.array([1.0])).u[0]
        ie = newton_solve(ImplicitEulerSystem(op, np.array([1.0]), dt), np.array([1.0])).u[0]
        assert abs(cn - exact) < abs(ie - exact)

    def test_sparse_operator_jacobian_supported(self):
        from repro.linalg.sparse import eye

        op = SpatialOperator(
            dimension=3, apply=lambda y: 2.0 * y, jacobian=lambda y: eye(3, scale=2.0)
        )
        system = CrankNicolsonSystem(op, np.ones(3), 0.1)
        jac = system.jacobian(np.ones(3))
        np.testing.assert_allclose(jac.to_dense(), np.eye(3) * (1.0 + 0.1), atol=1e-12)

    def test_validation(self):
        op = linear_decay_operator()
        with pytest.raises(ValueError):
            CrankNicolsonSystem(op, np.array([1.0]), dt=0.0)
        with pytest.raises(ValueError):
            CrankNicolsonSystem(op, np.ones(2), dt=0.1)
        with pytest.raises(ValueError):
            SpatialOperator(0, apply=lambda y: y, jacobian=lambda y: np.eye(1))


class TestReactionDiffusion:
    def test_jacobian_matches_fd(self):
        system = ReactionDiffusion1D(num_nodes=5, diffusion=0.7, left=0.2, right=-0.3)
        rng = np.random.default_rng(0)
        check_jacobian(system, rng.uniform(-1, 1, 5), rtol=1e-4, atol=1e-5)

    def test_two_nodes_matches_equation2_structure(self):
        # On two unit-spaced nodes with D = 1 and zero boundaries, the
        # residual has the quadratic + linear + neighbour-coupling shape
        # of the paper's Equation 2 (modulo sign conventions of the
        # coupling and constants absorbed into the RHS).
        system = ReactionDiffusion1D(num_nodes=2, diffusion=1.0, left=0.0, right=0.0)
        u = np.array([0.4, -0.6])
        residual = system.residual(u)
        # F_0 = -(0 - 2u0 + u1) + u0^2 + u0 = u0^2 + 3u0 - u1
        expected0 = u[0] ** 2 + 3.0 * u[0] - u[1]
        expected1 = u[1] ** 2 + 3.0 * u[1] - u[0]
        np.testing.assert_allclose(residual, [expected0, expected1], atol=1e-14)

    def test_manufactured_solution_recovered(self):
        rng = np.random.default_rng(1)
        target = rng.uniform(-0.5, 0.5, 8)
        base = ReactionDiffusion1D(num_nodes=8, diffusion=1.0, left=0.1, right=-0.1)
        system = base.with_forcing_for_solution(target)
        assert system.residual_norm(target) < 1e-12
        result = newton_solve(system, target + 0.05 * rng.standard_normal(8))
        assert result.converged
        np.testing.assert_allclose(result.u, target, atol=1e-8)

    def test_validation(self):
        with pytest.raises(ValueError):
            ReactionDiffusion1D(num_nodes=0)
        with pytest.raises(ValueError):
            ReactionDiffusion1D(num_nodes=2, diffusion=-1.0)
        with pytest.raises(ValueError):
            ReactionDiffusion1D(num_nodes=2, forcing=np.zeros(3))


class TestPoisson:
    def test_matrix_is_symmetric(self):
        grid = Grid2D.square(5)
        problem = PoissonProblem(grid, np.ones(grid.shape))
        dense = problem.matrix().to_dense()
        np.testing.assert_allclose(dense, dense.T, atol=1e-12)

    def test_manufactured_solution(self):
        # u(x, y) = sin(pi x) sin(pi y) on the unit square.
        n = 15
        spacing = 1.0 / (n + 1)
        grid = Grid2D.square(n, spacing=spacing)
        xs, ys = grid.interior_meshgrid()
        exact = np.sin(np.pi * xs) * np.sin(np.pi * ys)
        forcing = 2.0 * np.pi**2 * exact
        problem = PoissonProblem(grid, forcing)
        result = problem.solve(tol=1e-12)
        assert result.converged
        field = problem.solution_field(result)
        assert np.max(np.abs(field - exact)) < 0.01

    def test_boundary_contribution(self):
        # Constant boundary value c with zero forcing: solution is c.
        grid = Grid2D.square(6)
        boundary = DirichletBoundary.constant(grid, 2.0)
        problem = PoissonProblem(grid, np.zeros(grid.shape), boundary=boundary)
        result = problem.solve(tol=1e-12)
        assert result.converged
        np.testing.assert_allclose(problem.solution_field(result), 2.0, atol=1e-8)

    def test_helmholtz_shift_reduces_solution(self):
        grid = Grid2D.square(6)
        forcing = np.ones(grid.shape)
        plain = PoissonProblem(grid, forcing).solve()
        shifted = PoissonProblem(grid, forcing, helmholtz_shift=5.0).solve()
        assert np.max(np.abs(shifted.x)) < np.max(np.abs(plain.x))

    def test_preconditioned_solve_fewer_iterations(self):
        grid = Grid2D.square(12)
        problem = PoissonProblem(grid, np.ones(grid.shape))
        matrix = problem.matrix()
        plain = problem.solve(tol=1e-10)
        pre = problem.solve(preconditioner=Ilu0Preconditioner(matrix), tol=1e-10)
        assert pre.converged
        assert pre.iterations < plain.iterations

    def test_validation(self):
        grid = Grid2D.square(3)
        with pytest.raises(ValueError):
            PoissonProblem(grid, np.zeros((2, 2)))
        with pytest.raises(ValueError):
            PoissonProblem(grid, np.zeros(grid.shape), helmholtz_shift=-1.0)


class TestBdf2:
    def test_step_matches_closed_form(self):
        # dy/dt = -2y: BDF2 gives y2 = (4 y1 - y0) / (3 + 2 dt k).
        op = linear_decay_operator(rate=2.0)
        from repro.pde.timestepping import Bdf2System

        dt = 0.1
        y0, y1 = np.array([1.0]), np.array([np.exp(-2.0 * 0.1)])
        system = Bdf2System(op, y1, y0, dt)
        result = newton_solve(system, y1)
        assert result.converged
        expected = (4.0 * y1[0] - y0[0]) / (3.0 + 2.0 * dt * 2.0)
        assert result.u[0] == pytest.approx(expected, rel=1e-12)

    def test_second_order_convergence(self):
        from repro.pde.timestepping import Bdf2System, CrankNicolsonSystem

        rate = 1.0
        op = linear_decay_operator(rate=rate)

        def integrate(dt, steps):
            y_prev2 = np.array([1.0])
            # CN start-up step.
            y_prev = newton_solve(CrankNicolsonSystem(op, y_prev2, dt), y_prev2).u
            for _ in range(steps - 1):
                system = Bdf2System(op, y_prev, y_prev2, dt)
                y_prev2, y_prev = y_prev, newton_solve(system, y_prev).u
            return y_prev[0]

        exact = np.exp(-1.0)
        err_coarse = abs(integrate(0.1, 10) - exact)
        err_fine = abs(integrate(0.05, 20) - exact)
        assert 3.0 < err_coarse / err_fine < 5.0  # ~2^2

    def test_validation(self):
        from repro.pde.timestepping import Bdf2System

        op = linear_decay_operator()
        with pytest.raises(ValueError):
            Bdf2System(op, np.ones(1), np.ones(1), dt=0.0)
        with pytest.raises(ValueError):
            Bdf2System(op, np.ones(2), np.ones(1), dt=0.1)

    def test_sparse_jacobian_supported(self):
        from repro.linalg.sparse import eye as sparse_eye
        from repro.pde.timestepping import Bdf2System

        op = SpatialOperator(
            dimension=3, apply=lambda y: 2.0 * y, jacobian=lambda y: sparse_eye(3, scale=2.0)
        )
        system = Bdf2System(op, np.ones(3), np.ones(3), dt=0.3)
        jac = system.jacobian(np.ones(3))
        np.testing.assert_allclose(jac.to_dense(), np.eye(3) * (1.0 + 0.4), atol=1e-12)
