"""Compile nonlinear systems onto the analog fabric.

The digital host "prepares the analog accelerator for equation solving
by configuring the chip so the analog signals in the chip represent the
nonlinear system of equations F(u) and the Jacobian matrix J_F(u)"
(Section 5.1). The compiler's jobs:

* decide the tile allocation (one PDE variable per tile, Section 5.2),
* account the per-variable component usage by circuit role — nonlinear
  function, Jacobian, quotient feedback loop, Newton feedback loop —
  the numbers reported in Table 3,
* wire tiles together following the sparse neighbour pattern of the
  stencil, and
* hand the execution engine the per-variable datapath distortions of
  the allocated hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.analog.fabric import Fabric, FabricCapacityError, Tile
from repro.nonlinear.systems import NonlinearSystem
from repro.pde.burgers import BurgersStencilSystem

__all__ = ["ResourceCount", "CompiledProblem", "compile_system", "compile_burgers", "TABLE3_ROLES"]

# Circuit roles of Figure 1, the columns of Table 3.
TABLE3_ROLES = (
    "nonlinear function",
    "Jacobian matrix",
    "quotient feedback loop",
    "Newton method feedback loop",
)

# Per-PDE-variable component usage by role for a quadratic stencil like
# Burgers' (Table 3 of the paper). The derivation: the per-variable
# nonlinear function u*u_x + v*u_y - Lap(u)/Re needs 4 multipliers (two
# products, two coefficient gains) fed by 2 fanout copies of the state
# and 3 DAC constants; the Jacobian row re-uses fanned-out signals with
# 3 more multipliers and 1 DAC; the quotient (gradient-descent) loop
# needs its own integrator, 3 fanouts and 1 multiplier; the Newton loop
# closes with the state integrator and 3 fanouts.
_QUADRATIC_STENCIL_USAGE: Dict[str, Tuple[int, int, int, int]] = {
    "integrator": (0, 0, 1, 1),
    "fanout": (2, 0, 3, 3),
    "multiplier": (4, 3, 1, 0),
    "DAC": (3, 1, 0, 0),
    "tile input": (4, 4, 0, 0),
    "tile output": (4, 0, 4, 3),
}


@dataclass(frozen=True)
class ResourceCount:
    """Component usage per PDE variable, by circuit role (Table 3)."""

    usage: Dict[str, Tuple[int, int, int, int]] = field(
        default_factory=lambda: dict(_QUADRATIC_STENCIL_USAGE)
    )

    def per_variable_total(self, component: str) -> int:
        return int(sum(self.usage[component]))

    def components(self) -> List[str]:
        return list(self.usage.keys())

    def role_counts(self, component: str) -> Tuple[int, int, int, int]:
        return self.usage[component]


@dataclass
class CompiledProblem:
    """A nonlinear system mapped onto allocated fabric tiles."""

    system: NonlinearSystem
    fabric: Fabric
    tiles: List[Tile]
    resources: ResourceCount
    board_level_connections: int

    @property
    def num_variables(self) -> int:
        return self.system.dimension

    def equation_gain_errors(self) -> np.ndarray:
        """Per-equation relative gain error from each variable's tile."""
        return np.array([tile.datapath_gain_error() for tile in self.tiles])

    def equation_offsets(self) -> np.ndarray:
        """Per-equation offsets from each variable's tile datapath."""
        return np.array([tile.datapath_offset() for tile in self.tiles])

    def state_gain_errors(self) -> np.ndarray:
        """Per-variable gain error of the state integrator."""
        return np.array([tile.integrators[0].gain_error for tile in self.tiles])

    def release(self) -> None:
        for tile in self.tiles:
            tile.release()


def compile_system(
    fabric: Fabric, system: NonlinearSystem, owner: str = "problem"
) -> CompiledProblem:
    """Map a generic nonlinear system: one variable per tile.

    Raises :class:`~repro.analog.fabric.FabricCapacityError` when the
    system needs more tiles than the board has — the hard area limit
    that motivates the red-black decomposition of Section 6.3.
    """
    if not fabric.calibrated:
        fabric.calibrate()
    tiles = fabric.allocate_tiles(system.dimension, owner)
    resources = ResourceCount()
    for tile in tiles:
        tile.claim_ports(
            resources.per_variable_total("tile input"),
            resources.per_variable_total("tile output"),
        )
    # Dense wiring assumption for generic systems: every pair of
    # variables may interact, so route tile outputs pessimistically.
    connections = 0
    for i, tile in enumerate(tiles):
        for j in range(i + 1, len(tiles)):
            fabric.connect(f"{tile.name}.out", f"{tiles[j].name}.in")
            connections += 1
    fabric.cfg_commit()
    return CompiledProblem(
        system=system,
        fabric=fabric,
        tiles=tiles,
        resources=resources,
        board_level_connections=connections,
    )


def compile_burgers(
    fabric: Fabric, system: BurgersStencilSystem, owner: str = "burgers"
) -> CompiledProblem:
    """Map a Burgers stencil: u-field tiles on one chip group, v-field
    tiles on another, with sparse neighbour-to-neighbour routing.

    "One analog accelerator chip stores and computes on u ... and the
    other does the same for v. The interaction between these two fields
    is sparse, so they can be connected via circuit board-level
    connections." (Section 5.2)
    """
    if not fabric.calibrated:
        fabric.calibrate()
    grid = system.grid
    n = grid.num_nodes
    tiles = fabric.allocate_tiles(system.dimension, owner)
    resources = ResourceCount()
    for tile in tiles:
        tile.claim_ports(
            resources.per_variable_total("tile input"),
            resources.per_variable_total("tile output"),
        )
    u_tiles, v_tiles = tiles[:n], tiles[n:]

    board_links = 0
    for j in range(grid.ny):
        for i in range(grid.nx):
            k = grid.flat_index(i, j)
            # Five-point neighbour routing within each field.
            for field_tiles in (u_tiles, v_tiles):
                if i + 1 < grid.nx:
                    fabric.connect(
                        f"{field_tiles[k].name}.out",
                        f"{field_tiles[grid.flat_index(i + 1, j)].name}.in",
                    )
                if j + 1 < grid.ny:
                    fabric.connect(
                        f"{field_tiles[k].name}.out",
                        f"{field_tiles[grid.flat_index(i, j + 1)].name}.in",
                    )
            # Cross-field coupling u <-> v at the same node crosses the
            # chip boundary: a board-level connection.
            fabric.connect(f"{u_tiles[k].name}.out", f"{v_tiles[k].name}.in", board_level=True)
            fabric.connect(f"{v_tiles[k].name}.out", f"{u_tiles[k].name}.in", board_level=True)
            board_links += 2
    fabric.cfg_commit()
    return CompiledProblem(
        system=system,
        fabric=fabric,
        tiles=tiles,
        resources=resources,
        board_level_connections=board_links,
    )
