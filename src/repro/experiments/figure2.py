"""Figure 2: continuous Newton basins for ``u^3 - 1`` on the chip.

The paper's figure is a 256x256 map of the complex plane colored by the
cube root each chip run returns; its claim is that "the convergence
basins are more contiguous compared to those in classical or damped
Newton methods". The driver computes the continuous Newton map
(with the analog noise level), the classical Newton map, and a damped
Newton map, and reports contiguity scores plus root-area fractions.
An ASCII rendering shows the basin geometry directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.nonlinear.basins import (
    BasinMap,
    contiguity_score,
    continuous_newton_basins,
    newton_iteration_basins,
)
from repro.reporting import ascii_table

__all__ = ["Figure2Result", "run_figure2", "render_basin_ascii"]

_GLYPHS = {-1: ".", 0: "#", 1: "o", 2: "+"}


def render_basin_ascii(basins: BasinMap, max_size: int = 48) -> str:
    """Downsampled ASCII art of a basin map (for terminal inspection)."""
    labels = basins.labels
    step = max(1, labels.shape[0] // max_size)
    sampled = labels[::step, ::step]
    lines = ["".join(_GLYPHS.get(int(v), "?") for v in row) for row in sampled[::-1]]
    return "\n".join(lines)


@dataclass
class Figure2Result:
    maps: Dict[str, BasinMap]
    scores: Dict[str, float]

    def rows(self) -> List[dict]:
        return [
            {
                "method": name,
                "contiguity score": self.scores[name],
                "converged fraction": self.maps[name].converged_fraction,
                "root area balance (min/max)": float(
                    np.min(self.maps[name].root_fractions())
                    / max(np.max(self.maps[name].root_fractions()), 1e-12)
                ),
            }
            for name in self.maps
        ]

    def render(self) -> str:
        table = ascii_table(self.rows())
        art = render_basin_ascii(self.maps["continuous Newton (analog)"])
        return f"{table}\n\ncontinuous Newton basin map (analog noise):\n{art}"


def run_figure2(resolution: int = 96, noise_level: float = 1e-3, seed: int = 0) -> Figure2Result:
    """Compute the three basin maps of the Figure 2 discussion.

    The paper's figure is 256x256; the default here is smaller for
    bench runtime — pass ``resolution=256`` for the full-size map.
    """
    maps = {
        "classical Newton (digital)": newton_iteration_basins(resolution=resolution, damping=1.0),
        "damped Newton (digital, h=0.25)": newton_iteration_basins(
            resolution=resolution, damping=0.25, max_iterations=800
        ),
        "continuous Newton (analog)": continuous_newton_basins(
            resolution=resolution, noise_level=noise_level, seed=seed
        ),
    }
    scores = {name: contiguity_score(m.labels) for name, m in maps.items()}
    return Figure2Result(maps=maps, scores=scores)
