"""Continuous-time execution of compiled problems (the accelerator run).

A run proceeds exactly as on the prototype board (Figure 4):

1. the problem is scaled into the dynamic range (Section 5.3),
2. DACs program constants and integrator initial conditions
   (quantized to DAC resolution),
3. the configuration is committed and the integrators released: the
   fabric's signals evolve as the continuous Newton ODE, *distorted* by
   the allocated tiles' post-calibration gain errors and offsets,
4. when the integrator inputs settle, ADCs measure the outputs
   (quantization + thermal noise, averaged over repeats),
5. the digital host unscales the measurement.

The distortion model: with per-equation datapath gains ``g`` and
offsets ``c``, and per-state integrator gains ``h``, the hardware
solves the *perturbed* system

    D(w) = diag(1 + g) * F(diag(1 + h) * w) + c = 0

whose root differs from the true scaled root by O(g, h, c) — this root
shift plus ADC quantization reproduces the error distribution the paper
measures in Figure 6 (total RMS 5.38 %).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.analog.calibration import CalibrationConfig
from repro.analog.compiler import CompiledProblem, compile_burgers, compile_system
from repro.analog.fabric import Fabric
from repro.analog.health import (
    NONFINITE_QUALITY,
    DegradationModel,
    DegradationSchedule,
    HealthMonitor,
    SeedQuality,
    SeedQualityGate,
)
from repro.analog.noise import NoiseModel
from repro.analog.scaling import ScaledSystem, required_scale
from repro.nonlinear.continuous_newton import continuous_newton_solve
from repro.nonlinear.homotopy import davidenko_solve
from repro.nonlinear.systems import NonlinearSystem
from repro.pde.burgers import BurgersStencilSystem
from repro.trace.tracer import TracerLike, as_tracer

__all__ = ["AnalogSolveResult", "AnalogAccelerator", "solution_error", "DistortedSystem"]


def solution_error(analog: np.ndarray, digital: np.ndarray, scale: float = 1.0) -> float:
    """The paper's Equation 6 error metric, in scaled (dynamic-range)
    units so the result reads directly as a fraction of full scale:

        sqrt( sum((u_a - u_d)^2) / N ) / scale
    """
    analog = np.asarray(analog, dtype=float)
    digital = np.asarray(digital, dtype=float)
    if analog.shape != digital.shape:
        raise ValueError("analog and digital solutions must have the same shape")
    diff = analog - digital
    if not np.all(np.isfinite(diff)):
        # A saturated or dead-tile seed can carry NaN/Inf; the error
        # metric must stay finite (and huge) so callers can compare and
        # reject it without non-finite values leaking into Newton.
        bound = 1e6 * float(scale)
        diff = np.nan_to_num(diff, nan=bound, posinf=bound, neginf=-bound)
    return float(np.sqrt(np.mean(diff**2)) / scale)


class DistortedSystem(NonlinearSystem):
    """A system as computed by imperfect analog hardware."""

    def __init__(
        self,
        inner: NonlinearSystem,
        equation_gains: np.ndarray,
        state_gains: np.ndarray,
        offsets: np.ndarray,
    ):
        self.inner = inner
        self.dimension = inner.dimension
        self._eq_gain = 1.0 + np.asarray(equation_gains, dtype=float)
        self._state_gain = 1.0 + np.asarray(state_gains, dtype=float)
        self._offsets = np.asarray(offsets, dtype=float)
        for name, arr in (
            ("equation_gains", self._eq_gain),
            ("state_gains", self._state_gain),
            ("offsets", self._offsets),
        ):
            if arr.shape != (self.dimension,):
                raise ValueError(f"{name} must have shape ({self.dimension},)")

    def residual(self, w: np.ndarray) -> np.ndarray:
        w = self._validate(w)
        return self._eq_gain * self.inner.residual(self._state_gain * w) + self._offsets

    def jacobian(self, w: np.ndarray):
        w = self._validate(w)
        jac = self.inner.jacobian(self._state_gain * w)
        if isinstance(jac, np.ndarray):
            return (self._eq_gain[:, None] * jac) * self._state_gain[None, :]
        # Preserve sparsity: scale rows by equation gains and columns by
        # state gains directly on the CSR data array.
        from repro.linalg.sparse import CsrMatrix as _Csr

        row_ids = np.repeat(np.arange(jac.num_rows), np.diff(jac.indptr))
        data = jac.data * self._eq_gain[row_ids] * self._state_gain[jac.indices]
        return _Csr(shape=jac.shape, indptr=jac.indptr, indices=jac.indices, data=data)


@dataclass
class AnalogSolveResult:
    """Outcome of one accelerator run.

    ``settle_time_units`` is in the continuous Newton flow's natural
    time; :class:`repro.perf.analog_model.AnalogTimingModel` converts it
    to seconds using the chip's time constant. ``dac_writes`` and
    ``adc_reads`` account the digital-analog data transmission of the
    run — per Section 5.1, "only new problem parameters and results
    need to be transmitted between analog accelerator runs", the same
    interface cost shape as a GPU offload.
    """

    solution: np.ndarray
    converged: bool
    settle_time_units: float
    scale: float
    scaled_solution: np.ndarray
    residual_norm: float
    dac_writes: int = 0
    adc_reads: int = 0
    reconfigured: bool = True
    """False when the run reused the previous configuration (same
    stencil connectivity, new constants) — the steady-state case of a
    solver issuing many instances of the same kind of problem."""
    trajectory: Optional[object] = None
    """When trajectory recording is requested: the
    :class:`repro.ode.solution.OdeSolution` of the scaled state during
    the run — the oscilloscope view of the settling transient."""
    seed_quality: Optional[SeedQuality] = None
    """Verdict of the accelerator's :class:`SeedQualityGate` on this
    run's solution as a Newton seed (``None`` when gating is off)."""
    seed_accepted: bool = True
    """Convenience mirror of ``seed_quality.accepted``. Downstream
    solvers treat a *converged but rejected* result as "do not hand
    this to undamped Newton" and skip straight to damped recovery."""
    saturated_fraction: float = 0.0
    """Fraction of variables measured at the ADC rails — the
    saturation evidence the health monitor accumulates per tile."""

    @property
    def dimension(self) -> int:
        return int(self.solution.shape[0])


class AnalogAccelerator:
    """A simulated accelerator board with a high-level solve API.

    Parameters
    ----------
    noise:
        Error-process magnitudes of this board's silicon.
    seed:
        Die seed: one seed = one physical board (its mismatch pattern
        is fixed across runs, as on real silicon).
    num_chips:
        Board size; ``None`` sizes the board to each problem (the
        paper's scaled-up modeled accelerators).
    fault_hook:
        Test/chaos seam: a callable applied to every
        :class:`AnalogSolveResult` before it is returned from a run.
        It may mutate the result in place (e.g. corrupt the measured
        solution while leaving ``converged`` set — the silently bad
        seed the degradation ladder must survive) and/or return a
        replacement result; returning ``None`` keeps the mutated
        original. ``None`` (the default) costs nothing. The hook runs
        *after* seed gating and health observation — a silent
        corruption is exactly the fault the gate cannot see.
    degradation:
        A :class:`repro.analog.health.DegradationModel` (wrapped in a
        fresh schedule) or :class:`DegradationSchedule` aging this
        board. The schedule persists across solves even though a
        ``num_chips=None`` accelerator builds a fresh fabric per solve
        — drift is keyed by component name, and the names are stable.
    health:
        The :class:`repro.analog.health.HealthMonitor` watching this
        board; a default monitor (tolerances from ``calibration``) is
        created when omitted.
    seed_gate:
        The :class:`repro.analog.health.SeedQualityGate` judging every
        converged solution as a Newton seed. The default gate only
        rejects seeds worse than the naive initial guess.
    """

    def __init__(
        self,
        noise: Optional[NoiseModel] = None,
        seed: int = 0,
        num_chips: Optional[int] = None,
        calibration: Optional[CalibrationConfig] = None,
        adc_repeats: int = 4,
        fault_hook: Optional[Callable[["AnalogSolveResult"], Optional["AnalogSolveResult"]]] = None,
        degradation: Optional[object] = None,
        health: Optional[HealthMonitor] = None,
        seed_gate: Optional[SeedQualityGate] = None,
    ):
        self.noise = noise or NoiseModel()
        self.seed = int(seed)
        self.num_chips = num_chips
        self.calibration = calibration or CalibrationConfig()
        if adc_repeats <= 0:
            raise ValueError("adc_repeats must be positive")
        self.adc_repeats = int(adc_repeats)
        self.fault_hook = fault_hook
        if isinstance(degradation, DegradationModel):
            degradation = DegradationSchedule(degradation)
        self.degradation: Optional[DegradationSchedule] = degradation
        self.health = health if health is not None else HealthMonitor(calibration=self.calibration)
        self.seed_gate = seed_gate if seed_gate is not None else SeedQualityGate()
        self._run_rng = np.random.default_rng(seed + 977)

    def _apply_fault_hook(self, result: "AnalogSolveResult") -> "AnalogSolveResult":
        if self.fault_hook is None:
            return result
        replaced = self.fault_hook(result)
        return result if replaced is None else replaced

    def _fabric_for(self, dimension: int) -> Fabric:
        if self.num_chips is not None:
            fabric = Fabric(
                num_chips=self.num_chips,
                noise=self.noise,
                seed=self.seed,
                degradation=self.degradation,
            )
            fabric.calibrate(self.calibration)
            self.health.apply_quarantine(fabric)
            return fabric
        # Auto-sized board: grow past quarantined tiles so degradation
        # shrinks the *margin*, not the solvable problem size (fixed
        # boards instead surface FabricCapacityError honestly).
        from repro.analog.fabric import TILES_PER_CHIP

        chips = (dimension + TILES_PER_CHIP - 1) // TILES_PER_CHIP
        max_chips = chips + (len(self.health.quarantined) + TILES_PER_CHIP - 1) // TILES_PER_CHIP
        while True:
            fabric = Fabric(
                num_chips=chips,
                noise=self.noise,
                seed=self.seed,
                degradation=self.degradation,
            )
            self.health.apply_quarantine(fabric)
            if len(fabric.free_tiles()) >= dimension or chips >= max_chips:
                break
            chips += 1
        fabric.calibrate(self.calibration)
        return fabric

    def _observe_health(
        self,
        compiled: CompiledProblem,
        solution: np.ndarray,
        residual_vector: np.ndarray,
        residual_norm: float,
        reference_norm: float,
        settle_time_units: float,
        converged: bool,
        measured_w: np.ndarray,
        scale: float,
        tracer: TracerLike,
    ) -> tuple:
        """Gate the seed, fold the run into the monitor, remediate.

        Returns ``(SeedQuality, saturated_fraction)``. Emits the
        ``analog_health`` span and the three reconciliation counters
        (``seeds_rejected``, ``tiles_quarantined``, ``recalibrations``).
        """
        quality = self.seed_gate.assess(solution, residual_norm, reference_norm)
        step = 2.0 * self.noise.full_scale / 2**self.noise.adc_bits
        saturated = np.abs(np.asarray(measured_w, dtype=float)) >= self.noise.full_scale - step
        scaled_residuals = np.abs(
            np.nan_to_num(
                np.asarray(residual_vector, dtype=float) / scale,
                nan=NONFINITE_QUALITY,
                posinf=NONFINITE_QUALITY,
                neginf=-NONFINITE_QUALITY,
            )
        )
        fabric = compiled.fabric
        rejected = converged and not quality.accepted
        with tracer.span("analog_health", dimension=len(residual_vector)) as span:
            if rejected:
                self.health.note_seed_rejected()
                tracer.counter("seeds_rejected")
            newly_flagged = self.health.observe_solve(
                [tile.name for tile in compiled.tiles],
                scaled_residuals,
                settle_time_units,
                saturated,
                settled=converged,
            )
            newly_quarantined = self.health.quarantine_flagged()
            if newly_quarantined:
                tracer.counter("tiles_quarantined", len(newly_quarantined))
            recalibrated = False
            if self.health.should_recalibrate(fabric.num_tiles):
                # Drift re-nulls; hardware faults (stuck tiles, dead
                # DACs) persist in the schedule and will re-flag.
                if self.degradation is not None:
                    self.degradation.reset()
                self.health.note_recalibration()
                tracer.counter("recalibrations")
                recalibrated = True
            span.update(
                seed_quality=float(quality.quality),
                seed_accepted=bool(quality.accepted),
                seed_rejected=rejected,
                newly_flagged=len(newly_flagged),
                newly_quarantined=len(newly_quarantined),
                quarantine_pressure=self.health.quarantine_pressure(fabric.num_tiles),
                recalibrated=recalibrated,
                degradation_step=0 if self.degradation is None else self.degradation.step,
            )
        return quality, float(np.mean(saturated))

    def solve(
        self,
        system: NonlinearSystem,
        initial_guess: Optional[np.ndarray] = None,
        value_bound: float = 3.0,
        time_limit: float = 60.0,
        derivative_tolerance: float = 1e-5,
        record_trajectory: bool = False,
        tracer: Optional[TracerLike] = None,
        settle_max_steps: int = 1_000_000,
    ) -> AnalogSolveResult:
        """Run the continuous Newton method on the hardware model.

        ``value_bound`` is the expected magnitude of problem values,
        used for dynamic-range scaling (the paper scales the +-3.0
        constants of its random problems into the analog range).
        ``tracer`` records one ``analog_settle`` span per run with the
        settled trajectory's integrator steps as ``ode_step`` children.
        """
        fabric = self._fabric_for(system.dimension)
        if isinstance(system, BurgersStencilSystem):
            compiled = compile_burgers(fabric, system)
        else:
            compiled = compile_system(fabric, system)
        try:
            return self._execute(
                compiled,
                initial_guess,
                value_bound,
                time_limit,
                derivative_tolerance,
                record_trajectory=record_trajectory,
                tracer=tracer,
                settle_max_steps=settle_max_steps,
            )
        finally:
            fabric.exec_stop()
            compiled.release()

    def solve_with_homotopy(
        self,
        simple: NonlinearSystem,
        hard: NonlinearSystem,
        start_root: np.ndarray,
        value_bound: float = 3.0,
        tracer: Optional[TracerLike] = None,
    ) -> AnalogSolveResult:
        """Run homotopy continuation on the hardware model (Section 3.2).

        "We can instead solve this ODE on our analog accelerator
        prototype chip" — the lambda ramp is a swept DAC input and the
        Davidenko + corrector dynamics run on the same distorted
        fabric as continuous Newton. Both the simple and hard systems
        are computed by the *same* allocated tiles, so they share one
        set of datapath errors, exactly as on silicon.
        """
        if simple.dimension != hard.dimension:
            raise ValueError("simple and hard systems must share a dimension")
        tracer = as_tracer(tracer)
        fabric = self._fabric_for(hard.dimension)
        compiled = compile_system(fabric, hard, owner="homotopy")
        try:
            scale = required_scale(value_bound, self.noise)
            start_root = np.asarray(start_root, dtype=float)
            w0 = self.noise.dac_write(start_root / scale)
            # As in _execute: age the board first, then read the errors
            # the run is actually distorted by.
            compiled.fabric.exec_start()
            eq_gains = compiled.equation_gain_errors()
            state_gains = compiled.state_gain_errors()
            offsets = compiled.equation_offsets()
            distorted_simple = DistortedSystem(
                ScaledSystem(simple, scale), eq_gains, state_gains, offsets
            )
            distorted_hard = DistortedSystem(
                ScaledSystem(hard, scale), eq_gains, state_gains, offsets
            )
            flow = davidenko_solve(
                distorted_simple,
                distorted_hard,
                w0,
                rtol=1e-6,
                atol=1e-9,
                polish=False,
                residual_tolerance=1e-1,
            )
            thermal = (
                self.noise.thermal_noise_sigma
                / np.sqrt(self.adc_repeats)
                * self._run_rng.standard_normal(flow.u.shape)
            )
            measured = self.noise.adc_read(flow.u + thermal)
            solution = scale * measured
            residual_vector = np.asarray(hard.residual(solution), dtype=float)
            residual_norm = float(np.linalg.norm(residual_vector))
            quality, saturated_fraction = self._observe_health(
                compiled,
                solution,
                residual_vector,
                residual_norm,
                reference_norm=hard.residual_norm(start_root),
                settle_time_units=1.0,
                converged=flow.converged,
                measured_w=measured,
                scale=scale,
                tracer=tracer,
            )
            return self._apply_fault_hook(AnalogSolveResult(
                solution=solution,
                converged=flow.converged,
                settle_time_units=1.0,  # the lambda ramp spans one unit
                scale=scale,
                scaled_solution=measured,
                residual_norm=residual_norm,
                seed_quality=quality,
                seed_accepted=quality.accepted,
                saturated_fraction=saturated_fraction,
            ))
        finally:
            fabric.exec_stop()
            compiled.release()

    def solve_batch(
        self,
        systems,
        initial_guesses=None,
        value_bound: float = 3.0,
        time_limit: float = 60.0,
        derivative_tolerance: float = 1e-5,
        tracer: Optional[TracerLike] = None,
        settle_max_steps: int = 1_000_000,
    ):
        """Solve a sequence of same-shaped problems on one configuration.

        "The configuration of the analog accelerator remains the same
        when solving for different instances of the same kind of PDE.
        ... Only new problem parameters and results need to be
        transmitted between analog accelerator runs." (Section 5.1)

        The fabric is compiled once; each subsequent run reprograms only
        DAC constants and initial conditions (``reconfigured = False``
        on the returned results after the first), and the per-run
        transfer accounting shows the steady-state interface cost.
        """
        systems = list(systems)
        if not systems:
            raise ValueError("systems must be nonempty")
        dimension = systems[0].dimension
        if any(s.dimension != dimension for s in systems):
            raise ValueError("all systems in a batch must share a dimension")
        if initial_guesses is None:
            initial_guesses = [None] * len(systems)
        if len(initial_guesses) != len(systems):
            raise ValueError("one initial guess per system (or None)")
        fabric = self._fabric_for(dimension)
        if isinstance(systems[0], BurgersStencilSystem):
            compiled = compile_burgers(fabric, systems[0])
        else:
            compiled = compile_system(fabric, systems[0])
        results = []
        try:
            for index, (system, guess) in enumerate(zip(systems, initial_guesses)):
                result = self._execute(
                    compiled,
                    guess,
                    value_bound,
                    time_limit,
                    derivative_tolerance,
                    system=system,
                    tracer=tracer,
                    settle_max_steps=settle_max_steps,
                )
                result.reconfigured = index == 0
                results.append(result)
                fabric.exec_stop()
        finally:
            fabric.exec_stop()
            compiled.release()
        return results

    def _execute(
        self,
        compiled: CompiledProblem,
        initial_guess: Optional[np.ndarray],
        value_bound: float,
        time_limit: float,
        derivative_tolerance: float,
        system: Optional[NonlinearSystem] = None,
        record_trajectory: bool = False,
        tracer: Optional[TracerLike] = None,
        settle_max_steps: int = 1_000_000,
    ) -> AnalogSolveResult:
        tracer = as_tracer(tracer)
        system = compiled.system if system is None else system
        scale = required_scale(value_bound, self.noise)
        scaled = ScaledSystem(system, scale)
        if initial_guess is None:
            guess_physical = np.zeros(system.dimension)
            w0 = np.zeros(system.dimension)
        else:
            guess_physical = np.asarray(initial_guess, dtype=float)
            w0 = scaled.to_scaled(guess_physical)
        # Initial conditions are programmed through DACs.
        w0 = self.noise.dac_write(w0)

        # exec_start *before* reading the datapath errors: each start
        # ages the board one degradation step, and the run must see the
        # errors as they stand when the integrators are released.
        compiled.fabric.exec_start()
        distorted = DistortedSystem(
            scaled,
            equation_gains=compiled.equation_gain_errors(),
            state_gains=compiled.state_gain_errors(),
            offsets=compiled.equation_offsets(),
        )
        # Bounded inner kernel: the flow's direction only needs to be
        # accurate to the integrator's tolerance, and runaway Krylov
        # fallbacks near singular Jacobians would dominate simulation
        # wall-clock without changing the settled state.
        from repro.nonlinear.newton import make_sparse_linear_solver

        flow_solver = make_sparse_linear_solver(tol=1e-8, max_iterations=300)
        # Convergence is judged relative to the starting residual: at
        # extreme Reynolds numbers the scaled operator's magnitude (the
        # 1/Re viscous coefficients) inflates absolute residuals without
        # the settled *solution* being any worse.
        initial_residual = float(np.linalg.norm(distorted.residual(w0)))
        with tracer.span("analog_settle", dimension=system.dimension) as settle_span:
            flow = continuous_newton_solve(
                distorted,
                w0,
                time_limit=time_limit,
                fidelity="behavioral",
                derivative_tolerance=derivative_tolerance,
                dwell=0.05,
                rtol=1e-6,
                atol=1e-9,
                linear_solver=flow_solver,
                residual_tolerance=max(1e-2, 1e-3 * initial_residual),
                max_steps=settle_max_steps,
            )
            settle_span.update(
                converged=flow.converged,
                settle_time_units=flow.settle_time,
                residual_norm=flow.residual_norm,
                rhs_evaluations=flow.solution.rhs_evaluations,
            )
            if tracer.active:
                # The integrator's accepted steps, re-emitted as child
                # spans: their *wall* duration is ~0 (the run already
                # happened); the flow-time step lives in the attrs.
                ts = flow.solution.ts
                tracer.counter("ode_steps", max(len(ts) - 1, 0))
                for tau0, tau1 in zip(ts[:-1], ts[1:]):
                    with tracer.span("ode_step") as step_span:
                        step_span.update(tau=float(tau0), dtau=float(tau1 - tau0))
        # ADC readout: thermal noise averaged over repeats, then
        # quantization (bias not removed by averaging).
        settled_w = flow.u
        thermal = (
            self.noise.thermal_noise_sigma
            / np.sqrt(self.adc_repeats)
            * self._run_rng.standard_normal(settled_w.shape)
        )
        measured_w = self.noise.adc_read(settled_w + thermal)
        solution = scaled.to_physical(measured_w)
        residual_vector = np.asarray(system.residual(solution), dtype=float)
        residual_norm = float(np.linalg.norm(residual_vector))
        quality, saturated_fraction = self._observe_health(
            compiled,
            solution,
            residual_vector,
            residual_norm,
            reference_norm=system.residual_norm(guess_physical),
            settle_time_units=flow.settle_time,
            converged=flow.converged,
            measured_w=measured_w,
            scale=scale,
            tracer=tracer,
        )
        n = system.dimension
        resources = compiled.resources
        return self._apply_fault_hook(AnalogSolveResult(
            solution=solution,
            converged=flow.converged,
            settle_time_units=flow.settle_time,
            scale=scale,
            scaled_solution=measured_w,
            residual_norm=residual_norm,
            # Transfers per run: initial conditions plus the Table 3
            # per-variable constant DACs in; one averaged ADC sample
            # stream per variable out.
            dac_writes=n + n * resources.per_variable_total("DAC"),
            adc_reads=n * self.adc_repeats,
            trajectory=flow.solution if record_trajectory else None,
            seed_quality=quality,
            seed_accepted=quality.accepted,
            saturated_fraction=saturated_fraction,
        ))
