"""Tracing the Bratu fold: solution multiplicity on a real PDE.

Section 3 of the paper motivates homotopy methods with the hard
question "how many solutions should there be?" — this example shows the
question arising in an actual PDE: the 1-D Bratu problem

    -u'' = lam e^u,  u(0) = u(1) = 0

has TWO solutions for small lam, ONE at the fold (lam* ~ 3.51), and
NONE beyond. The script traces both branches with Newton from
branch-specific guesses, locates the fold by bisection, and shows the
lookup-table (analog function generator) variant of the problem
reproducing the lower branch.

Run:  python examples/bratu_fold.py
"""

import numpy as np

from repro.analog import make_exp_pair
from repro.nonlinear import NewtonOptions, damped_newton_with_restarts, newton_solve
from repro.pde import BRATU_1D_CRITICAL, BratuProblem1D

NODES = 63


def solve_branch(lam, guess):
    problem = BratuProblem1D(num_nodes=NODES, lam=lam)
    result = damped_newton_with_restarts(
        problem, guess, NewtonOptions(tolerance=1e-11, max_iterations=200), min_damping=1.0 / 64.0
    )
    return result if result.converged else None


def trace_branches() -> None:
    print(f"1-D Bratu problem, {NODES} nodes; continuous fold at lam* = {BRATU_1D_CRITICAL:.4f}")
    print(f"{'lambda':>8} | {'lower-branch peak':>17} | {'upper-branch peak':>17}")
    print("-" * 50)
    problem_template = BratuProblem1D(num_nodes=NODES, lam=1.0)
    for lam in (0.5, 1.0, 2.0, 3.0, 3.4, 3.51):
        lower = solve_branch(lam, problem_template.lower_branch_guess())
        upper = solve_branch(lam, problem_template.upper_branch_guess())
        lower_peak = f"{np.max(lower.u):17.6f}" if lower else " " * 13 + "none"
        upper_peak = f"{np.max(upper.u):17.6f}" if upper else " " * 13 + "none"
        print(f"{lam:>8.2f} | {lower_peak} | {upper_peak}")
    print("(the branches approach each other and merge at the fold)\n")


def locate_fold() -> float:
    lo, hi = 3.0, 4.0
    guess = BratuProblem1D(num_nodes=NODES, lam=1.0).lower_branch_guess()
    for _ in range(20):
        mid = (lo + hi) / 2.0
        if solve_branch(mid, guess) is not None:
            lo = mid
        else:
            hi = mid
    fold = (lo + hi) / 2.0
    print(f"fold located by bisection: lam* = {fold:.4f}  (literature: {BRATU_1D_CRITICAL:.4f})")
    return fold


def lookup_table_variant() -> None:
    print("\nAnalog function generator (lookup-table e^u), lam = 2.0:")
    exact_problem = BratuProblem1D(num_nodes=NODES, lam=2.0)
    exact = newton_solve(
        exact_problem, exact_problem.lower_branch_guess(), NewtonOptions(tolerance=1e-11)
    )
    print(f"{'table bits':>10} | {'max deviation from exact solution':>33}")
    print("-" * 48)
    for bits in (6, 8, 10, 12):
        problem = BratuProblem1D(
            num_nodes=NODES, lam=2.0, exp_pair=make_exp_pair((-1.0, 4.0), table_bits=bits)
        )
        result = newton_solve(
            problem, problem.lower_branch_guess(), NewtonOptions(tolerance=1e-7)
        )
        deviation = float(np.max(np.abs(result.u - exact.u))) if result.converged else float("nan")
        print(f"{bits:>10} | {deviation:>33.2e}")
    print("(each extra address bit buys ~4x solution accuracy - the")
    print(" transcendental-nonlinearity cost Section 7 warns about)")


if __name__ == "__main__":
    trace_branches()
    locate_fold()
    lookup_table_variant()
