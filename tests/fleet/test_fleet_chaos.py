"""Fleet chaos tier: a board dies and another drifts past quarantine
mid-batch; the service must still deliver exactly-once.

The board-level mirror of the shard-kill chaos test: the service draws
analog capacity from one shared three-board fleet while

* the deterministic kill seam (``kill_board_after``) takes a board out
  mid-batch, and
* a hot drift model sickens the surviving boards until at least one is
  quarantined at board granularity,

and the guarantees must hold anyway: every request reaches exactly one
terminal outcome (one ``outcome_committed`` per id in the write-ahead
journal), no settle is ever routed to a quarantined or killed board
(the fleet's audit log counts ``routed_while_ineligible``), and the
predictive gate keeps earning its keep (``settles_avoided > 0``).

Everything is explicitly seeded; a failure replays byte-for-byte.
"""

import json

import pytest

from repro.analog.health import DegradationModel
from repro.fleet import FleetConfig, PredictiveSeedGate
from repro.runtime import ProblemSpec, RetryPolicy, SolveRequest
from repro.service import serve_requests

pytestmark = pytest.mark.chaos


def _requests(n, prefix="fc"):
    return [
        SolveRequest(
            f"{prefix}-{i:04d}",
            ProblemSpec.quadratic(1.0 + 0.05 * i, 1.0),
            analog_time_limit=0.5,
        )
        for i in range(n)
    ]


def _committed_counts(journal_dir):
    counts = {}
    for path in sorted(journal_dir.glob("*.journal")):
        for line in path.read_text(encoding="utf-8").splitlines():
            record = json.loads(line)
            if record.get("kind") == "outcome_committed":
                rid = record["request_id"]
                counts[rid] = counts.get(rid, 0) + 1
    return counts


class TestBoardKillAndQuarantineMidBatch:
    def test_exactly_once_with_board_killed_and_board_quarantined(self, tmp_path):
        requests = _requests(24)
        hot = DegradationModel(offset_drift_sigma=0.55, gain_drift_sigma=0.275, seed=7)
        result = serve_requests(
            requests,
            shards=1,
            workers_per_shard=1,
            batch_window=4,
            queue_limit=16,
            seed=0,
            journal_dir=tmp_path,
            retry=RetryPolicy(max_attempts=2, base_delay=0.0, max_delay=0.0, jitter=0.0),
            degradation=hot,
            ladder_kwargs={"settle_max_steps": 2000},
            fleet=FleetConfig(
                boards=3,
                kill_board_after=(2, 8),
                # Pressure 1.0 so a quarantined board STAYS quarantined
                # for the duration — this test is about the routing
                # invariant, not the recalibration exit.
                recalibration_pressure=1.0,
                gate=PredictiveSeedGate(min_observations=2),
            ),
        )

        # Exactly one terminal record per request, all completed: the
        # dead board and the quarantined board cost analog capacity,
        # never answers.
        ids = [record.request_id for record in result.records]
        assert sorted(ids) == sorted(request.request_id for request in requests)
        assert len(ids) == len(set(ids))
        assert result.completed == len(requests)
        assert result.failed == 0
        counts = _committed_counts(tmp_path)
        assert counts == {request.request_id: 1 for request in requests}

        # The chaos landed as scripted: board 2 died mid-batch, and at
        # least one surviving board drifted past quarantine.
        assert result.fleet is not None
        boards = {row["board"]: row for row in result.fleet["boards"]}
        assert boards[2]["killed"]
        assert result.fleet["counters"].get("boards_killed") == 1
        quarantined = [row for row in result.fleet["boards"] if row["quarantined"]]
        assert quarantined, result.fleet
        assert all(row["quarantine_reason"] for row in quarantined)

        # The routing invariant under fire: the audit log shows no
        # settle was ever handed to a quarantined or killed board.
        assert result.fleet["routed_while_ineligible"] == 0

        # The predictive gate vetoed doomed settles along the way.
        assert result.fleet["counters"].get("settles_avoided", 0) > 0
