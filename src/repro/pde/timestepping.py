"""Implicit time-stepping schemes (Section 4.3 of the paper).

The paper deliberately lets the *digital host* do time stepping (rather
than solving the method-of-lines ODEs directly in analog, as historical
hybrid computers did), so the analog accelerator slots into modern PDE
solvers as the per-step nonlinear-system kernel. The schemes here wrap
a generic :class:`SpatialOperator` and produce, for each step, a
:class:`~repro.nonlinear.systems.NonlinearSystem` whose root is the
next time level:

* **Crank-Nicolson** (trapezoidal, second-order): the paper's choice
  for the parabolic viscous Burgers' equation;
* **implicit Euler** (first-order) as the robust comparison scheme;
* **BDF2** (second-order, L-stable) as the Section 7 extension.

:class:`ImplicitStepper` drives any of the three with a single
:class:`~repro.linalg.kernel.LinearKernel` shared across every Newton
step of every time step: the per-step Jacobians ``I + c dt J(y)`` all
share one sparsity pattern on a fixed grid, so the preconditioner is
factorized once and reused for the whole integration, and the
aggregated inner-solve statistics are available for the cost models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Union

import numpy as np

from repro.linalg.kernel import LinearKernel, LinearSolverStats
from repro.linalg.sparse import CsrMatrix, eye
from repro.nonlinear.newton import NewtonOptions, NewtonResult, newton_solve
from repro.nonlinear.systems import NonlinearSystem
from repro.trace.tracer import TracerLike, as_tracer

__all__ = [
    "SpatialOperator",
    "CrankNicolsonSystem",
    "ImplicitEulerSystem",
    "Bdf2System",
    "ImplicitStepper",
    "TrajectoryResult",
]

JacobianLike = Union[np.ndarray, CsrMatrix]

# Duck-typed checkpointer protocol (``begin`` / ``after_step``); kept
# untyped so the PDE layer never imports the checkpoint package above it.
TrajectoryCheckpointerLike = Any


class SpatialOperator:
    """A spatially discretized operator ``N(y)`` with its Jacobian.

    Wraps the right-hand side of the method-of-lines ODE system
    ``dy/dt = -N(y)`` (diffusive/advective terms on the left, as in the
    paper's Equation 5 convention).
    """

    def __init__(
        self,
        dimension: int,
        apply: Callable[[np.ndarray], np.ndarray],
        jacobian: Callable[[np.ndarray], JacobianLike],
    ):
        if dimension <= 0:
            raise ValueError("dimension must be positive")
        self.dimension = dimension
        self._apply = apply
        self._jacobian = jacobian

    def apply(self, y: np.ndarray) -> np.ndarray:
        return np.asarray(self._apply(y), dtype=float)

    def jacobian(self, y: np.ndarray) -> JacobianLike:
        return self._jacobian(y)


class _ThetaSystem(NonlinearSystem):
    """Theta-scheme step system: ``y + theta dt N(y) - rhs = 0``."""

    def __init__(self, operator: SpatialOperator, y_prev: np.ndarray, dt: float, theta: float):
        if dt <= 0.0:
            raise ValueError("dt must be positive")
        if not 0.0 < theta <= 1.0:
            raise ValueError("theta must be in (0, 1]")
        y_prev = np.asarray(y_prev, dtype=float)
        if y_prev.shape != (operator.dimension,):
            raise ValueError(
                f"previous state must have shape ({operator.dimension},), got {y_prev.shape}"
            )
        self.operator = operator
        self.dt = float(dt)
        self.theta = float(theta)
        self.dimension = operator.dimension
        self.rhs = y_prev - (1.0 - theta) * dt * operator.apply(y_prev)

    def residual(self, y: np.ndarray) -> np.ndarray:
        y = self._validate(y)
        return y + self.theta * self.dt * self.operator.apply(y) - self.rhs

    def jacobian(self, y: np.ndarray) -> JacobianLike:
        y = self._validate(y)
        inner = self.operator.jacobian(y)
        scale = self.theta * self.dt
        if isinstance(inner, CsrMatrix):
            return eye(self.dimension).add(inner.scaled(scale))
        return np.eye(self.dimension) + scale * np.asarray(inner, dtype=float)


class CrankNicolsonSystem(_ThetaSystem):
    """One Crank-Nicolson step as a nonlinear system (theta = 1/2).

    ``(y_next - y_prev)/dt + (N(y_next) + N(y_prev))/2 = 0`` —
    second-order accurate, A-stable, the paper's scheme of choice.
    """

    def __init__(self, operator: SpatialOperator, y_prev: np.ndarray, dt: float):
        super().__init__(operator, y_prev, dt, theta=0.5)


class ImplicitEulerSystem(_ThetaSystem):
    """One implicit (backward) Euler step (theta = 1).

    First-order but L-stable; used by the ablation benches to show the
    accuracy/cost trade against Crank-Nicolson.
    """

    def __init__(self, operator: SpatialOperator, y_prev: np.ndarray, dt: float):
        super().__init__(operator, y_prev, dt, theta=1.0)


class Bdf2System(NonlinearSystem):
    """One BDF2 step as a nonlinear system.

    Section 7: "Higher-order time stepping methods allow larger step
    sizes to be taken, at the cost of putting more unknown variables at
    play in the systems of equations, thereby requiring a larger
    accelerator." BDF2's extra history level is that cost in its
    mildest form:

        (3 y_{n+1} - 4 y_n + y_{n-1}) / (2 dt) + N(y_{n+1}) = 0

    i.e. ``y + (2 dt / 3) N(y) = (4 y_n - y_{n-1}) / 3``. Second-order,
    L-stable, and — unlike Crank-Nicolson — free of the trapezoid's
    marginal oscillation modes. Start-up (no ``y_{n-1}`` yet) is
    conventionally one Crank-Nicolson step.
    """

    def __init__(
        self,
        operator: SpatialOperator,
        y_prev: np.ndarray,
        y_prev2: np.ndarray,
        dt: float,
    ):
        if dt <= 0.0:
            raise ValueError("dt must be positive")
        y_prev = np.asarray(y_prev, dtype=float)
        y_prev2 = np.asarray(y_prev2, dtype=float)
        expected = (operator.dimension,)
        if y_prev.shape != expected or y_prev2.shape != expected:
            raise ValueError(f"history states must have shape {expected}")
        self.operator = operator
        self.dt = float(dt)
        self.dimension = operator.dimension
        self.rhs = (4.0 * y_prev - y_prev2) / 3.0
        self._coeff = 2.0 * self.dt / 3.0

    def residual(self, y: np.ndarray) -> np.ndarray:
        y = self._validate(y)
        return y + self._coeff * self.operator.apply(y) - self.rhs

    def jacobian(self, y: np.ndarray) -> JacobianLike:
        y = self._validate(y)
        inner = self.operator.jacobian(y)
        if isinstance(inner, CsrMatrix):
            return eye(self.dimension).add(inner.scaled(self._coeff))
        return np.eye(self.dimension) + self._coeff * np.asarray(inner, dtype=float)


@dataclass
class TrajectoryResult:
    """Outcome of an :class:`ImplicitStepper` integration.

    ``states`` holds the initial state plus one row per completed step;
    ``newton_results`` the per-step solver outcomes. ``linear_stats``
    aggregates the inner linear-solve accounting for the whole
    trajectory (the stepper's kernel records per-step shares too).
    """

    states: np.ndarray
    newton_results: List[NewtonResult] = field(default_factory=list)
    linear_stats: LinearSolverStats = field(default_factory=LinearSolverStats)

    @property
    def y(self) -> np.ndarray:
        """Final state."""
        return self.states[-1]

    @property
    def converged(self) -> bool:
        return all(result.converged for result in self.newton_results)

    @property
    def total_newton_iterations(self) -> int:
        return sum(result.iterations for result in self.newton_results)


class ImplicitStepper:
    """Implicit integrator sharing one linear kernel across all steps.

    Parameters
    ----------
    operator:
        The spatial operator ``N(y)`` of ``dy/dt = -N(y)``.
    dt:
        Fixed step size.
    scheme:
        ``"crank-nicolson"`` (default), ``"implicit-euler"``, or
        ``"bdf2"`` (started with one Crank-Nicolson step, the
        conventional bootstrap for the missing history level).
    options:
        Newton options for the per-step nonlinear solves.
    kernel:
        The shared :class:`~repro.linalg.kernel.LinearKernel`; a
        default one is created when omitted. Because every step's
        Jacobian carries the same sparsity pattern, the preconditioner
        built on the first Newton step of the first time step serves
        the entire integration unless the reuse gate trips.
    """

    SCHEMES = ("crank-nicolson", "implicit-euler", "bdf2")

    def __init__(
        self,
        operator: SpatialOperator,
        dt: float,
        scheme: str = "crank-nicolson",
        options: Optional[NewtonOptions] = None,
        kernel: Optional[LinearKernel] = None,
    ):
        if scheme not in self.SCHEMES:
            raise ValueError(f"scheme must be one of {self.SCHEMES}, got {scheme!r}")
        if dt <= 0.0:
            raise ValueError("dt must be positive")
        self.operator = operator
        self.dt = float(dt)
        self.scheme = scheme
        self.options = options or NewtonOptions(tolerance=1e-10, max_iterations=60)
        self.kernel = kernel or LinearKernel()
        self._previous: Optional[np.ndarray] = None

    def reset_history(self) -> None:
        """Forget the BDF2 history level (restart the bootstrap)."""
        self._previous = None

    @property
    def history(self) -> Optional[np.ndarray]:
        """The BDF2 history level ``y_{n-1}`` (None before any step)."""
        return None if self._previous is None else self._previous.copy()

    def restore_history(self, previous: Optional[np.ndarray]) -> None:
        """Reinstall a checkpointed BDF2 history level."""
        self._previous = (
            None if previous is None else np.asarray(previous, dtype=float).copy()
        )

    def _step_system(self, y: np.ndarray) -> NonlinearSystem:
        if self.scheme == "implicit-euler":
            return ImplicitEulerSystem(self.operator, y, self.dt)
        if self.scheme == "crank-nicolson" or self._previous is None:
            return CrankNicolsonSystem(self.operator, y, self.dt)
        return Bdf2System(self.operator, y, self._previous, self.dt)

    def step(self, y: np.ndarray, tracer: Optional[TracerLike] = None) -> NewtonResult:
        """Advance one time step; the root of the step system is the
        next level. Non-convergence is reported, not raised — the
        caller decides whether a partially converged trajectory is
        usable. ``tracer`` records one ``time_step`` span wrapping the
        step's Newton iterations."""
        tracer = as_tracer(tracer)
        y = np.asarray(y, dtype=float)
        system = self._step_system(y)
        with tracer.span("time_step", scheme=self.scheme, dt=self.dt) as span:
            result = newton_solve(system, y, self.options, self.kernel, tracer=tracer)
            span.update(
                converged=result.converged,
                iterations=result.iterations,
                residual_norm=result.residual_norm,
            )
        if self.scheme == "bdf2":
            self._previous = y.copy()
        return result

    def run(
        self,
        y0: np.ndarray,
        steps: int,
        tracer: Optional[TracerLike] = None,
        checkpoint: Optional["TrajectoryCheckpointerLike"] = None,
    ) -> TrajectoryResult:
        """Integrate ``steps`` time steps from ``y0``.

        ``checkpoint`` (duck-typed; see
        :class:`repro.checkpoint.TrajectoryCheckpointer`) periodically
        snapshots the integration state — current level, BDF2 history,
        kernel factorization, per-step solver records — so a killed run
        can be resumed bitwise-identically from the last valid snapshot
        via :func:`repro.checkpoint.resume_trajectory`.
        """
        if steps <= 0:
            raise ValueError("steps must be positive")
        tracer = as_tracer(tracer)
        y = np.asarray(y0, dtype=float)
        states = np.empty((steps + 1, y.shape[0]))
        states[0] = y
        trajectory = TrajectoryResult(states=states)
        if checkpoint is not None:
            checkpoint.begin(tracer)
        return self.continue_run(trajectory, 1, steps, tracer=tracer, checkpoint=checkpoint)

    def continue_run(
        self,
        trajectory: TrajectoryResult,
        start_index: int,
        steps: int,
        tracer: Optional[TracerLike] = None,
        checkpoint: Optional["TrajectoryCheckpointerLike"] = None,
    ) -> TrajectoryResult:
        """Advance an in-flight trajectory from step ``start_index``.

        The resume path: ``trajectory.states[:start_index]`` and the
        stepper's BDF2 history/kernel state must already reflect the
        completed prefix (restored from a snapshot), and the loop picks
        up exactly where the interrupted run left off.
        """
        tracer = as_tracer(tracer)
        states = trajectory.states
        y = np.asarray(states[start_index - 1], dtype=float)
        for index in range(start_index, steps + 1):
            result = self.step(y, tracer=tracer)
            trajectory.newton_results.append(result)
            trajectory.linear_stats.merge(result.linear_stats)
            y = result.u
            states[index] = y
            if checkpoint is not None:
                checkpoint.after_step(self, trajectory, index, steps, tracer)
        return trajectory
