"""Service chaos tier: kill a shard's pool mid-batch, prove exactly-once.
Plus the admission half of that guarantee: an id whose outcome was
replayed off a dead shard's journal is *committed* work, and a repeat
submission must be refused as ``duplicate_request``, never re-run.

The service's core guarantee under fire: every *accepted* request
reaches exactly one terminal outcome — no losses, no duplicates — even
when the shard running it dies a real death (the FaultInjector's
``worker_crash`` is an ``os._exit`` inside the pooled worker, so the
pool genuinely breaks). Two scenarios:

* **one shard down** — a targeted crash kills shard-0 mid-window; the
  outcomes its write-ahead journal committed before the crash are
  replayed (not re-solved), the uncommitted remainder fails over to
  surviving shards, and no journal across the fleet commits any
  request twice;
* **whole fleet down** — an every-first-attempt crash fault kills
  every pooled shard; the serial lifeboat shard (where the same fault
  is a raised ``InjectedWorkerCrash``, charged and retried) still
  brings every request to a converged terminal outcome.

Everything is explicitly seeded; a failure replays byte-for-byte.
"""

import asyncio
import json

import pytest

from repro.runtime import FaultInjector, FaultSpec, ProblemSpec, RetryPolicy, SolveRequest
from repro.service import ServiceRejected, SolveService, serve_requests

pytestmark = pytest.mark.chaos


def _requests(n, prefix):
    return [
        SolveRequest(
            f"{prefix}-{i}",
            ProblemSpec.quadratic(rhs0=1.0 + 0.1 * i, rhs1=1.3, guess=(0.1, 0.1)),
            rungs=("damped_newton",),
            analog_time_limit=1e-3,
        )
        for i in range(n)
    ]


def _committed_counts(journal_dir):
    """outcome_committed records per request id, across every journal."""
    counts = {}
    for path in sorted(journal_dir.glob("*.journal")):
        for line in path.read_text(encoding="utf-8").splitlines():
            record = json.loads(line)
            if record.get("kind") == "outcome_committed":
                rid = record["request_id"]
                counts[rid] = counts.get(rid, 0) + 1
    return counts


class TestShardKillFailover:
    def test_killed_shard_requests_reach_terminal_exactly_once(self, tmp_path):
        requests = _requests(9, prefix="c")
        # Target only shard-0: request c-2's first attempt kills its
        # pooled worker. By then the window's earlier requests have
        # committed to shard-0's journal, so both recovery paths —
        # journal replay and fail-over re-execution — are exercised.
        result = serve_requests(
            requests,
            shards=3,
            workers_per_shard=2,
            batch_window=4,
            seed=0,
            journal_dir=tmp_path,
            retry=RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.05),
            shard_faults={
                0: FaultInjector(
                    specs=(
                        FaultSpec(kind="worker_crash", request_id="c-2", attempt=0),
                    )
                )
            },
        )

        # Exactly one terminal record per accepted request.
        ids = [record.request_id for record in result.records]
        assert sorted(ids) == sorted(request.request_id for request in requests)
        assert len(ids) == len(set(ids))
        assert result.completed == 9
        assert result.failed == 0
        assert not result.rejections

        # The targeted shard died; nothing else did.
        assert [s.name for s in result.shards if s.status == "dead"] == ["shard-0"]
        assert result.counters.get("pool_broken") == 1
        assert result.counters.get("service_shards_lost") == 1

        # Committed-before-crash outcomes were replayed off the journal,
        # not re-solved; the rest failed over to surviving shards.
        replayed = [r for r in result.records if r.replayed_from_journal]
        assert replayed
        assert all(r.shard == "shard-0" for r in replayed)
        assert len(replayed) == result.counters.get("service_replayed_outcomes")
        moved = [r for r in result.records if r.failovers > 0]
        assert moved
        assert all(r.shard in ("shard-1", "shard-2") for r in moved)
        assert len(moved) == result.counters.get("service_failovers")

        # The fleet's journals agree: every request id committed exactly
        # once across all shards — replay did not duplicate, fail-over
        # did not lose.
        counts = _committed_counts(tmp_path)
        assert counts == {request.request_id: 1 for request in requests}

    def test_replayed_id_resubmission_is_duplicate_not_rerun(self, tmp_path):
        """Admission across journal replay: once a killed shard's window
        has been recovered — committed outcomes replayed, the rest
        failed over — resubmitting one of those ids must be rejected as
        ``duplicate_request``. The replay restored the record, so a
        repeat is a caller bug, not new work; the fleet's journals must
        still show exactly one commit per id afterwards."""
        requests = _requests(9, prefix="d")

        async def scenario():
            service = SolveService(
                shards=3,
                workers_per_shard=2,
                batch_window=4,
                seed=0,
                queue_limit=len(requests),
                journal_dir=tmp_path,
                retry=RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.05),
                shard_faults={
                    0: FaultInjector(
                        specs=(
                            FaultSpec(kind="worker_crash", request_id="d-2", attempt=0),
                        )
                    )
                },
            )
            await service.start()
            futures = [service.submit(request) for request in requests]
            records = await asyncio.gather(*futures)
            # The crash landed and recovery ran: at least one record
            # came back off the dead shard's journal.
            replayed = [r for r in records if r.replayed_from_journal]
            assert replayed, [r.shard for r in records]
            by_id = {request.request_id: request for request in requests}
            reasons = []
            for record in (replayed[0], records[-1]):
                with pytest.raises(ServiceRejected) as excinfo:
                    service.submit(by_id[record.request_id])
                reasons.append(excinfo.value.reason)
            result = await service.drain()
            return reasons, result

        reasons, result = asyncio.run(scenario())
        assert reasons == ["duplicate_request", "duplicate_request"]
        assert result.completed == 9
        assert [r.reason for r in result.rejections] == reasons
        counts = _committed_counts(tmp_path)
        assert counts == {request.request_id: 1 for request in requests}


class TestFleetCascadeLifeboat:
    def test_lifeboat_finishes_the_work_when_every_shard_dies(self, tmp_path):
        requests = _requests(6, prefix="x")
        # Shared fault: every request's first attempt crashes its
        # worker, so each pooled shard dies on its first window. On the
        # serial lifeboat the same spec raises InjectedWorkerCrash
        # instead — a charged, retryable attempt — and attempt 1
        # converges.
        shared = FaultInjector(
            specs=(FaultSpec(kind="worker_crash", request_id=None, attempt=0),)
        )
        result = serve_requests(
            requests,
            shards=2,
            workers_per_shard=2,
            batch_window=3,
            seed=0,
            journal_dir=tmp_path,
            retry=RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.05),
            faults=shared,
        )

        ids = [record.request_id for record in result.records]
        assert sorted(ids) == sorted(request.request_id for request in requests)
        assert len(ids) == len(set(ids))
        assert result.completed == 6
        assert result.failed == 0

        by_name = {shard.name: shard for shard in result.shards}
        assert by_name["shard-0"].status == "dead"
        assert by_name["shard-1"].status == "dead"
        assert by_name["lifeboat"].status == "lifeboat"
        assert result.counters.get("service_shards_lost") == 2
        assert result.counters.get("pool_broken") == 2
        assert result.counters.get("service_lifeboats_launched") == 1

        # Every record came off the lifeboat after exactly one bounce,
        # retried past its charged crash attempt.
        assert all(record.shard == "lifeboat" for record in result.records)
        assert all(record.failovers == 1 for record in result.records)
        assert all(record.outcome.attempts == 2 for record in result.records)

        # Exactly-once across the fleet's journals: the dead shards
        # committed nothing, the lifeboat committed each id once.
        counts = _committed_counts(tmp_path)
        assert counts == {request.request_id: 1 for request in requests}
