"""The Fabric / Chip / Tile hardware hierarchy and programming API.

Mirrors the object-oriented programming model of Figure 4: a
:class:`Fabric` is a board of chips; each :class:`Chip` carries four
:class:`Tile` instances (Figure 5); each tile owns four integrators,
eight multipliers, eight fanouts, DACs and ADCs, connected by an
intra-tile crossbar. Problems allocate tiles (one PDE variable per
tile, Section 5.2), wire exposed interfaces with :class:`Connection`,
then ``cfg_commit()`` and ``exec_start()`` freeze the configuration and
release the integrators.

The simulator enforces the same discipline the real chip does: no
reconfiguration while executing, no allocation of busy components, and
hard capacity limits ("Area constraints on the analog accelerator limit
us to solving grid sizes as large as 16x16", Section 6.1).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.analog.calibration import CalibrationConfig, ProcessVariation
from repro.analog.components import Adc, AnalogComponent, Dac, Fanout, Integrator, Multiplier
from repro.analog.noise import NoiseModel

__all__ = ["Fabric", "Chip", "Tile", "Connection", "FabricCapacityError"]


class FabricCapacityError(RuntimeError):
    """Raised when a problem does not fit on the fabric."""


# Per-tile unit counts from the Figure 5 microarchitecture diagram.
INTEGRATORS_PER_TILE = 4
MULTIPLIERS_PER_TILE = 8
FANOUTS_PER_TILE = 8
DACS_PER_TILE = 4
ADCS_PER_TILE = 2
TILES_PER_CHIP = 4
# Crossbar port budget per tile (the "16 Analog INs/Outputs" of Fig. 5).
TILE_INPUT_PORTS = 16
TILE_OUTPUT_PORTS = 16


class Tile:
    """One tile: the unit of allocation (one PDE variable per tile)."""

    def __init__(self, name: str, noise: NoiseModel):
        self.name = name
        self.noise = noise
        self.integrators = [Integrator(f"{name}.int{i}", noise) for i in range(INTEGRATORS_PER_TILE)]
        self.multipliers = [Multiplier(f"{name}.mul{i}", noise) for i in range(MULTIPLIERS_PER_TILE)]
        self.fanouts = [Fanout(f"{name}.fan{i}", noise) for i in range(FANOUTS_PER_TILE)]
        self.dacs = [Dac(f"{name}.dac{i}", noise) for i in range(DACS_PER_TILE)]
        self.adcs = [Adc(f"{name}.adc{i}", noise) for i in range(ADCS_PER_TILE)]
        self.owner: Optional[str] = None
        self.input_ports_used = 0
        self.output_ports_used = 0
        # Health state: a quarantined tile is skipped by allocation
        # (the health monitor pulled it from service); a stuck tile's
        # datapath is pinned at the rail by a degradation schedule.
        self.quarantined = False
        self.stuck = False

    def components(self) -> List[AnalogComponent]:
        return [*self.integrators, *self.multipliers, *self.fanouts, *self.dacs, *self.adcs]

    @property
    def is_free(self) -> bool:
        return self.owner is None and not self.quarantined

    def allocate(self, owner: str) -> None:
        if self.owner is not None:
            raise FabricCapacityError(f"{self.name} already owned by {self.owner}")
        self.owner = owner
        for component in self.components():
            component.allocate(owner)

    def release(self) -> None:
        self.owner = None
        self.input_ports_used = 0
        self.output_ports_used = 0
        for component in self.components():
            component.release()

    def claim_ports(self, inputs: int, outputs: int) -> None:
        """Reserve crossbar ports; the Figure 5 budget is a hard limit.

        Wider stencils need more neighbour signals per variable
        (Section 7's higher-order trade), and this is where that cost
        becomes a feasibility constraint.
        """
        if inputs < 0 or outputs < 0:
            raise ValueError("port counts must be nonnegative")
        if self.input_ports_used + inputs > TILE_INPUT_PORTS:
            raise FabricCapacityError(
                f"{self.name}: {self.input_ports_used} + {inputs} input ports "
                f"exceeds the {TILE_INPUT_PORTS}-port crossbar"
            )
        if self.output_ports_used + outputs > TILE_OUTPUT_PORTS:
            raise FabricCapacityError(
                f"{self.name}: {self.output_ports_used} + {outputs} output ports "
                f"exceeds the {TILE_OUTPUT_PORTS}-port crossbar"
            )
        self.input_ports_used += inputs
        self.output_ports_used += outputs

    def datapath_gain_error(self) -> float:
        """Aggregate relative gain error of this tile's datapath.

        The signal producing one equation's residual traverses a chain
        of roughly four multiplier stages (Table 3's nonlinear-function
        column); to first order the chain's gain error is the sum of
        the stage errors.
        """
        chain = self.multipliers[:4]
        return float(np.sum([c.gain_error for c in chain]))

    def datapath_offset(self) -> float:
        """Aggregate input-referred offset of the tile's datapath.

        Offsets of the current-mode stages add along the chain: the
        four function multipliers plus the fanout copies feeding the
        summing junction. A dead DAC channel removes one programmed
        constant from the summing junction entirely — to first order a
        full-scale offset on this equation, the dominant term when a
        channel fails.
        """
        chain = [*self.multipliers[:4], *self.fanouts[:4]]
        offset = float(np.sum([c.offset for c in chain]))
        dead = sum(1 for dac in self.dacs if getattr(dac, "dead", False))
        return offset + dead * self.noise.full_scale


class Chip:
    """One accelerator die with four tiles (Figure 5, center)."""

    def __init__(self, name: str, noise: NoiseModel):
        self.name = name
        self.tiles = [Tile(f"{name}.tile{i}", noise) for i in range(TILES_PER_CHIP)]

    def free_tiles(self) -> List[Tile]:
        return [tile for tile in self.tiles if tile.is_free]


class Connection:
    """A committed analog route between two named component ports.

    The simulator records connections for resource accounting (board-
    level links are the sparse neighbour-to-neighbour pattern of PDEs,
    Section 5.2) rather than simulating per-wire electrical behaviour.
    """

    def __init__(self, source: str, destination: str, board_level: bool = False):
        self.source = source
        self.destination = destination
        self.board_level = board_level
        self.committed = False

    def set_conn(self) -> None:
        self.committed = True


class Fabric:
    """A board of accelerator chips with the Figure-4 lifecycle.

    Lifecycle: ``calibrate()`` once after construction; allocate tiles
    for a problem; ``cfg_commit()``; ``exec_start()``; read ADCs;
    ``exec_stop()``; release. The prototype board has 2 chips
    (8 tiles -> a 2x2 Burgers grid); pass ``num_chips`` to model the
    scaled-up designs of Table 4.
    """

    def __init__(
        self,
        num_chips: int = 2,
        noise: Optional[NoiseModel] = None,
        seed: int = 0,
        degradation=None,
    ):
        if num_chips <= 0:
            raise ValueError("num_chips must be positive")
        self.noise = noise or NoiseModel()
        self.seed = int(seed)
        self.chips = [Chip(f"chip{i}", self.noise) for i in range(num_chips)]
        self.connections: List[Connection] = []
        self.calibrated = False
        self.committed = False
        self.executing = False
        # Optional DegradationSchedule (repro.analog.health): advanced
        # one step per exec_start, so the board ages with use. The
        # schedule outlives this fabric — the same instance can be
        # attached to successive boards of one accelerator.
        self.degradation = degradation

    # -- capacity ------------------------------------------------------

    @property
    def num_tiles(self) -> int:
        return len(self.chips) * TILES_PER_CHIP

    def free_tiles(self) -> List[Tile]:
        return [tile for chip in self.chips for tile in chip.free_tiles()]

    @classmethod
    def for_variables(cls, num_variables: int, noise: Optional[NoiseModel] = None, seed: int = 0) -> "Fabric":
        """Smallest board holding ``num_variables`` (one per tile)."""
        if num_variables <= 0:
            raise ValueError("num_variables must be positive")
        chips = (num_variables + TILES_PER_CHIP - 1) // TILES_PER_CHIP
        return cls(num_chips=chips, noise=noise, seed=seed)

    # -- lifecycle -------------------------------------------------------

    def calibrate(self, config: Optional[CalibrationConfig] = None) -> None:
        """Draw per-die process variation and calibrate every component.

        The residual errors left behind are what the execution engine
        applies as datapath distortion (Section 5.4's error sources).
        """
        config = config or CalibrationConfig()
        variation = ProcessVariation(self.noise, seed=self.seed)
        components = [c for chip in self.chips for tile in chip.tiles for c in tile.components()]
        raw_gains = variation.draw_gain_errors(len(components))
        residuals = variation.calibrate(raw_gains, config)
        if config.enabled:
            offsets = variation.residual_offsets(len(components))
        else:
            offsets = variation.draw_offsets(len(components))
        for component, gain_error, offset in zip(components, residuals, offsets):
            component.gain_error = float(gain_error)
            component.offset = float(offset)
            # The post-trim values are the baseline degradation drifts
            # away from (and recalibration returns to).
            component.calibrated_gain_error = float(gain_error)
            component.calibrated_offset = float(offset)
        self.calibrated = True
        if self.degradation is not None:
            # Re-impose any degradation already accumulated: stuck
            # tiles and dead DACs survive a (re)calibration pass.
            self.degradation.apply(self)

    def recalibrate(self, config: Optional[CalibrationConfig] = None) -> None:
        """Re-trim the board mid-life: re-null accumulated drift.

        The trim DACs re-measure and re-correct each component, so the
        drift random walk restarts from the calibrated baseline;
        hardware faults (stuck tiles, dead DAC channels) are beyond
        what trim codes can fix and persist.
        """
        if self.executing:
            raise RuntimeError("exec_stop() before recalibrating")
        if self.degradation is not None:
            self.degradation.reset()
        self.calibrate(config)

    def allocate_tiles(self, count: int, owner: str) -> List[Tile]:
        """Claim ``count`` free tiles for a problem.

        Quarantined tiles are never handed out; when quarantine has
        eaten the capacity a problem needs, the error says so — the
        caller-facing accounting distinguishes "board too small" from
        "board too degraded".
        """
        if self.executing:
            raise RuntimeError("cannot allocate while executing")
        free = self.free_tiles()
        if len(free) < count:
            quarantined = sum(
                tile.quarantined for chip in self.chips for tile in chip.tiles
            )
            detail = f" ({quarantined} quarantined)" if quarantined else ""
            raise FabricCapacityError(
                f"problem needs {count} tiles but only {len(free)} of "
                f"{self.num_tiles} are free{detail}"
            )
        chosen = free[:count]
        for tile in chosen:
            tile.allocate(owner)
        self.committed = False
        return chosen

    def connect(self, source: str, destination: str, board_level: bool = False) -> Connection:
        if self.executing:
            raise RuntimeError("cannot reconnect while executing")
        connection = Connection(source, destination, board_level)
        connection.set_conn()
        self.connections.append(connection)
        self.committed = False
        return connection

    def cfg_commit(self) -> None:
        """Freeze the configuration (DAC codes, crossbar routes)."""
        if not self.calibrated:
            raise RuntimeError("calibrate() before committing a configuration")
        self.committed = True

    def exec_start(self) -> None:
        """Release the integrators: continuous dynamics begin.

        Each start ages the board by one degradation step (when a
        schedule is attached): drift accumulates with *use*, exactly
        between the calibration and the run it distorts.
        """
        if not self.committed:
            raise RuntimeError("cfg_commit() before exec_start()")
        if self.degradation is not None:
            self.degradation.advance(self)
        self.executing = True

    def exec_stop(self) -> None:
        """Halt integrators, restoring them for the next parameter set."""
        self.executing = False

    def release_all(self) -> None:
        if self.executing:
            raise RuntimeError("exec_stop() before releasing hardware")
        for chip in self.chips:
            for tile in chip.tiles:
                if not tile.is_free:
                    tile.release()
        self.connections.clear()
