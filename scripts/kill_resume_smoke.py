#!/usr/bin/env python
"""Kill-and-resume smoke for CI: die mid-run, resume, demand identity.

Two scenarios, both end to end through the CLI in real subprocesses:

* ``serve-batch`` — a journaled batch is killed after N committed
  outcomes (the ``--crash-after-outcomes`` seam is an ``os._exit``,
  the same teardown a SIGKILL delivers, at a deterministic point),
  then resumed with ``--resume``. The resumed run's rendered output
  must match the never-killed reference byte for byte (elapsed time
  masked), and the two journals must commit identical outcome records.
* ``trajectory`` — a checkpointed integration is killed mid-step via
  ``--crash-at-step`` and resumed; the states hash (a SHA-256 of the
  raw trajectory bytes) must match the reference.

Exit status 0 means both resumes were bitwise-faithful; any drift
prints a diff and exits 1.
"""

import json
import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]


def run_cli(*argv, expect=0):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    if proc.returncode != expect:
        print(proc.stdout)
        print(proc.stderr, file=sys.stderr)
        raise SystemExit(
            f"FAIL: repro {' '.join(argv)} exited {proc.returncode}, expected {expect}"
        )
    return proc.stdout


def mask(text):
    return re.sub(r"\d+\.\d+s", "X.XXs", text)


def fail(title, expected, actual):
    print(f"FAIL: {title}")
    print("--- expected ---")
    print(expected)
    print("--- actual ---")
    print(actual)
    raise SystemExit(1)


def outcome_records(journal_path):
    """request_id -> committed outcome record (sha-validated lines)."""
    outcomes = {}
    for line in Path(journal_path).read_text().splitlines():
        record = json.loads(line)
        if record["kind"] == "outcome_committed":
            outcome = dict(record["outcome"])
            outcome.pop("elapsed_seconds", None)  # wall clock, legitimately varies
            outcomes[outcome["request_id"]] = outcome
    return outcomes


def batch_scenario(workdir):
    args = (
        "--requests", "50", "--grids", "2", "--seed", "3",
        "--analog-time-limit", "1e-3",
    )
    ref_journal = workdir / "reference.journal"
    reference = run_cli("serve-batch", *args, "--journal", str(ref_journal))

    victim_journal = workdir / "victim.journal"
    run_cli(
        "serve-batch", *args,
        "--journal", str(victim_journal),
        "--crash-after-outcomes", "17",
        expect=9,
    )
    resumed = run_cli("serve-batch", "--resume", str(victim_journal))

    if "[17 replayed from journal]" not in resumed:
        fail("resume did not replay 17 outcomes", "[17 replayed from journal]", resumed)
    actual = mask(resumed).replace(" [17 replayed from journal]", "")
    if actual != mask(reference):
        fail("resumed batch output drifted from reference", mask(reference), actual)

    ref_outcomes = outcome_records(ref_journal)
    res_outcomes = outcome_records(victim_journal)
    if set(ref_outcomes) != set(res_outcomes):
        fail(
            "journals committed different request sets",
            sorted(ref_outcomes),
            sorted(res_outcomes),
        )
    for request_id in sorted(ref_outcomes):
        if ref_outcomes[request_id] != res_outcomes[request_id]:
            fail(
                f"outcome record for {request_id} differs",
                json.dumps(ref_outcomes[request_id], indent=2, sort_keys=True),
                json.dumps(res_outcomes[request_id], indent=2, sort_keys=True),
            )
    print(f"serve-batch kill/resume: {len(ref_outcomes)} outcomes bitwise identical")


def trajectory_scenario(workdir):
    # figure7-scale grid (the paper's largest, 16x16 -> 512 unknowns)
    args = ("--nx", "16", "--steps", "50", "--checkpoint-every", "10")
    reference = run_cli(
        "trajectory", *args, "--checkpoint-dir", str(workdir / "ref-ck")
    )
    victim_dir = str(workdir / "victim-ck")
    run_cli(
        "trajectory", *args,
        "--checkpoint-dir", victim_dir,
        "--crash-at-step", "37",
        expect=9,
    )
    resumed = run_cli("trajectory", *args, "--checkpoint-dir", victim_dir, "--resume")

    def fingerprint(text):
        return [
            line
            for line in text.splitlines()
            if not line.startswith(("checkpoints:", "resumed from"))
        ]

    if "resumed from checkpoint" not in resumed:
        fail("trajectory did not resume from a checkpoint", "resumed from ...", resumed)
    if fingerprint(resumed) != fingerprint(reference):
        fail(
            "resumed trajectory drifted from reference",
            "\n".join(fingerprint(reference)),
            "\n".join(fingerprint(resumed)),
        )
    print("trajectory kill/resume: states hash bitwise identical")


def main():
    with tempfile.TemporaryDirectory(prefix="kill-resume-smoke-") as tmp:
        workdir = Path(tmp)
        batch_scenario(workdir)
        trajectory_scenario(workdir)
    print("kill-and-resume smoke: PASS")


if __name__ == "__main__":
    main()
