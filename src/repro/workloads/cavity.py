"""Lid-driven cavity mini-app: the OpenFOAM finite-volume analogue.

Table 1's third row: lid-driven cavity flow by finite-volume
discretization of the incompressible viscous Navier-Stokes equations;
preconditioned CG is still the dominant kernel but only at 13.1 % —
"irregular memory accesses shift computation time away from equation
solving for less structured grids such as finite volume".

The analogue is a projection-method cavity solver whose momentum fluxes
are computed *the finite-volume way*: a gather/scatter loop over an
explicit face list (owner/neighbour connectivity, per-face upwinding),
exactly the irregular traversal that dominates FV codes. The pressure
Poisson solve each step uses preconditioned CG. The measured kernel
fraction lands far below the structured-grid workloads'.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.linalg.iterative import conjugate_gradient
from repro.linalg.preconditioners import JacobiPreconditioner
from repro.pde.boundary import DirichletBoundary
from repro.pde.grid import Grid2D
from repro.pde.poisson import PoissonProblem
from repro.perf.profiles import KernelProfiler, ProfileReport

__all__ = ["LidDrivenCavityWorkload"]


@dataclass
class LidDrivenCavityWorkload:
    """Projection-method cavity flow with face-based FV fluxes."""

    grid_n: int = 24
    lid_velocity: float = 1.0
    viscosity: float = 0.1
    dt: float = 0.02
    num_steps: int = 5

    KERNEL_NAME = "preconditioned CG"
    PAPER_FRACTION = 0.131

    def _face_list(self, grid: Grid2D) -> List[Tuple[int, int, int]]:
        """Internal faces as (owner, neighbour, axis) triples — the
        unstructured-style connectivity a finite-volume code stores."""
        faces = []
        for j in range(grid.ny):
            for i in range(grid.nx):
                k = grid.flat_index(i, j)
                if i + 1 < grid.nx:
                    faces.append((k, grid.flat_index(i + 1, j), 0))
                if j + 1 < grid.ny:
                    faces.append((k, grid.flat_index(i, j + 1), 1))
        return faces

    def run(self) -> ProfileReport:
        profiler = KernelProfiler()
        grid = Grid2D.square(self.grid_n, spacing=1.0 / self.grid_n)
        faces = self._face_list(grid)
        n = grid.num_nodes
        u = np.zeros(n)
        v = np.zeros(n)
        face_area = grid.dx
        volume = grid.dx * grid.dy

        with profiler.run():
            # Pressure-Poisson operator and preconditioner are built
            # once — the mesh does not change between steps.
            with profiler.region("matrix setup"):
                pressure_problem = PoissonProblem(
                    grid,
                    np.zeros(grid.shape),
                    boundary=DirichletBoundary.constant(grid, 0.0),
                )
                pressure_matrix = pressure_problem.matrix()
                precond = JacobiPreconditioner(pressure_matrix)
            for _ in range(self.num_steps):
                # FV momentum step: per-face upwinded convective fluxes
                # plus diffusive fluxes, gathered into cell balances.
                with profiler.region("FV flux assembly"):
                    flux_u = np.zeros(n)
                    flux_v = np.zeros(n)
                    for owner, neighbour, axis in faces:
                        normal_vel = 0.5 * (
                            (u[owner] + u[neighbour]) if axis == 0 else (v[owner] + v[neighbour])
                        )
                        upwind = owner if normal_vel >= 0.0 else neighbour
                        conv_u = normal_vel * u[upwind] * face_area
                        conv_v = normal_vel * v[upwind] * face_area
                        diff_u = self.viscosity * (u[neighbour] - u[owner]) / grid.dx * face_area
                        diff_v = self.viscosity * (v[neighbour] - v[owner]) / grid.dx * face_area
                        flux_u[owner] += -conv_u + diff_u
                        flux_u[neighbour] += conv_u - diff_u
                        flux_v[owner] += -conv_v + diff_v
                        flux_v[neighbour] += conv_v - diff_v
                    # Lid boundary: shear from the moving top wall.
                    top = [grid.flat_index(i, grid.ny - 1) for i in range(grid.nx)]
                    for k in top:
                        flux_u[k] += (
                            self.viscosity * (self.lid_velocity - u[k]) / (grid.dy / 2.0) * face_area
                        )
                    u_star = u + self.dt / volume * flux_u
                    v_star = v + self.dt / volume * flux_v

                # Face-based divergence: more FV gather/scatter work.
                with profiler.region("FV flux assembly"):
                    div = np.zeros(n)
                    for owner, neighbour, axis in faces:
                        vel = 0.5 * (
                            (u_star[owner] + u_star[neighbour])
                            if axis == 0
                            else (v_star[owner] + v_star[neighbour])
                        )
                        div[owner] += vel * face_area
                        div[neighbour] -= vel * face_area

                # Pressure projection: the PCG kernel of Table 1.
                with profiler.region(self.KERNEL_NAME):
                    pressure = conjugate_gradient(
                        pressure_matrix, div / self.dt, preconditioner=precond, tol=1e-4
                    ).x

                with profiler.region("velocity correction"):
                    grad_px = np.zeros(n)
                    grad_py = np.zeros(n)
                    for owner, neighbour, axis in faces:
                        dp = (pressure[neighbour] - pressure[owner]) / grid.dx
                        if axis == 0:
                            grad_px[owner] += 0.5 * dp
                            grad_px[neighbour] += 0.5 * dp
                        else:
                            grad_py[owner] += 0.5 * dp
                            grad_py[neighbour] += 0.5 * dp
                    u = u_star - self.dt * grad_px
                    v = v_star - self.dt * grad_py
        self._final_u = u
        self._final_v = v
        return profiler.report()
