"""Command-line interface: regenerate any paper table or figure.

    python -m repro list
    python -m repro table4
    python -m repro figure6 --trials 100
    python -m repro figure7 --grids 2,4,8 --reynolds 0.1,1.0 --trials 1
    python -m repro figure7 --nx 20 --trace /tmp/figure7.jsonl
    python -m repro sweep --experiments figure7,figure8 --workers 2
    python -m repro serve-batch --requests 8 --workers 4 --trace /tmp/batch.jsonl
    python -m repro serve-batch --requests 50 --journal /tmp/batch.journal
    python -m repro serve-batch --resume /tmp/batch.journal
    python -m repro serve-batch --requests 8 --certify --journal /tmp/batch.journal
    python -m repro verify-journal /tmp/batch.journal
    python -m repro serve --requests 12 --shards 3 --workers-per-shard 2
    python -m repro serve --requests 12 --shards 3 --journal-dir /tmp/svc
    python -m repro serve --requests 12 --boards 4 --degradation offset_drift_sigma=0.4
    python -m repro serve --requests 12 --boards 4 --certify --canary-interval 2
    python -m repro capacity --boards 1,2,4 --rates 8,16 --slo 1e-6
    python -m repro trajectory --nx 8 --steps 40 --checkpoint-dir /tmp/ck
    python -m repro trajectory --nx 8 --steps 40 --checkpoint-dir /tmp/ck --resume
    python -m repro trace-summary /tmp/batch.jsonl
    python -m repro bench
    python -m repro bench --compare BENCH_5.json
    python -m repro bench --scale full --out /tmp/bench_full.json

Each command runs the corresponding experiment driver and prints the
same rows/series the paper reports. ``sweep`` fans several experiments
across worker processes and adds per-run linear-kernel accounting.
``serve-batch`` pushes a batch of random Burgers problems through the
fault-tolerant solve runtime (:mod:`repro.runtime`) — deadlines,
retries, degradation ladder — and prints the per-request outcomes;
``--faults`` injects seeded chaos (worker crashes, analog spikes,
solver hangs, analog degradation) to exercise the recovery paths, and
``--degradation`` ages every attempt's analog board. ``serve`` is the
scale-out sibling: the same request stream pushed through the sharded
async solve service (:mod:`repro.service`) — admission control,
per-tenant priorities, N journaled Runtime shards, journal-replay
fail-over when a shard's pool dies — with per-shard traces merged
into one file. ``--boards N`` (on both commands) routes every analog
settle through a fleet of N independently drifting boards
(:mod:`repro.fleet`): health-aware routing, predictive seed gating,
board-granularity quarantine with pressure-triggered recalibration,
and a structured fleet-exhausted fallback; ``--kill-board B:A`` is the
matching chaos seam. ``capacity`` sweeps fleet sizes against offered
load and an accuracy SLO and reports how many boards each rate needs.
``--certify`` (on both commands) re-verifies every converged answer
through the independent solve certificate (:mod:`repro.certify`) —
recomputed residual, bounds/boundary/conservation checks — escalating
a failed certificate into a digital re-solve and blaming the board
that produced the bad answer; ``serve --canary-interval N``
additionally routes a seeded known-answer probe through every fleet
board after each N service windows, quarantining drifting silicon
before user traffic reaches it. ``verify-journal`` re-audits a
committed journal offline: every stored solution is re-certified from
scratch and every stored certificate is checked for digest integrity.
``health-report``
runs one persistent board through a sequence of solves and renders the
analog health layer's verdict (tile statistics, seed-gate rejections,
quarantines, recalibrations).

Durability (:mod:`repro.checkpoint`): ``serve-batch --journal PATH``
appends a write-ahead journal of the batch — accepted requests,
started attempts, committed outcomes — and ``serve-batch --resume
PATH`` replays a killed run's completed outcomes without re-solving
and re-enqueues whatever was in flight, bitwise identical to a run
that was never killed. ``trajectory`` integrates a Burgers trajectory
with periodic atomic snapshots (``--checkpoint-dir``) and the matching
``--resume``. Both commands trap SIGTERM/SIGINT and shut down
gracefully: a final snapshot/journal record is flushed and the trace
manifest marks the run ``interrupted``.

Performance (:mod:`repro.bench`): ``bench`` runs the fixed benchmark
suite — a figure7-scale Burgers trajectory, the figure8 seeding
comparison, a ``serve-batch`` soak, and a ``LinearKernel``/stencil
microbench — and writes a schema-versioned ``BENCH_<n>.json`` report
(wall-clock, span sums, counters, Newton iteration counts, peak RSS)
into the current directory (auto-numbered continuation of the
committed trajectory). ``--compare BASELINE.json`` additionally runs
the hot-path regression gate and exits non-zero on a regression past
tolerance; CI uses ``--work-only`` to gate on the deterministic work
metrics that are comparable across machines.

The solver-backed figures (7/8/9) and ``sweep`` accept ``--trace PATH``
to record a structured JSONL trace of the run — a run manifest (grid,
Reynolds, seed, code version) followed by every solver span and counter
(see :mod:`repro.trace`). ``trace-summary`` renders the per-phase
breakdown of any such file.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.experiments import (
    run_figure2,
    run_figure3,
    run_figure6,
    run_figure7,
    run_figure8,
    run_figure9,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)
from repro.experiments.parallel import SWEEP_RUNNERS, run_parallel_sweep
from repro.experiments.trajectory import run_trajectory
from repro.analog.health import DegradationModel
from repro.checkpoint import BatchJournal, GracefulShutdown, read_journal
from repro.runtime import (
    FAULT_KINDS,
    FaultInjector,
    ProblemSpec,
    RetryPolicy,
    Runtime,
    SolveRequest,
    run_health_report,
)
from repro.trace import Tracer, summarize_trace_file, write_trace

__all__ = ["main"]


def _parse_floats(text: str) -> tuple:
    return tuple(float(v) for v in text.split(","))


def _parse_ints(text: str) -> tuple:
    return tuple(int(v) for v in text.split(","))


def _parse_degradation(text: str) -> DegradationModel:
    """Parse the ``--degradation`` spec into a model (see
    :meth:`repro.analog.health.DegradationModel.from_spec`)."""
    try:
        return DegradationModel.from_spec(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _parse_kill_board(text: str) -> tuple:
    """Parse the ``--kill-board BOARD:AFTER`` chaos spec."""
    board, sep, after = text.partition(":")
    if not sep:
        raise argparse.ArgumentTypeError(
            f"kill spec {text!r} is not of the form BOARD:AFTER_ROUTES"
        )
    try:
        return (int(board), int(after))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"kill spec {text!r} needs integer board id and route count"
        )


def _parse_fault_rates(text: str) -> dict:
    """Parse ``kind=rate,kind=rate`` into a fault-rate mapping."""
    rates = {}
    for part in text.split(","):
        kind, _, rate = part.partition("=")
        if not rate:
            raise argparse.ArgumentTypeError(
                f"fault spec {part!r} is not of the form kind=rate"
            )
        rates[kind.strip()] = float(rate)
    return rates


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables and figures of the MICRO-50 2017 "
        "hybrid analog-digital PDE paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Shared ``--trace`` option for every command that drives solvers.
    # A parent parser (rather than a root-level flag) keeps the natural
    # ``repro figure7 --trace PATH`` syntax working.
    traceable = argparse.ArgumentParser(add_help=False)
    traceable.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a structured JSONL trace of the run to PATH",
    )

    sub.add_parser("list", help="list available experiments")
    sub.add_parser("table1", help="workload function profiles")
    sub.add_parser("table2", help="Reynolds number effects")
    sub.add_parser("table3", help="analog component usage per variable")
    sub.add_parser("table4", help="scaled accelerator area/power")
    sub.add_parser("table5", help="related-work matrix")

    fig2 = sub.add_parser("figure2", help="basins for u^3 - 1")
    fig2.add_argument("--resolution", type=int, default=96)

    fig3 = sub.add_parser("figure3", help="Equation 2 with/without homotopy")
    fig3.add_argument("--resolution", type=int, default=64)

    fig6 = sub.add_parser("figure6", help="analog error distribution")
    fig6.add_argument("--trials", type=int, default=100)

    fig7 = sub.add_parser(
        "figure7", help="digital vs analog time to convergence", parents=[traceable]
    )
    fig7.add_argument("--grids", type=_parse_ints, default=(2, 4, 8, 16))
    fig7.add_argument(
        "--nx", type=int, default=None, help="single grid size (overrides --grids)"
    )
    fig7.add_argument("--reynolds", type=_parse_floats, default=(0.01, 0.1, 1.0))
    fig7.add_argument("--trials", type=int, default=1)
    fig7.add_argument("--seed", type=int, default=0)

    fig8 = sub.add_parser(
        "figure8", help="baseline vs seeded across Reynolds", parents=[traceable]
    )
    fig8.add_argument("--grid", type=int, default=16)
    fig8.add_argument("--reynolds", type=_parse_floats, default=(0.25, 2.0))
    fig8.add_argument("--trials", type=int, default=2)
    fig8.add_argument("--seed", type=int, default=0)

    fig9 = sub.add_parser("figure9", help="GPU-scale time and energy", parents=[traceable])
    fig9.add_argument("--grids", type=_parse_ints, default=(16,))
    fig9.add_argument("--trials", type=int, default=1)
    fig9.add_argument("--seed", type=int, default=1)

    sweep = sub.add_parser(
        "sweep", help="run several experiments across worker processes", parents=[traceable]
    )
    sweep.add_argument(
        "--experiments",
        type=lambda text: tuple(text.split(",")),
        default=tuple(sorted(SWEEP_RUNNERS)),
        help="comma-separated subset of: " + ",".join(sorted(SWEEP_RUNNERS)),
    )
    sweep.add_argument("--workers", type=int, default=None, help="process count (1 = serial)")

    serve = sub.add_parser(
        "serve-batch",
        help="run a batch of solve requests through the fault-tolerant runtime",
        parents=[traceable],
    )
    serve.add_argument("--requests", type=int, default=8, help="number of solve requests")
    serve.add_argument(
        "--grids", type=_parse_ints, default=(2,), help="Burgers grid sizes, round-robin"
    )
    serve.add_argument("--reynolds", type=float, default=1.0)
    serve.add_argument("--workers", type=int, default=1, help="process count (1 = in-process)")
    serve.add_argument("--seed", type=int, default=0, help="runtime seed (retries, fault draws)")
    serve.add_argument(
        "--deadline", type=float, default=None, help="per-attempt deadline in seconds"
    )
    serve.add_argument("--max-attempts", type=int, default=3)
    serve.add_argument(
        "--analog-time-limit", type=float, default=60.0, help="analog settle budget per attempt"
    )
    serve.add_argument(
        "--faults",
        type=_parse_fault_rates,
        default=None,
        metavar="KIND=RATE,...",
        help="inject chaos faults, e.g. worker_crash=0.1,analog_spike=0.2 "
        "(kinds: " + ",".join(FAULT_KINDS) + ")",
    )
    serve.add_argument(
        "--degradation",
        type=_parse_degradation,
        default=None,
        metavar="KEY=VALUE,...",
        help="age every attempt's analog board, e.g. "
        "offset_drift_sigma=0.2,gain_drift_sigma=0.02 "
        "(lists ';'-separated: stuck_tiles=chip0.tile1;chip0.tile3)",
    )

    serve.add_argument(
        "--boards",
        type=int,
        default=None,
        metavar="N",
        help="route analog settles across a fleet of N independently "
        "drifting boards (health-aware routing, predictive seed "
        "gating, board quarantine); default: the single pre-fleet board",
    )
    serve.add_argument(
        "--kill-board",
        type=_parse_kill_board,
        default=None,
        metavar="BOARD:AFTER",
        help="chaos seam: kill fleet board BOARD once AFTER routing "
        "decisions have been made (requires --boards)",
    )
    serve.add_argument(
        "--settle-max-steps",
        type=int,
        default=None,
        metavar="N",
        help="bound each analog settle to N accepted integrator steps "
        "(a drifted board then costs bounded work instead of "
        "unbounded wall-clock)",
    )
    serve.add_argument(
        "--journal",
        metavar="PATH",
        default=None,
        help="append a write-ahead journal of the batch to PATH; a "
        "killed run can be resumed with --resume PATH",
    )
    serve.add_argument(
        "--resume",
        metavar="JOURNAL",
        default=None,
        help="resume a killed batch from its journal: completed "
        "outcomes are replayed without re-solving, in-flight requests "
        "are re-enqueued, and the runtime (seed, faults, degradation) "
        "is rebuilt from the journal's recorded configuration",
    )
    serve.add_argument(
        "--certify",
        action="store_true",
        help="re-verify every converged answer through the independent "
        "solve certificate before committing it; a failed certificate "
        "escalates to a digital re-solve and blames the analog board",
    )
    serve.add_argument(
        "--crash-after-outcomes", type=int, default=None, help=argparse.SUPPRESS
    )

    service = sub.add_parser(
        "serve",
        help="run requests through the sharded async solve service",
        parents=[traceable],
    )
    service.add_argument("--requests", type=int, default=8, help="number of solve requests")
    service.add_argument("--shards", type=int, default=2, help="Runtime shard count")
    service.add_argument(
        "--workers-per-shard", type=int, default=1, help="pool width inside each shard"
    )
    service.add_argument(
        "--grids", type=_parse_ints, default=(2,), help="Burgers grid sizes, round-robin"
    )
    service.add_argument("--reynolds", type=float, default=1.0)
    service.add_argument("--seed", type=int, default=0, help="service seed (shared by shards)")
    service.add_argument(
        "--queue-limit", type=int, default=64, help="admission-queue bound (backpressure)"
    )
    service.add_argument(
        "--batch-window", type=int, default=4, help="max requests per shard dispatch window"
    )
    service.add_argument(
        "--tenants", type=int, default=1, help="spread requests across N synthetic tenants"
    )
    service.add_argument(
        "--deadline", type=float, default=None, help="per-attempt deadline in seconds"
    )
    service.add_argument("--max-attempts", type=int, default=3)
    service.add_argument(
        "--analog-time-limit", type=float, default=60.0, help="analog settle budget per attempt"
    )
    service.add_argument(
        "--faults",
        type=_parse_fault_rates,
        default=None,
        metavar="KIND=RATE,...",
        help="inject chaos faults on every shard (kinds: " + ",".join(FAULT_KINDS) + ")",
    )
    service.add_argument(
        "--degradation",
        type=_parse_degradation,
        default=None,
        metavar="KEY=VALUE,...",
        help="age every attempt's analog board (same syntax as serve-batch)",
    )
    service.add_argument(
        "--journal-dir",
        metavar="DIR",
        default=None,
        help="write per-shard write-ahead journals into DIR (enables "
        "journal-replay fail-over when a shard crashes)",
    )
    service.add_argument(
        "--boards",
        type=int,
        default=None,
        metavar="N",
        help="share one fleet of N analog boards across every shard "
        "(health-aware routing, predictive gating, quarantine)",
    )
    service.add_argument(
        "--kill-board",
        type=_parse_kill_board,
        default=None,
        metavar="BOARD:AFTER",
        help="chaos seam: kill fleet board BOARD once AFTER routing "
        "decisions have been made (requires --boards)",
    )
    service.add_argument(
        "--settle-max-steps",
        type=int,
        default=None,
        metavar="N",
        help="bound each analog settle to N accepted integrator steps",
    )
    service.add_argument(
        "--certify",
        action="store_true",
        help="re-verify every converged answer through the independent "
        "solve certificate on every shard (escalation on failure)",
    )
    service.add_argument(
        "--canary-interval",
        type=int,
        default=None,
        metavar="N",
        help="probe every fleet board with a seeded known-answer solve "
        "after each N service windows, quarantining boards whose "
        "answers drift (requires --boards)",
    )

    verify = sub.add_parser(
        "verify-journal",
        help="re-certify every committed outcome in a batch journal",
    )
    verify.add_argument("path", help="journal written by serve-batch --journal")
    verify.add_argument(
        "--tolerance",
        type=float,
        default=None,
        metavar="REL",
        help="override the relative-residual tolerance (default: the "
        "policy recorded in the journal, else the certify defaults)",
    )

    capacity = sub.add_parser(
        "capacity",
        help="sweep fleet sizes vs. request rates against an accuracy SLO",
        parents=[traceable],
    )
    capacity.add_argument(
        "--boards",
        type=_parse_ints,
        default=(1, 2, 4),
        metavar="N,N,...",
        help="fleet sizes to sweep (default 1,2,4)",
    )
    capacity.add_argument(
        "--rates",
        type=_parse_ints,
        default=(8, 16),
        metavar="N,N,...",
        help="offered loads (requests per batch) to sweep (default 8,16)",
    )
    capacity.add_argument(
        "--slo",
        type=float,
        default=1e-6,
        help="accuracy SLO: residual bound an analog-served answer must meet",
    )
    capacity.add_argument(
        "--target",
        type=float,
        default=0.75,
        help="target fraction of requests served on the analog path",
    )
    capacity.add_argument(
        "--drift-sigma",
        type=float,
        default=0.35,
        help="degradation drift level the fleet is sized against",
    )
    capacity.add_argument("--seed", type=int, default=0, help="sweep seed")
    capacity.add_argument(
        "--analog-time-limit", type=float, default=0.5, help="analog settle budget per attempt"
    )
    capacity.add_argument(
        "--settle-max-steps",
        type=int,
        default=2000,
        help="accepted-integrator-step bound per settle (keeps drifted boards cheap)",
    )

    traj = sub.add_parser(
        "trajectory",
        help="integrate a checkpointed Burgers trajectory (resumable)",
        parents=[traceable],
    )
    traj.add_argument("--nx", type=int, default=8, help="grid size (nx x nx)")
    traj.add_argument("--steps", type=int, default=40, help="implicit time steps")
    traj.add_argument("--dt", type=float, default=0.05)
    traj.add_argument(
        "--scheme", choices=("crank-nicolson", "implicit-euler", "bdf2"), default="bdf2"
    )
    traj.add_argument("--reynolds", type=float, default=1.0)
    traj.add_argument("--seed", type=int, default=0, help="boundary + initial-state seed")
    traj.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="snapshot the integration state into DIR (atomic, hash-validated)",
    )
    traj.add_argument(
        "--checkpoint-every", type=int, default=10, help="snapshot every N steps"
    )
    traj.add_argument(
        "--keep", type=int, default=3, help="retain the newest N snapshots"
    )
    traj.add_argument(
        "--resume",
        action="store_true",
        help="restart from the newest valid snapshot in --checkpoint-dir",
    )
    traj.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="save the trajectory states array to PATH (numpy .npy)",
    )
    traj.add_argument("--crash-at-step", type=int, default=None, help=argparse.SUPPRESS)

    health = sub.add_parser(
        "health-report",
        help="age one analog board across solves and report its health",
        parents=[traceable],
    )
    health.add_argument("--solves", type=int, default=8, help="number of ladder solves")
    health.add_argument("--grid", type=int, default=2, help="Burgers grid size")
    health.add_argument("--reynolds", type=float, default=1.0)
    health.add_argument("--seed", type=int, default=0, help="die + problem seed")
    health.add_argument(
        "--degradation",
        type=_parse_degradation,
        default=None,
        metavar="KEY=VALUE,...",
        help="degradation model spec (same syntax as serve-batch --degradation)",
    )
    health.add_argument(
        "--analog-time-limit", type=float, default=60.0, help="analog settle budget per solve"
    )
    health.add_argument(
        "--boards",
        type=int,
        default=None,
        metavar="N",
        help="route the solves through an N-board fleet and add a per-board table "
        "(boards that never settled render '-' rates)",
    )
    health.add_argument(
        "--settle-max-steps",
        type=int,
        default=None,
        metavar="N",
        help="integrator step budget per analog settle (fleet mode)",
    )

    summary = sub.add_parser("trace-summary", help="render a per-phase summary of a trace file")
    summary.add_argument("path", help="JSONL trace written by --trace")

    from repro.bench import BENCHMARK_NAMES, DEFAULT_SCALE, SCALES
    from repro.bench.compare import DEFAULT_TIME_TOLERANCE, DEFAULT_WORK_TOLERANCE

    bench = sub.add_parser(
        "bench",
        help="run the fixed perf suite; emit a BENCH_<n>.json report",
    )
    bench.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=DEFAULT_SCALE,
        help="suite size (smoke = committed-trajectory/CI size, full = deeper local run)",
    )
    bench.add_argument("--seed", type=int, default=0, help="suite seed (reports compare at equal seed)")
    bench.add_argument(
        "--only",
        type=lambda text: tuple(text.split(",")),
        default=None,
        metavar="NAME,...",
        help="run a subset of: " + ",".join(BENCHMARK_NAMES),
    )
    bench.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="report path (default: next free BENCH_<n>.json in the current directory)",
    )
    bench.add_argument(
        "--no-out", action="store_true", help="run and print only; write no report file"
    )
    bench.add_argument(
        "--compare",
        metavar="BASELINE",
        default=None,
        help="gate this run against a previous BENCH_<n>.json; exits 1 on "
        "a hot-path regression past tolerance, 3 if BASELINE does not exist",
    )
    bench.add_argument(
        "--time-tolerance",
        type=float,
        default=DEFAULT_TIME_TOLERANCE,
        help="allowed relative slowdown on time metrics (default 0.20)",
    )
    bench.add_argument(
        "--work-tolerance",
        type=float,
        default=DEFAULT_WORK_TOLERANCE,
        help="allowed relative growth on deterministic work metrics (default 0.01)",
    )
    bench.add_argument(
        "--work-only",
        action="store_true",
        help="gate only the deterministic work metrics (cross-machine CI mode)",
    )
    return parser


def _fleet_config(args):
    """Build the FleetConfig for ``--boards``/``--kill-board`` (or None)."""
    from repro.fleet import FleetConfig

    if args.boards is None and args.kill_board is None:
        return None
    if args.boards is None:
        raise SystemExit("--kill-board requires --boards")
    return FleetConfig(boards=args.boards, kill_board_after=args.kill_board)


def _ladder_kwargs(args):
    if getattr(args, "settle_max_steps", None) is None:
        return None
    return {"settle_max_steps": args.settle_max_steps}


def _make_tracer(trace_path: Optional[str], command: str, **manifest) -> Optional[Tracer]:
    """Build a recording tracer when ``--trace`` was given, else None.

    The manifest keys (grid, Reynolds, seed, ...) land in the trace
    file's header line alongside the code version.
    """
    if trace_path is None:
        return None
    return Tracer(manifest={"command": command, **manifest})


def _run_bench_command(args) -> int:
    """Run the bench suite, write the report, optionally gate it.

    Exit codes: 0 ok, 1 regression gate failed, 2 reports not
    comparable (scale/seed mismatch), 3 baseline snapshot missing.
    The missing-baseline case gets its own code so CI can tell "the
    trajectory snapshot was never committed / a path was fat-fingered"
    apart from a real perf regression.
    """
    from pathlib import Path

    from repro.bench import (
        BenchReport,
        ScaleMismatch,
        compare_reports,
        next_bench_path,
        run_bench_suite,
    )

    report = run_bench_suite(
        scale=args.scale,
        seed=args.seed,
        only=args.only,
        progress=lambda name: print(f"[bench] running {name} ({args.scale})", flush=True),
    )
    parts = [report.render()]
    out_path: Optional[Path] = None
    if not args.no_out:
        out_path = Path(args.out) if args.out is not None else next_bench_path(".")
        report.save(out_path)
        parts.append(f"wrote {out_path}")
    exit_code = 0
    if args.compare is not None:
        try:
            baseline = BenchReport.load(args.compare)
        except FileNotFoundError:
            print("\n\n".join(parts))
            print(
                f"bench compare refused: baseline snapshot {args.compare!r} does not "
                "exist; pass the committed BENCH_<n>.json path (or run `repro bench` "
                "once to create the first snapshot)",
                file=sys.stderr,
            )
            return 3
        try:
            comparison = compare_reports(
                baseline,
                report,
                time_tolerance=args.time_tolerance,
                work_tolerance=args.work_tolerance,
                work_only=args.work_only,
                baseline_label=str(args.compare),
                candidate_label=str(out_path) if out_path is not None else "this run",
            )
        except ScaleMismatch as exc:
            print("\n\n".join(parts))
            print(f"\nbench compare refused: {exc}", file=sys.stderr)
            return 2
        parts.append(comparison.render())
        exit_code = 0 if comparison.ok else 1
    print("\n\n".join(parts))
    return exit_code


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    command = args.command
    tracer: Optional[Tracer] = None
    if command == "list":
        print("tables:  table1 table2 table3 table4 table5")
        print("figures: figure2 figure3 figure6 figure7 figure8 figure9")
        print("sweeps:  sweep (parallel: " + " ".join(sorted(SWEEP_RUNNERS)) + ")")
        print("runtime: serve-batch (fault-tolerant batch solving; --journal/--resume/--certify)")
        print("         serve (sharded async solve service; admission, fail-over, canaries)")
        print("         verify-journal (offline re-certification of a batch journal)")
        print("         capacity (fleet sizing: boards vs. request rate vs. SLO)")
        print("         health-report (analog board aging + health monitor)")
        print("         trajectory (checkpointed, crash-resumable integration)")
        print("tools:   trace-summary")
        print("perf:    bench (fixed suite -> BENCH_<n>.json; --compare gates regressions)")
        return 0
    if command == "trace-summary":
        print(summarize_trace_file(args.path))
        return 0
    if command == "verify-journal":
        from repro.certify import verify_journal
        from repro.checkpoint import JournalError

        try:
            verification = verify_journal(args.path, tolerance=args.tolerance)
        except (OSError, JournalError) as exc:
            print(f"verify-journal: cannot audit {args.path}: {exc}", file=sys.stderr)
            return 2
        print(verification.render())
        return 0 if verification.ok else 1
    if command == "bench":
        return _run_bench_command(args)
    if command == "table1":
        result = run_table1()
    elif command == "table2":
        result = run_table2()
    elif command == "table3":
        result = run_table3()
    elif command == "table4":
        result = run_table4()
    elif command == "table5":
        result = run_table5()
    elif command == "figure2":
        result = run_figure2(resolution=args.resolution)
    elif command == "figure3":
        result = run_figure3(resolution=args.resolution)
    elif command == "figure6":
        result = run_figure6(trials=args.trials)
    elif command == "figure7":
        grids = (args.nx,) if args.nx is not None else args.grids
        tracer = _make_tracer(
            args.trace,
            command,
            grid_sizes=list(grids),
            reynolds_values=list(args.reynolds),
            trials=args.trials,
            seed=args.seed,
        )
        result = run_figure7(
            grid_sizes=grids,
            reynolds_values=args.reynolds,
            trials=args.trials,
            seed=args.seed,
            tracer=tracer,
        )
    elif command == "figure8":
        tracer = _make_tracer(
            args.trace,
            command,
            grid_sizes=[args.grid],
            reynolds_values=list(args.reynolds),
            trials=args.trials,
            seed=args.seed,
        )
        result = run_figure8(
            grid_n=args.grid,
            reynolds_values=args.reynolds,
            trials=args.trials,
            seed=args.seed,
            tracer=tracer,
        )
    elif command == "figure9":
        tracer = _make_tracer(
            args.trace, command, grid_sizes=list(args.grids), trials=args.trials, seed=args.seed
        )
        result = run_figure9(grid_sizes=args.grids, trials=args.trials, seed=args.seed, tracer=tracer)
    elif command == "sweep":
        result = run_parallel_sweep(
            names=args.experiments, max_workers=args.workers, trace_path=args.trace
        )
    elif command == "serve-batch":
        if args.resume is not None and args.journal is not None:
            raise SystemExit(
                "--journal starts a new journal, --resume continues one; "
                "pass only --resume (it keeps appending to the same file)"
            )
        replay = None
        if args.resume is not None:
            replay = read_journal(args.resume)
            # --certify on resume adds certification to a journal that
            # was recorded without it; a certified journal keeps its
            # recorded policy either way.
            resume_overrides = {"certify": True} if args.certify else {}
            runtime = replay.build_runtime(
                journal=BatchJournal.resume(replay),
                crash_after_outcomes=args.crash_after_outcomes,
                **resume_overrides,
            )
            requests = replay.requests
            tracer = _make_tracer(
                args.trace,
                command,
                requests=len(requests),
                seed=runtime.seed,
                resumed_from=str(args.resume),
            )
        else:
            tracer = _make_tracer(
                args.trace,
                command,
                requests=args.requests,
                grids=list(args.grids),
                reynolds=args.reynolds,
                workers=args.workers,
                seed=args.seed,
            )
            requests = [
                SolveRequest(
                    request_id=f"req-{index:04d}",
                    problem=ProblemSpec.burgers(
                        grid_n=args.grids[index % len(args.grids)],
                        reynolds=args.reynolds,
                        seed=args.seed + index,
                    ),
                    deadline_seconds=args.deadline,
                    analog_time_limit=args.analog_time_limit,
                )
                for index in range(args.requests)
            ]
            runtime = Runtime(
                workers=args.workers,
                queue_limit=max(256, args.requests),
                retry=RetryPolicy(max_attempts=args.max_attempts),
                seed=args.seed,
                faults=(
                    FaultInjector.from_rates(args.faults, seed=args.seed)
                    if args.faults
                    else None
                ),
                degradation=args.degradation,
                journal=(BatchJournal(args.journal) if args.journal else None),
                crash_after_outcomes=args.crash_after_outcomes,
                ladder_kwargs=_ladder_kwargs(args),
                fleet=_fleet_config(args),
                certify=args.certify or None,
            )
        try:
            with GracefulShutdown() as shutdown:
                result = runtime.run_batch(
                    requests, tracer=tracer, resume=replay, shutdown=shutdown
                )
        finally:
            if runtime.journal is not None:
                runtime.journal.close()
    elif command == "serve":
        from repro.service import serve_requests

        fleet = _fleet_config(args)
        if args.canary_interval is not None and fleet is None:
            raise SystemExit("--canary-interval requires --boards")
        requests = [
            SolveRequest(
                request_id=f"req-{index:04d}",
                problem=ProblemSpec.burgers(
                    grid_n=args.grids[index % len(args.grids)],
                    reynolds=args.reynolds,
                    seed=args.seed + index,
                ),
                deadline_seconds=args.deadline,
                analog_time_limit=args.analog_time_limit,
            )
            for index in range(args.requests)
        ]
        # The service merges its own per-shard traces; the shared
        # single-tracer export path below stays unused here.
        result = serve_requests(
            requests,
            tenants=(
                [f"tenant-{index % args.tenants}" for index in range(args.requests)]
                if args.tenants > 1
                else None
            ),
            trace_path=args.trace,
            shards=args.shards,
            workers_per_shard=args.workers_per_shard,
            queue_limit=args.queue_limit,
            batch_window=args.batch_window,
            seed=args.seed,
            retry=RetryPolicy(max_attempts=args.max_attempts),
            faults=(
                FaultInjector.from_rates(args.faults, seed=args.seed)
                if args.faults
                else None
            ),
            degradation=args.degradation,
            journal_dir=args.journal_dir,
            ladder_kwargs=_ladder_kwargs(args),
            fleet=fleet,
            certify=args.certify or None,
            canary_interval=args.canary_interval,
        )
    elif command == "trajectory":
        tracer = _make_tracer(
            args.trace,
            command,
            nx=args.nx,
            steps=args.steps,
            dt=args.dt,
            scheme=args.scheme,
            reynolds=args.reynolds,
            seed=args.seed,
        )
        with GracefulShutdown() as shutdown:
            result = run_trajectory(
                nx=args.nx,
                steps=args.steps,
                dt=args.dt,
                scheme=args.scheme,
                reynolds=args.reynolds,
                seed=args.seed,
                checkpoint_dir=args.checkpoint_dir,
                checkpoint_every=args.checkpoint_every,
                keep=args.keep,
                resume=args.resume,
                tracer=tracer,
                shutdown=shutdown,
                crash_at_step=args.crash_at_step,
            )
        if tracer is not None:
            tracer.manifest["status"] = (
                "interrupted" if result.interrupted_at is not None else "completed"
            )
        if args.out is not None:
            completed = len(result.trajectory.newton_results)
            np.save(args.out, result.trajectory.states[: completed + 1])
    elif command == "capacity":
        from repro.experiments import run_capacity

        tracer = _make_tracer(
            args.trace,
            command,
            boards=list(args.boards),
            rates=list(args.rates),
            slo=args.slo,
            target=args.target,
            seed=args.seed,
        )
        result = run_capacity(
            boards_list=args.boards,
            rates=args.rates,
            slo=args.slo,
            target=args.target,
            drift_sigma=args.drift_sigma,
            seed=args.seed,
            analog_time_limit=args.analog_time_limit,
            settle_max_steps=args.settle_max_steps,
            tracer=tracer,
        )
    elif command == "health-report":
        tracer = _make_tracer(
            args.trace,
            command,
            solves=args.solves,
            grid=args.grid,
            reynolds=args.reynolds,
            seed=args.seed,
        )
        result = run_health_report(
            solves=args.solves,
            grid_n=args.grid,
            reynolds=args.reynolds,
            seed=args.seed,
            degradation=args.degradation,
            analog_time_limit=args.analog_time_limit,
            boards=args.boards,
            settle_max_steps=args.settle_max_steps,
            tracer=tracer,
        )
    else:  # pragma: no cover - argparse guards this
        raise SystemExit(f"unknown command {command}")
    if tracer is not None:
        write_trace(tracer, args.trace)
    print(result.render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
