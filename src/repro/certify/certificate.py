"""Machine-checkable certificates for terminal solve outcomes.

A :class:`SolveCertificate` is the a-posteriori contract a converged
answer must satisfy before the runtime commits it: every check is a
pure function of ``(problem spec, solution)`` — the spec rebuild is
deterministic and the evaluation consumes **no random streams** — so
certification is a read-only observer and a certified single-board run
stays bitwise identical to an uncertified one.

Checks, in order:

``finite``
    Every solution entry is a finite float.
``bounds``
    ``max |u|`` within ``value_bound * bounds_slack`` — the paper's
    dynamic-range scaling means a legitimate answer lives near the
    programmed range; a wild excursion is corruption, not physics.
``residual``
    Independently recomputed relative residual
    ``|F(u)| / max(|F(guess)|, floor)`` through
    :mod:`repro.certify.residuals` (not the solver's bookkeeping)
    within ``max_relative_residual``, or absolutely converged below
    ``absolute_floor``.
``boundary``
    The residual restricted to boundary-adjacent nodes — where the
    Dirichlet data enters the stencil — passes the same relative bound
    (trivially satisfied for boundary-free problems).
``conservation``
    The per-field residual *sums* (the discrete mass defect of the
    forced Burgers system: at a root each field's equations sum to
    zero) within ``max_relative_residual * sqrt(N)`` of the reference —
    a correlated bias can hide in an RMS norm but not in the sum.

The certificate's ``digest`` is the canonical content hash of the
verdict plus a hash of the solution's raw bytes, so the batch journal
can prove on ``--resume`` (and ``repro verify-journal`` offline) that
the certificate it stored belongs to the solution it stored.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from repro.certify.residuals import boundary_ring_norm, independent_residual_norms

__all__ = [
    "CertificateCheck",
    "CertifyPolicy",
    "SolveCertificate",
    "certify_solution",
]

# Finite sentinel for check values that overflow (NaN/Inf residuals);
# mirrors repro.analog.health.NONFINITE_QUALITY so the journal never
# carries non-finite JSON numbers.
NONFINITE_VALUE = 1e30


def _finite(value: float) -> float:
    value = float(value)
    if not math.isfinite(value):
        return NONFINITE_VALUE
    return value


@dataclass(frozen=True)
class CertifyPolicy:
    """Tolerances of the certification layer.

    ``max_relative_residual`` is deliberately far below the seed gate's
    acceptance bound (1.0) and far above a converged Newton polish
    (~1e-12 relative): a healthy committed answer clears it by three
    orders of magnitude, while the smallest corruption worth injecting
    (1e-3 elementwise) overshoots it by a similar margin.
    """

    enabled: bool = True
    max_relative_residual: float = 1e-6
    absolute_floor: float = 1e-9
    bounds_slack: float = 10.0
    canary_threshold: float = 0.25
    reference_floor: float = 1e-12

    def __post_init__(self) -> None:
        if self.max_relative_residual <= 0.0:
            raise ValueError("max_relative_residual must be positive")
        if self.bounds_slack <= 0.0:
            raise ValueError("bounds_slack must be positive")
        if self.canary_threshold <= 0.0:
            raise ValueError("canary_threshold must be positive")
        if self.reference_floor <= 0.0:
            raise ValueError("reference_floor must be positive")

    @classmethod
    def coerce(cls, value: Union[None, bool, "CertifyPolicy"]) -> Optional["CertifyPolicy"]:
        """Normalize the ``certify=`` argument every layer accepts:
        ``None``/``False`` -> off, ``True`` -> default policy, a policy
        passes through (disabled policies count as off)."""
        if value is None or value is False:
            return None
        if value is True:
            return cls()
        if isinstance(value, cls):
            return value if value.enabled else None
        raise TypeError(f"certify must be None, bool, or CertifyPolicy, got {type(value).__name__}")

    def to_record(self) -> Dict[str, Any]:
        return {
            "enabled": self.enabled,
            "max_relative_residual": self.max_relative_residual,
            "absolute_floor": self.absolute_floor,
            "bounds_slack": self.bounds_slack,
            "canary_threshold": self.canary_threshold,
            "reference_floor": self.reference_floor,
        }

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "CertifyPolicy":
        return cls(
            enabled=bool(record.get("enabled", True)),
            max_relative_residual=float(record.get("max_relative_residual", 1e-6)),
            absolute_floor=float(record.get("absolute_floor", 1e-9)),
            bounds_slack=float(record.get("bounds_slack", 10.0)),
            canary_threshold=float(record.get("canary_threshold", 0.25)),
            reference_floor=float(record.get("reference_floor", 1e-12)),
        )


@dataclass(frozen=True)
class CertificateCheck:
    """One named check: the measured value against its threshold."""

    name: str
    passed: bool
    value: float
    threshold: float
    detail: str = ""

    def to_record(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "passed": self.passed,
            "value": self.value,
            "threshold": self.threshold,
            "detail": self.detail,
        }

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "CertificateCheck":
        return cls(
            name=str(record["name"]),
            passed=bool(record["passed"]),
            value=float(record["value"]),
            threshold=float(record["threshold"]),
            detail=str(record.get("detail", "")),
        )


@dataclass(frozen=True)
class SolveCertificate:
    """The full verdict on one committed solution."""

    verdict: str
    """``"pass"`` or ``"fail"``."""
    relative_residual: float
    tolerance: float
    checks: Tuple[CertificateCheck, ...]
    solution_digest: str
    """SHA-256 of the solution's raw little-endian bytes — binds the
    certificate to the exact array it judged."""
    digest: str = ""
    """Canonical content hash of everything above; journal replay and
    ``verify-journal`` recompute and compare it."""

    @property
    def passed(self) -> bool:
        return self.verdict == "pass"

    def failed_checks(self) -> Tuple[CertificateCheck, ...]:
        return tuple(check for check in self.checks if not check.passed)

    def to_record(self) -> Dict[str, Any]:
        return {
            "verdict": self.verdict,
            "relative_residual": self.relative_residual,
            "tolerance": self.tolerance,
            "checks": [check.to_record() for check in self.checks],
            "solution_digest": self.solution_digest,
            "digest": self.digest,
        }

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "SolveCertificate":
        return cls(
            verdict=str(record["verdict"]),
            relative_residual=float(record["relative_residual"]),
            tolerance=float(record["tolerance"]),
            checks=tuple(CertificateCheck.from_record(c) for c in record.get("checks", [])),
            solution_digest=str(record["solution_digest"]),
            digest=str(record.get("digest", "")),
        )


def solution_digest(solution: np.ndarray) -> str:
    """SHA-256 of the array's C-order little-endian raw bytes."""
    array = np.ascontiguousarray(np.asarray(solution, dtype=float))
    little = array.astype(array.dtype.newbyteorder("<"), copy=False)
    return hashlib.sha256(little.tobytes()).hexdigest()


def _seal(
    verdict: str,
    relative_residual: float,
    tolerance: float,
    checks: Tuple[CertificateCheck, ...],
    digest_of_solution: str,
) -> SolveCertificate:
    from repro.checkpoint.atomic import payload_digest

    body = {
        "verdict": verdict,
        "relative_residual": relative_residual,
        "tolerance": tolerance,
        "checks": [check.to_record() for check in checks],
        "solution_digest": digest_of_solution,
    }
    return SolveCertificate(
        verdict=verdict,
        relative_residual=relative_residual,
        tolerance=tolerance,
        checks=checks,
        solution_digest=digest_of_solution,
        digest=payload_digest(body),
    )


def certify_solution(
    problem,
    solution: np.ndarray,
    value_bound: float = 3.0,
    policy: Optional[CertifyPolicy] = None,
) -> SolveCertificate:
    """Certify one solution of ``problem`` (a ``ProblemSpec``).

    Pure: rebuilds the problem deterministically, evaluates through the
    independent residual path, and consumes no global random streams.
    """
    policy = policy or CertifyPolicy()
    solution = np.asarray(solution, dtype=float)
    checks = []

    finite = bool(np.all(np.isfinite(solution)))
    checks.append(
        CertificateCheck(
            name="finite",
            passed=finite,
            value=0.0 if finite else float(np.count_nonzero(~np.isfinite(solution))),
            threshold=0.0,
            detail="count of non-finite entries",
        )
    )

    bounds_limit = float(value_bound) * policy.bounds_slack
    peak = float(np.max(np.abs(solution))) if finite and solution.size else NONFINITE_VALUE
    checks.append(
        CertificateCheck(
            name="bounds",
            passed=finite and peak <= bounds_limit,
            value=_finite(peak),
            threshold=bounds_limit,
            detail="max |u| vs value_bound * slack",
        )
    )

    achieved, reference = independent_residual_norms(problem, solution)
    reference = max(reference, policy.reference_floor)
    relative = achieved / reference
    residual_ok = achieved <= policy.absolute_floor or relative <= policy.max_relative_residual
    checks.append(
        CertificateCheck(
            name="residual",
            passed=bool(residual_ok),
            value=_finite(relative),
            threshold=policy.max_relative_residual,
            detail="independent |F(u)| / |F(guess)|",
        )
    )

    ring = boundary_ring_norm(problem, solution)
    ring_relative = ring / reference
    boundary_ok = ring <= policy.absolute_floor or ring_relative <= policy.max_relative_residual
    checks.append(
        CertificateCheck(
            name="boundary",
            passed=bool(boundary_ok),
            value=_finite(ring_relative),
            threshold=policy.max_relative_residual,
            detail=(
                "boundary-adjacent residual rows"
                if problem.kind == "burgers"
                else "no spatial boundary (trivially satisfied)"
            ),
        )
    )

    if problem.kind == "burgers" and finite:
        system, _ = problem.build()
        from repro.certify.residuals import independent_residual

        residual_vec = independent_residual(problem, system, solution)
        n = system.grid.num_nodes
        defect = abs(float(np.sum(residual_vec[:n]))) + abs(float(np.sum(residual_vec[n:])))
        conservation_threshold = policy.max_relative_residual * math.sqrt(system.dimension)
        conservation_rel = defect / reference
        conservation_ok = (
            defect <= policy.absolute_floor or conservation_rel <= conservation_threshold
        )
        conservation_detail = "discrete mass defect |sum F_u| + |sum F_v|"
    else:
        conservation_rel = 0.0 if finite else NONFINITE_VALUE
        conservation_threshold = policy.max_relative_residual
        conservation_ok = finite
        conservation_detail = "no conserved quantity (trivially satisfied)"
    checks.append(
        CertificateCheck(
            name="conservation",
            passed=bool(conservation_ok),
            value=_finite(conservation_rel),
            threshold=conservation_threshold,
            detail=conservation_detail,
        )
    )

    checks_tuple = tuple(checks)
    verdict = "pass" if all(check.passed for check in checks_tuple) else "fail"
    return _seal(
        verdict=verdict,
        relative_residual=_finite(relative),
        tolerance=policy.max_relative_residual,
        checks=checks_tuple,
        digest_of_solution=solution_digest(solution),
    )
