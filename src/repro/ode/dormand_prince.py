"""Adaptive Dormand-Prince RK45 integration with PI step control.

This is the workhorse that the analog simulation engine uses to follow
the accelerator's continuous-time dynamics with controlled accuracy.
The embedded 4th/5th-order pair gives a per-step error estimate; a
proportional-integral controller adjusts the step size, and the FSAL
(first-same-as-last) property keeps the cost at six fresh right-hand
side evaluations per accepted step.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.ode.solution import OdeSolution

__all__ = ["integrate_rk45"]

Rhs = Callable[[float, np.ndarray], np.ndarray]

# Dormand-Prince 5(4) Butcher tableau.
_C = np.array([0.0, 1.0 / 5.0, 3.0 / 10.0, 4.0 / 5.0, 8.0 / 9.0, 1.0, 1.0])
_A = [
    np.array([]),
    np.array([1.0 / 5.0]),
    np.array([3.0 / 40.0, 9.0 / 40.0]),
    np.array([44.0 / 45.0, -56.0 / 15.0, 32.0 / 9.0]),
    np.array([19372.0 / 6561.0, -25360.0 / 2187.0, 64448.0 / 6561.0, -212.0 / 729.0]),
    np.array([9017.0 / 3168.0, -355.0 / 33.0, 46732.0 / 5247.0, 49.0 / 176.0, -5103.0 / 18656.0]),
    np.array([35.0 / 384.0, 0.0, 500.0 / 1113.0, 125.0 / 192.0, -2187.0 / 6784.0, 11.0 / 84.0]),
]
# 5th-order solution weights (last row of A plus a zero k7 weight: FSAL).
_B5 = np.concatenate([_A[6], [0.0]])
# 4th-order (embedded) weights.
_B4 = np.array(
    [
        5179.0 / 57600.0,
        0.0,
        7571.0 / 16695.0,
        393.0 / 640.0,
        -92097.0 / 339200.0,
        187.0 / 2100.0,
        1.0 / 40.0,
    ]
)

_SAFETY = 0.9
_MIN_FACTOR = 0.2
_MAX_FACTOR = 5.0
_ORDER_EXPONENT = 1.0 / 5.0


def integrate_rk45(
    rhs: Rhs,
    t0: float,
    y0: np.ndarray,
    t_end: float,
    rtol: float = 1e-6,
    atol: float = 1e-9,
    max_steps: int = 1_000_000,
    first_step: Optional[float] = None,
    step_callback: Optional[Callable[[float, np.ndarray, np.ndarray], bool]] = None,
) -> OdeSolution:
    """Integrate ``dy/dt = rhs(t, y)`` from ``t0`` to ``t_end``.

    Parameters
    ----------
    step_callback:
        Optional hook called after each *accepted* step with
        ``(t, y, dy_dt)``. Returning True stops the integration early
        (used by the settle detector). The returned solution's
        ``settled`` flag records whether the callback fired.
    """
    if t_end <= t0:
        raise ValueError("t_end must be greater than t0")
    y = np.array(y0, dtype=float, copy=True)
    t = float(t0)
    ts = [t]
    ys = [y.copy()]
    evals = 0
    rejected = 0

    k = np.zeros((7, y.shape[0]))
    k[0] = rhs(t, y)
    evals += 1

    span = t_end - t0
    h = first_step if first_step is not None else span / 100.0
    h = min(h, span)
    prev_error_norm = 1.0
    settled = False
    settle_time = None

    for _ in range(max_steps):
        if t >= t_end - 1e-14 * max(1.0, abs(t_end)):
            break
        h = min(h, t_end - t)
        # Trial stages may transiently overflow on stiff problems; the
        # error check below rejects such steps, so silence the interim
        # floating-point warnings rather than let them reach callers.
        with np.errstate(over="ignore", invalid="ignore"):
            for stage in range(1, 7):
                y_stage = y + h * (_A[stage] @ k[:stage])
                k[stage] = rhs(t + _C[stage] * h, y_stage)
                evals += 1
            y5 = y + h * (_B5 @ k)
            y4 = y + h * (_B4 @ k)
            scale = atol + rtol * np.maximum(np.abs(y), np.abs(y5))
            error_norm = float(np.sqrt(np.mean(((y5 - y4) / scale) ** 2)))
        if not np.isfinite(error_norm):
            # Overflowed step; shrink hard and retry.
            h *= _MIN_FACTOR
            rejected += 1
            k[0] = rhs(t, y)
            evals += 1
            continue
        if error_norm <= 1.0:
            t_new = t + h
            dy_dt = k[6]  # FSAL: derivative at the new point.
            y = y5
            t = t_new
            ts.append(t)
            ys.append(y.copy())
            k[0] = dy_dt
            if step_callback is not None and step_callback(t, y, dy_dt):
                settled = True
                settle_time = t
                break
            # PI controller (Gustafsson). Clamp the error away from zero
            # so an exactly-stationary state cannot divide by zero.
            safe_error = max(error_norm, 1e-10)
            factor = _SAFETY * safe_error ** (-0.7 * _ORDER_EXPONENT) * prev_error_norm ** (
                0.4 * _ORDER_EXPONENT
            )
            prev_error_norm = max(error_norm, 1e-10)
            h *= float(np.clip(factor, _MIN_FACTOR, _MAX_FACTOR))
        else:
            rejected += 1
            h *= float(np.clip(_SAFETY * error_norm**-_ORDER_EXPONENT, _MIN_FACTOR, 1.0))

    return OdeSolution.from_lists(
        ts,
        ys,
        settled=settled,
        settle_time=settle_time,
        rhs_evaluations=evals,
        rejected_steps=rejected,
    )
