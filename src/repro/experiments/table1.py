"""Table 1: function profile of nonlinear PDE solvers.

Runs the four instrumented workload mini-apps and reports the fraction
of runtime spent in each one's dominant equation-solving kernel,
alongside the fractions the paper measured on the original codes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.reporting import ascii_table
from repro.workloads import (
    CooksMembraneWorkload,
    HartmannWorkload,
    LidDrivenCavityWorkload,
    TransonicFlowWorkload,
)

__all__ = ["Table1Result", "run_table1"]

_ROWS = [
    ("Fluid dynamics", "3D transonic transient laminar viscous flow", "SPEC CPU2006 410.bwaves", TransonicFlowWorkload),
    ("Magnetohydrodynamics", "2D Hartmann problem", "OpenFOAM", HartmannWorkload),
    ("Fluid dynamics", "lid-driven cavity flow", "OpenFOAM", LidDrivenCavityWorkload),
    ("Engineering mechanics", "Cook's membrane", "deal.II", CooksMembraneWorkload),
]


@dataclass
class Table1Result:
    rows_data: List[dict]

    def rows(self) -> List[dict]:
        return self.rows_data

    def render(self) -> str:
        return ascii_table(self.rows_data)

    def measured_fraction(self, solver: str) -> float:
        for row in self.rows_data:
            if row["representative solver"] == solver:
                return row["measured kernel time"]
        raise KeyError(solver)


def run_table1(repeats: int = 1) -> Table1Result:
    """Profile all four mini-apps; ``repeats`` averages the fractions."""
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    rows = []
    for discipline, description, solver, workload_cls in _ROWS:
        fractions = []
        for _ in range(repeats):
            workload = workload_cls()
            report = workload.run()
            fractions.append(report.fraction(workload.KERNEL_NAME))
        measured = sum(fractions) / len(fractions)
        rows.append(
            {
                "discipline": discipline,
                "problem description": description,
                "representative solver": solver,
                "dominant kernel": workload_cls.KERNEL_NAME,
                "paper kernel time": workload_cls.PAPER_FRACTION,
                "measured kernel time": measured,
            }
        )
    return Table1Result(rows_data=rows)
