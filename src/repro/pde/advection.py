"""Explicit hyperbolic stepping — the out-of-scope boundary, made runnable.

Section 7 of the paper draws a scope line: "time-dependent PDEs also
include hyperbolic PDEs. Those are often solved using explicit
time-stepping, where there is no need to solve systems of algebraic
equations and are therefore outside the scope of this paper."

This module implements that other side of the line — a 1-D linear
advection solver with first-order upwinding and explicit two-stage
Runge-Kutta (Heun) stepping — so the library demonstrates *why* such
solvers gain nothing from the accelerator: each step is a stencil
sweep, no ``F(u) = 0`` ever forms, and the stability constraint is the
CFL condition rather than Newton convergence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["AdvectionSolver1D"]


@dataclass
class AdvectionSolver1D:
    """Periodic 1-D linear advection ``u_t + a u_x = 0``.

    First-order upwind space discretization, Heun (RK2) time stepping,
    periodic boundaries. ``cfl = |a| dt / dx`` must not exceed 1.
    """

    num_nodes: int
    speed: float
    dx: float = 1.0
    dt: Optional[float] = None

    def __post_init__(self) -> None:
        if self.num_nodes < 3:
            raise ValueError("need at least 3 nodes")
        if self.dx <= 0.0:
            raise ValueError("dx must be positive")
        if self.dt is None:
            # Default to CFL 0.5 — comfortably stable.
            self.dt = 0.5 * self.dx / max(abs(self.speed), 1e-12)
        if self.dt <= 0.0:
            raise ValueError("dt must be positive")
        if self.cfl > 1.0:
            raise ValueError(f"CFL {self.cfl:.3f} > 1: explicit scheme unstable")

    @property
    def cfl(self) -> float:
        return abs(self.speed) * self.dt / self.dx

    def _flux_divergence(self, u: np.ndarray) -> np.ndarray:
        """Upwind ``-a u_x`` with periodic wraparound."""
        if self.speed >= 0.0:
            return -self.speed * (u - np.roll(u, 1)) / self.dx
        return -self.speed * (np.roll(u, -1) - u) / self.dx

    def step(self, u: np.ndarray) -> np.ndarray:
        """One explicit Heun step — pure stencil arithmetic, no solve."""
        u = np.asarray(u, dtype=float)
        if u.shape != (self.num_nodes,):
            raise ValueError(f"state must have shape ({self.num_nodes},)")
        k1 = self._flux_divergence(u)
        k2 = self._flux_divergence(u + self.dt * k1)
        return u + 0.5 * self.dt * (k1 + k2)

    def evolve(self, u: np.ndarray, num_steps: int) -> np.ndarray:
        if num_steps <= 0:
            raise ValueError("num_steps must be positive")
        for _ in range(num_steps):
            u = self.step(u)
        return u

    def algebraic_systems_solved(self) -> int:
        """Always zero: the structural fact that places explicit
        hyperbolic solvers outside the accelerator's reach."""
        return 0
