"""Cross-substrate cost summary for one nonlinear solve.

Bundles the three cost models behind a single call: given a problem
and its measured solver outcomes, produce the CPU / GPU / hybrid
comparison rows that the paper's evaluation (and this library's
examples) report. Keeps the accounting conventions in one place:

* baseline digital runs charge the honest restart-inclusive totals,
* the hybrid run charges analog settle time plus the polish,
* energies are power x modeled time per substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.hybrid import HybridResult
from repro.linalg.sparse import CsrMatrix
from repro.nonlinear.newton import NewtonResult
from repro.perf.analog_model import AnalogTimingModel
from repro.perf.cpu_model import CpuModel
from repro.perf.gpu_model import GpuModel

__all__ = ["SubstrateCost", "solve_cost_summary"]


@dataclass(frozen=True)
class SubstrateCost:
    """Modeled cost of one solve on one substrate."""

    substrate: str
    seconds: float
    joules: float
    detail: str

    def as_row(self) -> dict:
        return {
            "substrate": self.substrate,
            "time (s)": self.seconds,
            "energy (J)": self.joules,
            "detail": self.detail,
        }


def solve_cost_summary(
    baseline: NewtonResult,
    hybrid: HybridResult,
    num_unknowns: int,
    jacobian: CsrMatrix,
    grid_n: Optional[int] = None,
    cpu_model: Optional[CpuModel] = None,
    gpu_model: Optional[GpuModel] = None,
    analog_model: Optional[AnalogTimingModel] = None,
) -> List[SubstrateCost]:
    """Rows comparing CPU baseline, GPU baseline, and hybrid costs.

    ``grid_n`` sizes the analog energy model (defaults to the square
    root of half the unknowns — the Burgers two-field convention).
    """
    cpu_model = cpu_model or CpuModel()
    gpu_model = gpu_model or GpuModel()
    analog_model = analog_model or AnalogTimingModel()
    if grid_n is None:
        grid_n = max(1, int(round(np.sqrt(num_unknowns / 2.0))))

    cpu_seconds = cpu_model.solve_seconds(baseline, num_unknowns, jacobian.nnz, count_restarts=True)
    gpu_seconds = gpu_model.solve_seconds(baseline, jacobian, count_restarts=True)
    polish_seconds = cpu_model.solve_seconds(hybrid.digital, num_unknowns, jacobian.nnz)
    seed_seconds = analog_model.seconds(hybrid.analog.settle_time_units)

    return [
        SubstrateCost(
            substrate="CPU damped Newton",
            seconds=cpu_seconds,
            joules=cpu_model.energy_joules(cpu_seconds),
            detail=f"{baseline.total_iterations_including_restarts} iterations incl. restarts",
        ),
        SubstrateCost(
            substrate="GPU QR-offload Newton",
            seconds=gpu_seconds,
            joules=gpu_model.energy_joules(gpu_seconds),
            detail=f"{baseline.total_iterations_including_restarts} QR solves",
        ),
        SubstrateCost(
            substrate="hybrid analog + CPU polish",
            seconds=seed_seconds + polish_seconds,
            joules=(
                analog_model.energy_joules(grid_n, hybrid.analog.settle_time_units)
                + cpu_model.energy_joules(polish_seconds)
            ),
            detail=(
                f"analog settle {hybrid.analog.settle_time_units:.1f} tu + "
                f"{hybrid.digital_iterations} polish iterations"
            ),
        ),
    ]
