"""Graceful-shutdown plumbing shared by trajectories and batch runs.

SIGTERM (the orchestrator's "please stop") and SIGINT (a human's
Ctrl-C) should not be crashes. A :class:`GracefulShutdown` installed
around a run converts the first signal into a *request* — a flag the
checkpointer and runtime poll at safe points (after a completed time
step, between batch outcomes) so they can flush a final snapshot or
journal record and mark the run ``interrupted`` before exiting. A
second signal of the same kind falls through to the previous handler
(normally: die), so an operator is never more than two Ctrl-C's away
from a hard stop.

:class:`RunInterrupted` deliberately derives from ``BaseException``:
the runtime's attempt executor has a total ``except Exception`` guard
(an attempt must never take down the batch), and a shutdown request
must not be swallowed into a "failed attempt" by that guard.
"""

from __future__ import annotations

import signal
import threading
from types import FrameType
from typing import Iterable, Optional

__all__ = ["GracefulShutdown", "RunInterrupted"]


class RunInterrupted(BaseException):
    """A shutdown request surfaced at a safe point in a run.

    BaseException, not Exception: blanket ``except Exception`` recovery
    guards (worker attempts, retry loops) must let this propagate to
    the run loop that knows how to checkpoint and exit cleanly.
    """


class GracefulShutdown:
    """Latch SIGTERM/SIGINT into a pollable flag.

    Usage::

        with GracefulShutdown() as shutdown:
            checkpoint = TrajectoryCheckpointer(path, shutdown=shutdown)
            resume_trajectory(stepper, y0, steps, checkpoint)

    Install/uninstall only works from the main thread (a Python
    ``signal`` restriction); elsewhere the context manager degrades to
    a plain flag that :meth:`request` can still set programmatically.
    """

    DEFAULT_SIGNALS = (signal.SIGTERM, signal.SIGINT)

    def __init__(self, signals: Optional[Iterable[int]] = None):
        self.signals = tuple(signals) if signals is not None else self.DEFAULT_SIGNALS
        self._event = threading.Event()
        self._received: Optional[int] = None
        self._previous = {}
        self._installed = False

    # -- flag side ------------------------------------------------------

    @property
    def requested(self) -> bool:
        return self._event.is_set()

    @property
    def received_signal(self) -> Optional[int]:
        return self._received

    def request(self, signum: Optional[int] = None) -> None:
        """Set the flag programmatically (tests, embedding hosts)."""
        if self._received is None:
            self._received = signum
        self._event.set()

    # -- signal side ----------------------------------------------------

    def _handle(self, signum: int, frame: Optional[FrameType]) -> None:
        if self._event.is_set():
            # Second signal: restore the old disposition and re-raise it
            # so "Ctrl-C twice" still kills a wedged run.
            self._uninstall()
            signal.raise_signal(signum)
            return
        self.request(signum)

    def install(self) -> "GracefulShutdown":
        if self._installed:
            return self
        if threading.current_thread() is not threading.main_thread():
            return self
        for signum in self.signals:
            try:
                self._previous[signum] = signal.signal(signum, self._handle)
            except (ValueError, OSError):
                continue
        self._installed = True
        return self

    def _uninstall(self) -> None:
        if not self._installed:
            return
        for signum, previous in self._previous.items():
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError):
                pass
        self._previous.clear()
        self._installed = False

    def __enter__(self) -> "GracefulShutdown":
        return self.install()

    def __exit__(self, *exc_info: object) -> None:
        self._uninstall()
