"""End-to-end bench suite + CLI: real runs, reduced to one benchmark.

The kernel microbench is the cheapest member of the suite, so these
tests run it for real (``only=("kernel_micro",)``) and validate the
emitted report rather than mocking the measurement layer.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bench import (
    BENCHMARK_NAMES,
    BenchReport,
    run_bench_suite,
    validate_report,
)
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def kernel_report():
    return run_bench_suite(scale="smoke", seed=0, only=("kernel_micro",))


class TestRunBenchSuite:
    def test_report_is_schema_valid(self, kernel_report):
        assert validate_report(kernel_report.to_dict()) == []
        assert kernel_report.scale == "smoke"
        assert list(kernel_report.benchmarks) == ["kernel_micro"]

    def test_measurements_are_populated(self, kernel_report):
        bench = kernel_report.benchmarks["kernel_micro"]
        assert bench.wall_seconds > 0
        # The three hot loops each leave their span behind, counted.
        for span in ("stencil_assembly", "csr_matvec", "linear_solve"):
            assert bench.span_seconds[span] > 0, span
        assert bench.span_counts["linear_solve"] == bench.params["solves"]
        assert bench.span_counts["stencil_assembly"] == bench.params["assemblies"]
        # One kernel, one sparsity pattern: the factorization is built
        # once and every solve is charged to the lifetime stats.
        assert bench.work["linear_solves"] == bench.params["solves"]
        assert bench.work["preconditioner_builds"] == 1.0
        assert bench.peak_rss_kb > 0
        assert bench.params["seed"] == 0

    def test_work_metrics_are_deterministic_across_runs(self, kernel_report):
        again = run_bench_suite(scale="smoke", seed=0, only=("kernel_micro",))
        assert again.benchmarks["kernel_micro"].work == (
            kernel_report.benchmarks["kernel_micro"].work
        )
        assert again.benchmarks["kernel_micro"].span_counts == (
            kernel_report.benchmarks["kernel_micro"].span_counts
        )

    def test_save_load_round_trip(self, kernel_report, tmp_path):
        path = kernel_report.save(tmp_path / "BENCH_1.json")
        again = BenchReport.load(path)
        assert again.to_dict() == kernel_report.to_dict()

    def test_unknown_scale_and_benchmark_rejected(self):
        with pytest.raises(ValueError, match="unknown scale"):
            run_bench_suite(scale="galactic")
        with pytest.raises(ValueError, match="unknown benchmark"):
            run_bench_suite(only=("kernel_micro", "frobnicate"))

    def test_progress_callback_sees_each_benchmark(self, tmp_path):
        seen = []
        run_bench_suite(only=("kernel_micro",), progress=seen.append)
        assert seen == ["kernel_micro"]

    def test_suite_names_are_the_documented_seven(self):
        assert BENCHMARK_NAMES == (
            "trajectory",
            "figure8_seeding",
            "serve_batch",
            "kernel_micro",
            "service_soak",
            "fleet_soak",
            "certify_soak",
        )


class TestBenchCli:
    def test_bench_writes_report_and_exits_zero(self, tmp_path):
        out = tmp_path / "BENCH_cli.json"
        assert main(["bench", "--only", "kernel_micro", "--out", str(out)]) == 0
        assert validate_report(json.loads(out.read_text())) == []

    def test_bench_auto_numbers_in_cwd(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "--only", "kernel_micro"]) == 0
        assert (tmp_path / "BENCH_1.json").exists()
        assert "wrote BENCH_1.json" in capsys.readouterr().out

    def test_bench_no_out_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "--only", "kernel_micro", "--no-out"]) == 0
        assert list(tmp_path.iterdir()) == []

    def test_compare_against_own_run_passes(self, kernel_report, tmp_path):
        baseline = kernel_report.save(tmp_path / "BENCH_base.json")
        code = main(
            [
                "bench",
                "--only",
                "kernel_micro",
                "--no-out",
                "--compare",
                str(baseline),
                "--work-only",
            ]
        )
        assert code == 0

    def test_compare_fails_on_regressed_work(self, kernel_report, tmp_path, capsys):
        # A baseline claiming half the inner iterations makes the real
        # run look like a 2x work regression: the gate must exit 1.
        doc = kernel_report.to_dict()
        doc["benchmarks"]["kernel_micro"]["work"]["inner_iterations"] *= 0.5
        baseline = tmp_path / "BENCH_shrunk.json"
        baseline.write_text(json.dumps(doc))
        code = main(
            [
                "bench",
                "--only",
                "kernel_micro",
                "--no-out",
                "--compare",
                str(baseline),
                "--work-only",
            ]
        )
        assert code == 1
        assert "gate: FAIL" in capsys.readouterr().out

    def test_compare_refuses_scale_mismatch(self, kernel_report, tmp_path, capsys):
        doc = kernel_report.to_dict()
        doc["scale"] = "full"
        baseline = tmp_path / "BENCH_full.json"
        baseline.write_text(json.dumps(doc))
        code = main(
            [
                "bench",
                "--only",
                "kernel_micro",
                "--no-out",
                "--compare",
                str(baseline),
            ]
        )
        assert code == 2
        assert "not comparable" in capsys.readouterr().err

    def test_compare_missing_baseline_exits_three(self, tmp_path, capsys):
        # A mistyped or never-committed snapshot path is its own exit
        # code (3), distinct from a real regression (1) or a scale
        # mismatch (2) — CI must not report "perf regressed" when the
        # truth is "there was nothing to compare against".
        code = main(
            [
                "bench",
                "--only",
                "kernel_micro",
                "--no-out",
                "--compare",
                str(tmp_path / "BENCH_nope.json"),
            ]
        )
        assert code == 3
        err = capsys.readouterr().err
        assert "does not exist" in err
        assert "BENCH_nope.json" in err


class TestRegressionScript:
    """scripts/check_bench_regression.py — the CI gate entry point."""

    SCRIPT = REPO_ROOT / "scripts" / "check_bench_regression.py"

    def run_script(self, *argv):
        return subprocess.run(
            [sys.executable, str(self.SCRIPT), *map(str, argv)],
            capture_output=True,
            text=True,
        )

    def test_identical_reports_pass(self, kernel_report, tmp_path):
        path = kernel_report.save(tmp_path / "BENCH_1.json")
        proc = self.run_script(path, path, "--work-only")
        assert proc.returncode == 0, proc.stderr + proc.stdout
        assert "gate: OK" in proc.stdout

    def test_injected_slowdown_fails(self, kernel_report, tmp_path):
        path = kernel_report.save(tmp_path / "BENCH_1.json")
        proc = self.run_script(
            path,
            path,
            "--work-only",
            "--inject-slowdown",
            "kernel_micro:work.inner_iterations:1.3",
        )
        assert proc.returncode == 1, proc.stderr + proc.stdout
        assert "gate: FAIL" in proc.stdout

    def test_scale_mismatch_exits_two(self, kernel_report, tmp_path):
        path = kernel_report.save(tmp_path / "BENCH_1.json")
        doc = kernel_report.to_dict()
        doc["scale"] = "full"
        other = tmp_path / "BENCH_2.json"
        other.write_text(json.dumps(doc))
        proc = self.run_script(path, other)
        assert proc.returncode == 2, proc.stderr + proc.stdout

    def test_invalid_report_exits_one(self, kernel_report, tmp_path):
        path = kernel_report.save(tmp_path / "BENCH_1.json")
        broken = tmp_path / "BENCH_broken.json"
        broken.write_text('{"bench_schema": 1}')
        proc = self.run_script(path, broken)
        assert proc.returncode == 1, proc.stderr + proc.stdout

    def test_missing_report_exits_three(self, kernel_report, tmp_path):
        path = kernel_report.save(tmp_path / "BENCH_1.json")
        proc = self.run_script(tmp_path / "BENCH_nope.json", path)
        assert proc.returncode == 3, proc.stderr + proc.stdout
        assert "does not exist" in proc.stderr


    def test_help_documents_all_four_exit_codes(self):
        # The exit-code contract is CI-facing API: the epilog must name
        # every code so a red job explains itself without reading the
        # source.
        proc = self.run_script("--help")
        assert proc.returncode == 0
        help_text = proc.stdout
        assert "exit codes" in help_text
        assert "0  gate passed" in help_text
        assert "1  regression past tolerance" in help_text
        assert "2  reports not comparable" in help_text
        assert "3  missing baseline" in help_text


class TestValidateReportsScript:
    """scripts/validate_bench_reports.py — CI schema check over the
    committed BENCH_<n>.json trajectory."""

    SCRIPT = REPO_ROOT / "scripts" / "validate_bench_reports.py"

    def run_script(self, *argv):
        return subprocess.run(
            [sys.executable, str(self.SCRIPT), *map(str, argv)],
            capture_output=True,
            text=True,
        )

    def test_committed_trajectory_is_valid(self):
        proc = self.run_script(str(REPO_ROOT))
        assert proc.returncode == 0, proc.stderr + proc.stdout
        assert "bench report(s) valid" in proc.stdout

    def test_valid_report_dir_passes(self, kernel_report, tmp_path):
        kernel_report.save(tmp_path / "BENCH_1.json")
        proc = self.run_script(str(tmp_path))
        assert proc.returncode == 0, proc.stderr + proc.stdout

    def test_corrupt_report_fails(self, kernel_report, tmp_path):
        kernel_report.save(tmp_path / "BENCH_1.json")
        (tmp_path / "BENCH_2.json").write_text('{"bench_schema": 1}')
        proc = self.run_script(str(tmp_path))
        assert proc.returncode == 1, proc.stderr + proc.stdout
        assert "INVALID" in proc.stdout
        assert "BENCH_2.json" in proc.stdout

    def test_unparseable_json_fails(self, kernel_report, tmp_path):
        kernel_report.save(tmp_path / "BENCH_1.json")
        (tmp_path / "BENCH_2.json").write_text("{ torn mid-write")
        proc = self.run_script(str(tmp_path))
        assert proc.returncode == 1, proc.stderr + proc.stdout

    def test_empty_dir_exits_two(self, tmp_path):
        proc = self.run_script(str(tmp_path))
        assert proc.returncode == 2, proc.stderr + proc.stdout


class TestCommittedCertifySnapshot:
    """The committed BENCH trajectory must carry the certify_soak
    acceptance numbers once the certification layer lands."""

    def test_latest_snapshot_pins_certify_overhead_and_catch_rate(self):
        from repro.bench import latest_bench_path

        path = latest_bench_path(REPO_ROOT)
        assert path is not None, "no committed BENCH_<n>.json found"
        report = BenchReport.load(path)
        bench = report.benchmarks.get("certify_soak")
        assert bench is not None, (
            f"{path.name} predates certify_soak; re-run `repro bench` and "
            "commit the new snapshot"
        )
        # Acceptance: certification overhead <= 10%, every injected
        # corruption deterministically caught, certified clean runs
        # bitwise identical to uncertified ones.
        assert bench.counters["certify_overhead_ratio"] <= 1.10
        assert bench.work["corruption_caught"] >= 1
        assert bench.work["bitwise_identical"] == 1.0
        assert bench.work["certificates_failed"] == bench.work["corruption_caught"]
