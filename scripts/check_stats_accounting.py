#!/usr/bin/env python
"""Smoke check: linear-kernel stats accounting is live and consistent.

Solves one implicit Burgers time step through the default Newton path
and asserts the :class:`~repro.linalg.kernel.LinearSolverStats` counters
that the cost models charge for are nonzero and internally consistent:

* at least one linear solve was recorded (the historical bug left the
  default CSR path's stats at zero);
* matvecs >= inner iterations (Bi-CGstab does two matvecs per
  iteration, plus the initial-residual matvec);
* between one and ``solves`` preconditioner builds (reuse means builds
  can be fewer than solves, never more, never zero for CSR input);
* the CPU model charges nonzero seconds for the measured counts.

Run directly (``python scripts/check_stats_accounting.py``) or via the
tier-1 wrapper ``tests/test_check_stats_accounting.py``.
"""

from __future__ import annotations

import sys
from pathlib import Path

if __package__ is None or __package__ == "":  # running as a script
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.nonlinear.newton import NewtonOptions, newton_solve
from repro.pde.burgers import random_burgers_system
from repro.pde.timestepping import CrankNicolsonSystem, SpatialOperator
from repro.perf.cpu_model import CpuModel


def check_stats_accounting(grid_n: int = 8, seed: int = 0) -> dict:
    """Run the check; returns the stats row on success, raises on failure."""
    rng = np.random.default_rng(seed)
    spatial, _ = random_burgers_system(grid_n, reynolds=0.5, rng=rng)
    operator = SpatialOperator(
        spatial.dimension, apply=spatial.residual, jacobian=spatial.jacobian
    )
    y0 = rng.uniform(-0.5, 0.5, spatial.dimension)
    step = CrankNicolsonSystem(operator, y_prev=y0, dt=0.01)

    result = newton_solve(step, y0, NewtonOptions(tolerance=1e-10, max_iterations=40))
    stats = result.linear_stats

    assert result.converged, "one Crank-Nicolson Burgers step must converge"
    assert stats.solves > 0, "default path must record linear solves (regression: always 0)"
    assert stats.inner_iterations > 0, "Krylov inner iterations must be recorded"
    assert stats.matvecs >= stats.inner_iterations, "Bi-CGstab does >=1 matvec per iteration"
    assert 1 <= stats.preconditioner_builds <= stats.solves, (
        f"builds must be in [1, solves]: {stats.preconditioner_builds} vs {stats.solves}"
    )

    nnz = step.jacobian(y0).nnz
    seconds = CpuModel().solve_seconds_from_stats(stats, step.dimension, nnz)
    assert seconds > 0.0, "measured counts must charge nonzero modeled time"

    row = stats.as_row()
    row["modeled seconds"] = seconds
    return row


def main() -> int:
    row = check_stats_accounting()
    for key, value in row.items():
        print(f"{key}: {value}")
    print("stats accounting OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
