"""Unit tests for repro.linalg.dense."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.dense import (
    SingularMatrixError,
    back_substitution,
    condition_estimate,
    determinant,
    forward_substitution,
    lu_factor,
    lu_solve,
    qr_factor,
    qr_solve,
    solve_dense,
)


def random_well_conditioned(n, seed):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    return a + n * np.eye(n)


class TestLu:
    def test_solves_identity(self):
        x = lu_solve(lu_factor(np.eye(4)), np.arange(4.0))
        np.testing.assert_allclose(x, np.arange(4.0))

    def test_reproduces_known_solution(self):
        a = np.array([[2.0, 1.0], [1.0, 3.0]])
        x_true = np.array([1.0, -2.0])
        x = solve_dense(a, a @ x_true)
        np.testing.assert_allclose(x, x_true, atol=1e-12)

    @pytest.mark.parametrize("n", [1, 2, 5, 20, 60])
    def test_random_systems(self, n):
        a = random_well_conditioned(n, seed=n)
        rng = np.random.default_rng(n + 1)
        x_true = rng.standard_normal(n)
        x = solve_dense(a, a @ x_true)
        np.testing.assert_allclose(x, x_true, rtol=1e-8, atol=1e-8)

    def test_pivoting_handles_zero_leading_entry(self):
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        x = solve_dense(a, np.array([2.0, 3.0]))
        np.testing.assert_allclose(x, np.array([3.0, 2.0]))

    def test_singular_raises(self):
        with pytest.raises(SingularMatrixError):
            lu_factor(np.array([[1.0, 2.0], [2.0, 4.0]]))

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            lu_factor(np.ones((2, 3)))

    def test_rejects_wrong_rhs_length(self):
        fact = lu_factor(np.eye(3))
        with pytest.raises(ValueError):
            lu_solve(fact, np.ones(4))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=12), st.integers(min_value=0, max_value=10_000))
    def test_property_solve_then_multiply_roundtrips(self, n, seed):
        a = random_well_conditioned(n, seed)
        b = np.random.default_rng(seed + 1).standard_normal(n)
        x = solve_dense(a, b)
        np.testing.assert_allclose(a @ x, b, rtol=1e-7, atol=1e-7)


class TestTriangularSolves:
    def test_forward(self):
        lower = np.array([[2.0, 0.0], [1.0, 4.0]])
        x = forward_substitution(lower, np.array([4.0, 10.0]))
        np.testing.assert_allclose(x, np.array([2.0, 2.0]))

    def test_forward_unit_diagonal_ignores_diagonal_values(self):
        lower = np.array([[7.0, 0.0], [1.0, 9.0]])
        x = forward_substitution(lower, np.array([3.0, 5.0]), unit_diagonal=True)
        np.testing.assert_allclose(x, np.array([3.0, 2.0]))

    def test_backward(self):
        upper = np.array([[2.0, 1.0], [0.0, 4.0]])
        x = back_substitution(upper, np.array([5.0, 8.0]))
        np.testing.assert_allclose(x, np.array([1.5, 2.0]))


class TestDeterminant:
    def test_identity(self):
        assert determinant(np.eye(5)) == pytest.approx(1.0)

    def test_swap_sign(self):
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert determinant(a) == pytest.approx(-1.0)

    def test_singular_returns_zero(self):
        assert determinant(np.array([[1.0, 2.0], [2.0, 4.0]])) == 0.0

    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_matches_numpy(self, n):
        a = random_well_conditioned(n, seed=7 * n)
        assert determinant(a) == pytest.approx(float(np.linalg.det(a)), rel=1e-8)


class TestQr:
    @pytest.mark.parametrize("shape", [(3, 3), (6, 4), (10, 10)])
    def test_least_squares_matches_lstsq(self, shape):
        rng = np.random.default_rng(shape[0] * 13 + shape[1])
        a = rng.standard_normal(shape)
        b = rng.standard_normal(shape[0])
        x = qr_solve(qr_factor(a), b)
        expected, *_ = np.linalg.lstsq(a, b, rcond=None)
        np.testing.assert_allclose(x, expected, rtol=1e-8, atol=1e-8)

    def test_r_is_upper_triangular(self):
        a = np.random.default_rng(3).standard_normal((5, 5))
        fact = qr_factor(a)
        lower_part = np.tril(fact.r, k=-1)
        np.testing.assert_allclose(lower_part, np.zeros_like(lower_part), atol=1e-10)

    def test_rejects_wide_matrix(self):
        with pytest.raises(ValueError):
            qr_factor(np.ones((2, 4)))


class TestConditionEstimate:
    def test_identity_is_one(self):
        assert condition_estimate(np.eye(6)) == pytest.approx(1.0, rel=0.3)

    def test_grows_with_ill_conditioning(self):
        mild = condition_estimate(np.diag([1.0, 2.0, 3.0]))
        harsh = condition_estimate(np.diag([1.0, 1e-6, 3.0]))
        assert harsh > 100 * mild

    def test_singular_is_infinite(self):
        assert condition_estimate(np.zeros((3, 3))) == float("inf")
