"""Table 2: effect of Reynolds number on Burgers'/Navier-Stokes.

Reproduces the qualitative classification row-for-row, and augments it
with a *measured* diagnostic that grounds the claim: the minimum
diagonal-dominance ratio of the Burgers Jacobian, which collapses as
the Reynolds number grows (the mechanism the paper invokes in
Section 6.1 for digital Newton's difficulties).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.pde.burgers import random_burgers_system, reynolds_character
from repro.reporting import ascii_table

__all__ = ["Table2Result", "run_table2"]


@dataclass
class Table2Result:
    rows_data: List[dict]
    dominance_by_reynolds: List[dict]

    def rows(self) -> List[dict]:
        return self.rows_data

    def render(self) -> str:
        classification = ascii_table(self.rows_data)
        dominance = ascii_table(self.dominance_by_reynolds)
        return f"{classification}\n\nMeasured Jacobian diagonal dominance:\n{dominance}"


def run_table2(
    grid_n: int = 4,
    reynolds_values: tuple = (0.01, 0.1, 1.0, 10.0),
    trials: int = 3,
) -> Table2Result:
    """Classify both regimes and measure diagonal dominance vs Re."""
    rows = []
    for regime_re in (10.0, 0.1):
        character = reynolds_character(regime_re)
        rows.append(
            {
                "Reynolds number": character.regime,
                "Mach number": character.mach,
                "viscosity": character.viscosity,
                "effect of diffusion": character.diffusion_effect,
                "dominant PDE character": character.dominant_character,
                "nonlinearity": character.nonlinearity,
            }
        )
    dominance = []
    for reynolds in reynolds_values:
        ratios = []
        diag_minima = []
        for trial in range(trials):
            system, guess = random_burgers_system(grid_n, reynolds, np.random.default_rng(trial))
            ratios.append(system.diagonal_dominance(guess))
            jac = system.jacobian(guess)
            diag_minima.append(float(np.min(np.abs(jac.diagonal()))))
        dominance.append(
            {
                "Reynolds number": reynolds,
                "min |diag|": float(np.mean(diag_minima)),
                "min |diag| / sum |offdiag|": float(np.mean(ratios)),
            }
        )
    return Table2Result(rows_data=rows, dominance_by_reynolds=dominance)
