"""Tests for the figure experiment drivers (small-scale runs)."""

import numpy as np
import pytest

from repro.experiments.common import ANALOG_ERROR_TARGET, equal_accuracy_damped_newton
from repro.experiments.figure2 import render_basin_ascii, run_figure2
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure6 import run_figure6
from repro.experiments.figure7 import run_figure7
from repro.nonlinear.newton import NewtonOptions, damped_newton_with_restarts
from repro.pde.burgers import random_burgers_system


class TestEqualAccuracyProtocol:
    def test_stops_at_target_not_at_machine_precision(self):
        system, guess = random_burgers_system(3, 1.0, np.random.default_rng(0))
        golden = damped_newton_with_restarts(
            system, guess, NewtonOptions(tolerance=1e-12, max_iterations=100)
        )
        assert golden.converged
        result = equal_accuracy_damped_newton(system, guess, golden.u, scale=3.3)
        assert result.reached_target
        full = damped_newton_with_restarts(
            system, guess, NewtonOptions(tolerance=1e-12, max_iterations=100)
        )
        assert result.iterations <= full.iterations

    def test_error_actually_below_target(self):
        from repro.analog.engine import solution_error

        system, guess = random_burgers_system(2, 0.5, np.random.default_rng(1))
        golden = damped_newton_with_restarts(
            system, guess, NewtonOptions(tolerance=1e-12, max_iterations=100)
        )
        result = equal_accuracy_damped_newton(system, guess, golden.u, scale=3.3)
        assert result.reached_target
        assert solution_error(result.u / 3.3, golden.u / 3.3) <= ANALOG_ERROR_TARGET

    def test_zero_iterations_when_guess_already_accurate(self):
        system, guess = random_burgers_system(2, 0.5, np.random.default_rng(2))
        golden = damped_newton_with_restarts(
            system, guess, NewtonOptions(tolerance=1e-12, max_iterations=100)
        )
        result = equal_accuracy_damped_newton(system, golden.u, golden.u, scale=3.3)
        assert result.reached_target
        assert result.iterations == 0


class TestFigure2Driver:
    def test_continuous_more_contiguous(self):
        result = run_figure2(resolution=40)
        assert (
            result.scores["continuous Newton (analog)"]
            > result.scores["classical Newton (digital)"]
        )

    def test_ascii_rendering(self):
        result = run_figure2(resolution=32)
        art = render_basin_ascii(result.maps["continuous Newton (analog)"], max_size=16)
        assert len(art.splitlines()) >= 8
        assert set(art) <= set("#o+.?\n")

    def test_rows_have_three_methods(self):
        result = run_figure2(resolution=24)
        assert len(result.rows()) == 3


class TestFigure3Driver:
    def test_homotopy_panel_fully_correct(self):
        result = run_figure3(resolution=24)
        rows = {row["panel"]: row for row in result.rows()}
        assert rows["homotopy end"]["correct-solution fraction"] == 1.0
        assert rows["homotopy beginning (Equation 3 roots)"]["distinct outcomes"] == 4

    def test_direct_flow_has_wrong_region(self):
        result = run_figure3(resolution=24)
        rows = {row["panel"]: row for row in result.rows()}
        assert rows["continuous Newton, no homotopy"]["wrong-result fraction"] > 0.0

    def test_render_lists_roots(self):
        assert "real roots" in run_figure3(resolution=16).render()


class TestFigure6Driver:
    def test_small_run_in_paper_band(self):
        result = run_figure6(trials=25)
        assert 0.02 < result.total_rms < 0.10
        assert result.errors.size + result.failed_trials == 25

    def test_histogram_covers_all_trials(self):
        result = run_figure6(trials=20)
        assert sum(row["trials"] for row in result.histogram()) == result.errors.size

    def test_render_mentions_paper_value(self):
        assert "5.38%" in run_figure6(trials=10).render()

    def test_validation(self):
        with pytest.raises(ValueError):
            run_figure6(trials=0)


class TestFigure7Driver:
    def test_small_sweep_shape(self):
        result = run_figure7(grid_sizes=(2, 8), reynolds_values=(1.0,), trials=1)
        small = result.cell(2, 1.0)
        large = result.cell(8, 1.0)
        assert small is not None and large is not None
        # Digital grows with problem size; analog stays roughly flat.
        assert large["digital time (s)"] > 2.0 * small["digital time (s)"]
        assert large["analog time (s)"] < 3.0 * small["analog time (s)"]


class TestEqualAccuracyFailurePath:
    def test_unreachable_target_reported(self):
        # A golden point deliberately far from any root: no damping can
        # reach 0% error against it, so the protocol reports failure
        # with the honest restart accounting.
        system, guess = random_burgers_system(2, 1.0, np.random.default_rng(9))
        fake_golden = np.full(system.dimension, 50.0)
        result = equal_accuracy_damped_newton(
            system,
            guess,
            fake_golden,
            scale=3.3,
            target_error=1e-6,
            max_iterations=10,
            min_damping=1.0 / 4.0,
        )
        assert not result.reached_target
        assert result.restarts >= 2
        assert result.total_iterations_including_restarts >= result.iterations
