"""Continuous algorithms beyond Newton: eigenanalysis and LP.

The paper's conclusion: "The missing analog-digital program
partitioning for analog accelerators may be continuous algorithms ...
continuous gradient descent for linear algebra, continuous Newton's and
homotopy continuation for nonlinear equations, and others for problems
such as eigenanalysis and linear programming."

This example runs two of those "others":

1. **eigenanalysis** — the Oja flow settles on the dominant eigenpairs
   of a symmetric matrix (deflation extracts the next ones);
2. **linear programming** — the log-barrier gradient flow settles on a
   near-optimal interior point, and the hybrid crossover turns it into
   the exact optimal vertex without running simplex.

Run:  python examples/continuous_algorithms.py
"""

import numpy as np

from repro.nonlinear import dominant_eigenpairs
from repro.optimize import LinearProgram, hybrid_lp_solve, simplex_solve


def eigenanalysis_demo() -> None:
    print("=" * 70)
    print("1. Continuous eigenanalysis: the Oja flow + deflation")
    print("=" * 70)
    rng = np.random.default_rng(0)
    raw = rng.standard_normal((6, 6))
    matrix = (raw + raw.T) / 2.0
    pairs = dominant_eigenpairs(matrix, count=3, seed=1)
    reference = np.sort(np.linalg.eigvalsh(matrix))[::-1][:3]
    print(f"{'rank':>4} | {'flow eigenvalue':>16} | {'numpy eigh':>12} | {'settle time':>11}")
    print("-" * 56)
    for rank, (pair, exact) in enumerate(zip(pairs, reference), start=1):
        print(
            f"{rank:>4} | {pair.eigenvalue:>16.8f} | {exact:>12.8f} "
            f"| {pair.settle_time:>9.2f} tu"
        )
    print("  (the flow is an ODE with no step size - an analog kernel)\n")


def linear_programming_demo() -> None:
    print("=" * 70)
    print("2. Hybrid linear programming: barrier flow seed + exact crossover")
    print("=" * 70)
    # A small production-planning LP:
    #   max 3 x0 + 5 x1  s.t.  x0 <= 4, 2 x1 <= 12, 3 x0 + 2 x1 <= 18.
    problem = LinearProgram.from_inequalities(
        c=np.array([-3.0, -5.0]),
        a_ub=np.array([[1.0, 0.0], [0.0, 2.0], [3.0, 2.0]]),
        b_ub=np.array([4.0, 12.0, 18.0]),
    )
    exact = simplex_solve(problem)
    hybrid = hybrid_lp_solve(problem)
    print(f"  simplex optimum:       x = {exact.x[:2]}, objective {exact.objective:+.4f}")
    print(f"  simplex pivots:        {exact.pivots}")
    print(
        f"  barrier-flow interior: x = {np.round(hybrid.flow.x[:2], 4)}, "
        f"objective {hybrid.flow.objective:+.4f} (settled: {hybrid.flow.settled})"
    )
    print(f"  hybrid crossover:      x = {hybrid.x[:2]}, objective {hybrid.objective:+.4f}")
    print(f"  used simplex fallback: {hybrid.used_fallback}")
    print("  (the flow's interior point identifies the optimal vertex's")
    print("   active set; one linear solve replaces the pivot sequence)")


if __name__ == "__main__":
    eigenanalysis_demo()
    linear_programming_demo()
