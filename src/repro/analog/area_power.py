"""Area and power models of the accelerator (Tables 3 and 4).

Table 3 of the paper gives per-PDE-variable area (0.70 mm^2 summed over
the four circuit roles) and peak power (763 uW); Table 4 extrapolates
whole 2-D Burgers solvers from 1x1 to 16x16 grids. The per-variable
constants below are fitted to Table 4's totals (0.688 mm^2 and
0.763 mW per variable — Table 3's role split, which rounds to 0.70,
carries the remaining rounding).

Peak power is what Table 4 reports; "as the continuous Newton method
approaches convergence the circuit activity and power consumption
decreases", which :meth:`AreaPowerModel.run_energy` models with an
activity-weighted integral.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analog.compiler import TABLE3_ROLES, ResourceCount

__all__ = ["AreaPowerModel", "scaled_accelerator_table", "TABLE3_AREA_MM2", "TABLE3_POWER_UW"]

# Table 3 bottom rows: per-variable area (mm^2) and power (uW) by role.
TABLE3_AREA_MM2: Dict[str, float] = {
    "nonlinear function": 0.30,
    "Jacobian matrix": 0.17,
    "quotient feedback loop": 0.14,
    "Newton method feedback loop": 0.09,
}
TABLE3_POWER_UW: Dict[str, float] = {
    "nonlinear function": 284.0,
    "Jacobian matrix": 152.0,
    "quotient feedback loop": 188.0,
    "Newton method feedback loop": 139.0,
}

# Per-variable constants consistent with Table 4's whole-solver totals.
_AREA_PER_VARIABLE_MM2 = 0.6882
_POWER_PER_VARIABLE_MW = 0.763


@dataclass(frozen=True)
class AreaPowerModel:
    """Area/peak-power extrapolation for a 2-D Burgers solver.

    A grid of ``n x n`` nodes carries ``2 n^2`` PDE variables (u and v
    fields), each occupying one tile.
    """

    area_per_variable_mm2: float = _AREA_PER_VARIABLE_MM2
    power_per_variable_mw: float = _POWER_PER_VARIABLE_MW

    def variables_for_grid(self, n: int) -> int:
        if n <= 0:
            raise ValueError("grid size must be positive")
        return 2 * n * n

    def chip_area_mm2(self, n: int) -> float:
        """Total analog area of an ``n x n`` Burgers solver."""
        return self.variables_for_grid(n) * self.area_per_variable_mm2

    def peak_power_mw(self, n: int) -> float:
        """Peak power; actual draw decays as the circuit converges."""
        return self.variables_for_grid(n) * self.power_per_variable_mw

    def run_energy_joules(self, n: int, settle_seconds: float, activity_factor: float = 0.6) -> float:
        """Energy of one run: peak power x settle time x mean activity.

        ``activity_factor`` (0, 1] is the time-averaged fraction of peak
        power over a run; circuit activity tracks the decaying residual.
        """
        if settle_seconds < 0.0:
            raise ValueError("settle_seconds must be nonnegative")
        if not 0.0 < activity_factor <= 1.0:
            raise ValueError("activity_factor must be in (0, 1]")
        return self.peak_power_mw(n) * 1e-3 * settle_seconds * activity_factor

    def power_density_w_per_cm2(self, n: int) -> float:
        """Power density; the paper notes it is ~400x below CPU dies."""
        area_cm2 = self.chip_area_mm2(n) / 100.0
        return self.peak_power_mw(n) * 1e-3 / area_cm2


def scaled_accelerator_table(grid_sizes: Tuple[int, ...] = (1, 2, 4, 8, 16)) -> List[dict]:
    """Reproduce Table 4: area and power for scaled-up accelerators."""
    model = AreaPowerModel()
    return [
        {
            "solver size": f"{n} x {n}",
            "chip area (mm^2)": round(model.chip_area_mm2(n), 2),
            "power use (mW)": round(model.peak_power_mw(n), 2),
        }
        for n in grid_sizes
    ]


def table3_totals(resources: ResourceCount) -> List[dict]:
    """Reproduce Table 3: per-variable component usage with the
    area/power bottom rows."""
    rows = []
    for component in resources.components():
        counts = resources.role_counts(component)
        rows.append(
            {
                "component": component,
                **{role: count for role, count in zip(TABLE3_ROLES, counts)},
                "total": sum(counts),
            }
        )
    rows.append(
        {
            "component": "total area (mm^2)",
            **{role: TABLE3_AREA_MM2[role] for role in TABLE3_ROLES},
            "total": round(sum(TABLE3_AREA_MM2.values()), 2),
        }
    )
    rows.append(
        {
            "component": "total power (uW)",
            **{role: TABLE3_POWER_UW[role] for role in TABLE3_ROLES},
            "total": round(sum(TABLE3_POWER_UW.values()), 1),
        }
    )
    return rows
