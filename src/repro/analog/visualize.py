"""Terminal visualization of analog transients.

The development workflow the paper describes for the prototype chip —
"incremental bringup", per-component testing (Section 5.1) — leans on
looking at waveforms. This module renders the simulator's recorded
transients (:class:`repro.ode.solution.OdeSolution` from
``AnalogAccelerator.solve(..., record_trajectory=True)``) as compact
Unicode sparklines and multi-channel scope panels, so the settling
dynamics are inspectable in a terminal or log file.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.ode.solution import OdeSolution

__all__ = ["sparkline", "render_scope"]

_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """One signal as a fixed-width Unicode sparkline.

    Values are resampled to ``width`` columns and quantized to eight
    vertical levels over the signal's own range; a constant signal
    renders as a flat mid-level line.
    """
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("values must be nonempty")
    if width <= 0:
        raise ValueError("width must be positive")
    positions = np.linspace(0, values.size - 1, width)
    resampled = np.interp(positions, np.arange(values.size), values)
    lo, hi = float(resampled.min()), float(resampled.max())
    if hi - lo < 1e-15:
        return _LEVELS[3] * width
    quantized = np.clip(
        ((resampled - lo) / (hi - lo) * (len(_LEVELS) - 1)).round().astype(int),
        0,
        len(_LEVELS) - 1,
    )
    return "".join(_LEVELS[q] for q in quantized)


def render_scope(
    solution: OdeSolution,
    channels: Optional[Sequence[int]] = None,
    width: int = 60,
    labels: Optional[Sequence[str]] = None,
) -> str:
    """Multi-channel scope panel of a recorded transient.

    One sparkline row per selected state channel, with the final value
    annotated — the readout an engineer would take off the settled
    trace.
    """
    ys = solution.ys
    if channels is None:
        channels = list(range(min(ys.shape[1], 8)))
    if labels is not None and len(labels) != len(channels):
        raise ValueError("one label per channel")
    lines = []
    header = (
        f"t in [{solution.ts[0]:.2f}, {solution.final_time:.2f}]"
        + ("  (settled)" if solution.settled else "  (NOT settled)")
    )
    lines.append(header)
    for idx, channel in enumerate(channels):
        if not 0 <= channel < ys.shape[1]:
            raise ValueError(f"channel {channel} outside state dimension {ys.shape[1]}")
        name = labels[idx] if labels is not None else f"ch{channel}"
        trace = sparkline(ys[:, channel], width=width)
        lines.append(f"{name:>8} |{trace}| {ys[-1, channel]:+.4f}")
    return "\n".join(lines)
