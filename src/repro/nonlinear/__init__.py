"""Nonlinear systems of algebraic equations and their solvers.

This package carries the paper's algorithmic core:

* :mod:`repro.nonlinear.systems` — the ``NonlinearSystem`` protocol and
  the concrete systems the paper studies: the scalar cubic ``u^3 - 1``
  of Section 2, the coupled quadratic system of Eq. 2 (a semilinear PDE
  on two grid points), and its trivial homotopy partner of Eq. 3.
* :mod:`repro.nonlinear.newton` — digital Newton variants: classical,
  fixed-damping, and the paper's baseline with a halving damping
  schedule found by restarting (Section 6.1).
* :mod:`repro.nonlinear.continuous_newton` — the continuous Newton
  flow ``du/dtau = -J(u)^{-1} F(u)`` as an ODE, in behavioral and
  circuit (inner gradient-flow) fidelities.
* :mod:`repro.nonlinear.homotopy` — homotopy continuation between a
  simple and a hard system (Section 3.2).
* :mod:`repro.nonlinear.basins` — vectorized basin-of-attraction maps
  behind Figures 2 and 3.
"""

from repro.nonlinear.systems import (
    NonlinearSystem,
    CallableSystem,
    CubicRootSystem,
    CoupledQuadraticSystem,
    SimpleSquareSystem,
    finite_difference_jacobian,
    check_jacobian,
)
from repro.nonlinear.newton import (
    NewtonOptions,
    NewtonResult,
    newton_solve,
    damped_newton_with_restarts,
)
from repro.nonlinear.continuous_newton import (
    ContinuousNewtonResult,
    continuous_newton_solve,
    newton_flow_rhs,
)
from repro.nonlinear.homotopy import (
    HomotopyResult,
    HomotopySchedule,
    homotopy_solve,
    homotopy_all_roots,
    DavidenkoResult,
    davidenko_solve,
)
from repro.nonlinear.flows import (
    EigenFlowResult,
    oja_flow,
    dominant_eigenpairs,
    rayleigh_quotient,
)
from repro.nonlinear.basins import (
    BasinMap,
    classify_roots,
    newton_iteration_basins,
    continuous_newton_basins,
    coupled_system_basins,
    contiguity_score,
)

__all__ = [
    "NonlinearSystem",
    "CallableSystem",
    "CubicRootSystem",
    "CoupledQuadraticSystem",
    "SimpleSquareSystem",
    "finite_difference_jacobian",
    "check_jacobian",
    "NewtonOptions",
    "NewtonResult",
    "newton_solve",
    "damped_newton_with_restarts",
    "ContinuousNewtonResult",
    "continuous_newton_solve",
    "newton_flow_rhs",
    "HomotopyResult",
    "HomotopySchedule",
    "homotopy_solve",
    "homotopy_all_roots",
    "DavidenkoResult",
    "davidenko_solve",
    "BasinMap",
    "classify_roots",
    "newton_iteration_basins",
    "continuous_newton_basins",
    "coupled_system_basins",
    "contiguity_score",
    "EigenFlowResult",
    "oja_flow",
    "dominant_eigenpairs",
    "rayleigh_quotient",
]
