"""Log-barrier gradient flow: the analog LP kernel.

For the standard-form LP ``min c^T x, A x = b, x >= 0``, the
log-barrier subproblem at temperature ``mu`` minimizes

    f_mu(x) = c^T x - mu * sum(log x_i)

over the affine set ``A x = b``. Its *projected gradient flow*

    dx/dt = -P (c - mu / x)        (P = orthogonal projector onto ker A)

is a smooth ODE whose equilibrium is the central-path point ``x(mu)``,
and ``x(mu) -> x*`` as ``mu -> 0``. Analog hardware realizes the
division ``mu / x`` with a feedback multiplier loop (the same trick as
Figure 1's quotient block) and the projector with a resistive network,
so the whole flow is an analog kernel — the LP member of the paper's
continuous-algorithm family (Section 9).

The returned interior point is approximate (the analog way) — the
hybrid pipeline in :mod:`repro.optimize.hybrid_lp` converts it to an
exact vertex.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.optimize.simplex import LinearProgram
from repro.ode.events import integrate_until_settled

__all__ = ["BarrierFlowResult", "barrier_flow_solve"]


@dataclass
class BarrierFlowResult:
    """A settled central-path approximation."""

    x: np.ndarray
    objective: float
    mu: float
    settled: bool
    settle_time: float
    feasible: bool


def _kernel_projector(a: np.ndarray) -> np.ndarray:
    """Orthogonal projector onto ``ker A`` (dense; LP-scale systems)."""
    # P = I - A^T (A A^T)^-1 A, via least squares for rank safety.
    at_pinv = np.linalg.pinv(a)
    return np.eye(a.shape[1]) - at_pinv @ a


def _interior_start(problem: LinearProgram) -> Optional[np.ndarray]:
    """A strictly positive feasible start, via the least-norm solution
    pushed into the interior along ker A; None if that fails."""
    a, b = problem.a, problem.b
    x = np.linalg.lstsq(a, b, rcond=None)[0]
    if np.linalg.norm(a @ x - b) > 1e-8 * max(1.0, float(np.linalg.norm(b))):
        return None
    if np.all(x > 1e-9):
        return x
    # Nudge toward positivity inside the affine set: solve a small
    # phase-1-like flow digitally (projected ascent on min(x)).
    projector = _kernel_projector(a)
    for _ in range(500):
        worst = np.argmin(x)
        if x[worst] > 1e-6:
            return x
        direction = projector[:, worst]
        norm = np.linalg.norm(direction)
        if norm < 1e-12:
            return None  # that coordinate is pinned by A x = b
        x = x + 0.1 * max(1.0, abs(x[worst])) * direction / norm
    return x if np.all(x > 0.0) else None


def barrier_flow_solve(
    problem: LinearProgram,
    mu: float = 1e-3,
    x0: Optional[np.ndarray] = None,
    time_limit: float = 2_000.0,
    derivative_tolerance: float = 1e-7,
) -> BarrierFlowResult:
    """Settle the projected barrier flow at temperature ``mu``.

    Smaller ``mu`` lands closer to the true optimum but makes the flow
    stiffer near the active constraints — the accuracy/settling-time
    dial of the analog kernel.
    """
    if mu <= 0.0:
        raise ValueError("mu must be positive")
    a = problem.a
    projector = _kernel_projector(a)
    if x0 is None:
        x0 = _interior_start(problem)
        if x0 is None:
            return BarrierFlowResult(
                x=np.zeros(problem.num_variables),
                objective=float("nan"),
                mu=mu,
                settled=False,
                settle_time=0.0,
                feasible=False,
            )
    x0 = np.asarray(x0, dtype=float)
    if np.any(x0 <= 0.0):
        raise ValueError("x0 must be strictly positive (interior)")

    floor = 1e-12

    def rhs(_t: float, x: np.ndarray) -> np.ndarray:
        safe = np.maximum(x, floor)
        gradient = problem.c - mu / safe
        return -(projector @ gradient)

    solution = integrate_until_settled(
        rhs,
        x0,
        time_limit=time_limit,
        derivative_tolerance=derivative_tolerance,
        dwell=0.5,
        rtol=1e-8,
        atol=1e-12,
    )
    x = np.maximum(solution.final_state, 0.0)
    return BarrierFlowResult(
        x=x,
        objective=problem.objective(x),
        mu=mu,
        settled=solution.settled,
        settle_time=solution.settle_time if solution.settle_time is not None else solution.final_time,
        feasible=problem.is_feasible(x, tol=1e-6),
    )
