"""Nondeterminism audit: seeded RNGs, reproducible runs, seeds in traces.

The paper's figures are Monte-Carlo over random problem instances; the
repro is only trustworthy if every random stream is seeded and a rerun
with the same seed retells exactly the same story. Three layers:

* a static audit that no ``default_rng()`` call in ``src/`` is
  unseeded;
* two same-seed ``run_figure7`` runs produce identical rows, identical
  iteration counts and identical kernel accounting;
* the ``--trace`` manifest records the seed, so a trace file is enough
  to rerun what produced it;
* a same-seed runtime batch is bitwise identical at any worker count —
  concurrency is an execution detail, never an input to the answer.
"""

import re
from pathlib import Path

import numpy as np

from repro.cli import main
from repro.experiments.figure7 import run_figure7
from repro.runtime import ProblemSpec, RetryPolicy, Runtime, SolveRequest
from repro.trace import Tracer, read_trace

SRC = Path(__file__).resolve().parents[2] / "src"

FIGURE7_KWARGS = dict(
    grid_sizes=(2, 4), reynolds_values=(0.01, 1.0), trials=1, seed=123
)


class TestSeededRngAudit:
    def test_no_unseeded_default_rng_in_src(self):
        """``default_rng()`` with no argument draws OS entropy — any such
        call makes figures unreproducible. Every call site must pass a
        seed (or a seeded generator)."""
        offenders = []
        for path in sorted(SRC.rglob("*.py")):
            for number, line in enumerate(path.read_text().splitlines(), start=1):
                if re.search(r"default_rng\(\s*\)", line):
                    offenders.append(f"{path.relative_to(SRC)}:{number}: {line.strip()}")
        assert not offenders, "unseeded default_rng() calls:\n" + "\n".join(offenders)


class TestSameSeedReruns:
    def test_figure7_rows_and_stats_identical(self):
        first = run_figure7(**FIGURE7_KWARGS)
        second = run_figure7(**FIGURE7_KWARGS)
        assert first.rows_data == second.rows_data
        for field in ("solves", "inner_iterations", "matvecs", "preconditioner_builds"):
            assert getattr(first.kernel_stats, field) == getattr(second.kernel_stats, field)

    def test_figure7_traced_iteration_counts_identical(self):
        """Span-level determinism: the same seed replays the same number
        of Newton iterations and linear solves, span for span."""
        traces = []
        for _ in range(2):
            tracer = Tracer()
            run_figure7(**FIGURE7_KWARGS, tracer=tracer)
            traces.append(tracer)
        for name in ("newton_iter", "linear_solve", "newton_attempt", "solve"):
            assert len(traces[0].spans_named(name)) == len(traces[1].spans_named(name)), name
        first_inner = [
            span.attrs.get("inner_iterations") for span in traces[0].spans_named("linear_solve")
        ]
        second_inner = [
            span.attrs.get("inner_iterations") for span in traces[1].spans_named("linear_solve")
        ]
        assert first_inner == second_inner


class TestRuntimeConcurrencyDeterminism:
    """workers=1 and workers=4 must be indistinguishable in every output.

    All derived randomness in :mod:`repro.runtime` — accelerator die
    sampling, retry jitter — is keyed by ``stable_seed(seed,
    request_id, attempt, ...)``, never by pool scheduling order, so a
    same-seed batch must agree bitwise across worker counts.
    """

    @staticmethod
    def _batch(workers):
        requests = [
            SolveRequest(
                f"det-{i}",
                (
                    ProblemSpec.burgers(2, 2.0, seed=40 + i)
                    if i % 2
                    else ProblemSpec.quadratic(rhs0=1.0 + 0.2 * i)
                ),
                analog_time_limit=1e-3,
            )
            for i in range(6)
        ]
        tracer = Tracer()
        runtime = Runtime(
            workers=workers,
            seed=99,
            retry=RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.05),
        )
        return runtime.run_batch(requests, tracer=tracer), tracer

    def test_outcomes_bitwise_identical_across_worker_counts(self):
        serial, serial_tracer = self._batch(workers=1)
        pooled, pooled_tracer = self._batch(workers=4)
        assert [o.request_id for o in serial.outcomes] == [
            o.request_id for o in pooled.outcomes
        ]
        for a, b in zip(serial.outcomes, pooled.outcomes):
            assert (a.status, a.rung, a.attempts, a.attempt_history) == (
                b.status,
                b.rung,
                b.attempts,
                b.attempt_history,
            )
            assert a.residual_norm == b.residual_norm  # bitwise, not approx
            assert np.array_equal(a.solution, b.solution)

        # Solver-side counters agree exactly; execution-mode keys
        # (pool bookkeeping) are the only permitted difference.
        for key in ("runtime_attempts", "requests_completed", "ladder_fallbacks"):
            assert serial_tracer.counters.get(key, 0) == pooled_tracer.counters.get(
                key, 0
            ), key

        # Same span-name histogram: identical work was traced, even
        # though pooled spans were grafted from worker processes.
        def histogram(tracer):
            names = {}
            for span in tracer.spans:
                names[span.name] = names.get(span.name, 0) + 1
            return names

        assert histogram(serial_tracer) == histogram(pooled_tracer)


class TestProcessVariationDeterminism:
    """One seed is one die — in this process, in any process.

    Die sampling feeds every analog result; if a fresh interpreter drew
    different mismatch for the same seed, figure reruns and the pooled
    runtime would silently disagree with serial runs.
    """

    _DRAW_SNIPPET = (
        "import hashlib, numpy as np\n"
        "from repro.analog.calibration import CalibrationConfig, ProcessVariation\n"
        "from repro.analog.noise import NoiseModel\n"
        "v = ProcessVariation(NoiseModel(), seed={seed})\n"
        "g = v.draw_gain_errors(64)\n"
        "r = v.calibrate(g, CalibrationConfig())\n"
        "o = v.residual_offsets(64)\n"
        "print(hashlib.sha256(g.tobytes() + r.tobytes() + o.tobytes()).hexdigest())\n"
    )

    @staticmethod
    def _digest_in_this_process(seed):
        import hashlib

        from repro.analog.calibration import CalibrationConfig, ProcessVariation
        from repro.analog.noise import NoiseModel

        variation = ProcessVariation(NoiseModel(), seed=seed)
        gains = variation.draw_gain_errors(64)
        residuals = variation.calibrate(gains, CalibrationConfig())
        offsets = variation.residual_offsets(64)
        return hashlib.sha256(
            gains.tobytes() + residuals.tobytes() + offsets.tobytes()
        ).hexdigest()

    def test_same_seed_identical_draws_across_processes(self):
        """A fresh interpreter reproduces this process's die bitwise."""
        import os
        import subprocess
        import sys

        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC)
        for seed in (0, 7):
            child = subprocess.run(
                [sys.executable, "-c", self._DRAW_SNIPPET.format(seed=seed)],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            assert child.stdout.strip() == self._digest_in_this_process(seed)

    def test_different_seeds_are_different_dies(self):
        assert self._digest_in_this_process(0) != self._digest_in_this_process(1)

    def test_degradation_walk_is_schedule_order_independent(self):
        """The drift walk is keyed by (seed, purpose, step, component),
        so two schedules reach identical state even when one of them
        ages two boards alternately — process and interleaving are
        never inputs to the walk."""
        from repro.analog.fabric import Fabric
        from repro.analog.health import DegradationModel, DegradationSchedule

        model = DegradationModel(gain_drift_sigma=0.01, offset_drift_sigma=0.02, seed=21)

        def fresh_fabric(schedule):
            fabric = Fabric(num_chips=2, seed=0, degradation=schedule)
            fabric.calibrate()
            return fabric

        straight = DegradationSchedule(model)
        board = fresh_fabric(straight)
        for _ in range(4):
            straight.advance(board)

        interleaved = DegradationSchedule(model)
        board_a = fresh_fabric(interleaved)
        board_b = fresh_fabric(interleaved)
        for step in range(4):
            interleaved.advance(board_a if step % 2 == 0 else board_b)

        assert straight.gain_drift == interleaved.gain_drift
        assert straight.offset_drift == interleaved.offset_drift


class TestDegradedRuntimeConcurrencyDeterminism:
    """Degradation must not break the workers=1 == workers=4 guarantee.

    Each attempt's :class:`DegradationSchedule` is seeded by
    ``stable_seed(runtime_seed, request_id, attempt, "degradation")``
    and lives inside the attempt, so pooled and serial batches age
    their boards identically.
    """

    @staticmethod
    def _batch(workers):
        from repro.analog.health import DegradationModel

        requests = [
            SolveRequest(
                f"drift-{i}",
                ProblemSpec.burgers(2, 1.0, seed=60 + i),
                analog_time_limit=1e-3,
            )
            for i in range(4)
        ]
        tracer = Tracer()
        runtime = Runtime(
            workers=workers,
            seed=77,
            degradation=DegradationModel(offset_drift_sigma=0.05, seed=3),
            retry=RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.05),
        )
        return runtime.run_batch(requests, tracer=tracer), tracer

    def test_degraded_outcomes_bitwise_identical_across_worker_counts(self):
        serial, serial_tracer = self._batch(workers=1)
        pooled, pooled_tracer = self._batch(workers=4)
        for a, b in zip(serial.outcomes, pooled.outcomes):
            assert (a.request_id, a.status, a.rung, a.attempt_history) == (
                b.request_id,
                b.status,
                b.rung,
                b.attempt_history,
            )
            assert a.residual_norm == b.residual_norm
            assert np.array_equal(a.solution, b.solution)
        for key in ("seeds_rejected", "tiles_quarantined", "recalibrations"):
            assert serial_tracer.counters.get(key, 0) == pooled_tracer.counters.get(
                key, 0
            ), key


class TestSeedInTraceManifest:
    def test_cli_trace_records_seed_and_settings(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert (
            main(
                [
                    "figure7",
                    "--nx",
                    "4",
                    "--reynolds",
                    "1.0",
                    "--trials",
                    "1",
                    "--seed",
                    "42",
                    "--trace",
                    str(path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        manifest = read_trace(path).manifest
        assert manifest["seed"] == 42
        assert manifest["command"] == "figure7"
        assert manifest["grid_sizes"] == [4]
        assert "repro_version" in manifest
