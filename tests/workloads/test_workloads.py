"""Tests for the Table 1 workload mini-apps."""

import numpy as np
import pytest

from repro.workloads import (
    CooksMembraneWorkload,
    HartmannWorkload,
    LidDrivenCavityWorkload,
    TransonicFlowWorkload,
)

ALL_WORKLOADS = [
    TransonicFlowWorkload,
    HartmannWorkload,
    LidDrivenCavityWorkload,
    CooksMembraneWorkload,
]


@pytest.mark.parametrize("workload_cls", ALL_WORKLOADS, ids=lambda c: c.__name__)
def test_runs_and_reports_kernel_fraction(workload_cls):
    workload = workload_cls()
    report = workload.run()
    fraction = report.fraction(workload.KERNEL_NAME)
    assert 0.0 < fraction < 1.0
    assert report.total_seconds > 0.0


@pytest.mark.parametrize("workload_cls", ALL_WORKLOADS, ids=lambda c: c.__name__)
def test_equation_solving_is_a_major_kernel(workload_cls):
    # Table 1's headline: equation solving is a major kernel in every
    # one of the profiled solvers.
    workload = workload_cls()
    report = workload.run()
    assert report.fraction(workload.KERNEL_NAME) > 0.10


def test_structured_grid_has_higher_solver_fraction():
    # "The equation solving proportion is higher for structured grids
    # such as finite difference. Irregular memory accesses shift
    # computation time away from equation solving for less structured
    # grids such as finite volume and finite elements."
    transonic = TransonicFlowWorkload()
    cavity = LidDrivenCavityWorkload()
    membrane = CooksMembraneWorkload()
    f_transonic = transonic.run().fraction(transonic.KERNEL_NAME)
    f_cavity = cavity.run().fraction(cavity.KERNEL_NAME)
    f_membrane = membrane.run().fraction(membrane.KERNEL_NAME)
    assert f_transonic > f_cavity
    assert f_transonic > f_membrane


def test_bwaves_analogue_is_the_most_kernel_dominated():
    fractions = {}
    for cls in ALL_WORKLOADS:
        workload = cls()
        fractions[cls.__name__] = workload.run().fraction(workload.KERNEL_NAME)
    assert max(fractions, key=fractions.get) == "TransonicFlowWorkload"


class TestPhysicsSanity:
    def test_cavity_flow_develops(self):
        workload = LidDrivenCavityWorkload(grid_n=12, num_steps=4)
        workload.run()
        # The lid drags the top row of fluid in +x.
        u = workload._final_u.reshape(12, 12)
        assert np.mean(u[-1, :]) > 0.0
        # And the bottom stays much slower.
        assert np.mean(u[-1, :]) > 5.0 * abs(np.mean(u[0, :]))

    def test_membrane_deflects_toward_load(self):
        workload = CooksMembraneWorkload(grid_n=10, outer_iterations=6)
        workload.run()
        assert np.mean(workload._final_displacement) > 0.0

    def test_membrane_hardening_reduces_deflection(self):
        soft = CooksMembraneWorkload(grid_n=8, hardening=0.0, load=2.0, outer_iterations=8)
        hard = CooksMembraneWorkload(grid_n=8, hardening=5.0, load=2.0, outer_iterations=8)
        soft.run()
        hard.run()
        assert np.max(hard._final_displacement) < np.max(soft._final_displacement)

    def test_hartmann_analytic_helper_positive(self):
        workload = HartmannWorkload(hartmann_number=2.0)
        assert workload.analytic_centerline_velocity() > 0.0
