"""Tests for red-black nonlinear Gauss-Seidel decomposition."""

import numpy as np
import pytest

from repro.core.gauss_seidel import RedBlackGaussSeidel
from repro.nonlinear.newton import NewtonOptions, damped_newton_with_restarts
from repro.pde.burgers import random_burgers_system


def make_system(n, reynolds=1.0, seed=0):
    return random_burgers_system(n, reynolds, np.random.default_rng(seed))


class TestBlocking:
    def test_blocks_tile_grid_exactly(self):
        system, _ = make_system(8)
        decomposition = RedBlackGaussSeidel(system, block_size=4)
        assert len(decomposition.blocks) == 4
        covered = np.zeros((8, 8), dtype=int)
        for block in decomposition.blocks:
            covered[block.j0 : block.j1, block.i0 : block.i1] += 1
        np.testing.assert_array_equal(covered, 1)

    def test_checkerboard_coloring(self):
        system, _ = make_system(8)
        decomposition = RedBlackGaussSeidel(system, block_size=4)
        by_pos = {(b.i0, b.j0): b.color for b in decomposition.blocks}
        assert by_pos[(0, 0)] != by_pos[(4, 0)]
        assert by_pos[(0, 0)] != by_pos[(0, 4)]
        assert by_pos[(0, 0)] == by_pos[(4, 4)]

    def test_uneven_blocks(self):
        system, _ = make_system(6)
        decomposition = RedBlackGaussSeidel(system, block_size=4)
        sizes = sorted({(b.nx, b.ny) for b in decomposition.blocks})
        assert (4, 4) in sizes
        assert (2, 2) in sizes

    def test_single_block_when_fits(self):
        system, _ = make_system(4)
        decomposition = RedBlackGaussSeidel(system, block_size=16)
        assert len(decomposition.blocks) == 1

    def test_validation(self):
        system, _ = make_system(4)
        with pytest.raises(ValueError):
            RedBlackGaussSeidel(system, block_size=0)


class TestBlockSystem:
    def test_block_residual_matches_global_at_solution(self):
        # If the global state solves the global system, each block
        # subproblem (with frozen surroundings) is also solved.
        system, guess = make_system(4, seed=2)
        result = damped_newton_with_restarts(
            system, guess, NewtonOptions(tolerance=1e-11, max_iterations=100)
        )
        assert result.converged
        u, v = system.split(result.u)
        decomposition = RedBlackGaussSeidel(system, block_size=2)
        for block in decomposition.blocks:
            sub = decomposition.block_system(block, u, v)
            sub_state = sub.pack(
                u[block.j0 : block.j1, block.i0 : block.i1],
                v[block.j0 : block.j1, block.i0 : block.i1],
            )
            assert sub.residual_norm(sub_state) < 1e-9


class TestSolve:
    def test_converges_to_seeding_tolerance(self):
        system, guess = make_system(6, reynolds=0.5, seed=3)
        decomposition = RedBlackGaussSeidel(system, block_size=3)
        result = decomposition.solve(initial_guess=guess, tolerance=1e-4)
        assert result.converged
        assert result.residual_history[-1] < 1e-3 * result.residual_history[0] * 10

    def test_result_seeds_full_newton(self):
        # The decomposed solution lands in the quadratic basin of the
        # full-system Newton solve.
        system, guess = make_system(6, reynolds=1.0, seed=4)
        decomposition = RedBlackGaussSeidel(system, block_size=3)
        seed_result = decomposition.solve(initial_guess=guess, tolerance=1e-4)
        assert seed_result.converged
        from repro.nonlinear.newton import newton_solve

        polished = newton_solve(
            system, seed_result.u, NewtonOptions(tolerance=1e-11, max_iterations=30)
        )
        assert polished.converged
        assert polished.iterations <= 8

    def test_residual_decreases_monotonically_enough(self):
        system, guess = make_system(4, seed=5)
        decomposition = RedBlackGaussSeidel(system, block_size=2)
        result = decomposition.solve(initial_guess=guess, tolerance=1e-5)
        history = result.residual_history
        assert history[-1] < history[0]

    def test_subdomain_solve_count(self):
        system, guess = make_system(4, seed=6)
        decomposition = RedBlackGaussSeidel(system, block_size=2)
        result = decomposition.solve(initial_guess=guess, tolerance=1e-4)
        assert result.subdomain_solves == result.sweeps * len(decomposition.blocks)

    def test_custom_subdomain_solver_used(self):
        calls = []

        def counting_solver(sub, sub_guess):
            calls.append(sub.dimension)
            from repro.core.gauss_seidel import _default_subdomain_solver

            return _default_subdomain_solver(sub, sub_guess)

        system, guess = make_system(4, seed=7)
        decomposition = RedBlackGaussSeidel(system, block_size=2, subdomain_solver=counting_solver)
        decomposition.solve(initial_guess=guess, max_sweeps=2, tolerance=1e-6)
        assert calls
        assert all(dim == 8 for dim in calls)  # 2x2 blocks -> 8 unknowns

    def test_max_sweeps_validation(self):
        system, guess = make_system(4)
        decomposition = RedBlackGaussSeidel(system, block_size=2)
        with pytest.raises(ValueError):
            decomposition.solve(max_sweeps=0)
