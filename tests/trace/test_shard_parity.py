"""Shard-layout parity for traced parallel sweeps.

:func:`repro.experiments.parallel.run_parallel_sweep` silently degrades
to serial execution when the platform refuses a process pool, so a
traced sweep must emit the *identical* shard layout in both modes —
one shard per experiment, traceable ones carrying spans, the rest a
manifest-only stub (``traced: false``). Anything less and a trace from
a degraded CI run is not comparable to one from a developer machine.
"""

from repro.experiments.parallel import TRACEABLE, run_parallel_sweep
from repro.trace import read_trace

NAMES = ("figure7", "table2")
OVERRIDES = {
    "figure7": {"grid_sizes": (2,), "reynolds_values": (1.0,), "trials": 1, "seed": 5}
}


def _traced_sweep(tmp_path, max_workers):
    trace_path = tmp_path / f"sweep-w{max_workers}.jsonl"
    result = run_parallel_sweep(
        names=NAMES,
        overrides=OVERRIDES,
        max_workers=max_workers,
        trace_path=str(trace_path),
    )
    assert all(run.ok for run in result.runs)
    return result, read_trace(trace_path)


class TestShardParity:
    def test_serial_and_pooled_sweeps_emit_identical_shard_layout(self, tmp_path):
        _, serial = _traced_sweep(tmp_path, max_workers=1)
        pooled_result, pooled = _traced_sweep(tmp_path, max_workers=2)

        for trace in (serial, pooled):
            shards = trace.manifest["shards"]
            by_name = {shard["experiment"]: shard for shard in shards}
            # Every experiment is named in the merged manifest, traced
            # or not — including in serial-degrade mode (the historical
            # bug: serial sweeps skipped the untraceable stubs).
            assert set(by_name) == set(NAMES)
            assert by_name["figure7"]["traced"] is True
            assert by_name["table2"]["traced"] is False
            assert "error" not in by_name["table2"]

        # Span payloads agree across modes: same source experiments,
        # same span-name histogram (the sweep is deterministic).
        def span_shape(trace):
            sources = set()
            names = {}
            for span in trace.spans:
                sources.add(span.get("attrs", {}).get("source"))
                names[span["name"]] = names.get(span["name"], 0) + 1
            return sources, names

        assert span_shape(serial) == span_shape(pooled)
        # Only the traceable experiment contributes spans.
        assert all(
            span.get("attrs", {}).get("source") in (None, *TRACEABLE)
            for span in serial.spans
        )
