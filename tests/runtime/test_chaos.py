"""Chaos suite: injected faults must end in structured outcomes.

Every scenario seeds a :class:`repro.runtime.FaultInjector`, runs a
batch, and asserts the runtime's core guarantee — each request ends in
exactly one terminal :class:`~repro.runtime.SolveOutcome` with the
correct degradation-ladder rung and fault history recorded; never a
raised exception, never a hang. Each fault kind has a scenario:

* ``analog_spike`` — silent seed corruption pushes the ladder past the
  hybrid rung (down to homotopy) within a single attempt;
* ``solver_hang`` — a bounded stall trips the cooperative deadline, is
  accounted a ``timeout`` attempt, and the retry converges;
* ``worker_crash`` — in pooled mode a real ``os._exit`` mid-batch
  (kill-the-worker): the broken pool degrades to in-process execution,
  the attempt is retried, the batch completes, and the crash survives
  into the trace manifest.

Everything is explicitly seeded (no reliance on pytest ordering or
collection-time randomness), so a failure replays byte-for-byte with
``pytest tests/runtime/test_chaos.py -k <scenario>``.
"""

import numpy as np
import pytest

from repro.runtime import (
    FaultInjector,
    FaultSpec,
    ProblemSpec,
    RetryPolicy,
    Runtime,
    SolveRequest,
    TERMINAL_STATUSES,
)
from repro.trace.tracer import Tracer

pytestmark = pytest.mark.chaos

# Finite but overflow-scale: squaring it in the Burgers advection term
# produces inf, so the corrupted seed defeats the undamped polish (and
# the damped recovery that restarts from it) deterministically,
# regardless of which direction the noise draw points.
OVERFLOW_SPIKE = 1e300


def _quadratic_requests(count, prefix="q"):
    # analog_time_limit bounds the *simulated* settle: an unlucky die
    # sample can make the quadratic's analog stage arbitrarily slow in
    # wall-clock at the 60 s default, and chaos tests must never be the
    # thing that hangs.
    return [
        SolveRequest(
            f"{prefix}-{i}",
            ProblemSpec.quadratic(rhs0=1.0 + 0.1 * i),
            analog_time_limit=1e-3,
        )
        for i in range(count)
    ]


class TestAnalogSpike:
    def test_corrupted_seed_degrades_to_homotopy(self):
        """A silently corrupted analog result (converged flag intact,
        solution blasted) must fail the hybrid rung, fail the damped
        recovery seeded from it, and be rescued by homotopy — with the
        fault and the full ladder path on the outcome."""
        faults = FaultInjector(
            specs=(
                FaultSpec(
                    kind="analog_spike",
                    request_id="s-0",
                    attempt=0,
                    magnitude=OVERFLOW_SPIKE,
                ),
            )
        )
        tracer = Tracer()
        runtime = Runtime(seed=5, faults=faults, retry=RetryPolicy(max_attempts=1))
        with np.errstate(all="ignore"):
            result = runtime.run_batch(
                [SolveRequest("s-0", ProblemSpec.burgers(2, 2.0, seed=7))],
                tracer=tracer,
            )
        outcome = result.outcomes[0]
        assert outcome.status == "converged"
        assert outcome.rung == "homotopy"
        assert outcome.rungs_tried == ("hybrid", "damped_newton", "homotopy")
        assert "analog_spike" in outcome.faults
        assert tracer.counters["ladder_fallbacks"] == 2
        assert tracer.counters["runtime_faults"] >= 1
        tracer.check_closed()

    def test_default_magnitude_spike_is_still_recorded(self):
        """Even when the polish survives a milder spike, the fault is
        on the record and the outcome is terminal."""
        faults = FaultInjector(
            specs=(FaultSpec(kind="analog_spike", request_id="s-0", attempt=0),)
        )
        runtime = Runtime(seed=5, faults=faults, retry=RetryPolicy(max_attempts=2))
        with np.errstate(all="ignore"):
            result = runtime.run_batch(
                [SolveRequest("s-0", ProblemSpec.burgers(2, 2.0, seed=7))]
            )
        outcome = result.outcomes[0]
        assert outcome.status in TERMINAL_STATUSES
        assert "analog_spike" in outcome.faults


class TestSolverHang:
    def test_bounded_hang_times_out_then_retry_converges(self):
        """A 0.6 s stall against a 0.3 s deadline: attempt 0 must be
        accounted a timeout (cooperatively — the stall is shorter than
        the parent watchdog's grace), and attempt 1, injected-fault
        free, converges."""
        faults = FaultInjector(
            specs=(
                FaultSpec(
                    kind="solver_hang", request_id="h-0", attempt=0, magnitude=0.6
                ),
            )
        )
        tracer = Tracer()
        runtime = Runtime(
            seed=3,
            faults=faults,
            retry=RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.05),
        )
        result = runtime.run_batch(
            [
                SolveRequest(
                    "h-0",
                    ProblemSpec.quadratic(),
                    deadline_seconds=0.3,
                    analog_time_limit=1e-3,
                )
            ],
            tracer=tracer,
        )
        outcome = result.outcomes[0]
        assert outcome.status == "converged"
        assert outcome.attempt_history == ["timeout", "converged"]
        assert outcome.retries == 1
        assert "solver_hang" in outcome.faults
        assert tracer.counters["runtime_timeouts"] == 1
        assert tracer.counters["runtime_retries"] == 1
        tracer.check_closed()

    def test_hang_on_every_attempt_ends_in_timeout_outcome(self):
        """If the stall recurs on every attempt, the request must end as
        a structured timeout — bounded attempts, no hang, no raise."""
        faults = FaultInjector(
            specs=tuple(
                FaultSpec(
                    kind="solver_hang", request_id="h-0", attempt=a, magnitude=0.5
                )
                for a in range(2)
            )
        )
        runtime = Runtime(
            seed=3,
            faults=faults,
            retry=RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.05),
        )
        result = runtime.run_batch(
            [
                SolveRequest(
                    "h-0",
                    ProblemSpec.quadratic(),
                    deadline_seconds=0.2,
                    analog_time_limit=1e-3,
                )
            ]
        )
        outcome = result.outcomes[0]
        assert outcome.status == "timeout"
        assert outcome.attempts == 2
        assert outcome.attempt_history == ["timeout", "timeout"]


class TestWorkerCrash:
    def test_pooled_kill_the_worker_batch_completes(self):
        """The acceptance scenario: a worker process killed mid-batch
        (`os._exit` inside the pool). The batch must still complete via
        retry, and the failure must be recorded in the trace manifest."""
        faults = FaultInjector(
            specs=(FaultSpec(kind="worker_crash", request_id="c-1", attempt=0),)
        )
        tracer = Tracer()
        runtime = Runtime(
            workers=2,
            seed=3,
            faults=faults,
            retry=RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.05),
        )
        result = runtime.run_batch(_quadratic_requests(4, prefix="c"), tracer=tracer)
        assert len(result.outcomes) == 4
        assert all(o.status in TERMINAL_STATUSES for o in result.outcomes)
        assert all(o.ok for o in result.outcomes)
        crashed = result.outcome_for("c-1")
        assert crashed.attempts >= 2
        assert "worker_crash" in crashed.faults
        assert tracer.counters["worker_crashes"] >= 1
        assert tracer.manifest["runtime"]["worker_crashes"] >= 1
        tracer.check_closed()

    def test_serial_crash_simulation_takes_same_recovery_path(self):
        faults = FaultInjector(
            specs=(FaultSpec(kind="worker_crash", request_id="c-0", attempt=0),)
        )
        tracer = Tracer()
        runtime = Runtime(
            workers=1,
            seed=3,
            faults=faults,
            retry=RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.05),
        )
        result = runtime.run_batch(
            [SolveRequest("c-0", ProblemSpec.quadratic(), analog_time_limit=1e-3)],
            tracer=tracer,
        )
        outcome = result.outcomes[0]
        assert outcome.ok and outcome.attempts == 2
        assert outcome.attempt_history == ["crashed", "converged"]
        assert tracer.counters["worker_crashes"] == 1

    def test_crash_on_final_attempt_is_structured_failure(self):
        faults = FaultInjector(
            specs=(FaultSpec(kind="worker_crash", request_id="c-0", attempt=0),)
        )
        runtime = Runtime(workers=1, seed=3, faults=faults, retry=RetryPolicy(max_attempts=1))
        result = runtime.run_batch(
            [SolveRequest("c-0", ProblemSpec.quadratic(), analog_time_limit=1e-3)]
        )
        outcome = result.outcomes[0]
        assert outcome.status == "failed"
        assert outcome.error == "worker crashed"


class TestLadderExhaustion:
    def test_all_rungs_failing_yields_failed_outcome_not_exception(self):
        """A hybrid-only ladder on a problem outside the undamped basin,
        retried to the attempt bound: the terminal outcome is `failed`
        with the per-rung diagnosis, and nothing leaks as an exception."""
        runtime = Runtime(
            seed=5, retry=RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.05)
        )
        result = runtime.run_batch(
            [
                SolveRequest(
                    "f-0",
                    ProblemSpec.burgers(4, 5.0, seed=11),
                    rungs=("hybrid",),
                    analog_time_limit=1e-3,
                )
            ]
        )
        outcome = result.outcomes[0]
        assert outcome.status == "failed"
        assert outcome.attempts == 2
        assert "ladder exhausted" in outcome.error
        assert outcome.rungs_tried == ("hybrid",)


class TestAnalogDegradation:
    """The health layer's acceptance story, exercised end to end.

    A drifting board must be *caught* (gate rejection), *contained*
    (ladder demotion without a wasted hybrid polish, tile quarantine)
    and *repaired* (recalibration restoring hybrid-rung service), with
    the three reconciliation counters agreeing exactly with the trace
    spans and attempt histories.
    """

    # Constants tuned so the story unfolds within a handful of solves:
    # 0.07 full-scale offset drift per step accumulates past the gate's
    # relative-residual threshold of 1.0 after a couple of exec_starts,
    # while the drifted continuous-Newton flow still settles within a
    # 20-unit budget (larger walks can leave the flow root-free).
    DRIFT = dict(offset_drift_sigma=0.07, seed=5)
    SOLVES = 6
    TIME_LIMIT = 20.0

    def _run_ladder_story(self):
        from repro.analog.engine import AnalogAccelerator
        from repro.analog.health import DegradationModel
        from repro.runtime.ladder import DegradationLadder

        system, guess = ProblemSpec.burgers(2, 1.0, seed=0).build()
        accelerator = AnalogAccelerator(
            seed=1, degradation=DegradationModel(**self.DRIFT)
        )
        ladder = DegradationLadder(accelerator=accelerator)
        tracer = Tracer()
        results = []
        for _ in range(self.SOLVES):
            results.append(
                ladder.solve(
                    system,
                    initial_guess=guess,
                    analog_time_limit=self.TIME_LIMIT,
                    tracer=tracer,
                )
            )
        return accelerator, results, tracer

    def test_drift_reject_quarantine_recalibrate_restore(self):
        """The full loop on one long-lived board: drift accumulates, a
        seed is rejected, the ladder lands on damped_newton *without*
        burning a hybrid polish, tiles are quarantined, recalibration
        fires, and the next solve is back on the hybrid rung."""
        accelerator, results, tracer = self._run_ladder_story()
        monitor = accelerator.health

        # Every solve converged; the board never took the batch down.
        assert all(r.converged for r in results)
        # The first solve ran on a freshly calibrated board: hybrid.
        assert results[0].rung == "hybrid"

        # At least one later seed was rejected by the gate, and that
        # solve fell to damped_newton without trying homotopy — the
        # hybrid attempt records the gate's verdict, not a wasted
        # polish (0 iterations).
        rejected = [
            r
            for r in results
            if r.attempts and "seed rejected" in (r.attempts[0].error or "")
        ]
        assert rejected, "no solve was gate-rejected"
        for r in rejected:
            assert r.rung == "damped_newton"
            assert r.rungs_tried == ("hybrid", "damped_newton")
            assert r.attempts[0].iterations == 0
            assert "quality" in r.attempts[0].error

        # Containment and repair happened.
        assert monitor.seeds_rejected >= 1
        assert monitor.tiles_quarantined >= 1
        assert monitor.recalibrations >= 1
        assert accelerator.degradation.resets == monitor.recalibrations

        # Restoration: recalibration fired (visible in the span
        # stream), and after the first rejected solve — which is also
        # where quarantine pressure triggered the recalibration in this
        # scenario — a later solve runs on the hybrid rung again.
        recal_spans = [
            s for s in tracer.spans_named("analog_health") if s.attrs.get("recalibrated")
        ]
        assert recal_spans
        first_rejected = next(
            i
            for i, r in enumerate(results)
            if "seed rejected" in (r.attempts[0].error or "")
        )
        assert any(
            r.rung == "hybrid" for r in results[first_rejected + 1 :]
        ), "recalibration never restored hybrid-rung service"

    def test_counters_reconcile_with_spans_and_attempts(self):
        """seeds_rejected == rejected hybrid attempts == rejected
        analog_health spans; tiles_quarantined and recalibrations
        reconcile the same way. No double counting, no dropped events."""
        accelerator, results, tracer = self._run_ladder_story()
        monitor = accelerator.health
        spans = tracer.spans_named("analog_health")
        assert len(spans) == self.SOLVES  # one per accelerator run

        span_rejections = sum(1 for s in spans if s.attrs["seed_rejected"])
        attempt_rejections = sum(
            1
            for r in results
            if r.attempts and "seed rejected" in (r.attempts[0].error or "")
        )
        assert (
            monitor.seeds_rejected
            == tracer.counters["seeds_rejected"]
            == span_rejections
            == attempt_rejections
        )
        assert monitor.tiles_quarantined == tracer.counters["tiles_quarantined"] == sum(
            s.attrs["newly_quarantined"] for s in spans
        )
        assert monitor.recalibrations == tracer.counters["recalibrations"] == sum(
            1 for s in spans if s.attrs["recalibrated"]
        )
        # The degradation clock advanced once per accelerator run.
        assert spans[-1].attrs["degradation_step"] == self.SOLVES
        # Ladder fallbacks: exactly one per gate-rejected solve (no
        # other rung ever failed in this scenario).
        assert tracer.counters["ladder_fallbacks"] == span_rejections
        tracer.check_closed()

    def test_degrade_analog_fault_demotes_one_attempt(self):
        """The runtime seam: a ``degrade_analog`` fault ages one
        attempt's board enough that its seed is gate-rejected, the
        ladder absorbs it on damped_newton, and the fault plus the
        health counters survive into the outcome and manifest."""
        faults = FaultInjector(
            specs=(FaultSpec(kind="degrade_analog", request_id="g-0", attempt=0),)
        )
        tracer = Tracer()
        runtime = Runtime(seed=5, faults=faults, retry=RetryPolicy(max_attempts=1))
        result = runtime.run_batch(
            [
                SolveRequest(
                    "g-0",
                    ProblemSpec.burgers(2, 2.0, seed=7),
                    analog_time_limit=20.0,
                )
            ],
            tracer=tracer,
        )
        outcome = result.outcomes[0]
        assert outcome.status == "converged"
        assert outcome.rung == "damped_newton"
        assert outcome.rungs_tried == ("hybrid", "damped_newton")
        assert "degrade_analog" in outcome.faults
        assert tracer.counters["seeds_rejected"] == 1
        assert tracer.manifest["runtime"]["seeds_rejected"] == 1
        assert result.counters.get("seeds_rejected") == 1
        tracer.check_closed()

    def test_degraded_batch_every_request_terminal(self):
        """Runtime-level degradation on *every* attempt's board (the
        constructor knob): all requests still end terminal, and the
        health counters in the manifest equal the tracer's."""
        from repro.analog.health import DegradationModel

        tracer = Tracer()
        runtime = Runtime(
            seed=9,
            degradation=DegradationModel(offset_drift_sigma=0.3, seed=2),
            retry=RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.05),
        )
        requests = [
            SolveRequest(
                f"deg-{i}",
                ProblemSpec.burgers(2, 1.0, seed=30 + i),
                analog_time_limit=20.0,
            )
            for i in range(3)
        ]
        result = runtime.run_batch(requests, tracer=tracer)
        assert all(o.status in TERMINAL_STATUSES for o in result.outcomes)
        assert all(o.ok for o in result.outcomes)
        for name in ("seeds_rejected", "tiles_quarantined", "recalibrations"):
            manifest_value = tracer.manifest["runtime"].get(name, 0)
            assert manifest_value == tracer.counters.get(name, 0), name
        tracer.check_closed()


class TestMixedChaosBatch:
    def test_every_request_ends_terminal_under_mixed_faults(self):
        """Rate-based chaos across a pooled batch: whatever fires, every
        request must end in exactly one terminal outcome and the
        counters must reconcile with the outcomes."""
        faults = FaultInjector.from_rates(
            {"worker_crash": 0.2, "analog_spike": 0.2}, seed=13
        )
        tracer = Tracer()
        runtime = Runtime(
            workers=2,
            seed=13,
            faults=faults,
            retry=RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.05),
        )
        requests = _quadratic_requests(6, prefix="m")
        with np.errstate(all="ignore"):
            result = runtime.run_batch(requests, tracer=tracer)
        assert sorted(o.request_id for o in result.outcomes) == sorted(
            r.request_id for r in requests
        )
        assert all(o.status in TERMINAL_STATUSES for o in result.outcomes)
        completed = tracer.counters.get("requests_completed", 0)
        failed = tracer.counters.get("requests_failed", 0)
        assert completed + failed == len(requests)
        assert tracer.counters["runtime_attempts"] == sum(
            o.attempts for o in result.outcomes
        )
        tracer.check_closed()
