"""Unit tests for the fault-tolerant solve runtime's building blocks.

The chaos scenarios live in ``test_chaos.py`` and the soak batch in
``test_stress.py``; this module pins the contracts the runtime is
built from: seeded determinism of every derived stream, the bounded
queue, the picklable problem specs, the degradation ladder's verdicts,
and cross-process trace grafting.
"""

import pickle

import numpy as np
import pytest

from repro.nonlinear.newton import NewtonOptions
from repro.runtime import (
    Deadline,
    DeadlineExceeded,
    DegradationLadder,
    FaultInjector,
    FaultSpec,
    ProblemSpec,
    QueueFull,
    RetryPolicy,
    Runtime,
    SolveOutcome,
    SolveRequest,
    stable_seed,
)
from repro.trace.tracer import Tracer


class TestStableSeed:
    def test_deterministic_across_calls(self):
        assert stable_seed(1, "req", 0) == stable_seed(1, "req", 0)

    def test_distinct_for_distinct_parts(self):
        seeds = {
            stable_seed(1, "req", 0),
            stable_seed(1, "req", 1),
            stable_seed(2, "req", 0),
            stable_seed(1, "other", 0),
        }
        assert len(seeds) == 4

    def test_fits_in_numpy_seed_range(self):
        assert 0 <= stable_seed("anything", 42) < 2**63


class TestDeadline:
    def test_expires_on_fake_clock(self):
        now = [0.0]
        deadline = Deadline(1.0, clock=lambda: now[0])
        deadline.check()  # not expired yet
        assert deadline.remaining == pytest.approx(1.0)
        now[0] = 2.0
        assert deadline.expired
        with pytest.raises(DeadlineExceeded):
            deadline.check()

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            Deadline(0.0)


class TestProblemSpec:
    def test_burgers_build_is_deterministic(self):
        spec = ProblemSpec.burgers(2, 1.5, seed=9)
        system_a, guess_a = spec.build()
        system_b, guess_b = spec.build()
        assert np.array_equal(guess_a, guess_b)
        u = np.linspace(-1.0, 1.0, system_a.dimension)
        assert np.array_equal(system_a.residual(u), system_b.residual(u))

    def test_quadratic_build(self):
        system, guess = ProblemSpec.quadratic(rhs0=2.0, rhs1=1.0, guess=(0.5, 0.5)).build()
        assert system.dimension == 2
        assert guess.tolist() == [0.5, 0.5]

    def test_survives_pickling(self):
        spec = ProblemSpec.burgers(2, 1.0, seed=3)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        _, guess_a = spec.build()
        _, guess_b = clone.build()
        assert np.array_equal(guess_a, guess_b)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown problem kind"):
            ProblemSpec(kind="heat").build()


class TestRetryPolicy:
    def test_delay_is_deterministic(self):
        policy = RetryPolicy()
        assert policy.delay_for(7, "req", 1) == policy.delay_for(7, "req", 1)

    def test_delay_grows_exponentially_up_to_cap(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.4, jitter=0.0)
        assert policy.delay_for(0, "r", 1) == pytest.approx(0.1)
        assert policy.delay_for(0, "r", 2) == pytest.approx(0.2)
        assert policy.delay_for(0, "r", 3) == pytest.approx(0.4)
        assert policy.delay_for(0, "r", 9) == pytest.approx(0.4)  # capped

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=10.0, jitter=0.5)
        for attempt in range(1, 5):
            delay = policy.delay_for(3, "r", attempt)
            base = 0.1 * 2 ** (attempt - 1)
            assert base <= delay <= base * 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)


class TestRequestAndOutcomeContracts:
    def test_request_validation(self):
        with pytest.raises(ValueError):
            SolveRequest("", ProblemSpec.quadratic())
        with pytest.raises(ValueError):
            SolveRequest("r", ProblemSpec.quadratic(), deadline_seconds=0.0)

    def test_outcome_status_must_be_terminal(self):
        with pytest.raises(ValueError, match="status"):
            SolveOutcome(request_id="r", status="crashed")

    def test_ok_only_for_converged(self):
        assert SolveOutcome(request_id="r", status="converged").ok
        assert not SolveOutcome(request_id="r", status="timeout").ok


class TestBoundedQueue:
    def test_submit_raises_queue_full_at_bound(self):
        runtime = Runtime(queue_limit=2)
        runtime.submit(SolveRequest("a", ProblemSpec.quadratic()))
        runtime.submit(SolveRequest("b", ProblemSpec.quadratic()))
        with pytest.raises(QueueFull):
            runtime.submit(SolveRequest("c", ProblemSpec.quadratic()))

    def test_duplicate_request_ids_rejected(self):
        runtime = Runtime()
        runtime.submit(SolveRequest("a", ProblemSpec.quadratic()))
        with pytest.raises(ValueError, match="duplicate"):
            runtime.submit(SolveRequest("a", ProblemSpec.quadratic()))

    def test_run_batch_admits_oversized_batches_in_windows(self):
        runtime = Runtime(queue_limit=2, retry=RetryPolicy(max_attempts=1))
        requests = [
            SolveRequest(f"q-{i}", ProblemSpec.quadratic(rhs0=1.0 + 0.1 * i))
            for i in range(5)
        ]
        result = runtime.run_batch(requests)
        assert [o.request_id for o in result.outcomes] == [r.request_id for r in requests]
        assert all(o.ok for o in result.outcomes)


class TestFaultInjector:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="disk_full")
        with pytest.raises(ValueError):
            FaultInjector(rates=(("analog_spike", 1.5),))

    def test_targeted_spec_matches_only_its_attempt(self):
        injector = FaultInjector(
            specs=(FaultSpec(kind="analog_spike", request_id="r", attempt=1),)
        )
        assert injector.active_faults("r", 0) == []
        assert [f.kind for f in injector.active_faults("r", 1)] == ["analog_spike"]
        assert injector.active_faults("other", 1) == []

    def test_rate_draws_are_deterministic_and_roughly_calibrated(self):
        injector = FaultInjector.from_rates({"worker_crash": 0.25}, seed=5)
        hits = [bool(injector.active_faults(f"req-{i}", 0)) for i in range(200)]
        assert hits == [bool(injector.active_faults(f"req-{i}", 0)) for i in range(200)]
        assert 20 <= sum(hits) <= 80  # ~50 expected

    def test_injector_pickles(self):
        injector = FaultInjector.from_rates({"solver_hang": 0.5}, seed=1)
        clone = pickle.loads(pickle.dumps(injector))
        assert clone.active_faults("r", 0) == injector.active_faults("r", 0)


class TestDegradationLadder:
    def test_quadratic_converges_on_hybrid_rung(self):
        system, guess = ProblemSpec.quadratic().build()
        result = DegradationLadder().solve(system, guess)
        assert result.converged and result.rung == "hybrid"
        assert result.rungs_tried == ("hybrid",)

    def test_rung_override_and_validation(self):
        with pytest.raises(ValueError, match="unknown ladder rungs"):
            DegradationLadder(rungs=("hybrid", "prayer"))
        with pytest.raises(ValueError, match="at least one rung"):
            DegradationLadder(rungs=())
        system, guess = ProblemSpec.quadratic().build()
        result = DegradationLadder(rungs=("damped_newton",)).solve(system, guess)
        assert result.converged and result.rung == "damped_newton"

    def test_exhausted_ladder_returns_structured_failure(self):
        """A hybrid-only ladder on a problem outside the undamped basin
        must report failure with the rung's diagnosis, never raise."""
        system, guess = ProblemSpec.burgers(4, 5.0, seed=11).build()
        ladder = DegradationLadder(rungs=("hybrid",))
        result = ladder.solve(system, guess, analog_time_limit=1e-3)
        assert not result.converged
        assert result.rung is None
        assert result.rungs_tried == ("hybrid",)
        assert result.attempts[0].error or not result.attempts[0].converged

    def test_deadline_expiry_reports_timed_out(self):
        system, guess = ProblemSpec.quadratic().build()
        now = [0.0]
        deadline = Deadline(1.0, clock=lambda: now[0])
        now[0] = 5.0  # already expired before the first rung
        result = DegradationLadder().solve(system, guess, deadline=deadline)
        assert result.timed_out and not result.converged

    def test_fallback_mirrors_hybrid_solver_recovery(self):
        """The damped_newton rung is HybridSolver's absorbed recovery:
        a polish-tolerance solve after damped restarts."""
        system, guess = ProblemSpec.burgers(4, 5.0, seed=11).build()
        result = DegradationLadder().solve(system, guess, analog_time_limit=1e-3)
        assert result.converged
        assert result.rung == "damped_newton"
        assert result.rungs_tried == ("hybrid", "damped_newton")
        polish_tol = NewtonOptions(damping=1.0).tolerance  # noqa: F841 (doc anchor)
        assert result.residual_norm < 1e-8


class TestSerialRuntime:
    def test_happy_path_outcomes_in_request_order(self):
        runtime = Runtime(seed=1, retry=RetryPolicy(max_attempts=1))
        requests = [
            SolveRequest("q-0", ProblemSpec.quadratic()),
            SolveRequest("b-0", ProblemSpec.burgers(2, 1.0, seed=4)),
        ]
        result = runtime.run_batch(requests)
        assert result.mode == "serial"
        assert [o.request_id for o in result.outcomes] == ["q-0", "b-0"]
        assert all(o.ok and o.attempts == 1 and o.retries == 0 for o in result.outcomes)
        assert result.completed == 2 and result.failed == 0

    def test_trace_contract_and_manifest(self):
        tracer = Tracer()
        runtime = Runtime(seed=1, retry=RetryPolicy(max_attempts=1))
        runtime.run_batch([SolveRequest("q-0", ProblemSpec.quadratic())], tracer=tracer)
        tracer.check_closed()
        assert len(tracer.spans_named("runtime_batch")) == 1
        assert len(tracer.spans_named("solve_attempt")) == 1
        # Worker spans are grafted under the parent's solve_attempt.
        attempt = tracer.spans_named("solve_attempt")[0]
        ladder = tracer.spans_named("ladder")[0]
        assert ladder.parent_id == attempt.span_id
        assert tracer.counters["runtime_attempts"] == 1
        assert tracer.manifest["runtime"]["requests"] == 1
        assert tracer.manifest["runtime"]["mode"] == "serial"

    def test_render_mentions_every_request(self):
        runtime = Runtime(retry=RetryPolicy(max_attempts=1))
        result = runtime.run_batch(
            [SolveRequest(f"q-{i}", ProblemSpec.quadratic()) for i in range(3)]
        )
        rendered = result.render()
        for i in range(3):
            assert f"q-{i}" in rendered


class TestTracerAbsorb:
    def test_grafts_spans_under_open_parent_and_sums_counters(self):
        worker = Tracer()
        with worker.span("ladder"):
            with worker.span("ladder_rung", rung="hybrid"):
                pass
        worker.counter("ode_steps", 5)

        parent = Tracer()
        parent.counter("ode_steps", 2)
        with parent.span("solve_attempt") as attempt:
            parent.absorb(
                [record.to_record() for record in worker.spans], worker.counters
            )
        parent.check_closed()
        ladder = parent.spans_named("ladder")[0]
        rung = parent.spans_named("ladder_rung")[0]
        assert ladder.parent_id == attempt.span_id
        assert rung.parent_id == ladder.span_id
        assert parent.counters["ode_steps"] == 7
        ids = [record.span_id for record in parent.spans]
        assert len(ids) == len(set(ids))

    def test_absorb_tags_source(self):
        worker = Tracer()
        with worker.span("ladder"):
            pass
        parent = Tracer()
        parent.absorb(worker.spans, source="worker-3")
        assert parent.spans_named("ladder")[0].attrs["source"] == "worker-3"
