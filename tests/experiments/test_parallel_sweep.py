"""Parallel experiment sweeps and the kernel-reuse acceptance check."""

import pytest

from repro.experiments.parallel import (
    SWEEP_RUNNERS,
    SweepResult,
    run_parallel_sweep,
)

TINY_FIGURE7 = {"grid_sizes": (2,), "reynolds_values": (0.01,), "trials": 1}


class TestRunParallelSweep:
    def test_serial_sweep_runs_and_renders(self):
        result = run_parallel_sweep(
            names=("figure7", "table2"),
            overrides={"figure7": TINY_FIGURE7},
            max_workers=1,
        )
        assert isinstance(result, SweepResult)
        assert result.mode == "serial"
        assert [run.name for run in result.runs] == ["figure7", "table2"]
        assert all(run.ok for run in result.runs)
        rendered = result.render()
        assert "figure7" in rendered and "table2" in rendered
        assert "linear solves" in rendered

    def test_parallel_matches_serial(self):
        serial = run_parallel_sweep(
            names=("figure7",), overrides={"figure7": TINY_FIGURE7}, max_workers=1
        )
        parallel = run_parallel_sweep(
            names=("figure7", "table2"),
            overrides={"figure7": TINY_FIGURE7},
            max_workers=2,
        )
        # Drivers are deterministic: same kwargs => same accounting,
        # whether or not the pool was available in this environment.
        s7 = serial.run_named("figure7")
        p7 = parallel.run_named("figure7")
        assert p7.linear_solves == s7.linear_solves
        assert p7.inner_iterations == s7.inner_iterations
        assert p7.preconditioner_builds == s7.preconditioner_builds
        assert p7.rendered == s7.rendered

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_parallel_sweep(names=("figure11",))

    def test_registry_covers_issue_experiments(self):
        assert set(SWEEP_RUNNERS) == {"figure7", "figure8", "figure9", "table2", "table4"}


class TestKernelReuseAcceptance:
    def test_figure7_sweep_builds_fewer_preconditioners_than_solves(self):
        """Acceptance: a figure7-style sweep must reuse factorizations —
        strictly fewer preconditioner builds than linear solves."""
        result = run_parallel_sweep(
            names=("figure7",),
            overrides={
                "figure7": {
                    "grid_sizes": (2, 4),
                    "reynolds_values": (0.01, 1.0),
                    "trials": 1,
                }
            },
            max_workers=1,
        )
        run = result.run_named("figure7")
        assert run.ok
        assert run.linear_solves > 0
        assert 0 < run.preconditioner_builds < run.linear_solves
