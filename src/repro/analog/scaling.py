"""Dynamic-range scaling of problems into the analog range (Section 5.3).

"The full dynamic range of the PDE problem variables must scale down to
fit in the dynamic range of the analog hardware. ... In the Burgers'
equation, the nonlinear function is a quadratic polynomial. So, if the
variables u and v are scaled by 1/s, the system of equations should be
scaled by 1/s^2. To make sure the terms in the nonlinear polynomial
stay in correct proportion, any coefficients on linear terms of u and v
should also be scaled by 1/s."

:class:`ScaledSystem` implements exactly that substitution for any
system with (at most) quadratic polynomial nonlinearity:

    G(w) = F(s w) / s^2,   J_G(w) = J_F(s w) / s

A root w* of G corresponds to the root ``s w*`` of F. The quadratic
terms of F map to quadratic terms of G with unchanged coefficients, the
linear coefficients shrink by 1/s, and constants by 1/s^2 — so if the
original values fit in ``[-s, s]``, all of G's signals fit in the unit
dynamic range. Transcendental nonlinearities have no such scaling,
which is why the paper excludes them (Section 7).
"""

from __future__ import annotations

import numpy as np

from repro.analog.noise import NoiseModel
from repro.nonlinear.systems import NonlinearSystem

__all__ = ["ScaledSystem", "required_scale"]


def required_scale(value_bound: float, noise: NoiseModel, safety: float = 1.1) -> float:
    """Scale factor mapping values in ``[-bound, bound]`` into range.

    The safety margin keeps transient overshoot of the continuous
    dynamics off the rails.
    """
    if value_bound <= 0.0:
        raise ValueError("value_bound must be positive")
    if safety < 1.0:
        raise ValueError("safety must be at least 1")
    return max(value_bound * safety / noise.full_scale, 1.0)


class ScaledSystem(NonlinearSystem):
    """A nonlinear system conjugated by the dynamic-range scaling."""

    def __init__(self, inner: NonlinearSystem, scale: float):
        if scale <= 0.0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.inner = inner
        self.scale = float(scale)
        self.dimension = inner.dimension

    def residual(self, w: np.ndarray) -> np.ndarray:
        w = self._validate(w)
        return self.inner.residual(self.scale * w) / self.scale**2

    def jacobian(self, w: np.ndarray):
        w = self._validate(w)
        jac = self.inner.jacobian(self.scale * w)
        if isinstance(jac, np.ndarray):
            return jac / self.scale
        return jac.scaled(1.0 / self.scale)

    def to_physical(self, w: np.ndarray) -> np.ndarray:
        """Map a scaled solution back to problem units."""
        return self.scale * np.asarray(w, dtype=float)

    def to_scaled(self, u: np.ndarray) -> np.ndarray:
        """Map problem-unit values into the analog range."""
        return np.asarray(u, dtype=float) / self.scale
