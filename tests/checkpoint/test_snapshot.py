"""Trajectory snapshots: save/load/prune, corruption fallback, and the
headline guarantee — resume is bitwise identical to never crashing."""

import json

import numpy as np
import pytest

from repro.checkpoint import (
    GracefulShutdown,
    RunInterrupted,
    SnapshotError,
    TrajectoryCheckpointer,
    TrajectorySnapshot,
    resume_trajectory,
)
from repro.linalg.sparse import CooBuilder
from repro.pde.timestepping import ImplicitStepper, SpatialOperator
from repro.trace.tracer import Tracer


def _operator(n=10, kappa=0.7):
    """1D diffusion with a cubic reaction term (sparse Jacobian)."""

    def apply(y):
        out = np.empty_like(y)
        for i in range(n):
            left = y[i - 1] if i > 0 else 0.0
            right = y[i + 1] if i < n - 1 else 0.0
            out[i] = kappa * (2.0 * y[i] - left - right) + y[i] ** 3
        return out

    def jacobian(y):
        builder = CooBuilder(n, n)
        for i in range(n):
            builder.add(i, i, 2.0 * kappa + 3.0 * y[i] ** 2)
            if i > 0:
                builder.add(i, i - 1, -kappa)
            if i < n - 1:
                builder.add(i, i + 1, -kappa)
        return builder.to_csr()

    return SpatialOperator(n, apply=apply, jacobian=jacobian)


def _stepper(scheme="bdf2"):
    return ImplicitStepper(_operator(), dt=0.03, scheme=scheme)


Y0 = np.linspace(-0.4, 0.6, 10)
STEPS = 14


def _assert_bitwise_equal(a, b):
    """Trajectories equal down to the last float bit."""
    assert a.states.tobytes() == b.states.tobytes()
    assert len(a.newton_results) == len(b.newton_results)
    for ra, rb in zip(a.newton_results, b.newton_results):
        assert ra.u.tobytes() == rb.u.tobytes()
        assert ra.converged == rb.converged
        assert ra.iterations == rb.iterations
        assert ra.residual_norm == rb.residual_norm
        assert ra.residual_history == rb.residual_history
        assert ra.linear_stats == rb.linear_stats
    assert a.linear_stats == b.linear_stats


class TestSnapshotLifecycle:
    def test_periodic_saves_and_final_snapshot(self, tmp_path):
        checkpoint = TrajectoryCheckpointer(tmp_path, every=4, keep=10)
        _stepper().run(Y0, STEPS, checkpoint=checkpoint)
        steps = [step for step, _ in checkpoint.list_snapshots()]
        assert steps == [4, 8, 12, 14]  # every 4th, plus the final step

    def test_prune_keeps_newest(self, tmp_path):
        checkpoint = TrajectoryCheckpointer(tmp_path, every=2, keep=3)
        _stepper().run(Y0, STEPS, checkpoint=checkpoint)
        steps = [step for step, _ in checkpoint.list_snapshots()]
        assert steps == [10, 12, 14]

    def test_counters_ride_in_snapshot(self, tmp_path):
        tracer = Tracer()
        checkpoint = TrajectoryCheckpointer(tmp_path, every=5, keep=10)
        _stepper().run(Y0, STEPS, tracer=tracer, checkpoint=checkpoint)
        snapshot = checkpoint.load_latest()
        # The snapshot's delta includes its own checkpoints_written bump,
        # so a resumed run reconstructs the full count.
        assert snapshot.counters["checkpoints_written"] == checkpoint.saved
        assert tracer.counters["checkpoints_written"] == checkpoint.saved

    def test_scheme_mismatch_is_rejected(self, tmp_path):
        checkpoint = TrajectoryCheckpointer(tmp_path, every=5)
        _stepper("bdf2").run(Y0, STEPS, checkpoint=checkpoint)
        snapshot = checkpoint.load_latest()
        with pytest.raises(SnapshotError, match="scheme"):
            snapshot.restore_stepper(_stepper("implicit-euler"))


class TestResumeBitwiseIdentity:
    @pytest.mark.parametrize("crash_step", [3, 7, 13])
    @pytest.mark.parametrize("scheme", ["crank-nicolson", "bdf2"])
    def test_resume_equals_uninterrupted(self, tmp_path, scheme, crash_step):
        """Kill at any step, resume, and nothing differs — states,
        Newton records, kernel accounting, trace counters."""
        tracer_ref = Tracer()
        reference = _stepper(scheme).run(
            Y0,
            STEPS,
            tracer=tracer_ref,
            checkpoint=TrajectoryCheckpointer(tmp_path / "ref", every=4, keep=10),
        )

        # Crashed run: snapshots only exist up to the crash point. Its
        # tracer dies with it — the snapshots carry the counter deltas.
        victim_dir = tmp_path / "victim"
        victim = TrajectoryCheckpointer(victim_dir, every=4, keep=10)
        _stepper(scheme).run(Y0, STEPS, tracer=Tracer(), checkpoint=victim)
        for step, path in victim.list_snapshots():
            if step > crash_step:
                path.unlink()

        tracer_res = Tracer()
        resumed = resume_trajectory(
            _stepper(scheme),
            Y0,
            STEPS,
            TrajectoryCheckpointer(victim_dir, every=4, keep=10),
            tracer=tracer_res,
        )
        _assert_bitwise_equal(reference, resumed)
        assert tracer_ref.counters == tracer_res.counters

    def test_resume_with_no_snapshot_runs_from_scratch(self, tmp_path):
        reference = _stepper().run(Y0, STEPS)
        resumed = resume_trajectory(
            _stepper(), Y0, STEPS, TrajectoryCheckpointer(tmp_path / "empty", every=4)
        )
        _assert_bitwise_equal(reference, resumed)

    def test_resume_of_completed_run_replays_without_stepping(self, tmp_path):
        checkpoint = TrajectoryCheckpointer(tmp_path, every=4, keep=10)
        reference = _stepper().run(Y0, STEPS, checkpoint=checkpoint)
        resumed = resume_trajectory(
            _stepper(), Y0, STEPS, TrajectoryCheckpointer(tmp_path, every=4, keep=10)
        )
        _assert_bitwise_equal(reference, resumed)


class TestCorruptionFallback:
    def _checkpointed_run(self, tmp_path):
        checkpoint = TrajectoryCheckpointer(tmp_path, every=4, keep=10)
        reference = _stepper().run(Y0, STEPS, checkpoint=checkpoint)
        return reference, checkpoint

    def test_truncated_snapshot_is_skipped(self, tmp_path):
        reference, checkpoint = self._checkpointed_run(tmp_path)
        newest = checkpoint.list_snapshots()[-1][1]
        newest.write_text(newest.read_text()[: 200])  # torn write
        tracer = Tracer()
        fresh = TrajectoryCheckpointer(tmp_path, every=4, keep=10)
        snapshot = fresh.load_latest(tracer)
        assert snapshot.step == 12  # fell back past the torn step-14 file
        assert fresh.rejected == 1
        assert tracer.counters["checkpoints_rejected"] == 1

    def test_bitflipped_snapshot_fails_hash_and_is_skipped(self, tmp_path):
        reference, checkpoint = self._checkpointed_run(tmp_path)
        newest = checkpoint.list_snapshots()[-1][1]
        envelope = json.loads(newest.read_text())
        data = envelope["payload"]["y"]["data"]
        flipped = ("A" if data[10] != "A" else "B") + data[11:]
        envelope["payload"]["y"]["data"] = data[:10] + flipped
        newest.write_text(json.dumps(envelope))
        fresh = TrajectoryCheckpointer(tmp_path, every=4, keep=10)
        snapshot = fresh.load_latest()
        assert snapshot.step == 12
        assert fresh.rejected == 1

    def test_resume_after_corruption_still_bitwise_identical(self, tmp_path):
        reference, checkpoint = self._checkpointed_run(tmp_path)
        for _step, path in checkpoint.list_snapshots()[-2:]:
            path.write_bytes(path.read_bytes()[:100])
        tracer = Tracer()
        resumed = resume_trajectory(
            _stepper(), Y0, STEPS, TrajectoryCheckpointer(tmp_path, every=4, keep=10),
            tracer=tracer,
        )
        _assert_bitwise_equal(reference, resumed)
        assert tracer.counters["checkpoints_rejected"] == 2

    def test_all_snapshots_corrupt_restarts_from_scratch(self, tmp_path):
        reference, checkpoint = self._checkpointed_run(tmp_path)
        for _step, path in checkpoint.list_snapshots():
            path.write_text("{not json")
        resumed = resume_trajectory(
            _stepper(), Y0, STEPS, TrajectoryCheckpointer(tmp_path, every=4, keep=10)
        )
        _assert_bitwise_equal(reference, resumed)


class TestGracefulShutdown:
    def test_shutdown_flushes_snapshot_and_interrupts(self, tmp_path):
        shutdown = GracefulShutdown()
        shutdown.request()  # as if SIGTERM already arrived
        checkpoint = TrajectoryCheckpointer(tmp_path, every=100, shutdown=shutdown)
        with pytest.raises(RunInterrupted):
            _stepper().run(Y0, STEPS, checkpoint=checkpoint)
        # Interrupted after the very first step, with a snapshot flushed
        # even though the periodic interval never elapsed.
        assert [step for step, _ in checkpoint.list_snapshots()] == [1]

    def test_interrupted_run_resumes_to_identical_result(self, tmp_path):
        reference = _stepper().run(Y0, STEPS)
        shutdown = GracefulShutdown()
        shutdown.request()
        with pytest.raises(RunInterrupted):
            _stepper().run(
                Y0, STEPS, checkpoint=TrajectoryCheckpointer(tmp_path, shutdown=shutdown)
            )
        resumed = resume_trajectory(
            _stepper(), Y0, STEPS, TrajectoryCheckpointer(tmp_path, every=4, keep=10)
        )
        _assert_bitwise_equal(reference, resumed)
