"""Method-of-manufactured-solutions convergence-order verification.

Two families of checks:

* **temporal**: :class:`~repro.pde.timestepping.ImplicitStepper` on the
  scalar ODE ``dy/dt = -y**2`` (exact solution ``1/(1+t)`` from
  ``y0 = 1``): implicit Euler must converge at first order,
  Crank-Nicolson and BDF2 at second order;
* **spatial**: the discrete residual stencils evaluated at an exact
  manufactured solution with analytically computed forcing leave a
  truncation error that must shrink at second order in the mesh
  spacing (1-D Burgers, 2-D Burgers, and the five-point Poisson
  matrix).

Observed order between resolutions ``h`` and ``h/2`` is
``log2(e_h / e_{h/2})``; tolerances are the standard loose MMS bands
(a scheme off by a whole order fails decisively, pre-asymptotic
wobble does not).
"""

import numpy as np
import pytest

from repro.pde.boundary import DirichletBoundary
from repro.pde.burgers import BurgersStencilSystem
from repro.pde.burgers1d import Burgers1DStencilSystem
from repro.pde.grid import Grid2D
from repro.pde.poisson import PoissonProblem
from repro.pde.timestepping import ImplicitStepper, SpatialOperator


def observed_orders(errors):
    """log2 ratios of consecutive errors on a halving sequence."""
    errors = np.asarray(errors, dtype=float)
    assert np.all(errors > 0), "degenerate (exactly zero) errors defeat the MMS check"
    return np.log2(errors[:-1] / errors[1:])


# ---------------------------------------------------------------------------
# Temporal order: dy/dt = -y^2, exact y(t) = 1 / (1 + t).
# ---------------------------------------------------------------------------


def _riccati_operator() -> SpatialOperator:
    """N(y) = y^2 so that dy/dt = -N(y) has the exact solution above."""
    return SpatialOperator(
        dimension=1,
        apply=lambda y: y**2,
        jacobian=lambda y: np.array([[2.0 * y[0]]]),
    )


def _temporal_errors(scheme: str, dts) -> list:
    t_final = 1.0
    exact = 1.0 / (1.0 + t_final)
    errors = []
    for dt in dts:
        stepper = ImplicitStepper(_riccati_operator(), dt=dt, scheme=scheme)
        trajectory = stepper.run(np.array([1.0]), steps=round(t_final / dt))
        assert trajectory.converged
        errors.append(abs(float(trajectory.y[0]) - exact))
    return errors


TEMPORAL_DTS = (0.1, 0.05, 0.025, 0.0125)


class TestTemporalOrder:
    def test_implicit_euler_is_first_order(self):
        orders = observed_orders(_temporal_errors("implicit-euler", TEMPORAL_DTS))
        assert np.all(orders >= 0.8) and np.all(orders <= 1.3), orders

    def test_crank_nicolson_is_second_order(self):
        orders = observed_orders(_temporal_errors("crank-nicolson", TEMPORAL_DTS))
        assert np.all(orders >= 1.8), orders

    def test_bdf2_is_second_order(self):
        # One Crank-Nicolson bootstrap step, then BDF2: the O(dt^3)
        # start-up error must not drag the global order below 2.
        orders = observed_orders(_temporal_errors("bdf2", TEMPORAL_DTS))
        assert np.all(orders >= 1.8), orders

    def test_second_order_schemes_beat_first_order(self):
        dt = TEMPORAL_DTS[-1]
        euler = _temporal_errors("implicit-euler", [dt])[0]
        cn = _temporal_errors("crank-nicolson", [dt])[0]
        bdf2 = _temporal_errors("bdf2", [dt])[0]
        assert cn < euler / 10
        assert bdf2 < euler / 10


# ---------------------------------------------------------------------------
# Spatial order: truncation error of the residual stencils.
# ---------------------------------------------------------------------------


REYNOLDS = 1.7  # arbitrary non-unit value so no term degenerates


class TestBurgers1DSpatialOrder:
    """u(x) = sin(pi x) on [0, 1]; nodes at x_i = i h, h = 1/(n+1)."""

    @staticmethod
    def _truncation_error(n: int) -> float:
        h = 1.0 / (n + 1)
        x = (np.arange(n) + 1) * h
        u = np.sin(np.pi * x)
        ux = np.pi * np.cos(np.pi * x)
        uxx = -np.pi**2 * np.sin(np.pi * x)
        rhs = u + (u * ux - uxx / REYNOLDS)
        system = Burgers1DStencilSystem(
            num_nodes=n, reynolds=REYNOLDS, rhs=rhs, left=0.0, right=0.0, spacing=h, order=2
        )
        return float(np.max(np.abs(system.residual(u))))

    def test_second_order_stencil_is_second_order(self):
        errors = [self._truncation_error(n) for n in (15, 31, 63)]
        orders = observed_orders(errors)
        assert np.all(orders >= 1.8), (errors, orders)

    def test_fourth_order_stencil_beats_second_order(self):
        # Not a full order check (the boundary extrapolation muddies the
        # last half-order), just the Section 7 claim: at the same h the
        # wider stencil is decisively more accurate.
        n, h = 31, 1.0 / 32
        x = (np.arange(n) + 1) * h
        u = np.sin(np.pi * x)
        ux = np.pi * np.cos(np.pi * x)
        uxx = -np.pi**2 * np.sin(np.pi * x)
        rhs = u + (u * ux - uxx / REYNOLDS)
        errors = {}
        for order in (2, 4):
            system = Burgers1DStencilSystem(
                num_nodes=n, reynolds=REYNOLDS, rhs=rhs, spacing=h, order=order
            )
            errors[order] = float(np.max(np.abs(system.residual(u))))
        assert errors[4] < errors[2] / 10


class TestBurgers2DSpatialOrder:
    """u = sin(pi x) sin(pi y), v = sin(2 pi x) sin(pi y) on [0, 1]^2.

    Both fields vanish on the boundary, so the homogeneous Dirichlet
    ghost ring is exact and the residual at the exact nodal values is
    pure truncation error.
    """

    @staticmethod
    def _truncation_error(n: int) -> float:
        h = 1.0 / (n + 1)
        grid = Grid2D.square(n, spacing=h)
        xs, ys = grid.interior_meshgrid()
        sx, cx = np.sin(np.pi * xs), np.cos(np.pi * xs)
        sy, cy = np.sin(np.pi * ys), np.cos(np.pi * ys)
        s2x, c2x = np.sin(2.0 * np.pi * xs), np.cos(2.0 * np.pi * xs)

        u = sx * sy
        v = s2x * sy
        ux, uy = np.pi * cx * sy, np.pi * sx * cy
        vx, vy = 2.0 * np.pi * c2x * sy, np.pi * s2x * cy
        lap_u = -2.0 * np.pi**2 * u
        lap_v = -(4.0 + 1.0) * np.pi**2 * v

        rhs_u = u + (u * ux + v * uy - lap_u / REYNOLDS)
        rhs_v = v + (u * vx + v * vy - lap_v / REYNOLDS)
        boundary = DirichletBoundary.constant(grid, 0.0)
        system = BurgersStencilSystem(
            grid, REYNOLDS, rhs_u, rhs_v, boundary, boundary, weight=1.0
        )
        return float(np.max(np.abs(system.residual(system.pack(u, v)))))

    def test_residual_stencil_is_second_order(self):
        errors = [self._truncation_error(n) for n in (7, 15, 31)]
        orders = observed_orders(errors)
        assert np.all(orders >= 1.8), (errors, orders)


class TestPoissonSpatialOrder:
    """-Lap(u) = f with u = sin(pi x) sin(pi y), f = 2 pi^2 u."""

    @staticmethod
    def _truncation_error(n: int) -> float:
        h = 1.0 / (n + 1)
        grid = Grid2D.square(n, spacing=h)
        xs, ys = grid.interior_meshgrid()
        u = np.sin(np.pi * xs) * np.sin(np.pi * ys)
        forcing = 2.0 * np.pi**2 * u
        problem = PoissonProblem(grid, forcing)
        residual = problem.matrix().matvec(grid.flatten(u)) - problem.rhs()
        return float(np.max(np.abs(residual)))

    def test_five_point_matrix_is_second_order(self):
        errors = [self._truncation_error(n) for n in (7, 15, 31)]
        orders = observed_orders(errors)
        assert np.all(orders >= 1.8), (errors, orders)

    def test_solved_field_converges_at_second_order(self):
        """End-to-end: the CG solution's error against the manufactured
        solution also halves quadratically (discrete maximum principle
        carries the truncation order to the solution)."""
        errors = []
        for n in (7, 15, 31):
            h = 1.0 / (n + 1)
            grid = Grid2D.square(n, spacing=h)
            xs, ys = grid.interior_meshgrid()
            exact = np.sin(np.pi * xs) * np.sin(np.pi * ys)
            problem = PoissonProblem(grid, 2.0 * np.pi**2 * exact)
            result = problem.solve(tol=1e-12)
            errors.append(float(np.max(np.abs(problem.solution_field(result) - exact))))
        orders = observed_orders(errors)
        assert np.all(orders >= 1.8), (errors, orders)
