"""Tests for the simplex solver, barrier flow, and hybrid LP."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optimize import (
    LinearProgram,
    barrier_flow_solve,
    hybrid_lp_solve,
    simplex_solve,
)


def toy_lp():
    """max x0 + 2 x1 s.t. x0 + x1 <= 4, x1 <= 2, x >= 0.

    Optimum at (2, 2) with objective -6 in min form.
    """
    return LinearProgram.from_inequalities(
        c=np.array([-1.0, -2.0]),
        a_ub=np.array([[1.0, 1.0], [0.0, 1.0]]),
        b_ub=np.array([4.0, 2.0]),
    )


def transport_lp():
    """A tiny balanced transportation problem (equality form)."""
    # 2 supplies (3, 5), 2 demands (4, 4); costs [[1, 3], [2, 1]].
    c = np.array([1.0, 3.0, 2.0, 1.0])
    a = np.array(
        [
            [1.0, 1.0, 0.0, 0.0],  # supply 0
            [0.0, 0.0, 1.0, 1.0],  # supply 1
            [1.0, 0.0, 1.0, 0.0],  # demand 0
        ]
    )
    b = np.array([3.0, 5.0, 4.0])
    return LinearProgram(c=c, a=a, b=b)


class TestLinearProgram:
    def test_validation(self):
        with pytest.raises(ValueError):
            LinearProgram(c=np.ones(2), a=np.ones((2, 3)), b=np.ones(2))
        with pytest.raises(ValueError):
            LinearProgram(c=np.ones(3), a=np.ones((2, 3)), b=np.ones(3))

    def test_from_inequalities_adds_slacks(self):
        lp = toy_lp()
        assert lp.num_variables == 4
        assert lp.num_constraints == 2

    def test_feasibility_check(self):
        lp = toy_lp()
        assert lp.is_feasible(np.array([2.0, 2.0, 0.0, 0.0]))
        assert not lp.is_feasible(np.array([5.0, 0.0, -1.0, 2.0]))


class TestSimplex:
    def test_toy_optimum(self):
        result = simplex_solve(toy_lp())
        assert result.optimal
        np.testing.assert_allclose(result.x[:2], [2.0, 2.0], atol=1e-9)
        assert result.objective == pytest.approx(-6.0)

    def test_transportation_optimum(self):
        result = simplex_solve(transport_lp())
        assert result.optimal
        # Optimal: ship supply-0 to demand-0 (3), supply-1 covers the
        # rest: 1 to demand-0 and 4 to demand-1. Cost 3+2+4 = 9.
        assert result.objective == pytest.approx(9.0)

    def test_infeasible_detected(self):
        lp = LinearProgram(
            c=np.array([1.0]),
            a=np.array([[1.0], [1.0]]),
            b=np.array([1.0, 2.0]),  # x = 1 and x = 2 simultaneously
        )
        assert simplex_solve(lp).status == "infeasible"

    def test_unbounded_detected(self):
        # min -x0 with x0 - x1 = 0, x >= 0: drive both to infinity.
        lp = LinearProgram(
            c=np.array([-1.0, 0.0]),
            a=np.array([[1.0, -1.0]]),
            b=np.array([0.0]),
        )
        assert simplex_solve(lp).status == "unbounded"

    def test_negative_rhs_handled(self):
        # -x0 = -2 (i.e., x0 = 2).
        lp = LinearProgram(c=np.array([1.0]), a=np.array([[-1.0]]), b=np.array([-2.0]))
        result = simplex_solve(lp)
        assert result.optimal
        assert result.x[0] == pytest.approx(2.0)

    def test_degenerate_does_not_cycle(self):
        # Classic degenerate instance; Bland's rule must terminate.
        lp = LinearProgram.from_inequalities(
            c=np.array([-0.75, 150.0, -0.02, 6.0]),
            a_ub=np.array(
                [
                    [0.25, -60.0, -0.04, 9.0],
                    [0.5, -90.0, -0.02, 3.0],
                    [0.0, 0.0, 1.0, 0.0],
                ]
            ),
            b_ub=np.array([0.0, 0.0, 1.0]),
        )
        result = simplex_solve(lp)
        assert result.optimal
        assert result.objective == pytest.approx(-0.05, abs=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_property_random_inequality_lps(self, seed):
        # Random bounded-feasible LPs: simplex result must be feasible
        # and at least as good as any random feasible point.
        rng = np.random.default_rng(seed)
        num_vars, num_cons = 3, 4
        a_ub = rng.uniform(0.1, 1.0, (num_cons, num_vars))
        b_ub = rng.uniform(1.0, 5.0, num_cons)
        c = rng.uniform(-1.0, 1.0, num_vars)
        lp = LinearProgram.from_inequalities(c, a_ub, b_ub)
        result = simplex_solve(lp)
        assert result.optimal  # feasible (x=0 works) and bounded (a>0)
        assert lp.is_feasible(result.x)
        probe = rng.uniform(0.0, 0.5, num_vars)
        if np.all(a_ub @ probe <= b_ub):
            slack = b_ub - a_ub @ probe
            feasible_point = np.concatenate([probe, slack])
            assert result.objective <= lp.objective(feasible_point) + 1e-7


class TestBarrierFlow:
    def test_settles_near_optimum(self):
        lp = toy_lp()
        flow = barrier_flow_solve(lp, mu=1e-4)
        assert flow.settled
        assert flow.feasible
        np.testing.assert_allclose(flow.x[:2], [2.0, 2.0], atol=0.05)

    def test_smaller_mu_lands_closer(self):
        lp = toy_lp()
        coarse = barrier_flow_solve(lp, mu=1e-2)
        fine = barrier_flow_solve(lp, mu=1e-5)
        exact = simplex_solve(lp).objective
        assert abs(fine.objective - exact) < abs(coarse.objective - exact)

    def test_stays_feasible_throughout(self):
        lp = transport_lp()
        flow = barrier_flow_solve(lp, mu=1e-4)
        assert flow.feasible
        assert np.all(flow.x >= 0.0)

    def test_mu_validated(self):
        with pytest.raises(ValueError):
            barrier_flow_solve(toy_lp(), mu=0.0)

    def test_bad_x0_rejected(self):
        with pytest.raises(ValueError):
            barrier_flow_solve(toy_lp(), x0=np.zeros(4))


class TestHybridLp:
    def test_crossover_reaches_exact_vertex(self):
        lp = toy_lp()
        hybrid = hybrid_lp_solve(lp)
        exact = simplex_solve(lp)
        assert hybrid.optimal
        assert hybrid.objective == pytest.approx(exact.objective, abs=1e-9)
        assert not hybrid.used_fallback

    def test_transportation_hybrid(self):
        lp = transport_lp()
        hybrid = hybrid_lp_solve(lp)
        assert hybrid.optimal
        assert hybrid.objective == pytest.approx(9.0, abs=1e-7)

    def test_fallback_on_infeasible(self):
        lp = LinearProgram(
            c=np.array([1.0]),
            a=np.array([[1.0], [1.0]]),
            b=np.array([1.0, 2.0]),
        )
        hybrid = hybrid_lp_solve(lp)
        assert hybrid.used_fallback
        assert not hybrid.optimal

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=1000))
    def test_property_hybrid_matches_simplex(self, seed):
        rng = np.random.default_rng(seed)
        a_ub = rng.uniform(0.1, 1.0, (3, 3))
        b_ub = rng.uniform(1.0, 4.0, 3)
        c = rng.uniform(-1.0, -0.1, 3)  # all-negative: interior optimum
        lp = LinearProgram.from_inequalities(c, a_ub, b_ub)
        hybrid = hybrid_lp_solve(lp)
        exact = simplex_solve(lp)
        assert hybrid.optimal and exact.optimal
        assert hybrid.objective == pytest.approx(exact.objective, abs=1e-5)
