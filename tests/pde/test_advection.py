"""Tests for the explicit advection solver (the out-of-scope boundary)."""

import numpy as np
import pytest

from repro.pde.advection import AdvectionSolver1D


def gaussian(n):
    xs = np.arange(n)
    return np.exp(-((xs - n / 2.0) ** 2) / (n / 10.0) ** 2)


class TestAdvection:
    def test_transports_profile(self):
        n = 100
        solver = AdvectionSolver1D(num_nodes=n, speed=1.0, dx=1.0, dt=0.5)
        u0 = gaussian(n)
        steps = 40  # distance = speed * dt * steps = 20 cells
        u = solver.evolve(u0.copy(), steps)
        # The peak moved ~20 cells to the right (upwind diffuses a bit).
        assert abs(int(np.argmax(u)) - (int(np.argmax(u0)) + 20)) <= 2

    def test_negative_speed_transports_left(self):
        n = 100
        solver = AdvectionSolver1D(num_nodes=n, speed=-1.0, dx=1.0, dt=0.5)
        u = solver.evolve(gaussian(n), 40)
        assert int(np.argmax(u)) < n / 2

    def test_mass_conserved(self):
        n = 64
        solver = AdvectionSolver1D(num_nodes=n, speed=1.0)
        u0 = gaussian(n)
        u = solver.evolve(u0.copy(), 50)
        assert np.sum(u) == pytest.approx(np.sum(u0), rel=1e-10)

    def test_stable_at_default_cfl(self):
        solver = AdvectionSolver1D(num_nodes=50, speed=2.0)
        u = solver.evolve(gaussian(50), 200)
        assert np.max(np.abs(u)) <= 1.01

    def test_cfl_violation_rejected(self):
        with pytest.raises(ValueError):
            AdvectionSolver1D(num_nodes=50, speed=1.0, dx=1.0, dt=1.5)

    def test_no_algebraic_systems(self):
        # The structural point of Section 7's scope line.
        solver = AdvectionSolver1D(num_nodes=10, speed=1.0)
        assert solver.algebraic_systems_solved() == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            AdvectionSolver1D(num_nodes=2, speed=1.0)
        with pytest.raises(ValueError):
            AdvectionSolver1D(num_nodes=10, speed=1.0, dx=-1.0)
        solver = AdvectionSolver1D(num_nodes=10, speed=1.0)
        with pytest.raises(ValueError):
            solver.step(np.zeros(5))
        with pytest.raises(ValueError):
            solver.evolve(np.zeros(10), 0)
