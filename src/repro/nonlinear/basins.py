"""Basin-of-attraction maps (Figures 2 and 3 of the paper).

A basin map colors each point of a grid of initial conditions by the
root the solver converges to from there. The paper's qualitative claim
is that the *continuous* Newton method's basins are contiguous — small
changes in the initial condition rarely change the answer — while the
classical and damped discrete Newton iterations produce fractal,
intertwined basins. :func:`contiguity_score` turns that claim into a
measurable number so the Figure 2/3 benches can assert it.

Everything here is vectorized over the whole pixel grid at once: each
pixel's trajectory is one lane of a numpy array, which is what makes
the 256x256 maps of the paper (65 536 independent solver runs — "each
pixel is one run of the chip") tractable in pure Python.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.nonlinear.homotopy import HomotopySchedule, homotopy_solve
from repro.nonlinear.systems import CoupledQuadraticSystem, SimpleSquareSystem

__all__ = [
    "BasinMap",
    "classify_roots",
    "newton_iteration_basins",
    "continuous_newton_basins",
    "coupled_system_basins",
    "contiguity_score",
]


@dataclass
class BasinMap:
    """A labeled grid of initial conditions.

    Attributes
    ----------
    labels:
        Integer array of shape ``(resolution, resolution)``; entry
        ``labels[i, j]`` is the index into :attr:`roots` of the root
        reached from that pixel's initial condition, or -1 when the
        run did not converge to any known root (the paper's pink
        'wrong result' region in Figure 3).
    roots:
        Root coordinates, one row per label.
    extent:
        Half-width of the square map: initial conditions span
        ``[-extent, extent]`` on both axes.
    """

    labels: np.ndarray
    roots: np.ndarray
    extent: float

    @property
    def resolution(self) -> int:
        return int(self.labels.shape[0])

    @property
    def converged_fraction(self) -> float:
        """Fraction of pixels that reached one of the known roots."""
        return float(np.mean(self.labels >= 0))

    def root_fractions(self) -> np.ndarray:
        """Per-root fraction of the map area, ignoring failures."""
        counts = np.array(
            [np.sum(self.labels == k) for k in range(self.roots.shape[0])], dtype=float
        )
        total = counts.sum()
        return counts / total if total > 0 else counts


def classify_roots(points: np.ndarray, roots: np.ndarray, tolerance: float = 1e-2) -> np.ndarray:
    """Map each point (rows) to the index of the nearest root within
    ``tolerance``, or -1 when no root is close enough."""
    points = np.atleast_2d(np.asarray(points, dtype=float))
    roots = np.atleast_2d(np.asarray(roots, dtype=float))
    if roots.shape[0] == 0:
        return np.full(points.shape[0], -1, dtype=int)
    distances = np.linalg.norm(points[:, None, :] - roots[None, :, :], axis=2)
    nearest = np.argmin(distances, axis=1)
    labels = np.where(distances[np.arange(points.shape[0]), nearest] <= tolerance, nearest, -1)
    return labels.astype(int)


def _pixel_grid(resolution: int, extent: float) -> Tuple[np.ndarray, np.ndarray]:
    if resolution <= 1:
        raise ValueError("resolution must be at least 2")
    if extent <= 0.0:
        raise ValueError("extent must be positive")
    axis = np.linspace(-extent, extent, resolution)
    return np.meshgrid(axis, axis, indexing="xy")


_CUBE_ROOTS = np.exp(2j * np.pi * np.arange(3) / 3.0)


def _cubic_newton_direction(z: np.ndarray, regularization: float = 1e-9) -> np.ndarray:
    """Newton direction ``f/f'`` for ``f(z) = z^3 - 1`` with the
    derivative regularized away from zero (the physical circuit
    saturates rather than dividing by zero)."""
    df = 3.0 * z**2
    small = np.abs(df) < regularization
    df = np.where(small, df + regularization, df)
    return (z**3 - 1.0) / df


def newton_iteration_basins(
    resolution: int = 256,
    extent: float = 2.0,
    damping: float = 1.0,
    max_iterations: int = 200,
    tolerance: float = 1e-8,
) -> BasinMap:
    """Discrete (classical or damped) Newton basins for ``z^3 - 1``.

    ``damping = 1`` is classical Newton — the fractal Cayley picture;
    smaller damping grows and smooths the basins at the cost of more
    iterations, as reviewed in Section 2.1.
    """
    if not 0.0 < damping <= 1.0:
        raise ValueError(f"damping must be in (0, 1], got {damping}")
    xs, ys = _pixel_grid(resolution, extent)
    z = (xs + 1j * ys).ravel()
    active = np.ones(z.shape, dtype=bool)
    for _ in range(max_iterations):
        if not np.any(active):
            break
        step = _cubic_newton_direction(z[active])
        z[active] = z[active] - damping * step
        active[active] = np.abs(z[active] ** 3 - 1.0) > tolerance
    points = np.column_stack([z.real, z.imag])
    root_points = np.column_stack([_CUBE_ROOTS.real, _CUBE_ROOTS.imag])
    labels = classify_roots(points, root_points, tolerance=1e-2)
    return BasinMap(labels=labels.reshape(resolution, resolution), roots=root_points, extent=extent)


def continuous_newton_basins(
    resolution: int = 256,
    extent: float = 2.0,
    horizon: float = 25.0,
    dt: float = 0.05,
    noise_level: float = 0.0,
    seed: int = 0,
) -> BasinMap:
    """Continuous Newton flow basins for ``z^3 - 1`` (Figure 2).

    Integrates ``dz/dtau = -f(z)/f'(z)`` for every pixel at once with
    fixed-step RK4. ``noise_level`` injects per-step Gaussian
    perturbations, the vectorized stand-in for the analog chip's noise
    floor — Figure 2 is measured from the physical chip, and a small
    noise level leaves the basin structure intact, which the Figure 2
    bench asserts.
    """
    if dt <= 0.0 or horizon <= 0.0:
        raise ValueError("dt and horizon must be positive")
    xs, ys = _pixel_grid(resolution, extent)
    z = (xs + 1j * ys).ravel()
    rng = np.random.default_rng(seed)
    steps = int(np.ceil(horizon / dt))

    def rhs(state: np.ndarray) -> np.ndarray:
        return -_cubic_newton_direction(state)

    for _ in range(steps):
        k1 = rhs(z)
        k2 = rhs(z + 0.5 * dt * k1)
        k3 = rhs(z + 0.5 * dt * k2)
        k4 = rhs(z + dt * k3)
        z = z + dt / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4)
        if noise_level > 0.0:
            z = z + noise_level * np.sqrt(dt) * (
                rng.standard_normal(z.shape) + 1j * rng.standard_normal(z.shape)
            )
    points = np.column_stack([z.real, z.imag])
    root_points = np.column_stack([_CUBE_ROOTS.real, _CUBE_ROOTS.imag])
    labels = classify_roots(points, root_points, tolerance=5e-2 + 10.0 * noise_level)
    return BasinMap(labels=labels.reshape(resolution, resolution), roots=root_points, extent=extent)


def _coupled_flow(
    r0: np.ndarray,
    r1: np.ndarray,
    system: CoupledQuadraticSystem,
    horizon: float,
    dt: float,
    regularization: float = 1e-6,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized continuous Newton flow on Equation 2's system using
    the closed-form 2x2 Jacobian inverse per lane."""
    a, b = system.rhs0, system.rhs1
    steps = int(np.ceil(horizon / dt))

    def direction(x0: np.ndarray, x1: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        f0 = x0**2 + x0 + x1 - a
        f1 = x1**2 + x1 - x0 - b
        j00 = 2.0 * x0 + 1.0
        j11 = 2.0 * x1 + 1.0
        det = j00 * j11 + 1.0  # j01 = 1, j10 = -1
        det = np.where(np.abs(det) < regularization, np.sign(det + 1e-300) * regularization, det)
        # inverse of [[j00, 1], [-1, j11]] is 1/det [[j11, -1], [1, j00]]
        d0 = (j11 * f0 - f1) / det
        d1 = (f0 + j00 * f1) / det
        return -d0, -d1

    for _ in range(steps):
        k1 = direction(r0, r1)
        k2 = direction(r0 + 0.5 * dt * k1[0], r1 + 0.5 * dt * k1[1])
        k3 = direction(r0 + 0.5 * dt * k2[0], r1 + 0.5 * dt * k2[1])
        k4 = direction(r0 + dt * k3[0], r1 + dt * k3[1])
        r0 = r0 + dt / 6.0 * (k1[0] + 2.0 * k2[0] + 2.0 * k3[0] + k4[0])
        r1 = r1 + dt / 6.0 * (k1[1] + 2.0 * k2[1] + 2.0 * k3[1] + k4[1])
        # Analog saturation: values are railed to the dynamic range.
        r0 = np.clip(r0, -10.0, 10.0)
        r1 = np.clip(r1, -10.0, 10.0)
    return r0, r1


def _simple_flow_labels(r0: np.ndarray, r1: np.ndarray) -> np.ndarray:
    """Continuous Newton on Equation 3 sends each component to the
    nearest of +-1 by sign; label as 2-bit index (bit0: r0<0, bit1: r1<0).

    The flow ``dr/dtau = -(r^2 - 1) / (2 r)`` cannot cross zero from
    either side, so the settled sign equals the initial sign; pixels
    exactly on an axis are perturbed to positive, matching the chip's
    behaviour where noise breaks the tie.
    """
    s0 = np.where(r0 < 0.0, 1, 0)
    s1 = np.where(r1 < 0.0, 1, 0)
    return (s0 + 2 * s1).astype(int)


def coupled_system_basins(
    system: Optional[CoupledQuadraticSystem] = None,
    resolution: int = 128,
    extent: float = 2.0,
    method: str = "newton_flow",
    horizon: float = 30.0,
    dt: float = 0.02,
    schedule: Optional[HomotopySchedule] = None,
) -> BasinMap:
    """Basins for the coupled quadratic system of Equation 2 (Figure 3).

    ``method`` selects the panel of Figure 3:

    * ``"newton_flow"`` — continuous Newton directly on the hard
      system; some initial conditions settle away from any true root
      (the paper's pink region).
    * ``"homotopy_start"`` — continuous Newton on the *simple* system
      of Equation 3; every pixel maps to one of the four known roots
      (+-1, +-1).
    * ``"homotopy"`` — the full homotopy process: each pixel first
      settles on a simple root, then rides the continuation path to a
      root of the hard system; every initial condition ends on a
      correct solution.
    """
    system = system or CoupledQuadraticSystem(rhs0=1.0, rhs1=1.0)
    xs, ys = _pixel_grid(resolution, extent)
    r0 = xs.ravel().astype(float)
    r1 = ys.ravel().astype(float)

    if method == "newton_flow":
        f0, f1 = _coupled_flow(r0, r1, system, horizon, dt)
        roots = system.real_roots()
        labels = classify_roots(np.column_stack([f0, f1]), roots, tolerance=1e-2)
        return BasinMap(labels=labels.reshape(resolution, resolution), roots=roots, extent=extent)

    simple = SimpleSquareSystem(dimension=2)
    simple_roots_by_label = np.array(
        [[+1.0, +1.0], [-1.0, +1.0], [+1.0, -1.0], [-1.0, -1.0]]
    )
    start_labels = _simple_flow_labels(r0, r1)

    if method == "homotopy_start":
        return BasinMap(
            labels=start_labels.reshape(resolution, resolution),
            roots=simple_roots_by_label,
            extent=extent,
        )

    if method != "homotopy":
        raise ValueError(f"unknown method {method!r}")

    # Track each of the four simple roots once; pixels inherit the
    # tracked endpoint of their start root.
    hard_roots = system.real_roots()
    endpoint_label = np.full(4, -1, dtype=int)
    for idx, start in enumerate(simple_roots_by_label):
        result = homotopy_solve(simple, system, start, schedule)
        if result.converged:
            endpoint_label[idx] = int(classify_roots(result.u[None, :], hard_roots)[0])
    labels = endpoint_label[start_labels]
    return BasinMap(labels=labels.reshape(resolution, resolution), roots=hard_roots, extent=extent)


def contiguity_score(labels: np.ndarray) -> float:
    """Fraction of 4-neighbour pixel pairs sharing a label, in [0, 1].

    A perfectly contiguous map (few large basins) scores near 1; a
    fractal map scores visibly lower. This quantifies the paper's
    Figure 2 observation that continuous Newton basins "are more
    contiguous compared to those in classical or damped Newton".
    """
    labels = np.asarray(labels)
    if labels.ndim != 2:
        raise ValueError("labels must be a 2-D array")
    horizontal = labels[:, 1:] == labels[:, :-1]
    vertical = labels[1:, :] == labels[:-1, :]
    total = horizontal.size + vertical.size
    return float((horizontal.sum() + vertical.sum()) / total)
