"""Independent residual evaluation for certification.

The whole point of a certificate is that it does *not* trust the
solver's bookkeeping — so these residual paths deliberately avoid
:mod:`repro.pde.stencils` and the systems' own ``residual`` methods
wherever a problem kind is known. The Burgers path re-assembles the
ghost ring and applies the central/Laplacian stencils with direct
numpy slicing; the coupled quadratic is evaluated in closed form. A
shared bug between the solver's stencil code and this file would have
to be introduced twice, independently, in different shapes.

Problem *data* (right-hand sides, boundary values) still comes from
:meth:`repro.runtime.api.ProblemSpec.build` — that rebuild is a pure
function of the spec (seeded ``default_rng``), so it is the same data
the attempt solved against, reproduced bitwise in any process. What is
independent here is the *evaluation*.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["independent_residual", "independent_residual_norms", "boundary_ring_norm"]


def _burgers_residual(system, solution: np.ndarray) -> np.ndarray:
    """Direct ghost-cell re-assembly of the steady forced Burgers
    residual (Section 4.2 discretization), slicing written out inline."""
    grid = system.grid
    ny, nx = grid.ny, grid.nx
    n = grid.num_nodes
    dx, dy = float(grid.dx), float(grid.dy)
    inv_re = 1.0 / float(system.reynolds)
    weight = float(system.weight)

    u = np.asarray(solution[:n], dtype=float).reshape(ny, nx)
    v = np.asarray(solution[n:], dtype=float).reshape(ny, nx)

    def padded(field: np.ndarray, boundary) -> np.ndarray:
        ghost = np.zeros((ny + 2, nx + 2))
        ghost[1:-1, 1:-1] = field
        ghost[1:-1, 0] = boundary.west
        ghost[1:-1, -1] = boundary.east
        ghost[0, 1:-1] = boundary.south
        ghost[-1, 1:-1] = boundary.north
        return ghost

    def advect_diffuse(ghost: np.ndarray) -> np.ndarray:
        ddx = (ghost[1:-1, 2:] - ghost[1:-1, :-2]) / (2.0 * dx)
        ddy = (ghost[2:, 1:-1] - ghost[:-2, 1:-1]) / (2.0 * dy)
        center = ghost[1:-1, 1:-1]
        lap = (ghost[1:-1, 2:] - 2.0 * center + ghost[1:-1, :-2]) / (dx * dx) + (
            ghost[2:, 1:-1] - 2.0 * center + ghost[:-2, 1:-1]
        ) / (dy * dy)
        return u * ddx + v * ddy - inv_re * lap

    f_u = u + weight * advect_diffuse(padded(u, system.boundary_u)) - system.rhs_u
    f_v = v + weight * advect_diffuse(padded(v, system.boundary_v)) - system.rhs_v
    return np.concatenate([f_u.reshape(-1), f_v.reshape(-1)])


def _quadratic_residual(system, solution: np.ndarray) -> np.ndarray:
    """Closed-form Equation 2 residual for the coupled quadratic."""
    rho0, rho1 = float(solution[0]), float(solution[1])
    return np.array(
        [
            rho0 * rho0 + rho0 + rho1 - float(system.rhs0),
            rho1 * rho1 + rho1 - rho0 - float(system.rhs1),
        ]
    )


def independent_residual(spec, system, solution: np.ndarray) -> np.ndarray:
    """``F(solution)`` through the certification path for ``spec``.

    ``system`` must be the object ``spec.build()`` returned (the caller
    usually also needs the initial guess, so it holds the pair already).
    Unknown kinds fall back to the system's own residual — a weaker
    certificate (no independence), still catching corruption introduced
    after acceptance.
    """
    solution = np.asarray(solution, dtype=float)
    if solution.shape != (system.dimension,):
        raise ValueError(
            f"solution shape {solution.shape} does not match dimension {system.dimension}"
        )
    if spec.kind == "burgers":
        return _burgers_residual(system, solution)
    if spec.kind == "quadratic":
        return _quadratic_residual(system, solution)
    return np.asarray(system.residual(solution), dtype=float)


def independent_residual_norms(spec, solution: np.ndarray) -> Tuple[float, float]:
    """``(|F(solution)|, |F(initial_guess)|)`` — the absolute residual
    at the answer and the reference norm at the spec's deterministic
    initial guess, both through the independent path. Non-finite
    solutions yield an infinite first norm (the finite-scan check is
    what reports them readably)."""
    system, guess = spec.build()
    reference = float(np.linalg.norm(independent_residual(spec, system, guess)))
    solution = np.asarray(solution, dtype=float)
    if not np.all(np.isfinite(solution)):
        return float("inf"), reference
    achieved = float(np.linalg.norm(independent_residual(spec, system, solution)))
    return achieved, reference


def boundary_ring_norm(spec, solution: np.ndarray) -> float:
    """2-norm of the residual restricted to boundary-adjacent nodes.

    The Dirichlet data enters the discrete system only through the
    ghost ring, so a solve that ran against the wrong boundary values
    shows up loudest in the equations one node in from the wall —
    interior rows can look converged while the ring rows cannot.
    Problems without a spatial boundary (the coupled quadratic) return
    0.0 (trivially satisfied).
    """
    if spec.kind != "burgers":
        return 0.0
    system, _ = spec.build()
    solution = np.asarray(solution, dtype=float)
    if not np.all(np.isfinite(solution)):
        return float("inf")
    residual = independent_residual(spec, system, solution)
    grid = system.grid
    ny, nx = grid.ny, grid.nx
    ring = np.zeros((ny, nx), dtype=bool)
    ring[0, :] = ring[-1, :] = True
    ring[:, 0] = ring[:, -1] = True
    mask = np.concatenate([ring.reshape(-1), ring.reshape(-1)])
    return float(np.linalg.norm(residual[mask]))
