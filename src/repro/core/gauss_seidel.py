"""Red-black nonlinear Gauss-Seidel domain decomposition (Section 6.3).

"The analog seeding solver needs a way to divide and conquer the larger
systems of nonlinear equations, as our analog accelerator model is
limited to solving 16x16 problems due to area constraints. We use
red-black nonlinear Gauss-Seidel to split the 32x32 problems to fit."

The grid is tiled into blocks of at most ``block_size x block_size``
nodes, colored like a checkerboard. A sweep solves every red block's
nonlinear subproblem (with the surrounding nodes frozen, acting as
Dirichlet data), then every black block; red blocks never border red
blocks, so all same-color solves are independent — exactly the
parallelism the accelerator (or a multicore CPU) exploits. Sweeps
repeat until the *global* residual converges; the result then seeds the
full-system digital (GPU) Newton solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.nonlinear.newton import NewtonOptions, NewtonResult, damped_newton_with_restarts
from repro.pde.boundary import DirichletBoundary
from repro.pde.burgers import BurgersStencilSystem
from repro.pde.grid import Grid2D

__all__ = ["RedBlackGaussSeidel", "GaussSeidelResult", "Block"]

SubdomainSolver = Callable[[BurgersStencilSystem, np.ndarray], np.ndarray]


@dataclass(frozen=True)
class Block:
    """One subdomain: node range [i0, i1) x [j0, j1) and its color."""

    i0: int
    i1: int
    j0: int
    j1: int
    color: int  # 0 = red, 1 = black

    @property
    def nx(self) -> int:
        return self.i1 - self.i0

    @property
    def ny(self) -> int:
        return self.j1 - self.j0


@dataclass
class GaussSeidelResult:
    """Outcome of the decomposed solve."""

    u: np.ndarray
    converged: bool
    sweeps: int
    residual_history: List[float] = field(default_factory=list)
    subdomain_solves: int = 0
    block_shape: Tuple[int, int] = (0, 0)


def _default_subdomain_solver(system: BurgersStencilSystem, guess: np.ndarray) -> np.ndarray:
    result = damped_newton_with_restarts(
        system, guess, NewtonOptions(tolerance=1e-9, max_iterations=60)
    )
    return result.u


class RedBlackGaussSeidel:
    """Decomposes a large Burgers stencil system into colored blocks.

    Parameters
    ----------
    system:
        The full-grid nonlinear system.
    block_size:
        Maximum block edge in nodes (16 for the paper's largest
        feasible accelerator).
    subdomain_solver:
        Solves one block's :class:`BurgersStencilSystem` from a guess
        and returns the stacked (u, v) solution. Plug the analog
        accelerator here for the hybrid pipeline; defaults to a digital
        damped-Newton solve.
    """

    def __init__(
        self,
        system: BurgersStencilSystem,
        block_size: int = 16,
        subdomain_solver: Optional[SubdomainSolver] = None,
    ):
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.system = system
        self.block_size = int(block_size)
        self.subdomain_solver = subdomain_solver or _default_subdomain_solver
        self.blocks = self._build_blocks()

    def _build_blocks(self) -> List[Block]:
        grid = self.system.grid
        blocks = []
        bs = self.block_size
        for bj, j0 in enumerate(range(0, grid.ny, bs)):
            for bi, i0 in enumerate(range(0, grid.nx, bs)):
                blocks.append(
                    Block(
                        i0=i0,
                        i1=min(i0 + bs, grid.nx),
                        j0=j0,
                        j1=min(j0 + bs, grid.ny),
                        color=(bi + bj) % 2,
                    )
                )
        return blocks

    def _block_boundary(
        self, field_values: np.ndarray, side_boundary: DirichletBoundary, block: Block
    ) -> DirichletBoundary:
        """Dirichlet data for a block: frozen neighbour values where the
        block borders other blocks, the global boundary elsewhere."""
        grid = self.system.grid
        west = (
            field_values[block.j0 : block.j1, block.i0 - 1]
            if block.i0 > 0
            else side_boundary.west[block.j0 : block.j1]
        )
        east = (
            field_values[block.j0 : block.j1, block.i1]
            if block.i1 < grid.nx
            else side_boundary.east[block.j0 : block.j1]
        )
        south = (
            field_values[block.j0 - 1, block.i0 : block.i1]
            if block.j0 > 0
            else side_boundary.south[block.i0 : block.i1]
        )
        north = (
            field_values[block.j1, block.i0 : block.i1]
            if block.j1 < grid.ny
            else side_boundary.north[block.i0 : block.i1]
        )
        return DirichletBoundary(
            west=np.array(west, dtype=float),
            east=np.array(east, dtype=float),
            south=np.array(south, dtype=float),
            north=np.array(north, dtype=float),
        )

    def block_system(
        self, block: Block, u: np.ndarray, v: np.ndarray
    ) -> BurgersStencilSystem:
        """The nonlinear subproblem of one block given frozen surroundings."""
        sub_grid = Grid2D(nx=block.nx, ny=block.ny, dx=self.system.grid.dx, dy=self.system.grid.dy)
        return BurgersStencilSystem(
            grid=sub_grid,
            reynolds=self.system.reynolds,
            rhs_u=self.system.rhs_u[block.j0 : block.j1, block.i0 : block.i1],
            rhs_v=self.system.rhs_v[block.j0 : block.j1, block.i0 : block.i1],
            boundary_u=self._block_boundary(u, self.system.boundary_u, block),
            boundary_v=self._block_boundary(v, self.system.boundary_v, block),
            weight=self.system.weight,
        )

    def solve(
        self,
        initial_guess: Optional[np.ndarray] = None,
        max_sweeps: int = 50,
        tolerance: float = 1e-3,
    ) -> GaussSeidelResult:
        """Sweep colors until the global residual drops below tolerance.

        The tolerance here is the *seeding* tolerance: the decomposed
        solution only needs to land inside the full-system Newton
        method's quadratic basin, not at double precision (the paper's
        accelerator output is ~5 % accurate anyway).
        """
        if max_sweeps <= 0:
            raise ValueError("max_sweeps must be positive")
        system = self.system
        w = (
            np.zeros(system.dimension)
            if initial_guess is None
            else np.array(initial_guess, dtype=float, copy=True)
        )
        u, v = system.split(w)
        history = [float(np.linalg.norm(system.residual(system.pack(u, v))))]
        solves = 0
        for sweep in range(1, max_sweeps + 1):
            for color in (0, 1):
                for block in self.blocks:
                    if block.color != color:
                        continue
                    sub = self.block_system(block, u, v)
                    guess = sub.pack(
                        u[block.j0 : block.j1, block.i0 : block.i1],
                        v[block.j0 : block.j1, block.i0 : block.i1],
                    )
                    solution = self.subdomain_solver(sub, guess)
                    solves += 1
                    su, sv = sub.split(np.asarray(solution, dtype=float))
                    u[block.j0 : block.j1, block.i0 : block.i1] = su
                    v[block.j0 : block.j1, block.i0 : block.i1] = sv
            norm = float(np.linalg.norm(system.residual(system.pack(u, v))))
            history.append(norm)
            if norm <= tolerance * max(history[0], 1e-30):
                return GaussSeidelResult(
                    u=system.pack(u, v),
                    converged=True,
                    sweeps=sweep,
                    residual_history=history,
                    subdomain_solves=solves,
                    block_shape=(self.blocks[0].ny, self.blocks[0].nx),
                )
        return GaussSeidelResult(
            u=system.pack(u, v),
            converged=False,
            sweeps=max_sweeps,
            residual_history=history,
            subdomain_solves=solves,
            block_shape=(self.blocks[0].ny, self.blocks[0].nx),
        )
