"""Tests for the table experiment drivers (small-scale runs)."""

import pytest

from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import PAPER_TABLE4, run_table4
from repro.experiments.table5 import run_table5


class TestTable1:
    def test_four_rows_with_fractions(self):
        result = run_table1()
        rows = result.rows()
        assert len(rows) == 4
        for row in rows:
            assert 0.0 < row["measured kernel time"] < 1.0
            assert 0.0 < row["paper kernel time"] < 1.0

    def test_render_is_nonempty_table(self):
        result = run_table1()
        text = result.render()
        assert "Bi-CGstab" in text
        assert "deal.II" in text

    def test_repeats_validation(self):
        with pytest.raises(ValueError):
            run_table1(repeats=0)


class TestTable2:
    def test_classification_rows(self):
        result = run_table2()
        rows = result.rows()
        assert rows[0]["nonlinearity"] == "quasilinear"
        assert rows[1]["nonlinearity"] == "semilinear"
        assert "hyperbolic" in rows[0]["dominant PDE character"]
        assert "parabolic" in rows[1]["dominant PDE character"]

    def test_dominance_trend_matches_paper_mechanism(self):
        result = run_table2(reynolds_values=(0.01, 10.0), trials=2)
        dominance = {row["Reynolds number"]: row["min |diag| / sum |offdiag|"] for row in result.dominance_by_reynolds}
        assert dominance[0.01] > dominance[10.0]

    def test_render_contains_both_tables(self):
        text = run_table2(trials=1).render()
        assert "Reynolds" in text
        assert "diagonal dominance" in text


class TestTable3:
    def test_component_totals_match_paper(self):
        result = run_table3()
        by_component = {row["component"]: row for row in result.rows()}
        assert by_component["integrator"]["total"] == 2
        assert by_component["fanout"]["total"] == 8
        assert by_component["multiplier"]["total"] == 8
        assert by_component["DAC"]["total"] == 4

    def test_area_and_power_rows_present(self):
        result = run_table3()
        components = [row["component"] for row in result.rows()]
        assert "total area (mm^2)" in components
        assert "total power (uW)" in components

    def test_2x2_burgers_uses_eight_tiles(self):
        result = run_table3(grid_n=2)
        assert result.tiles_allocated == 8


class TestTable4:
    def test_matches_paper_within_one_percent(self):
        result = run_table4()
        assert result.max_relative_deviation() < 0.01

    def test_all_five_sizes(self):
        result = run_table4()
        sizes = [row["solver size"] for row in result.rows()]
        assert sizes == ["1 x 1", "2 x 2", "4 x 4", "8 x 8", "16 x 16"]

    def test_paper_reference_consistent(self):
        assert PAPER_TABLE4[16] == (352.36, 390.66)


class TestTable5:
    def test_four_works_listed(self):
        result = run_table5()
        assert len(result.rows()) == 4
        assert result.rows()[0]["work"] == "this work"

    def test_all_module_claims_importable(self):
        result = run_table5()
        assert result.verify_module_claims() == []

    def test_render(self):
        assert "homotopy" in run_table5().render()
