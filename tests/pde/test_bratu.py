"""Tests for the Bratu problem and the lookup-table function generator."""

import numpy as np
import pytest

from repro.analog.function_generator import LookupTableFunction, make_exp_pair
from repro.nonlinear.newton import NewtonOptions, damped_newton_with_restarts, newton_solve
from repro.nonlinear.systems import check_jacobian
from repro.pde.bratu import (
    BRATU_1D_CRITICAL,
    BratuProblem1D,
    BratuProblem2D,
)


class TestBratu1D:
    def test_jacobian_matches_fd(self):
        problem = BratuProblem1D(num_nodes=9, lam=1.0)
        rng = np.random.default_rng(0)
        check_jacobian(problem, rng.uniform(0.0, 1.0, 9), rtol=1e-4, atol=1e-4)

    def test_lower_branch_solution_exists_subcritical(self):
        problem = BratuProblem1D(num_nodes=31, lam=1.0)
        result = newton_solve(problem, problem.lower_branch_guess(), NewtonOptions(tolerance=1e-11))
        assert result.converged
        assert np.all(result.u > 0.0)

    def test_two_branches_below_fold(self):
        # The defining Bratu structure: two distinct solutions for
        # subcritical lambda.
        problem = BratuProblem1D(num_nodes=31, lam=2.0)
        lower = newton_solve(problem, problem.lower_branch_guess(), NewtonOptions(tolerance=1e-11))
        upper = damped_newton_with_restarts(
            problem, problem.upper_branch_guess(), NewtonOptions(tolerance=1e-11, max_iterations=200)
        )
        assert lower.converged and upper.converged
        assert np.max(upper.u) > 2.0 * np.max(lower.u)

    def test_no_solution_above_fold(self):
        problem = BratuProblem1D(num_nodes=31, lam=BRATU_1D_CRITICAL + 0.5)
        result = damped_newton_with_restarts(
            problem,
            problem.lower_branch_guess(),
            NewtonOptions(tolerance=1e-10, max_iterations=100),
            min_damping=1.0 / 64.0,
        )
        assert not result.converged

    def test_solution_amplitude_grows_with_lambda(self):
        amplitudes = []
        for lam in (0.5, 1.5, 3.0):
            problem = BratuProblem1D(num_nodes=31, lam=lam)
            result = newton_solve(
                problem, problem.lower_branch_guess(), NewtonOptions(tolerance=1e-11, max_iterations=100)
            )
            assert result.converged
            amplitudes.append(float(np.max(result.u)))
        assert amplitudes[0] < amplitudes[1] < amplitudes[2]

    def test_matches_known_peak_value(self):
        # For lam = 1 the 1-D Bratu lower solution peaks at ~0.1405
        # (from the closed-form cosh solution).
        problem = BratuProblem1D(num_nodes=63, lam=1.0)
        result = newton_solve(problem, problem.lower_branch_guess(), NewtonOptions(tolerance=1e-12))
        assert result.converged
        assert float(np.max(result.u)) == pytest.approx(0.1405, abs=0.002)

    def test_validation(self):
        with pytest.raises(ValueError):
            BratuProblem1D(num_nodes=0, lam=1.0)
        with pytest.raises(ValueError):
            BratuProblem1D(num_nodes=5, lam=-1.0)


class TestBratu2D:
    def test_jacobian_matches_fd(self):
        problem = BratuProblem2D(grid_n=4, lam=1.0)
        rng = np.random.default_rng(1)
        check_jacobian(problem, rng.uniform(0.0, 0.5, 16), rtol=1e-4, atol=1e-4)

    def test_lower_branch_subcritical(self):
        problem = BratuProblem2D(grid_n=11, lam=5.0)
        result = newton_solve(problem, problem.lower_branch_guess(), NewtonOptions(tolerance=1e-11))
        assert result.converged
        field = problem.grid.field(result.u)
        # Positive, peaked at the center.
        assert np.all(result.u > 0.0)
        center = field[5, 5]
        assert center == pytest.approx(float(result.u.max()))

    def test_supercritical_has_no_solution(self):
        problem = BratuProblem2D(grid_n=11, lam=8.5)
        result = damped_newton_with_restarts(
            problem,
            problem.lower_branch_guess(),
            NewtonOptions(tolerance=1e-10, max_iterations=80),
            min_damping=1.0 / 32.0,
        )
        assert not result.converged


class TestLookupTableFunction:
    def test_exact_at_table_nodes(self):
        lut = LookupTableFunction(np.exp, (-1.0, 3.0), table_bits=8)
        xs = np.linspace(-1.0, 3.0, 2**8)
        np.testing.assert_allclose(lut(xs), np.exp(xs), rtol=1e-12)

    def test_error_shrinks_with_table_bits(self):
        coarse = LookupTableFunction(np.exp, (-1.0, 3.0), table_bits=6)
        fine = LookupTableFunction(np.exp, (-1.0, 3.0), table_bits=12)
        assert fine.max_error(np.exp) < coarse.max_error(np.exp) / 10.0

    def test_interpolation_beats_staircase(self):
        smooth = LookupTableFunction(np.exp, (0.0, 2.0), table_bits=7, interpolate=True)
        stair = LookupTableFunction(np.exp, (0.0, 2.0), table_bits=7, interpolate=False)
        assert smooth.max_error(np.exp) < stair.max_error(np.exp)

    def test_output_quantization_adds_error(self):
        exact = LookupTableFunction(np.exp, (0.0, 2.0), table_bits=10)
        quantized = LookupTableFunction(np.exp, (0.0, 2.0), table_bits=10, output_bits=6)
        assert quantized.max_error(np.exp) > exact.max_error(np.exp)

    def test_saturation_outside_range(self):
        lut = LookupTableFunction(np.exp, (0.0, 1.0), table_bits=8)
        assert lut(np.array([5.0]))[0] == pytest.approx(np.e, rel=1e-3)
        np.testing.assert_array_equal(
            lut.saturates_at(np.array([-1.0, 0.5, 2.0])), [True, False, True]
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            LookupTableFunction(np.exp, (1.0, 0.0))
        with pytest.raises(ValueError):
            LookupTableFunction(np.exp, (0.0, 1.0), table_bits=0)
        with pytest.raises(ValueError):
            LookupTableFunction(np.exp, (0.0, 1.0), output_bits=0)


class TestBratuWithLookupExponential:
    def test_lookup_solution_close_to_exact(self):
        exact_problem = BratuProblem1D(num_nodes=31, lam=2.0)
        lookup_problem = BratuProblem1D(
            num_nodes=31, lam=2.0, exp_pair=make_exp_pair((-1.0, 4.0), table_bits=12)
        )
        exact = newton_solve(
            exact_problem, exact_problem.lower_branch_guess(), NewtonOptions(tolerance=1e-11)
        )
        approx = newton_solve(
            lookup_problem, lookup_problem.lower_branch_guess(), NewtonOptions(tolerance=1e-8)
        )
        assert exact.converged and approx.converged
        assert np.max(np.abs(exact.u - approx.u)) < 1e-3

    def test_coarse_table_degrades_solution(self):
        exact_problem = BratuProblem1D(num_nodes=31, lam=2.0)
        exact = newton_solve(
            exact_problem, exact_problem.lower_branch_guess(), NewtonOptions(tolerance=1e-11)
        )
        errors = []
        for bits in (5, 12):
            problem = BratuProblem1D(
                num_nodes=31, lam=2.0, exp_pair=make_exp_pair((-1.0, 4.0), table_bits=bits)
            )
            result = newton_solve(
                problem, problem.lower_branch_guess(), NewtonOptions(tolerance=1e-6)
            )
            assert result.converged
            errors.append(float(np.max(np.abs(result.u - exact.u))))
        assert errors[0] > errors[1]
