"""Tests for the basin-of-attraction machinery behind Figures 2 and 3."""

import numpy as np
import pytest

from repro.nonlinear.basins import (
    BasinMap,
    classify_roots,
    contiguity_score,
    continuous_newton_basins,
    coupled_system_basins,
    newton_iteration_basins,
)
from repro.nonlinear.systems import CoupledQuadraticSystem


class TestClassifyRoots:
    def test_exact_points(self):
        roots = np.array([[0.0, 0.0], [1.0, 1.0]])
        labels = classify_roots(np.array([[0.0, 0.0], [1.0, 1.0]]), roots)
        np.testing.assert_array_equal(labels, [0, 1])

    def test_far_point_unclassified(self):
        roots = np.array([[0.0, 0.0]])
        labels = classify_roots(np.array([[5.0, 5.0]]), roots, tolerance=1e-2)
        assert labels[0] == -1

    def test_no_roots(self):
        labels = classify_roots(np.array([[1.0, 2.0]]), np.zeros((0, 2)))
        assert labels[0] == -1


class TestContiguityScore:
    def test_uniform_map_scores_one(self):
        assert contiguity_score(np.zeros((8, 8), dtype=int)) == 1.0

    def test_checkerboard_scores_zero(self):
        board = np.indices((8, 8)).sum(axis=0) % 2
        assert contiguity_score(board) == 0.0

    def test_half_split(self):
        labels = np.zeros((8, 8), dtype=int)
        labels[:, 4:] = 1
        score = contiguity_score(labels)
        assert 0.9 < score < 1.0

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            contiguity_score(np.zeros(5, dtype=int))


class TestNewtonIterationBasins:
    def test_all_three_roots_appear(self):
        basins = newton_iteration_basins(resolution=48, max_iterations=100)
        present = set(np.unique(basins.labels)) - {-1}
        assert present == {0, 1, 2}

    def test_symmetric_fractions(self):
        # The three cube-root basins have equal area by symmetry.
        basins = newton_iteration_basins(resolution=64)
        fractions = basins.root_fractions()
        np.testing.assert_allclose(fractions, 1.0 / 3.0, atol=0.06)

    def test_real_axis_right_half_goes_to_real_root(self):
        basins = newton_iteration_basins(resolution=65, extent=2.0)
        # Pixel at (x > 0.5, y ~ 0): converges to root index of (1, 0).
        mid = 32  # y = 0 row
        right = 56  # x = 1.5 column
        label = basins.labels[mid, right]
        np.testing.assert_allclose(basins.roots[label], [1.0, 0.0], atol=1e-8)

    def test_damping_validation(self):
        with pytest.raises(ValueError):
            newton_iteration_basins(resolution=16, damping=0.0)

    def test_resolution_validation(self):
        with pytest.raises(ValueError):
            newton_iteration_basins(resolution=1)


class TestContinuousNewtonBasins:
    def test_more_contiguous_than_classical(self):
        # The paper's Figure 2 claim, quantified.
        classical = newton_iteration_basins(resolution=64, damping=1.0)
        continuous = continuous_newton_basins(resolution=64, horizon=20.0, dt=0.05)
        assert contiguity_score(continuous.labels) > contiguity_score(classical.labels)

    def test_converges_almost_everywhere(self):
        basins = continuous_newton_basins(resolution=48, horizon=25.0)
        assert basins.converged_fraction > 0.95

    def test_noise_keeps_basin_structure(self):
        clean = continuous_newton_basins(resolution=32, horizon=20.0)
        noisy = continuous_newton_basins(resolution=32, horizon=20.0, noise_level=1e-3, seed=7)
        both = (clean.labels >= 0) & (noisy.labels >= 0)
        agreement = float(np.mean(clean.labels[both] == noisy.labels[both]))
        assert agreement > 0.9

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            continuous_newton_basins(resolution=16, dt=0.0)


class TestCoupledSystemBasins:
    def test_newton_flow_finds_roots_and_pink_region(self):
        system = CoupledQuadraticSystem(1.0, 1.0)
        basins = coupled_system_basins(system, resolution=48, method="newton_flow")
        present = set(np.unique(basins.labels))
        # At least one true root basin appears.
        assert any(k >= 0 for k in present)

    def test_homotopy_start_covers_whole_plane(self):
        basins = coupled_system_basins(resolution=32, method="homotopy_start")
        assert basins.converged_fraction == 1.0
        assert set(np.unique(basins.labels)) == {0, 1, 2, 3}

    def test_homotopy_every_pixel_lands_on_true_root(self):
        # The Figure 3 far-right claim: all initial conditions lead to
        # one correct solution or another.
        system = CoupledQuadraticSystem(1.0, 1.0)
        basins = coupled_system_basins(system, resolution=32, method="homotopy")
        assert basins.converged_fraction == 1.0
        for label in np.unique(basins.labels):
            assert label >= 0
            assert system.residual_norm(basins.roots[label]) < 1e-6

    def test_homotopy_more_reliable_than_newton_flow(self):
        system = CoupledQuadraticSystem(1.0, 1.0)
        flow = coupled_system_basins(system, resolution=32, method="newton_flow")
        homotopy = coupled_system_basins(system, resolution=32, method="homotopy")
        assert homotopy.converged_fraction >= flow.converged_fraction

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            coupled_system_basins(resolution=16, method="nope")


class TestBasinMapProperties:
    def test_root_fractions_sum_to_one(self):
        basins = newton_iteration_basins(resolution=32)
        assert basins.root_fractions().sum() == pytest.approx(1.0)

    def test_resolution_property(self):
        basins = BasinMap(labels=np.zeros((5, 5), dtype=int), roots=np.zeros((1, 2)), extent=1.0)
        assert basins.resolution == 5
