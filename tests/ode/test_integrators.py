"""Tests for the ODE integration substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ode import (
    SettleDetector,
    integrate_euler,
    integrate_rk4,
    integrate_rk45,
    integrate_until_settled,
)


def exponential_decay(_t, y):
    return -y


def harmonic(_t, y):
    return np.array([y[1], -y[0]])


class TestFixedStep:
    def test_euler_decay_first_order(self):
        y0 = np.array([1.0])
        coarse = integrate_euler(exponential_decay, 0.0, y0, 1.0, dt=0.1)
        fine = integrate_euler(exponential_decay, 0.0, y0, 1.0, dt=0.01)
        exact = np.exp(-1.0)
        err_coarse = abs(coarse.final_state[0] - exact)
        err_fine = abs(fine.final_state[0] - exact)
        # First-order: 10x smaller step ~ 10x smaller error.
        assert 5.0 < err_coarse / err_fine < 20.0

    def test_rk4_decay_fourth_order(self):
        y0 = np.array([1.0])
        coarse = integrate_rk4(exponential_decay, 0.0, y0, 1.0, dt=0.2)
        fine = integrate_rk4(exponential_decay, 0.0, y0, 1.0, dt=0.1)
        exact = np.exp(-1.0)
        ratio = abs(coarse.final_state[0] - exact) / abs(fine.final_state[0] - exact)
        assert 10.0 < ratio < 25.0  # ~2^4

    def test_final_time_hit_exactly(self):
        sol = integrate_rk4(exponential_decay, 0.0, np.array([1.0]), 0.35, dt=0.1)
        assert sol.final_time == pytest.approx(0.35)

    def test_invalid_step_rejected(self):
        with pytest.raises(ValueError):
            integrate_euler(exponential_decay, 0.0, np.array([1.0]), 1.0, dt=0.0)

    def test_invalid_horizon_rejected(self):
        with pytest.raises(ValueError):
            integrate_rk4(exponential_decay, 1.0, np.array([1.0]), 1.0, dt=0.1)

    def test_record_every_thins_history(self):
        dense = integrate_euler(exponential_decay, 0.0, np.array([1.0]), 1.0, dt=0.01)
        thin = integrate_euler(exponential_decay, 0.0, np.array([1.0]), 1.0, dt=0.01, record_every=10)
        assert len(thin.ts) < len(dense.ts)
        np.testing.assert_allclose(thin.final_state, dense.final_state)

    def test_rhs_evaluation_count(self):
        sol = integrate_rk4(exponential_decay, 0.0, np.array([1.0]), 1.0, dt=0.1)
        assert sol.rhs_evaluations == 40  # 10 steps x 4 stages


class TestRk45:
    def test_decay_accuracy(self):
        sol = integrate_rk45(exponential_decay, 0.0, np.array([1.0]), 5.0, rtol=1e-9, atol=1e-12)
        assert sol.final_state[0] == pytest.approx(np.exp(-5.0), rel=1e-7)

    def test_harmonic_energy_preserved_tightly(self):
        sol = integrate_rk45(harmonic, 0.0, np.array([1.0, 0.0]), 10.0, rtol=1e-10, atol=1e-12)
        energy = sol.final_state[0] ** 2 + sol.final_state[1] ** 2
        assert energy == pytest.approx(1.0, rel=1e-6)

    def test_adapts_step_count_to_tolerance(self):
        loose = integrate_rk45(harmonic, 0.0, np.array([1.0, 0.0]), 10.0, rtol=1e-4, atol=1e-6)
        tight = integrate_rk45(harmonic, 0.0, np.array([1.0, 0.0]), 10.0, rtol=1e-10, atol=1e-12)
        assert tight.rhs_evaluations > loose.rhs_evaluations

    def test_stiff_transient_handled_by_rejections(self):
        def stiff(_t, y):
            return np.array([-200.0 * (y[0] - np.cos(_t))])

        sol = integrate_rk45(stiff, 0.0, np.array([0.0]), 1.0, rtol=1e-6, atol=1e-9)
        # Slow manifold: y ~ cos(t) for t >> 1/200.
        assert sol.final_state[0] == pytest.approx(np.cos(1.0), abs=1e-2)

    def test_callback_early_stop(self):
        def cb(t, _y, _dy):
            return t > 1.0

        sol = integrate_rk45(exponential_decay, 0.0, np.array([1.0]), 100.0, step_callback=cb)
        assert sol.settled
        assert sol.final_time < 5.0

    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            integrate_rk45(exponential_decay, 0.0, np.array([1.0]), 0.0)

    def test_sample_interpolates(self):
        sol = integrate_rk45(exponential_decay, 0.0, np.array([1.0]), 2.0, rtol=1e-8, atol=1e-10)
        mid = sol.sample(1.0)
        assert mid[0] == pytest.approx(np.exp(-1.0), rel=1e-3)

    def test_sample_clamps_out_of_range(self):
        sol = integrate_rk45(exponential_decay, 0.0, np.array([1.0]), 1.0)
        np.testing.assert_allclose(sol.sample(-5.0), sol.ys[0])
        np.testing.assert_allclose(sol.sample(99.0), sol.ys[-1])

    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=0.2, max_value=3.0), st.floats(min_value=-2.0, max_value=2.0))
    def test_property_linear_ode_matches_closed_form(self, horizon, rate):
        def rhs(_t, y):
            return rate * y

        sol = integrate_rk45(rhs, 0.0, np.array([1.0]), horizon, rtol=1e-9, atol=1e-12)
        assert sol.final_state[0] == pytest.approx(np.exp(rate * horizon), rel=1e-5)


class TestSettleDetection:
    def test_decay_settles(self):
        sol = integrate_until_settled(
            exponential_decay, np.array([1.0]), time_limit=100.0, derivative_tolerance=1e-6
        )
        assert sol.settled
        assert sol.settle_time is not None
        assert sol.settle_time < 30.0
        assert abs(sol.final_state[0]) < 1e-5

    def test_oscillator_never_settles(self):
        sol = integrate_until_settled(
            harmonic, np.array([1.0, 0.0]), time_limit=20.0, derivative_tolerance=1e-3
        )
        assert not sol.settled

    def test_dwell_prevents_premature_settle(self):
        # Trajectory passes slowly through zero derivative then speeds up:
        # dy/dt = (t - 1)^2 has derivative ~ 0 near t=1 but resumes.
        def rhs(t, _y):
            return np.array([(t - 1.0) ** 2])

        detector = SettleDetector(derivative_tolerance=1e-3, dwell=1.0)
        fired_early = detector(1.0, np.array([0.0]), np.array([1e-5]))
        assert not fired_early  # needs dwell time even though rate is low

    def test_detector_resets_after_excursion(self):
        detector = SettleDetector(derivative_tolerance=1e-3, dwell=0.5)
        assert not detector(0.0, np.zeros(1), np.array([1e-5]))
        # Excursion above tolerance resets the dwell clock.
        assert not detector(0.4, np.zeros(1), np.array([1.0]))
        assert not detector(0.5, np.zeros(1), np.array([1e-5]))
        assert not detector(0.9, np.zeros(1), np.array([1e-5]))
        assert detector(1.1, np.zeros(1), np.array([1e-5]))

    def test_detector_validation(self):
        with pytest.raises(ValueError):
            SettleDetector(derivative_tolerance=0.0)
        with pytest.raises(ValueError):
            SettleDetector(dwell=-1.0)

    def test_settle_time_shrinks_for_faster_dynamics(self):
        def fast(_t, y):
            return -10.0 * y

        slow_sol = integrate_until_settled(exponential_decay, np.array([1.0]), 200.0)
        fast_sol = integrate_until_settled(fast, np.array([1.0]), 200.0)
        assert fast_sol.settled and slow_sol.settled
        assert fast_sol.settle_time < slow_sol.settle_time
