"""Tests for the CPU/GPU/analog performance models and profiler."""

import time

import numpy as np
import pytest

from repro.linalg.sparse import CooBuilder
from repro.nonlinear.newton import LinearSolverStats, NewtonResult
from repro.perf.analog_model import AnalogTimingModel
from repro.perf.cpu_model import CpuModel
from repro.perf.gpu_model import GpuModel
from repro.perf.profiles import KernelProfiler


def fake_newton_result(iterations, total=None, inner=10, solves=None):
    stats = LinearSolverStats(
        solves=solves or iterations, inner_iterations=inner * (solves or iterations), matvecs=0
    )
    return NewtonResult(
        u=np.zeros(2),
        converged=True,
        iterations=iterations,
        residual_norm=0.0,
        residual_history=[],
        total_iterations_including_restarts=total or iterations,
        linear_stats=stats,
    )


def stencil_matrix(n):
    builder = CooBuilder(n, n)
    for i in range(n):
        builder.add(i, i, 4.0)
        if i > 0:
            builder.add(i, i - 1, -1.0)
        if i < n - 1:
            builder.add(i, i + 1, -1.0)
    return builder.to_csr()


class TestCpuModel:
    def test_time_scales_with_iterations(self):
        model = CpuModel()
        short = model.solve_seconds(fake_newton_result(5), num_unknowns=100, nnz=1000)
        long = model.solve_seconds(fake_newton_result(50), num_unknowns=100, nnz=1000)
        assert long == pytest.approx(10.0 * short)

    def test_time_scales_with_problem_size(self):
        model = CpuModel()
        small = model.solve_seconds(fake_newton_result(10), num_unknowns=32, nnz=200)
        big = model.solve_seconds(fake_newton_result(10), num_unknowns=512, nnz=3000)
        assert big > 5.0 * small

    def test_dense_solve_cubic_scaling(self):
        model = CpuModel(iteration_overhead_seconds=0.0, flops_per_nonzero_assembly=0.0)
        t1 = model.newton_iteration_seconds(100, 0)
        t2 = model.newton_iteration_seconds(200, 0)
        assert 7.0 < t2 / t1 < 9.0

    def test_restart_accounting(self):
        model = CpuModel()
        result = fake_newton_result(10, total=40)
        charitable = model.solve_seconds(result, num_unknowns=100, nnz=1000, count_restarts=False)
        honest = model.solve_seconds(result, num_unknowns=100, nnz=1000, count_restarts=True)
        assert honest == pytest.approx(4.0 * charitable)

    def test_energy_is_power_times_time(self):
        model = CpuModel(power_watts=200.0)
        assert model.energy_joules(2.0) == pytest.approx(400.0)

    def test_solve_seconds_from_stats_rewards_reuse(self):
        # Same measured Krylov work, fewer preconditioner builds =>
        # strictly cheaper modeled time.
        model = CpuModel()
        rebuilt = LinearSolverStats(
            solves=10, inner_iterations=100, matvecs=210, preconditioner_builds=10
        )
        reused = LinearSolverStats(
            solves=10, inner_iterations=100, matvecs=210, preconditioner_builds=1
        )
        cost_rebuilt = model.solve_seconds_from_stats(rebuilt, num_unknowns=256, nnz=1200)
        cost_reused = model.solve_seconds_from_stats(reused, num_unknowns=256, nnz=1200)
        assert 0.0 < cost_reused < cost_rebuilt

    def test_solve_seconds_from_stats_charges_all_attempts(self):
        model = CpuModel()
        base = LinearSolverStats(solves=4, inner_iterations=40, matvecs=84)
        with_fallback = LinearSolverStats(solves=4, inner_iterations=40, matvecs=160)
        assert model.solve_seconds_from_stats(
            with_fallback, num_unknowns=64, nnz=300
        ) > model.solve_seconds_from_stats(base, num_unknowns=64, nnz=300)
        with pytest.raises(ValueError):
            model.solve_seconds_from_stats(base, num_unknowns=-1, nnz=300)

    def test_validation(self):
        model = CpuModel()
        with pytest.raises(ValueError):
            model.newton_iteration_seconds(-1, 0)
        with pytest.raises(ValueError):
            model.solve_seconds_from_counts(-1, 10, 10)
        with pytest.raises(ValueError):
            model.energy_joules(-1.0)


class TestGpuModel:
    def test_overhead_dominates_small_problems(self):
        model = GpuModel()
        tiny = stencil_matrix(8)
        t = model.newton_step_seconds(tiny)
        assert t == pytest.approx(model.step_overhead_seconds, rel=0.2)

    def test_flops_dominate_large_banded_problems(self):
        model = GpuModel()
        # Wide-band matrix: QR flops overwhelm overhead.
        n = 2048
        builder = CooBuilder(n, n)
        for i in range(n):
            builder.add(i, i, 4.0)
            if i >= 1024:
                builder.add(i, i - 1024, -1.0)
        wide = builder.to_csr()
        t = model.newton_step_seconds(wide)
        assert t > 10.0 * model.step_overhead_seconds

    def test_solve_seconds_uses_iteration_count(self):
        model = GpuModel()
        mat = stencil_matrix(64)
        one = model.solve_seconds(fake_newton_result(1), mat)
        ten = model.solve_seconds(fake_newton_result(10), mat)
        assert ten == pytest.approx(10.0 * one)

    def test_energy(self):
        model = GpuModel(power_watts=180.0)
        assert model.energy_joules(1.0) == pytest.approx(180.0)
        with pytest.raises(ValueError):
            model.energy_joules(-0.1)


class TestAnalogTimingModel:
    def test_seconds_linear_in_settle_units(self):
        model = AnalogTimingModel()
        assert model.seconds(20.0) == pytest.approx(2.0 * model.seconds(10.0))

    def test_typical_2x2_run_is_sub_millisecond(self):
        # Figure 7's analog solution times are ~1e-4 s.
        model = AnalogTimingModel()
        assert 1e-5 < model.seconds(12.0) < 1e-3

    def test_energy_tiny_compared_to_gpu(self):
        model = AnalogTimingModel()
        analog_energy = model.energy_joules(16, settle_time_units=12.0)
        gpu_energy = GpuModel().energy_joules(0.5)
        assert analog_energy < 1e-3 * gpu_energy

    def test_validation(self):
        with pytest.raises(ValueError):
            AnalogTimingModel(time_constant_seconds=0.0)
        with pytest.raises(ValueError):
            AnalogTimingModel(activity_factor=1.5)
        with pytest.raises(ValueError):
            AnalogTimingModel().seconds(-1.0)


class TestKernelProfiler:
    def test_fractions_reflect_time_split(self):
        profiler = KernelProfiler()
        with profiler.run():
            with profiler.region("solve"):
                time.sleep(0.05)
            with profiler.region("other"):
                time.sleep(0.01)
        report = profiler.report()
        assert report.fraction("solve") > report.fraction("other")
        assert 0.5 < report.fraction("solve") < 1.0

    def test_dominant_kernel(self):
        profiler = KernelProfiler()
        with profiler.run():
            with profiler.region("a"):
                time.sleep(0.02)
            with profiler.region("b"):
                time.sleep(0.002)
        name, fraction = profiler.report().dominant_kernel()
        assert name == "a"
        assert fraction > 0.5

    def test_nested_regions_disjoint(self):
        profiler = KernelProfiler()
        with profiler.run():
            with profiler.region("outer"):
                time.sleep(0.01)
                with profiler.region("inner"):
                    time.sleep(0.02)
                time.sleep(0.01)
        report = profiler.report()
        total_attributed = sum(report.region_seconds.values())
        assert total_attributed <= report.total_seconds * 1.05
        assert report.fraction("inner") > report.fraction("outer") * 0.5

    def test_unentered_region_fraction_zero(self):
        profiler = KernelProfiler()
        with profiler.run():
            pass
        assert profiler.report().fraction("missing") == 0.0

    def test_report_during_run_rejected(self):
        profiler = KernelProfiler()
        with pytest.raises(RuntimeError):
            with profiler.run():
                profiler.report()

    def test_dominant_kernel_requires_regions(self):
        profiler = KernelProfiler()
        with profiler.run():
            pass
        with pytest.raises(ValueError):
            profiler.report().dominant_kernel()


class TestSolveCostSummary:
    def _make_inputs(self):
        import numpy as np

        from repro.analog.engine import AnalogAccelerator
        from repro.core.hybrid import HybridSolver
        from repro.pde.burgers import random_burgers_system

        system, guess = random_burgers_system(3, 1.0, np.random.default_rng(0))
        solver = HybridSolver(AnalogAccelerator(seed=0))
        baseline = solver.solve_baseline(system, initial_guess=guess)
        hybrid = solver.solve(system, initial_guess=guess)
        jacobian = system.jacobian(guess)
        return baseline, hybrid, system.dimension, jacobian

    def test_three_rows_with_positive_costs(self):
        from repro.perf.summary import solve_cost_summary

        baseline, hybrid, dim, jacobian = self._make_inputs()
        rows = solve_cost_summary(baseline, hybrid, dim, jacobian)
        assert len(rows) == 3
        for row in rows:
            assert row.seconds > 0.0
            assert row.joules > 0.0
            assert row.as_row()["substrate"] == row.substrate

    def test_hybrid_cheapest_in_energy(self):
        from repro.perf.summary import solve_cost_summary

        baseline, hybrid, dim, jacobian = self._make_inputs()
        rows = {row.substrate: row for row in solve_cost_summary(baseline, hybrid, dim, jacobian)}
        assert (
            rows["hybrid analog + CPU polish"].joules
            <= rows["GPU QR-offload Newton"].joules
        )
