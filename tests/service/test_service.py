"""Contract tests for :mod:`repro.service`: smoke, reject-with-reason,
and merged-trace reconciliation.

The admission contract is *reject-with-reason, never silent drop*:
every refused submission raises :class:`ServiceRejected` carrying one
of :data:`REJECTION_REASONS` and lands in ``result.rejections``. The
trace contract is that :func:`repro.trace.merge_traces` loses nothing:
the merged file's ``linear_solve`` spans are exactly the union of the
per-shard files', duration for duration.
"""

import asyncio
import math

import pytest

from repro.runtime.api import ProblemSpec, SolveRequest
from repro.service import (
    REJECTION_REASONS,
    ServiceRejected,
    SolveService,
    serve_requests,
)
from repro.trace.exporter import read_trace


def _requests(n, prefix="svc"):
    """Cheap digital-only quadratic solves (the soak-test workload)."""
    return [
        SolveRequest(
            f"{prefix}-{i:02d}",
            ProblemSpec.quadratic(rhs0=1.0 + 0.1 * i, rhs1=1.3, guess=(0.1, 0.1)),
            rungs=("damped_newton",),
            analog_time_limit=1e-3,
        )
        for i in range(n)
    ]


class TestServiceSmoke:
    def test_every_request_gets_exactly_one_terminal_record(self):
        requests = _requests(6)
        result = serve_requests(requests, shards=2, batch_window=3, seed=0)
        assert [r.request_id for r in result.records] == [
            r.request_id for r in requests
        ]  # submission order preserved, no duplicates, no losses
        assert result.completed == 6
        assert result.failed == 0
        assert not result.rejections
        assert result.counters.get("service_requests_admitted") == 6
        assert result.counters.get("service_requests_completed") == 6
        # Shard bookkeeping agrees with the record-level story.
        assert sum(s.dispatched for s in result.shards) == 6
        assert sum(s.converged for s in result.shards) == 6
        assert all(s.status == "healthy" for s in result.shards)

    def test_windows_spread_across_shards(self):
        result = serve_requests(_requests(8), shards=2, batch_window=2, seed=0)
        assert result.completed == 8
        assert all(s.windows > 0 for s in result.shards)

    def test_single_shard_service_still_works(self):
        result = serve_requests(_requests(5), shards=1, batch_window=2, seed=0)
        assert result.completed == 5
        assert result.shards[0].windows == 3  # ceil(5 / 2)


class TestAdmissionRefusals:
    """Every refusal path raises with a machine-readable reason."""

    @staticmethod
    def _with_service(coro_fn, **kwargs):
        async def run():
            service = SolveService(seed=0, **kwargs)
            await service.start()
            try:
                return await coro_fn(service)
            finally:
                await service.drain()

        return asyncio.run(run())

    def test_queue_full_is_rejected_with_reason(self):
        requests = _requests(3, prefix="qf")

        async def scenario(service):
            # No awaits between submits: the dispatcher cannot drain
            # the queue under us, so the third offer must overflow.
            service.submit(requests[0])
            service.submit(requests[1])
            with pytest.raises(ServiceRejected) as excinfo:
                service.submit(requests[2])
            return excinfo.value.reason

        reason = self._with_service(scenario, shards=1, queue_limit=2, batch_window=2)
        assert reason == "queue_full"
        assert reason in REJECTION_REASONS

    def test_tenant_quota_is_rejected_with_reason(self):
        requests = _requests(2, prefix="tq")

        async def scenario(service):
            service.submit(requests[0], tenant="noisy")
            with pytest.raises(ServiceRejected) as excinfo:
                service.submit(requests[1], tenant="noisy")
            return excinfo.value.reason

        reason = self._with_service(
            scenario, shards=1, queue_limit=8, batch_window=2, tenant_quota=1
        )
        assert reason == "tenant_quota"

    def test_duplicate_request_is_rejected_with_reason(self):
        request = _requests(1, prefix="dup")[0]

        async def scenario(service):
            service.submit(request)
            with pytest.raises(ServiceRejected) as excinfo:
                service.submit(request)
            return excinfo.value.reason

        reason = self._with_service(scenario, shards=1, queue_limit=8, batch_window=2)
        assert reason == "duplicate_request"

    def test_stopped_service_rejects_with_reason(self):
        async def run():
            service = SolveService(shards=1, seed=0)
            await service.start()
            await service.drain()
            with pytest.raises(ServiceRejected) as excinfo:
                service.submit(_requests(1, prefix="late")[0])
            return excinfo.value.reason

        assert asyncio.run(run()) == "service_stopped"

    def test_rejections_are_recorded_never_dropped(self):
        # serve_requests applies backpressure for queue_full, so use a
        # duplicate id to force a recorded rejection end to end.
        requests = _requests(3, prefix="rec")
        requests[2] = SolveRequest(
            requests[0].request_id,
            ProblemSpec.quadratic(rhs0=2.0, rhs1=1.3, guess=(0.1, 0.1)),
            rungs=("damped_newton",),
            analog_time_limit=1e-3,
        )
        result = serve_requests(requests, shards=1, batch_window=2, seed=0)
        assert result.completed == 2
        assert [r.reason for r in result.rejections] == ["duplicate_request"]
        assert result.rejections[0].request_id == requests[0].request_id
        assert result.counters.get("service_requests_rejected") == 1

    def test_unknown_rejection_reason_is_a_bug(self):
        with pytest.raises(ValueError):
            ServiceRejected("cosmic_rays")


class TestTraceReconciliation:
    """The merged trace is the exact union of the per-shard traces."""

    def test_merged_linear_solve_spans_equal_shard_union(self, tmp_path):
        trace_path = tmp_path / "service.jsonl"
        result = serve_requests(
            _requests(6), shards=2, batch_window=3, seed=0, trace_path=trace_path
        )
        assert result.trace_path == trace_path
        merged = read_trace(trace_path)

        shard_durations = []
        shard_counters = {}
        for summary in result.shards:
            shard_file = read_trace(tmp_path / f"service.jsonl.{summary.name}")
            for span in shard_file.spans_named("linear_solve"):
                shard_durations.append(span["t_end"] - span["t_start"])
            for name, value in shard_file.counters.items():
                shard_counters[name] = shard_counters.get(name, 0) + value

        merged_durations = [
            span["t_end"] - span["t_start"]
            for span in merged.spans_named("linear_solve")
        ]
        assert merged_durations  # the workload does solve linear systems
        # Same spans, duration for duration — merge concatenates, so
        # the multisets (and hence the exact fsum) must coincide.
        assert sorted(merged_durations) == sorted(shard_durations)
        assert math.fsum(merged_durations) == math.fsum(shard_durations)
        # Counters sum across shards into the merged file.
        for name, value in shard_counters.items():
            assert merged.counters.get(name) == pytest.approx(value), name
        # Each merged span names its source shard.
        sources = {span.get("source") for span in merged.spans}
        assert {s.name for s in result.shards} <= sources
