"""Common result container for ODE integrations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

__all__ = ["OdeSolution"]


@dataclass
class OdeSolution:
    """Trajectory and bookkeeping of one ODE integration.

    Attributes
    ----------
    ts:
        Sample times, monotonically increasing, starting at ``t0``.
    ys:
        State samples, shape ``(len(ts), state_dim)``.
    settled:
        True if the integration ended because a settle detector fired
        (analog convergence) rather than by reaching the time horizon.
    settle_time:
        Time at which the settle detector fired, or None.
    rhs_evaluations:
        Number of right-hand-side evaluations — for the analog model
        this is a fidelity diagnostic, not a cost (the physical circuit
        evaluates its RHS "for free", continuously).
    rejected_steps:
        Adaptive integrators count rejected trial steps here.
    """

    ts: np.ndarray
    ys: np.ndarray
    settled: bool = False
    settle_time: Optional[float] = None
    rhs_evaluations: int = 0
    rejected_steps: int = 0

    @property
    def final_time(self) -> float:
        return float(self.ts[-1])

    @property
    def final_state(self) -> np.ndarray:
        return self.ys[-1]

    def sample(self, t: float) -> np.ndarray:
        """Linearly interpolated state at time ``t`` (clamped to range)."""
        ts = self.ts
        if t <= ts[0]:
            return self.ys[0]
        if t >= ts[-1]:
            return self.ys[-1]
        idx = int(np.searchsorted(ts, t))
        t0, t1 = ts[idx - 1], ts[idx]
        w = (t - t0) / (t1 - t0) if t1 > t0 else 0.0
        return (1.0 - w) * self.ys[idx - 1] + w * self.ys[idx]

    @classmethod
    def from_lists(
        cls,
        ts: List[float],
        ys: List[np.ndarray],
        settled: bool = False,
        settle_time: Optional[float] = None,
        rhs_evaluations: int = 0,
        rejected_steps: int = 0,
    ) -> "OdeSolution":
        return cls(
            ts=np.asarray(ts, dtype=float),
            ys=np.asarray(ys, dtype=float),
            settled=settled,
            settle_time=settle_time,
            rhs_evaluations=rhs_evaluations,
            rejected_steps=rejected_steps,
        )
