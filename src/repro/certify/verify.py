"""Offline re-verification of batch journals (``repro verify-journal``).

A journal is the durable record of what a batch claims it computed.
``verify_journal`` audits that claim without trusting it: every
committed converged outcome's solution is re-certified from scratch
through the independent residual path, and any certificate the journal
stored is checked for digest integrity (does it belong to the stored
solution, was it tampered with, does its verdict still reproduce).

Three failure classes, all reported per outcome:

* ``certificate-mismatch`` — the stored certificate's digest does not
  equal the digest recomputed from the stored solution: the journal
  was modified after commit, or solution and certificate were torn
  apart;
* ``certified-bad`` — re-certification *fails* on the stored solution
  (a corrupted answer was committed, certified or not);
* ``stored-failure`` — the journal committed an outcome whose stored
  certificate already said ``fail`` (the runtime should have escalated
  instead).

Uncertified journals (no ``certify`` config, no per-outcome
certificates) are still fully auditable — recompute-only mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.certify.certificate import CertifyPolicy, SolveCertificate, certify_solution
from repro.checkpoint.journal import outcome_from_record, read_journal

__all__ = ["JournalVerification", "verify_journal"]

PathLike = Union[str, Path]


@dataclass
class JournalVerification:
    """The audit result for one journal file."""

    path: Path
    checked: int = 0
    skipped: int = 0
    certificates_failed: int = 0
    problems: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def render(self) -> str:
        lines = [
            f"journal: {self.path}",
            f"outcomes checked: {self.checked} (skipped: {self.skipped})",
            f"certificates failed: {self.certificates_failed}",
        ]
        for problem in self.problems:
            lines.append(
                f"  FAIL [{problem['kind']}] {problem['request_id']}: {problem['detail']}"
            )
        lines.append("verdict: " + ("ok" if self.ok else "FAILED"))
        return "\n".join(lines)


def verify_journal(
    path: PathLike,
    policy: Optional[CertifyPolicy] = None,
    tolerance: Optional[float] = None,
) -> JournalVerification:
    """Audit every committed outcome in ``path``.

    ``policy`` defaults to the policy recorded in the journal's
    ``batch_started`` config (the tolerances the run was certified
    under), falling back to :class:`CertifyPolicy` defaults;
    ``tolerance`` overrides just ``max_relative_residual``.
    """
    replay = read_journal(path)
    if policy is None:
        stored = (replay.config or {}).get("certify")
        policy = CertifyPolicy.from_record(stored) if stored else CertifyPolicy()
    if tolerance is not None:
        policy = CertifyPolicy(
            enabled=True,
            max_relative_residual=float(tolerance),
            absolute_floor=policy.absolute_floor,
            bounds_slack=policy.bounds_slack,
            canary_threshold=policy.canary_threshold,
            reference_floor=policy.reference_floor,
        )
    requests = {request.request_id: request for request in replay.requests}
    result = JournalVerification(path=Path(path))

    for request_id, record in replay.outcomes.items():
        outcome = outcome_from_record(record["outcome"])
        request = requests.get(request_id)
        if outcome.status != "converged" or outcome.solution is None or request is None:
            # Failures/timeouts carry no answer to certify; a missing
            # request_accepted record leaves nothing to rebuild against.
            result.skipped += 1
            continue
        result.checked += 1
        recomputed = certify_solution(
            request.problem,
            outcome.solution,
            value_bound=request.value_bound,
            policy=policy,
        )
        stored_cert = record["outcome"].get("certificate")
        if stored_cert is not None:
            stored = SolveCertificate.from_record(stored_cert)
            if stored.digest != recomputed.digest and tolerance is None:
                result.certificates_failed += 1
                result.problems.append(
                    {
                        "kind": "certificate-mismatch",
                        "request_id": request_id,
                        "detail": (
                            f"stored digest {stored.digest[:12]}... != "
                            f"recomputed {recomputed.digest[:12]}..."
                        ),
                    }
                )
                continue
            if not stored.passed:
                result.certificates_failed += 1
                result.problems.append(
                    {
                        "kind": "stored-failure",
                        "request_id": request_id,
                        "detail": "journal committed an outcome whose certificate says fail",
                    }
                )
                continue
        if not recomputed.passed:
            failed = ", ".join(check.name for check in recomputed.failed_checks())
            result.certificates_failed += 1
            result.problems.append(
                {
                    "kind": "certified-bad",
                    "request_id": request_id,
                    "detail": (
                        f"re-certification failed ({failed}); relative residual "
                        f"{recomputed.relative_residual:.3e} vs tolerance "
                        f"{recomputed.tolerance:.3e}"
                    ),
                }
            )
    return result
