"""Extension bench: time-stepping scheme trade-offs (Section 7).

"In this paper we use Crank-Nicolson time stepping ... Higher-order
time stepping methods allow larger step sizes to be taken, at the cost
of putting more unknown variables at play." This bench quantifies the
menu on a nonlinear decay problem: implicit Euler (1st order),
Crank-Nicolson (2nd, one history level), and BDF2 (2nd, two history
levels), at equal step counts and at equal accuracy.
"""

import numpy as np
import pytest

from repro.nonlinear.newton import NewtonOptions, newton_solve
from repro.pde.timestepping import (
    Bdf2System,
    CrankNicolsonSystem,
    ImplicitEulerSystem,
    SpatialOperator,
)

# dy/dt = -(y + y^3): a stiff-ish nonlinear decay with known qualitative
# behaviour; reference computed with tiny CN steps.
OPERATOR = SpatialOperator(
    dimension=1,
    apply=lambda y: y + y**3,
    jacobian=lambda y: np.array([[1.0 + 3.0 * y[0] ** 2]]),
)
Y0 = np.array([1.0])
HORIZON = 1.0


def integrate(scheme: str, steps: int) -> float:
    dt = HORIZON / steps
    options = NewtonOptions(tolerance=1e-13, max_iterations=50)
    if scheme == "euler":
        y = Y0.copy()
        for _ in range(steps):
            y = newton_solve(ImplicitEulerSystem(OPERATOR, y, dt), y, options).u
        return float(y[0])
    if scheme == "cn":
        y = Y0.copy()
        for _ in range(steps):
            y = newton_solve(CrankNicolsonSystem(OPERATOR, y, dt), y, options).u
        return float(y[0])
    if scheme == "bdf2":
        y_prev2 = Y0.copy()
        y_prev = newton_solve(CrankNicolsonSystem(OPERATOR, y_prev2, dt), y_prev2, options).u
        for _ in range(steps - 1):
            system = Bdf2System(OPERATOR, y_prev, y_prev2, dt)
            y_prev2, y_prev = y_prev, newton_solve(system, y_prev, options).u
        return float(y_prev[0])
    raise ValueError(scheme)


@pytest.fixture(scope="module")
def reference():
    return integrate("cn", 4096)


def test_time_stepping_accuracy_orders(benchmark, reference):
    def sweep():
        return {
            scheme: {steps: abs(integrate(scheme, steps) - reference) for steps in (8, 16, 32)}
            for scheme in ("euler", "cn", "bdf2")
        }

    errors = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nerrors by scheme/steps:", {k: {s: f"{e:.2e}" for s, e in v.items()} for k, v in errors.items()})

    # Convergence orders across a step doubling.
    euler_ratio = errors["euler"][8] / errors["euler"][16]
    cn_ratio = errors["cn"][8] / errors["cn"][16]
    bdf2_ratio = errors["bdf2"][8] / errors["bdf2"][16]
    assert 1.5 < euler_ratio < 3.0  # ~2^1
    assert 3.0 < cn_ratio < 5.0  # ~2^2
    assert 2.5 < bdf2_ratio < 6.0  # ~2^2

    # The second-order schemes beat Euler at every step count.
    for steps in (8, 16, 32):
        assert errors["cn"][steps] < errors["euler"][steps]
        assert errors["bdf2"][steps] < errors["euler"][steps]


def test_equal_accuracy_step_budget(reference):
    # How many implicit-Euler steps match CN at 16 steps? The larger
    # budget is the cost of the lower order (more accelerator runs per
    # unit simulated time in the hybrid setting).
    target = abs(integrate("cn", 16) - reference)
    steps = 16
    while steps < 5000 and abs(integrate("euler", steps) - reference) > target:
        steps *= 2
    assert steps >= 8 * 16
