"""Energy budgeting for an embedded fluid-model control loop.

The paper's introduction motivates analog acceleration with "emerging
microscopic robots [that] require the use of powerful mathematical
models to simulate the physical world ... where energy budgets are
limited". This example plays that scenario: a robot re-solves a small
viscous-flow model (one implicit Burgers step) every control tick, on a
fixed battery budget.

We compare three execution strategies per tick and report how many
control ticks each affords:

* CPU baseline: damped Newton on the embedded CPU model;
* GPU offload: Newton steps with QR offload (GPU model);
* hybrid: analog accelerator seed + short digital polish.

Run:  python examples/microrobot_energy_budget.py
"""

import numpy as np

from repro.analog import AnalogAccelerator
from repro.core import HybridSolver
from repro.nonlinear import NewtonOptions
from repro.perf import AnalogTimingModel, CpuModel, GpuModel
from repro.pde import random_burgers_system

GRID_N = 8
REYNOLDS = 2.0
BATTERY_JOULES = 10.0


def main() -> None:
    rng = np.random.default_rng(3)
    system, guess = random_burgers_system(GRID_N, REYNOLDS, rng)
    nnz = system.jacobian(guess).nnz
    jacobian = system.jacobian(guess)

    cpu = CpuModel()
    gpu = GpuModel()
    analog = AnalogTimingModel()

    solver = HybridSolver(
        AnalogAccelerator(seed=11),
        polish_options=NewtonOptions(tolerance=1e-11, max_iterations=200),
    )

    baseline = solver.solve_baseline(system, initial_guess=guess)
    hybrid = solver.solve(system, initial_guess=guess)
    if not (baseline.converged and hybrid.converged):
        raise SystemExit("solvers failed on this instance; try another seed")

    cpu_seconds = cpu.solve_seconds(baseline, system.dimension, nnz, count_restarts=True)
    cpu_joules = cpu.energy_joules(cpu_seconds)

    gpu_seconds = gpu.solve_seconds(baseline, jacobian, count_restarts=True)
    gpu_joules = gpu.energy_joules(gpu_seconds)

    polish_seconds = cpu.solve_seconds(hybrid.digital, system.dimension, nnz)
    seed_seconds = analog.seconds(hybrid.analog.settle_time_units)
    hybrid_joules = cpu.energy_joules(polish_seconds) + analog.energy_joules(
        GRID_N, hybrid.analog.settle_time_units
    )
    hybrid_seconds = polish_seconds + seed_seconds

    print(f"One control tick = one {GRID_N}x{GRID_N} implicit Burgers solve at Re={REYNOLDS}")
    print(f"battery budget: {BATTERY_JOULES} J\n")
    print(f"{'strategy':<22} {'time/tick':>12} {'energy/tick':>13} {'ticks on battery':>17}")
    print("-" * 68)
    for name, seconds, joules in (
        ("CPU damped Newton", cpu_seconds, cpu_joules),
        ("GPU QR offload", gpu_seconds, gpu_joules),
        ("hybrid analog+CPU", hybrid_seconds, hybrid_joules),
    ):
        ticks = int(BATTERY_JOULES / joules)
        print(f"{name:<22} {seconds:>10.4f} s {joules:>11.4f} J {ticks:>17,d}")

    print(
        f"\ndigital iterations: baseline "
        f"{baseline.total_iterations_including_restarts}, "
        f"after analog seeding {hybrid.digital_iterations}"
    )
    print("The hybrid strategy stretches the same battery across far more")
    print("control ticks - the paper's Figure 9 energy argument, embedded.")


if __name__ == "__main__":
    main()
