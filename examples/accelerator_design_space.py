"""Design-space exploration of scaled-up accelerators (Section 6).

Sweeps accelerator/problem sizes and reports, per size:

* chip area and peak power from the Table 4 model,
* measured digital Newton work on random Burgers problems (converted
  to modeled CPU seconds), and
* the simulated analog settle time (converted to modeled seconds),

reproducing the section's conclusions: the analog solution time stays
flat while digital time grows with each quadrupling, the crossover sits
around 4x4, and the 16x16 design wins ~100x while staying inside a
CPU-sized die at milliwatt power.

Run:  python examples/accelerator_design_space.py
"""

import numpy as np

from repro.analog import AnalogAccelerator, AreaPowerModel
from repro.experiments.common import ANALOG_ERROR_TARGET, equal_accuracy_damped_newton
from repro.nonlinear import NewtonOptions, damped_newton_with_restarts
from repro.perf import AnalogTimingModel, CpuModel
from repro.pde import random_burgers_system

GRID_SIZES = (2, 4, 8, 16)
REYNOLDS = 1.0


def main() -> None:
    area_power = AreaPowerModel()
    cpu = CpuModel()
    analog_timing = AnalogTimingModel()

    print(f"2-D Burgers design sweep at Re = {REYNOLDS} (equal-accuracy protocol)")
    header = (
        f"{'size':>6} | {'area mm^2':>9} | {'power mW':>8} | "
        f"{'digital time':>12} | {'analog time':>11} | {'ratio':>7}"
    )
    print(header)
    print("-" * len(header))

    for grid_n in GRID_SIZES:
        rng = np.random.default_rng(grid_n)
        system, guess = random_burgers_system(grid_n, REYNOLDS, rng)
        golden = damped_newton_with_restarts(
            system, guess, NewtonOptions(tolerance=1e-11, max_iterations=100)
        )
        if not golden.converged:
            print(f"{grid_n:>4}x{grid_n:<2} | (instance unsolvable; skipped)")
            continue
        digital = equal_accuracy_damped_newton(
            system, guess, golden.u, scale=3.3, target_error=ANALOG_ERROR_TARGET
        )
        nnz = system.jacobian(guess).nnz
        digital_seconds = cpu.solve_seconds_from_counts(
            digital.iterations, system.dimension, nnz
        )
        analog = AnalogAccelerator(seed=grid_n).solve(system, initial_guess=guess)
        analog_seconds = analog_timing.seconds(analog.settle_time_units)
        print(
            f"{grid_n:>4}x{grid_n:<2} | {area_power.chip_area_mm2(grid_n):>9.2f} "
            f"| {area_power.peak_power_mw(grid_n):>8.2f} "
            f"| {digital_seconds:>10.2e} s | {analog_seconds:>9.2e} s "
            f"| {digital_seconds / analog_seconds:>6.1f}x"
        )

    print(
        "\nThe 16x16 design occupies a CPU-sized die at sub-watt power"
        f" (power density {area_power.power_density_w_per_cm2(16):.3f} W/cm^2,"
        " ~400x below digital dies) while answering ~100x faster than the"
        " equal-accuracy digital solver - Section 6's design argument."
    )


if __name__ == "__main__":
    main()
