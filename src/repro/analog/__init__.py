"""Component-level simulator of the prototyped analog accelerator.

The paper's accelerator (Section 5, Figure 5) is a board of two 65 nm
chips, each with four tiles; a tile carries four integrators, eight
multipliers/gain blocks, eight current-mirror fanouts, DACs, ADCs, and
a crossbar giving all-to-all connectivity within the tile. Since we
have no silicon, this package simulates the accelerator at component
fidelity, following the paper's own methodology for scaled-up designs
("The simulated scaled-up analog accelerator models the variables in
the analog accelerator as it solves the nonlinear problem ... built on
the Odeint ODE solver library", Section 6.1):

* :mod:`repro.analog.components` — function units with gain error,
  offset, saturation, and calibration state;
* :mod:`repro.analog.noise` — ADC/DAC quantization and noise processes;
* :mod:`repro.analog.calibration` — process variation and the
  DAC-precision-limited calibration the paper describes;
* :mod:`repro.analog.fabric` — the Fabric/Chip/Tile hierarchy with the
  Figure-4-style programming interface;
* :mod:`repro.analog.compiler` — maps nonlinear systems onto tiles and
  accounts component usage (Table 3);
* :mod:`repro.analog.scaling` — dynamic-range scaling (Section 5.3);
* :mod:`repro.analog.health` — degradation fault models, seed-quality
  gating, and the online tile health monitor with quarantine and
  recalibration scheduling;
* :mod:`repro.analog.engine` — continuous-time execution: continuous
  Newton with hardware imperfections, settle detection, ADC readout;
* :mod:`repro.analog.area_power` — area/power models (Tables 3-4).
"""

from repro.analog.noise import NoiseModel, quantize_midrise
from repro.analog.calibration import CalibrationConfig, ProcessVariation
from repro.analog.components import (
    AnalogComponent,
    Integrator,
    Multiplier,
    Fanout,
    Dac,
    Adc,
    ComponentKind,
)
from repro.analog.fabric import Fabric, Chip, Tile, Connection, FabricCapacityError
from repro.analog.health import (
    NONFINITE_QUALITY,
    DegradationModel,
    DegradationSchedule,
    HealthMonitor,
    SeedQuality,
    SeedQualityGate,
    TileHealth,
)
from repro.analog.compiler import CompiledProblem, ResourceCount, compile_burgers, compile_system
from repro.analog.scaling import ScaledSystem, required_scale
from repro.analog.engine import AnalogSolveResult, AnalogAccelerator, solution_error
from repro.analog.area_power import AreaPowerModel, scaled_accelerator_table
from repro.analog.function_generator import LookupTableFunction, make_exp_pair
from repro.analog.visualize import sparkline, render_scope

__all__ = [
    "NoiseModel",
    "quantize_midrise",
    "CalibrationConfig",
    "ProcessVariation",
    "AnalogComponent",
    "Integrator",
    "Multiplier",
    "Fanout",
    "Dac",
    "Adc",
    "ComponentKind",
    "Fabric",
    "Chip",
    "Tile",
    "Connection",
    "FabricCapacityError",
    "NONFINITE_QUALITY",
    "DegradationModel",
    "DegradationSchedule",
    "HealthMonitor",
    "SeedQuality",
    "SeedQualityGate",
    "TileHealth",
    "CompiledProblem",
    "ResourceCount",
    "compile_burgers",
    "compile_system",
    "ScaledSystem",
    "required_scale",
    "AnalogSolveResult",
    "AnalogAccelerator",
    "solution_error",
    "AreaPowerModel",
    "scaled_accelerator_table",
    "LookupTableFunction",
    "make_exp_pair",
    "sparkline",
    "render_scope",
]
