"""Benchmark: Figure 6 — distribution of analog solution error.

Replays the 400-random-problem protocol (reduced trial count by default
for bench runtime; EXPERIMENTS.md records a full 400-trial run) and
checks the paper's result: total RMS error around 5.38% with a
single-mode distribution concentrated at percent-level errors.
"""

import numpy as np

from repro.experiments.figure6 import PAPER_RMS_ERROR, run_figure6

TRIALS = 80


def test_figure6(benchmark):
    result = benchmark.pedantic(run_figure6, kwargs={"trials": TRIALS}, rounds=1, iterations=1)
    print("\n" + result.render())

    # Total RMS error in the paper's band (5.38% +- measurement slack).
    assert 0.03 < result.total_rms < 0.08
    assert abs(result.total_rms - PAPER_RMS_ERROR) < 0.025

    # The distribution is concentrated: most trials below 2x the RMS.
    below = float(np.mean(result.errors < 2.0 * result.total_rms))
    assert below > 0.8

    # No pathological outliers (an error of ~50% of full scale would
    # mean the flow settled on a wrong attractor undetected).
    assert float(result.errors.max()) < 0.5
