"""Benchmark: Table 3 — analog component usage per PDE variable.

Compiles a 2x2 Burgers problem onto the simulated two-chip prototype
board and regenerates the per-variable component-by-role table with its
area/power bottom rows.
"""

import pytest

from repro.experiments.table3 import PAPER_TOTALS, run_table3


def test_table3(benchmark):
    result = benchmark.pedantic(run_table3, kwargs={"grid_n": 2}, rounds=1, iterations=1)
    print("\n" + result.render())

    by_component = {row["component"]: row for row in result.rows()}
    for component, total in PAPER_TOTALS.items():
        assert by_component[component]["total"] == total, component

    # Role splits of the paper's table.
    assert by_component["multiplier"]["nonlinear function"] == 4
    assert by_component["multiplier"]["Jacobian matrix"] == 3
    assert by_component["integrator"]["quotient feedback loop"] == 1
    assert by_component["integrator"]["Newton method feedback loop"] == 1
    assert by_component["DAC"]["nonlinear function"] == 3

    # Area/power bottom rows.
    assert by_component["total area (mm^2)"]["total"] == pytest.approx(0.70, abs=0.01)
    assert by_component["total power (uW)"]["total"] == pytest.approx(763.0, abs=1.0)

    # One variable per tile: the 2x2 problem fills the 8-tile board.
    assert result.tiles_allocated == 8
