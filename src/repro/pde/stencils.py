"""Second-order central finite-difference stencils (Section 4.2).

All operators work on a *padded* field: the interior ``(ny, nx)`` array
surrounded by its Dirichlet ghost ring, produced by
:func:`pad_with_boundary`. Operating on padded arrays keeps the
stencils branch-free and fully vectorized, and makes the boundary
contribution to residuals and Jacobians explicit.
"""

from __future__ import annotations

import numpy as np

from repro.pde.boundary import DirichletBoundary
from repro.pde.grid import Grid2D

__all__ = ["pad_with_boundary", "central_x", "central_y", "laplacian_5pt"]


def pad_with_boundary(
    interior: np.ndarray, boundary: DirichletBoundary, grid: Grid2D
) -> np.ndarray:
    """Surround a ``(ny, nx)`` interior field with its ghost ring.

    Returns a ``(ny + 2, nx + 2)`` array. Corner ghosts are zero; no
    five-point stencil reads them.
    """
    interior = np.asarray(interior, dtype=float)
    if interior.shape != grid.shape:
        raise ValueError(f"expected interior shape {grid.shape}, got {interior.shape}")
    boundary.validate(grid)
    padded = np.zeros((grid.ny + 2, grid.nx + 2))
    padded[1:-1, 1:-1] = interior
    padded[1:-1, 0] = boundary.west
    padded[1:-1, -1] = boundary.east
    padded[0, 1:-1] = boundary.south
    padded[-1, 1:-1] = boundary.north
    return padded


def central_x(padded: np.ndarray, dx: float = 1.0) -> np.ndarray:
    """Second-order central difference d/dx on the interior nodes.

    ``(f[i+1, j] - f[i-1, j]) / (2 dx)`` with x as the second (column)
    axis; returns a ``(ny, nx)`` array.
    """
    return (padded[1:-1, 2:] - padded[1:-1, :-2]) / (2.0 * dx)


def central_y(padded: np.ndarray, dy: float = 1.0) -> np.ndarray:
    """Second-order central difference d/dy on the interior nodes."""
    return (padded[2:, 1:-1] - padded[:-2, 1:-1]) / (2.0 * dy)


def laplacian_5pt(padded: np.ndarray, dx: float = 1.0, dy: float = 1.0) -> np.ndarray:
    """Five-point Laplacian on the interior nodes."""
    center = padded[1:-1, 1:-1]
    d2x = (padded[1:-1, 2:] - 2.0 * center + padded[1:-1, :-2]) / (dx * dx)
    d2y = (padded[2:, 1:-1] - 2.0 * center + padded[:-2, 1:-1]) / (dy * dy)
    return d2x + d2y
