"""Extension bench: the Section 9 continuous-algorithm family.

Not a paper table/figure — the paper's conclusion points at
eigenanalysis and linear programming as the next analog kernels; this
bench validates this library's implementations of both and the hybrid
structure they share with the headline method (approximate continuous
kernel + exact digital finish).
"""

import numpy as np
import pytest

from repro.nonlinear.flows import dominant_eigenpairs, oja_flow
from repro.optimize import LinearProgram, barrier_flow_solve, hybrid_lp_solve, simplex_solve


def random_symmetric(n, seed):
    rng = np.random.default_rng(seed)
    raw = rng.standard_normal((n, n))
    return (raw + raw.T) / 2.0


def test_eigen_flow_accuracy(benchmark):
    matrix = random_symmetric(8, seed=3)

    def run():
        return dominant_eigenpairs(matrix, count=3, seed=1)

    pairs = benchmark.pedantic(run, rounds=1, iterations=1)
    expected = np.sort(np.linalg.eigvalsh(matrix))[::-1][:3]
    measured = [pair.eigenvalue for pair in pairs]
    print("\nflow eigenvalues:", np.round(measured, 6), "expected:", np.round(expected, 6))
    np.testing.assert_allclose(measured, expected, atol=1e-3)
    for pair in pairs:
        assert pair.residual_norm < 1e-2


def test_eigen_flow_settles_without_step_size(benchmark):
    # The analog selling point: no step-size parameter exists at all;
    # the flow settles from a random start.
    matrix = random_symmetric(6, seed=9)
    result = benchmark.pedantic(oja_flow, args=(matrix,), kwargs={"seed": 4}, rounds=1, iterations=1)
    assert result.settled
    assert result.settle_time > 0.0


def test_hybrid_lp_matches_simplex(benchmark):
    problems = []
    for seed in range(5):
        rng = np.random.default_rng(seed)
        problems.append(
            LinearProgram.from_inequalities(
                c=rng.uniform(-1.0, -0.1, 4),
                a_ub=rng.uniform(0.1, 1.0, (3, 4)),
                b_ub=rng.uniform(1.0, 5.0, 3),
            )
        )

    def run():
        return [(hybrid_lp_solve(lp), simplex_solve(lp)) for lp in problems]

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    crossover_wins = 0
    for hybrid, exact in outcomes:
        assert exact.optimal
        assert hybrid.optimal
        assert hybrid.objective == pytest.approx(exact.objective, abs=1e-5)
        if not hybrid.used_fallback:
            crossover_wins += 1
    # The analog seed routinely removes the pivot sequence entirely.
    print(f"\ncrossover succeeded without simplex on {crossover_wins}/{len(outcomes)} LPs")
    assert crossover_wins >= 3


def test_barrier_temperature_accuracy_dial(benchmark):
    lp = LinearProgram.from_inequalities(
        c=np.array([-1.0, -2.0]),
        a_ub=np.array([[1.0, 1.0], [0.0, 1.0]]),
        b_ub=np.array([4.0, 2.0]),
    )
    exact = simplex_solve(lp).objective

    def run():
        return {mu: barrier_flow_solve(lp, mu=mu).objective for mu in (1e-2, 1e-4)}

    objectives = benchmark.pedantic(run, rounds=1, iterations=1)
    assert abs(objectives[1e-4] - exact) < abs(objectives[1e-2] - exact)
