"""Figure 8: baseline vs analog-seeded digital solver across Reynolds.

"Figure [8] shows the solution time of a baseline digital solver
compared to a seeded digital solver which benefits from the
low-precision solution of an analog accelerator. The average solution
time over 16 trials for both is plotted against various choices of
Reynolds number ... As the Reynolds number approaches 2.0, the baseline
digital solver running the damped Newton method is forced to take
smaller steps, causing the algorithm to run longer with greater
variance in the solution time. On the other hand the analog seed saves
the digital solver from having to use damped steps."

Both solvers run to double-precision-epsilon-scaled residuals; times
come from the CPU cost model driven by measured iteration counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.analog.engine import AnalogAccelerator
from repro.core.hybrid import HybridSolver
from repro.linalg.kernel import LinearKernel, LinearSolverStats
from repro.nonlinear.newton import NewtonOptions, damped_newton_with_restarts
from repro.perf.analog_model import AnalogTimingModel
from repro.perf.cpu_model import CpuModel
from repro.pde.burgers import random_burgers_system
from repro.reporting import ascii_table, render_kernel_stats
from repro.trace.tracer import TracerLike, as_tracer

__all__ = ["Figure8Result", "run_figure8", "PAPER_FIGURE8"]

# Paper Figure 8: Reynolds -> (baseline seconds, seeded seconds).
PAPER_FIGURE8 = {
    0.01: (0.08, 0.06),
    0.02: (0.07, 0.06),
    0.03: (0.08, 0.06),
    0.06: (0.07, 0.06),
    0.13: (0.08, 0.06),
    0.25: (0.15, 0.08),
    0.50: (0.09, 0.08),
    1.00: (0.10, 0.08),
    2.00: (0.81, 0.05),
}


@dataclass
class Figure8Result:
    rows_data: List[dict]
    kernel_stats: Optional[LinearSolverStats] = None

    def rows(self) -> List[dict]:
        return self.rows_data

    def render(self) -> str:
        table = ascii_table(self.rows_data)
        stats = render_kernel_stats(self.kernel_stats, label="digital linear kernel")
        return f"{table}\n\n{stats}" if stats else table

    def row_at(self, reynolds: float) -> Optional[dict]:
        for row in self.rows_data:
            if row["Reynolds number"] == reynolds:
                return row
        return None


def run_figure8(
    grid_n: int = 16,
    reynolds_values: Tuple[float, ...] = (0.01, 0.25, 1.0, 2.0),
    trials: int = 4,
    seed: int = 0,
    cpu_model: Optional[CpuModel] = None,
    analog_model: Optional[AnalogTimingModel] = None,
    tracer: Optional[TracerLike] = None,
) -> Figure8Result:
    """Sweep Reynolds numbers; report baseline vs seeded times.

    The paper's full figure uses a 16x16 grid, nine Reynolds values and
    16 trials; defaults are reduced for bench runtime — pass the full
    settings to reproduce the complete series.

    ``tracer`` records the baseline leg's ``newton_attempt`` spans and
    the hybrid leg's ``solve``/``analog_settle`` spans per trial.
    """
    cpu_model = cpu_model or CpuModel()
    analog_model = analog_model or AnalogTimingModel()
    tracer = as_tracer(tracer)
    options = NewtonOptions(tolerance=1e-11, max_iterations=60)
    sweep_stats = LinearSolverStats()
    rows = []
    for reynolds in reynolds_values:
        baseline_times = []
        seeded_times = []
        analog_seed_times = []
        for trial in range(trials):
            rng = np.random.default_rng(seed + 7919 * trial)
            system, _ = random_burgers_system(grid_n, reynolds, rng)
            # The naive initial guess: uniform across the solution's
            # dynamic range (no warm history to exploit).
            guess = rng.uniform(-2.0, 2.0, system.dimension)
            nnz = system.jacobian(guess).nnz
            # Per-trial kernels (baseline and seeded legs accounted
            # separately but into one sweep-level sink).
            solver = HybridSolver(
                AnalogAccelerator(seed=seed + trial),
                polish_options=options,
                linear_solver=LinearKernel(stats=sweep_stats),
            )
            baseline = damped_newton_with_restarts(
                system,
                guess,
                options,
                linear_solver=LinearKernel(stats=sweep_stats),
                min_damping=1.0 / 64.0,
                tracer=tracer,
            )
            if not baseline.converged:
                # Paper protocol: instances where no damping converges
                # are dropped from the averages (their Figure 8 error
                # bars come from the surviving trials).
                continue
            hybrid = solver.solve(system, initial_guess=guess, tracer=tracer)
            if not hybrid.converged:
                continue
            baseline_times.append(
                cpu_model.solve_seconds(baseline, system.dimension, nnz, count_restarts=True)
            )
            seeded_times.append(cpu_model.solve_seconds(hybrid.digital, system.dimension, nnz))
            analog_seed_times.append(analog_model.seconds(hybrid.analog.settle_time_units))
        if not baseline_times:
            continue
        rows.append(
            {
                "Reynolds number": reynolds,
                "trials converged": len(baseline_times),
                "baseline digital (s)": float(np.mean(baseline_times)),
                "baseline std (s)": float(np.std(baseline_times)),
                "analog seed (s)": float(np.mean(analog_seed_times)),
                "seeded digital (s)": float(np.mean(seeded_times)),
                "seeded std (s)": float(np.std(seeded_times)),
                "speedup": float(np.mean(baseline_times) / max(np.mean(seeded_times), 1e-12)),
            }
        )
    return Figure8Result(rows_data=rows, kernel_stats=sweep_stats)
