"""Tests for the tile crossbar port budget."""

import numpy as np
import pytest

from repro.analog.compiler import ResourceCount, compile_burgers
from repro.analog.fabric import (
    Fabric,
    FabricCapacityError,
    TILE_INPUT_PORTS,
    TILE_OUTPUT_PORTS,
    Tile,
)
from repro.analog.noise import NoiseModel
from repro.pde.burgers import random_burgers_system


class TestPortBudget:
    def test_claim_within_budget(self):
        tile = Tile("t", NoiseModel())
        tile.claim_ports(8, 11)
        assert tile.input_ports_used == 8
        assert tile.output_ports_used == 11

    def test_input_overflow_rejected(self):
        tile = Tile("t", NoiseModel())
        tile.claim_ports(10, 0)
        with pytest.raises(FabricCapacityError):
            tile.claim_ports(TILE_INPUT_PORTS - 10 + 1, 0)

    def test_output_overflow_rejected(self):
        tile = Tile("t", NoiseModel())
        with pytest.raises(FabricCapacityError):
            tile.claim_ports(0, TILE_OUTPUT_PORTS + 1)

    def test_negative_rejected(self):
        tile = Tile("t", NoiseModel())
        with pytest.raises(ValueError):
            tile.claim_ports(-1, 0)

    def test_release_frees_ports(self):
        tile = Tile("t", NoiseModel())
        tile.claim_ports(8, 11)
        tile.release()
        assert tile.input_ports_used == 0
        tile.claim_ports(16, 16)  # whole budget available again

    def test_table3_usage_fits_crossbar(self):
        # The paper's per-variable port usage must fit Figure 5's
        # crossbar — the consistency check between Tables 3 and 5.
        resources = ResourceCount()
        assert resources.per_variable_total("tile input") <= TILE_INPUT_PORTS
        assert resources.per_variable_total("tile output") <= TILE_OUTPUT_PORTS

    def test_compiled_burgers_claims_ports(self):
        fabric = Fabric(num_chips=2)
        system, _ = random_burgers_system(2, 1.0, np.random.default_rng(0))
        compiled = compile_burgers(fabric, system)
        for tile in compiled.tiles:
            assert tile.input_ports_used == 8
            assert tile.output_ports_used == 11
        compiled.release()
        assert all(t.input_ports_used == 0 for t in compiled.tiles)
