"""Runtime-level certification: the observer property, the escalation
path under injected silent corruption, and replay re-verification.

The chaos-marked class is the acceptance scenario the issue names: a
corruption injected at a known ``(request_id, attempt)`` must fail its
certificate, trigger a re-solve on *different* silicon, leave exactly
one terminal outcome per request in the journal, and put the blamed
board in quarantine — while the batch still delivers the correct
certified answer."""

import json

import numpy as np
import pytest

from repro.certify import CertifyPolicy
from repro.checkpoint import BatchJournal, JournalError, read_journal
from repro.fleet import FleetConfig
from repro.runtime import (
    FaultInjector,
    FaultSpec,
    ProblemSpec,
    RetryPolicy,
    Runtime,
    SolveRequest,
)

FAST_RETRY = RetryPolicy(max_attempts=2, base_delay=0.0, max_delay=0.0, jitter=0.0)


def _requests(n, prefix="cr"):
    return [
        SolveRequest(
            f"{prefix}-{i:04d}",
            ProblemSpec.quadratic(1.0 + 0.05 * i, 1.0),
            analog_time_limit=0.5,
        )
        for i in range(n)
    ]


def _run(certify, requests=None, **kwargs):
    runtime = Runtime(
        workers=1, retry=FAST_RETRY, seed=0, certify=certify, **kwargs
    )
    return runtime.run_batch(requests if requests is not None else _requests(4))


class TestCertifyObserver:
    def test_certified_run_is_bitwise_identical_to_uncertified(self):
        plain = _run(certify=None)
        certified = _run(certify=True)
        assert [o.request_id for o in plain.outcomes] == [
            o.request_id for o in certified.outcomes
        ]
        for a, b in zip(plain.outcomes, certified.outcomes):
            assert a.status == b.status == "converged"
            assert a.solution.tobytes() == b.solution.tobytes()
            assert a.attempts == b.attempts
            assert a.rung == b.rung

    def test_certificates_attached_and_passing_on_clean_run(self):
        result = _run(certify=True)
        for outcome in result.outcomes:
            assert outcome.certificate is not None
            assert outcome.certificate.passed
        assert result.counters["certificates_checked"] == 4
        assert result.counters["certificates_passed"] == 4
        assert result.counters.get("certificates_failed", 0) == 0
        assert result.counters.get("corruption_caught", 0) == 0

    def test_uncertified_run_attaches_no_certificates(self):
        result = _run(certify=None)
        assert all(outcome.certificate is None for outcome in result.outcomes)
        assert "certificates_checked" not in result.counters

    def test_custom_policy_is_used(self):
        strict = CertifyPolicy(max_relative_residual=1e-10, absolute_floor=1e-30)
        result = _run(certify=strict)
        for outcome in result.outcomes:
            assert outcome.certificate is not None
            assert outcome.certificate.tolerance == 1e-10


@pytest.mark.chaos
class TestSilentCorruptionEscalation:
    def _corrupted_batch(self, tmp_path, boards=2):
        faults = FaultInjector(
            specs=(FaultSpec("silent_corruption", request_id="cr-0001", attempt=0),),
            seed=0,
        )
        path = tmp_path / "certify.journal"
        runtime = Runtime(
            workers=1,
            retry=FAST_RETRY,
            seed=0,
            faults=faults,
            certify=True,
            # Pressure 1.0 so the condemned board STAYS quarantined for
            # the duration — blame visibility, not the recalibration exit.
            fleet=FleetConfig(boards=boards, recalibration_pressure=1.0),
            ladder_kwargs={"settle_max_steps": 2000},
            journal=BatchJournal(path),
        )
        return runtime, runtime.run_batch(_requests(4)), path

    def test_injected_corruption_is_caught_and_resolved(self, tmp_path):
        runtime, result, path = self._corrupted_batch(tmp_path)

        # Every request still converges; the corrupted one got there
        # via escalation (certificate fail -> damped-Newton re-solve).
        assert all(o.status == "converged" for o in result.outcomes)
        hit = next(o for o in result.outcomes if o.request_id == "cr-0001")
        assert "silent_corruption" in hit.faults
        assert "certificate_failed" in hit.faults
        assert hit.attempts == 2
        assert hit.certificate is not None and hit.certificate.passed

        counters = result.counters
        assert counters["corruption_caught"] == 1
        assert counters["certificates_failed"] == 1
        assert counters["resolves_triggered"] == 1
        assert counters["certificates_checked"] == 5  # 4 commits + 1 voided

        # The blamed board is quarantined with the failing checks named.
        condemned = [b for b in runtime.fleet.boards if b.quarantined]
        assert len(condemned) == 1
        assert "certificate failed" in condemned[0].quarantine_reason

        # Exactly one terminal outcome per request in the journal.
        commits = {}
        for line in path.read_text(encoding="utf-8").splitlines():
            record = json.loads(line)
            if record.get("kind") == "outcome_committed":
                rid = record["request_id"]
                commits[rid] = commits.get(rid, 0) + 1
        assert commits == {f"cr-{i:04d}": 1 for i in range(4)}

    def test_escalated_answer_matches_the_clean_run(self, tmp_path):
        _, corrupted, _ = self._corrupted_batch(tmp_path)
        clean = Runtime(
            workers=1,
            retry=FAST_RETRY,
            seed=0,
            certify=True,
            fleet=FleetConfig(boards=2, recalibration_pressure=1.0),
            ladder_kwargs={"settle_max_steps": 2000},
        ).run_batch(_requests(4))
        clean_hit = next(o for o in clean.outcomes if o.request_id == "cr-0001")
        bad_hit = next(o for o in corrupted.outcomes if o.request_id == "cr-0001")
        # The certified re-solve lands on the same root to full
        # precision — corruption cost an attempt, never correctness.
        assert np.allclose(bad_hit.solution, clean_hit.solution, rtol=1e-9)

    def test_single_board_escalation_does_not_deadlock(self, tmp_path):
        # With the only board condemned, the re-solve must still finish
        # on the digital rung rather than waiting for analog capacity.
        runtime, result, _ = self._corrupted_batch(tmp_path, boards=1)
        assert all(o.status == "converged" for o in result.outcomes)
        assert result.counters["resolves_triggered"] == 1


class TestReplayReverification:
    def _journaled_run(self, tmp_path):
        path = tmp_path / "resume.journal"
        runtime = Runtime(
            workers=1,
            retry=FAST_RETRY,
            seed=0,
            certify=True,
            journal=BatchJournal(path),
        )
        result = runtime.run_batch(_requests(3))
        return result, path

    def test_clean_replay_reverifies_and_matches(self, tmp_path):
        first, path = self._journaled_run(tmp_path)
        replay = read_journal(path)
        resumed = replay.build_runtime(
            journal=BatchJournal.resume(replay)
        ).run_batch(replay.requests, resume=replay)
        assert resumed.replayed == 3
        for a, b in zip(first.outcomes, resumed.outcomes):
            assert a.solution.tobytes() == b.solution.tobytes()
            assert a.certificate == b.certificate
        assert resumed.counters == first.counters

    def test_tampered_solution_refuses_resume(self, tmp_path):
        from repro.checkpoint.atomic import decode_array, encode_array, payload_digest

        _, path = self._journaled_run(tmp_path)
        lines = []
        for line in path.read_text(encoding="utf-8").splitlines():
            record = json.loads(line)
            if (
                record.get("kind") == "outcome_committed"
                and record["request_id"] == "cr-0001"
            ):
                record.pop("sha256", None)
                outcome = record["outcome"]
                outcome["solution"] = encode_array(
                    decode_array(outcome["solution"]) * (1.0 + 1e-3)
                )
                record["sha256"] = payload_digest(record)
                line = json.dumps(record)
            lines.append(line)
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")

        replay = read_journal(path)
        runtime = replay.build_runtime(journal=BatchJournal.resume(replay))
        with pytest.raises(JournalError, match="re-verification failed"):
            runtime.run_batch(replay.requests, resume=replay)
