"""Benchmark: Table 2 — effect of Reynolds number on Burgers' equation.

Regenerates the qualitative classification and verifies its measured
mechanism: the Burgers Jacobian's diagonal dominance collapses as the
Reynolds number grows.
"""

from repro.experiments.table2 import run_table2


def test_table2(benchmark):
    result = benchmark.pedantic(
        run_table2,
        kwargs={"reynolds_values": (0.001, 0.01, 0.1, 1.0, 10.0), "trials": 3},
        rounds=1,
        iterations=1,
    )
    print("\n" + result.render())

    rows = result.rows()
    assert rows[0]["regime" if "regime" in rows[0] else "Reynolds number"] == "large"
    assert rows[0]["nonlinearity"] == "quasilinear"
    assert rows[1]["nonlinearity"] == "semilinear"

    dominance = [row["min |diag| / sum |offdiag|"] for row in result.dominance_by_reynolds]
    diag = [row["min |diag|"] for row in result.dominance_by_reynolds]
    # "The elements on the diagonal of the Jacobian diminish with
    # higher Reynolds numbers": min |diag| falls by orders of magnitude.
    assert all(earlier > later for earlier, later in zip(diag, diag[1:]))
    assert diag[0] > 100.0 * diag[-1]
    # Diagonal dominance is likewise monotone decreasing, and is lost
    # (ratio < 1) by Re = 10 — "increasing the chance the Jacobian
    # becomes singular in the process of solving the equation".
    assert all(earlier > later for earlier, later in zip(dominance, dominance[1:]))
    assert dominance[0] > 0.99
    assert dominance[-1] < 0.7
