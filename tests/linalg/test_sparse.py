"""Unit tests for the CSR sparse matrix."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.sparse import CooBuilder, CsrMatrix, diags, eye


def laplacian_1d(n):
    """Standard 1-D Laplacian used as a realistic stencil matrix."""
    builder = CooBuilder(n, n)
    for i in range(n):
        builder.add(i, i, 2.0)
        if i > 0:
            builder.add(i, i - 1, -1.0)
        if i < n - 1:
            builder.add(i, i + 1, -1.0)
    return builder.to_csr()


class TestCooBuilder:
    def test_empty_matrix(self):
        mat = CooBuilder(3, 4).to_csr()
        assert mat.shape == (3, 4)
        assert mat.nnz == 0
        np.testing.assert_allclose(mat.matvec(np.ones(4)), np.zeros(3))

    def test_duplicates_are_summed(self):
        builder = CooBuilder(2, 2)
        builder.add(0, 0, 1.5)
        builder.add(0, 0, 2.5)
        mat = builder.to_csr()
        assert mat.nnz == 1
        assert mat.to_dense()[0, 0] == pytest.approx(4.0)

    def test_out_of_range_rejected(self):
        builder = CooBuilder(2, 2)
        with pytest.raises(IndexError):
            builder.add(2, 0, 1.0)
        with pytest.raises(IndexError):
            builder.add(0, -1, 1.0)

    def test_extend_and_len(self):
        builder = CooBuilder(2, 2)
        builder.extend([(0, 0, 1.0), (1, 1, 2.0)])
        assert len(builder) == 2


class TestCsrKernels:
    def test_matvec_matches_dense(self):
        mat = laplacian_1d(8)
        x = np.arange(8.0)
        np.testing.assert_allclose(mat.matvec(x), mat.to_dense() @ x)

    def test_matmul_operator(self):
        mat = laplacian_1d(4)
        x = np.ones(4)
        np.testing.assert_allclose(mat @ x, mat.matvec(x))

    def test_rmatvec_matches_dense_transpose(self):
        builder = CooBuilder(3, 5)
        builder.extend([(0, 1, 2.0), (1, 4, -1.0), (2, 0, 3.0), (2, 4, 0.5)])
        mat = builder.to_csr()
        y = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(mat.rmatvec(y), mat.to_dense().T @ y)

    def test_matvec_length_checked(self):
        with pytest.raises(ValueError):
            laplacian_1d(4).matvec(np.ones(5))

    def test_diagonal(self):
        mat = laplacian_1d(5)
        np.testing.assert_allclose(mat.diagonal(), np.full(5, 2.0))

    def test_diagonal_missing_entries_are_zero(self):
        builder = CooBuilder(3, 3)
        builder.add(0, 1, 5.0)
        mat = builder.to_csr()
        np.testing.assert_allclose(mat.diagonal(), np.zeros(3))

    def test_row_view(self):
        mat = laplacian_1d(4)
        cols, vals = mat.row(1)
        assert set(cols.tolist()) == {0, 1, 2}
        assert sorted(vals.tolist()) == [-1.0, -1.0, 2.0]

    def test_transpose_roundtrip(self):
        builder = CooBuilder(3, 2)
        builder.extend([(0, 1, 2.0), (2, 0, -1.0)])
        mat = builder.to_csr()
        np.testing.assert_allclose(mat.transpose().to_dense(), mat.to_dense().T)

    def test_scaled(self):
        mat = laplacian_1d(3).scaled(2.0)
        assert mat.to_dense()[0, 0] == pytest.approx(4.0)

    def test_add(self):
        a = laplacian_1d(3)
        summed = a.add(eye(3))
        np.testing.assert_allclose(summed.to_dense(), a.to_dense() + np.eye(3))

    def test_add_shape_mismatch(self):
        with pytest.raises(ValueError):
            laplacian_1d(3).add(eye(4))

    def test_frobenius(self):
        mat = eye(4, scale=3.0)
        assert mat.frobenius_norm() == pytest.approx(6.0)


class TestFactories:
    def test_eye(self):
        np.testing.assert_allclose(eye(3).to_dense(), np.eye(3))

    def test_diags(self):
        np.testing.assert_allclose(diags(np.array([1.0, 2.0])).to_dense(), np.diag([1.0, 2.0]))


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=10),
    st.integers(min_value=1, max_value=10),
    st.integers(min_value=0, max_value=40),
    st.integers(min_value=0, max_value=10_000),
)
def test_property_csr_equals_dense_assembly(rows, cols, entries, seed):
    """Random triplet assembly agrees with the equivalent dense sum."""
    rng = np.random.default_rng(seed)
    builder = CooBuilder(rows, cols)
    dense = np.zeros((rows, cols))
    for _ in range(entries):
        r = int(rng.integers(rows))
        c = int(rng.integers(cols))
        v = float(rng.standard_normal())
        builder.add(r, c, v)
        dense[r, c] += v
    mat = builder.to_csr()
    np.testing.assert_allclose(mat.to_dense(), dense, atol=1e-12)
    x = rng.standard_normal(cols)
    np.testing.assert_allclose(mat.matvec(x), dense @ x, atol=1e-9)
    y = rng.standard_normal(rows)
    np.testing.assert_allclose(mat.rmatvec(y), dense.T @ y, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=0, max_value=30),
    st.integers(min_value=0, max_value=10_000),
)
def test_property_fast_triplet_path_matches_builder(rows, cols, entries, seed):
    """csr_from_triplets agrees with CooBuilder.to_csr entry for entry."""
    from repro.linalg.sparse import csr_from_triplets

    rng = np.random.default_rng(seed)
    builder = CooBuilder(rows, cols)
    r = rng.integers(0, rows, entries)
    c = rng.integers(0, cols, entries)
    v = rng.standard_normal(entries)
    for i in range(entries):
        builder.add(int(r[i]), int(c[i]), float(v[i]))
    via_builder = builder.to_csr()
    via_fast = csr_from_triplets(rows, cols, r, c, v)
    np.testing.assert_array_equal(via_fast.indptr, via_builder.indptr)
    np.testing.assert_array_equal(via_fast.indices, via_builder.indices)
    np.testing.assert_allclose(via_fast.data, via_builder.data, atol=1e-12)


def test_fast_triplet_path_validates_indices():
    from repro.linalg.sparse import csr_from_triplets

    with pytest.raises(IndexError):
        csr_from_triplets(2, 2, np.array([2]), np.array([0]), np.array([1.0]))
    with pytest.raises(ValueError):
        csr_from_triplets(2, 2, np.array([0, 1]), np.array([0]), np.array([1.0]))


def test_fast_triplet_path_empty():
    from repro.linalg.sparse import csr_from_triplets

    mat = csr_from_triplets(3, 3, np.array([]), np.array([]), np.array([]))
    assert mat.nnz == 0
    np.testing.assert_allclose(mat.matvec(np.ones(3)), np.zeros(3))


class TestFastTripletEdgeCases:
    """The hot assembly path's corners (bench kernel_micro exercises
    csr_from_triplets via ``system.jacobian`` on every call)."""

    def test_empty_rectangular_shape_is_well_formed(self):
        from repro.linalg.sparse import csr_from_triplets

        mat = csr_from_triplets(3, 5, np.array([]), np.array([]), np.array([]))
        assert mat.shape == (3, 5)
        assert mat.nnz == 0
        assert mat.indptr.shape == (4,)
        assert mat.indptr[-1] == 0
        np.testing.assert_allclose(mat.matvec(np.ones(5)), np.zeros(3))
        np.testing.assert_allclose(mat.rmatvec(np.ones(3)), np.zeros(5))
        np.testing.assert_allclose(mat.to_dense(), np.zeros((3, 5)))

    def test_duplicates_summed_regardless_of_input_order(self):
        from repro.linalg.sparse import csr_from_triplets

        # Unsorted triplets, (1,1) contributed three times.
        rows = np.array([1, 0, 1, 1])
        cols = np.array([1, 2, 1, 1])
        vals = np.array([1.0, 5.0, 2.0, -0.5])
        mat = csr_from_triplets(2, 3, rows, cols, vals)
        assert mat.nnz == 2  # (0,2) and the merged (1,1)
        dense = mat.to_dense()
        assert dense[0, 2] == pytest.approx(5.0)
        assert dense[1, 1] == pytest.approx(2.5)

    def test_duplicates_cancelling_to_zero_stay_structural(self):
        from repro.linalg.sparse import csr_from_triplets

        # FEM assembly convention (and CooBuilder semantics): an entry
        # whose duplicate contributions sum to zero remains a stored
        # explicit zero — the sparsity pattern must not depend on the
        # values, or kernel pattern-keyed preconditioner reuse breaks.
        mat = csr_from_triplets(
            2, 2, np.array([0, 0]), np.array([1, 1]), np.array([3.0, -3.0])
        )
        builder = CooBuilder(2, 2)
        builder.add(0, 1, 3.0)
        builder.add(0, 1, -3.0)
        via_builder = builder.to_csr()
        assert mat.nnz == via_builder.nnz == 1
        assert mat.to_dense()[0, 1] == 0.0
        np.testing.assert_array_equal(mat.indptr, via_builder.indptr)
        np.testing.assert_array_equal(mat.indices, via_builder.indices)
