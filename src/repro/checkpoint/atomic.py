"""Crash-safe file primitives for the durability layer.

Every durable artifact in this repo — trajectory snapshots, trace
exports, golden reference files — is written with the same discipline:
serialize to a temporary file in the *same directory*, ``fsync`` it,
then ``os.replace`` onto the final name. On POSIX the rename is atomic,
so a reader (or a resumed run) only ever sees either the old complete
file or the new complete file, never a torn half-write. The directory
is fsynced too where the platform allows, so the rename itself survives
a power cut.

Append-only journals cannot be renamed into place; for those the
defense is different: each record is one flushed+fsynced JSON line, and
the *reader* treats a torn trailing line as "the crash happened here"
rather than as corruption (see :mod:`repro.checkpoint.journal` and
:func:`repro.trace.exporter.read_trace`).

Numpy arrays are round-tripped bitwise through base64 of their raw
little-endian bytes — JSON's shortest-roundtrip float repr would also
work for scalars, but raw bytes are compact, unambiguous, and make the
content hash independent of any formatting choice.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Union

import numpy as np

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "fsync_directory",
    "encode_array",
    "decode_array",
    "payload_digest",
]

PathLike = Union[str, Path]


def fsync_directory(directory: PathLike) -> None:
    """Flush a directory's metadata (the rename) to stable storage.

    Best-effort: some platforms/filesystems refuse ``open`` on a
    directory; durability then rests on the file-level fsync alone.
    """
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: PathLike, data: bytes) -> Path:
    """Write ``data`` to ``path`` atomically (tmp + fsync + rename)."""
    path = Path(path)
    directory = path.parent
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=str(directory)
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, str(path))
    except BaseException:
        # Never leave the temp file behind — a crash mid-write must be
        # invisible, not a stray .tmp that a directory scan could trip on.
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    fsync_directory(directory)
    return path


def atomic_write_text(path: PathLike, text: str, encoding: str = "utf-8") -> Path:
    """Write ``text`` to ``path`` atomically."""
    return atomic_write_bytes(path, text.encode(encoding))


def encode_array(array: np.ndarray) -> Dict[str, Any]:
    """Encode a numpy array as a JSON-able dict, bitwise-exact.

    The bytes are the array's C-order little-endian raw buffer, so
    decode -> encode round trips to the identical base64 string and the
    snapshot content hash is stable across platforms.
    """
    array = np.ascontiguousarray(array)
    little = array.astype(array.dtype.newbyteorder("<"), copy=False)
    return {
        "dtype": little.dtype.str,
        "shape": list(array.shape),
        "data": base64.b64encode(little.tobytes()).decode("ascii"),
    }


def decode_array(record: Dict[str, Any]) -> np.ndarray:
    """Inverse of :func:`encode_array`."""
    raw = base64.b64decode(record["data"])
    array = np.frombuffer(raw, dtype=np.dtype(record["dtype"]))
    return array.reshape(tuple(record["shape"])).copy()


def payload_digest(payload: Any) -> str:
    """Canonical SHA-256 content hash of a JSON-able payload.

    The payload is re-serialized with sorted keys and no whitespace, so
    the digest is a function of the *content* only; validation re-runs
    the same canonicalization on the parsed payload (JSON floats use
    shortest-roundtrip repr, so parse -> dump is a fixed point).
    """
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"), allow_nan=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
