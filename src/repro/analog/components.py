"""Analog function units (the microarchitecture of Figure 5, right).

Each tile of the prototype chip contains four analog integrators, eight
multipliers/gain blocks, eight current copiers (fanouts), continuous-
time DACs and ADCs, and a crossbar. Numbers are represented as analog
currents and voltages; joining wires sums numbers by summing currents
(Figure 1's caption).

The classes here model each unit's *transfer function with its
imperfections* — gain error, offset, saturation — plus an allocation
flag so the :mod:`repro.analog.fabric` hierarchy can hand units out to
compiled problems and report exhaustion honestly.
"""

from __future__ import annotations

import enum
from typing import Optional

import numpy as np

from repro.analog.noise import NoiseModel

__all__ = [
    "ComponentKind",
    "AnalogComponent",
    "Integrator",
    "Multiplier",
    "Fanout",
    "Dac",
    "Adc",
]


class ComponentKind(enum.Enum):
    """The unit types counted in Table 3 of the paper."""

    INTEGRATOR = "integrator"
    FANOUT = "fanout"
    MULTIPLIER = "multiplier"
    DAC = "DAC"
    ADC = "ADC"
    TILE_INPUT = "tile input"
    TILE_OUTPUT = "tile output"


class AnalogComponent:
    """Base class: identity, imperfections, and allocation state."""

    kind: ComponentKind

    def __init__(self, name: str, noise: NoiseModel, gain_error: float = 0.0, offset: float = 0.0):
        self.name = name
        self.noise = noise
        self.gain_error = float(gain_error)
        self.offset = float(offset)
        # Post-calibration baselines: what calibrate() left behind.
        # Degradation schedules apply drift as baseline + walk, so
        # repeated application never compounds (idempotence).
        self.calibrated_gain_error = float(gain_error)
        self.calibrated_offset = float(offset)
        self.allocated_to: Optional[str] = None

    @property
    def gain(self) -> float:
        """Effective gain, nominal 1 plus the (residual) error."""
        return 1.0 + self.gain_error

    def allocate(self, owner: str) -> None:
        if self.allocated_to is not None:
            raise RuntimeError(f"{self.name} already allocated to {self.allocated_to}")
        self.allocated_to = owner

    def release(self) -> None:
        self.allocated_to = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"


class Integrator(AnalogComponent):
    """A capacitor-based integrator: ``dout/dt = gain * in + leak``.

    Integrators hold the present guess ``u(t)`` in the continuous
    Newton circuit (Figure 1). ``set_initial`` stores the DAC-quantized
    initial condition; the execution engine owns the actual time
    evolution and uses :attr:`gain` as the per-state time-constant
    error.
    """

    kind = ComponentKind.INTEGRATOR

    def __init__(self, name: str, noise: NoiseModel, gain_error: float = 0.0, offset: float = 0.0):
        super().__init__(name, noise, gain_error, offset)
        self.initial_condition = 0.0

    def set_initial(self, value: float) -> None:
        """Program the initial condition through a DAC (quantized)."""
        self.initial_condition = float(self.noise.dac_write(np.array([value]))[0])


class Multiplier(AnalogComponent):
    """Four-quadrant multiplier / programmable gain block.

    ``out = gain * (a * b) + offset`` with saturation to the rails.
    With ``set_gain`` it acts as a coefficient multiplier (the paper's
    "coefficients realized by multipliers", Figure 4).
    """

    kind = ComponentKind.MULTIPLIER

    def __init__(self, name: str, noise: NoiseModel, gain_error: float = 0.0, offset: float = 0.0):
        super().__init__(name, noise, gain_error, offset)
        self.coefficient = 1.0

    def set_gain(self, coefficient: float) -> None:
        self.coefficient = float(coefficient)

    def evaluate(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        product = self.gain * self.coefficient * np.asarray(a) * np.asarray(b) + self.offset
        return self.noise.saturate(product)


class Fanout(AnalogComponent):
    """Current copier distributing one signal to several consumers.

    Each copy picks up its own small gain error — copying currents is
    where much of the mismatch enters the datapath.
    """

    kind = ComponentKind.FANOUT

    def evaluate(self, value: np.ndarray, copies: int = 2) -> np.ndarray:
        if copies <= 0:
            raise ValueError("copies must be positive")
        value = np.asarray(value, dtype=float)
        out = np.repeat(value[None, ...], copies, axis=0) * self.gain + self.offset
        return self.noise.saturate(out)


class Dac(AnalogComponent):
    """Digital-to-analog converter generating constant values.

    ``dead`` models a failed channel (an aged current source or a
    broken trim cell): the programmed code no longer reaches the
    datapath and the output reads zero. Degradation schedules set it;
    :meth:`repro.analog.fabric.Tile.datapath_offset` accounts the
    missing constant as a full-scale equation offset to first order.
    """

    kind = ComponentKind.DAC

    def __init__(self, name: str, noise: NoiseModel, gain_error: float = 0.0, offset: float = 0.0):
        super().__init__(name, noise, gain_error, offset)
        self.code_value = 0.0
        self.dead = False

    def set_constant(self, value: float) -> None:
        self.code_value = float(value)

    def output(self) -> float:
        if self.dead:
            return 0.0
        quantized = float(self.noise.dac_write(np.array([self.code_value]))[0])
        return float(self.noise.saturate(np.array([self.gain * quantized + self.offset]))[0])


class Adc(AnalogComponent):
    """Analog-to-digital converter measuring settled values.

    ``analog_avg`` models the paper's repeated-measurement readout
    (``chipOutput->analogAvg(REPS)`` in Figure 4): averaging reduces
    thermal noise but not quantization bias.
    """

    kind = ComponentKind.ADC

    def measure(self, value: float, rng: np.random.Generator) -> float:
        noisy = self.gain * value + self.offset + self.noise.thermal_noise_sigma * rng.standard_normal()
        return float(self.noise.adc_read(np.array([noisy]))[0])

    def analog_avg(self, value: float, repeats: int, rng: np.random.Generator) -> float:
        if repeats <= 0:
            raise ValueError("repeats must be positive")
        samples = [self.measure(value, rng) for _ in range(repeats)]
        return float(np.mean(samples))
