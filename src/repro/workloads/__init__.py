"""Instrumented PDE-solver mini-apps behind Table 1.

Table 1 of the paper profiles four engineering solvers — SPEC
410.bwaves, two OpenFOAM cases, and a deal.II case — and finds that
linear/nonlinear equation solving is the dominant kernel in all of
them, with a *higher* fraction on structured-grid (finite difference)
codes than on finite-volume/finite-element codes whose irregular mesh
handling competes for time.

We cannot run the proprietary originals, so each mini-app here is a
small solver with the same structure: the same discretization family,
the same dominant kernel, and honest instrumentation via
:class:`repro.perf.profiles.KernelProfiler`. The claim Table 1 makes is
structural, and it is that structure the mini-apps reproduce.

* :mod:`repro.workloads.transonic` — implicit finite-difference flow
  stepping with a Bi-CGstab kernel (410.bwaves analogue);
* :mod:`repro.workloads.hartmann` — 2-D MHD Hartmann problem, coupled
  fields, preconditioned-CG kernel (OpenFOAM mhdFoam analogue);
* :mod:`repro.workloads.cavity` — lid-driven cavity with a face-based
  finite-volume flux loop and a pressure-projection PCG kernel
  (OpenFOAM icoFoam analogue);
* :mod:`repro.workloads.membrane` — Cook's-membrane-style mechanics
  with elementwise assembly and an SSOR-preconditioned CG Helmholtz
  kernel (deal.II analogue).
"""

from repro.workloads.transonic import TransonicFlowWorkload
from repro.workloads.hartmann import HartmannWorkload
from repro.workloads.cavity import LidDrivenCavityWorkload
from repro.workloads.membrane import CooksMembraneWorkload

__all__ = [
    "TransonicFlowWorkload",
    "HartmannWorkload",
    "LidDrivenCavityWorkload",
    "CooksMembraneWorkload",
]
