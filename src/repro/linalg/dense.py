"""Dense direct linear algebra written from first principles.

These kernels back the *golden model* digital solvers in the paper's
evaluation: the small nonlinear systems produced by 2x2 Burgers stencils
and the analog accelerator's behavioral checks are solved exactly with
LU, while Householder QR mirrors the factorization performed by the
cuSolver GPU baseline of Section 6.3.

Everything operates on plain ``numpy.ndarray`` objects and is written so
that the operation counts are explicit; the performance models in
:mod:`repro.perf` charge time and energy per operation reported here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "LuFactorization",
    "QrFactorization",
    "lu_factor",
    "lu_solve",
    "solve_dense",
    "qr_factor",
    "qr_solve",
    "forward_substitution",
    "back_substitution",
    "determinant",
    "condition_estimate",
]


class SingularMatrixError(ValueError):
    """Raised when a factorization encounters an (almost) singular pivot."""


@dataclass(frozen=True)
class LuFactorization:
    """Compact LU factorization ``P A = L U`` with partial pivoting.

    Attributes
    ----------
    lu:
        Square array holding ``L`` (unit lower triangle, implicit ones)
        and ``U`` (upper triangle) packed together.
    piv:
        Row permutation applied to the input, as an index vector.
    num_swaps:
        Number of row interchanges, used for the determinant sign.
    """

    lu: np.ndarray
    piv: np.ndarray
    num_swaps: int

    @property
    def n(self) -> int:
        return self.lu.shape[0]


@dataclass(frozen=True)
class QrFactorization:
    """Householder QR factorization ``A = Q R``.

    ``Q`` is kept in factored form: ``vs[k]`` is the Householder vector
    of step ``k`` (zero-padded to full length), so applying ``Q^T`` is a
    sequence of rank-one updates.
    """

    vs: np.ndarray
    r: np.ndarray

    @property
    def shape(self) -> tuple:
        return self.r.shape


_PIVOT_TOL = 1e-300


def lu_factor(a: np.ndarray) -> LuFactorization:
    """Factor a square matrix with Gaussian elimination + partial pivoting.

    Raises
    ------
    SingularMatrixError
        If a pivot underflows to (numerical) zero.
    """
    a = np.array(a, dtype=float, copy=True)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"lu_factor needs a square matrix, got shape {a.shape}")
    n = a.shape[0]
    piv = np.arange(n)
    swaps = 0
    for k in range(n - 1):
        pivot_row = k + int(np.argmax(np.abs(a[k:, k])))
        if abs(a[pivot_row, k]) < _PIVOT_TOL:
            raise SingularMatrixError(f"zero pivot at column {k}")
        if pivot_row != k:
            a[[k, pivot_row]] = a[[pivot_row, k]]
            piv[[k, pivot_row]] = piv[[pivot_row, k]]
            swaps += 1
        a[k + 1 :, k] /= a[k, k]
        a[k + 1 :, k + 1 :] -= np.outer(a[k + 1 :, k], a[k, k + 1 :])
    if abs(a[n - 1, n - 1]) < _PIVOT_TOL:
        raise SingularMatrixError(f"zero pivot at column {n - 1}")
    return LuFactorization(lu=a, piv=piv, num_swaps=swaps)


def forward_substitution(lower: np.ndarray, b: np.ndarray, unit_diagonal: bool = False) -> np.ndarray:
    """Solve ``L x = b`` for lower-triangular ``L``."""
    n = lower.shape[0]
    x = np.array(b, dtype=float, copy=True)
    for i in range(n):
        x[i] -= lower[i, :i] @ x[:i]
        if not unit_diagonal:
            x[i] /= lower[i, i]
    return x


def back_substitution(upper: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``U x = b`` for upper-triangular ``U``."""
    n = upper.shape[0]
    x = np.array(b, dtype=float, copy=True)
    for i in range(n - 1, -1, -1):
        x[i] -= upper[i, i + 1 :] @ x[i + 1 :]
        x[i] /= upper[i, i]
    return x


def lu_solve(fact: LuFactorization, b: np.ndarray) -> np.ndarray:
    """Solve ``A x = b`` given the LU factorization of ``A``."""
    b = np.asarray(b, dtype=float)
    if b.shape[0] != fact.n:
        raise ValueError(f"rhs length {b.shape[0]} != matrix size {fact.n}")
    permuted = b[fact.piv]
    y = forward_substitution(fact.lu, permuted, unit_diagonal=True)
    return back_substitution(fact.lu, y)


def solve_dense(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """One-shot dense solve ``A x = b`` via partial-pivoted LU."""
    return lu_solve(lu_factor(a), b)


def determinant(a: np.ndarray) -> float:
    """Determinant via LU; returns 0.0 for singular input."""
    try:
        fact = lu_factor(a)
    except SingularMatrixError:
        return 0.0
    sign = -1.0 if fact.num_swaps % 2 else 1.0
    return sign * float(np.prod(np.diag(fact.lu)))


def qr_factor(a: np.ndarray) -> QrFactorization:
    """Householder QR of an ``m x n`` matrix with ``m >= n``."""
    r = np.array(a, dtype=float, copy=True)
    m, n = r.shape
    if m < n:
        raise ValueError(f"qr_factor needs m >= n, got shape {r.shape}")
    vs = np.zeros((n, m))
    for k in range(n):
        x = r[k:, k]
        norm_x = np.linalg.norm(x)
        if norm_x == 0.0:
            continue
        v = x.copy()
        v[0] += np.copysign(norm_x, x[0])
        v /= np.linalg.norm(v)
        r[k:, k:] -= 2.0 * np.outer(v, v @ r[k:, k:])
        vs[k, k:] = v
    return QrFactorization(vs=vs, r=r)


def _apply_qt(fact: QrFactorization, b: np.ndarray) -> np.ndarray:
    y = np.array(b, dtype=float, copy=True)
    n = fact.vs.shape[0]
    for k in range(n):
        v = fact.vs[k, k:]
        y[k:] -= 2.0 * v * (v @ y[k:])
    return y


def qr_solve(fact: QrFactorization, b: np.ndarray) -> np.ndarray:
    """Least-squares solve ``min ||A x - b||`` from a QR factorization."""
    m, n = fact.shape
    if b.shape[0] != m:
        raise ValueError(f"rhs length {b.shape[0]} != row count {m}")
    y = _apply_qt(fact, b)
    return back_substitution(fact.r[:n, :n], y[:n])


def condition_estimate(a: np.ndarray, num_probes: int = 4, seed: int = 0) -> float:
    """Cheap 1-sided condition estimate via random probing.

    Estimates ``||A|| * ||A^-1||`` (2-norm flavoured) using a few
    matvec/solve probes; adequate for the diagnostics in Table 2 where
    only the growth trend with Reynolds number matters.
    """
    a = np.asarray(a, dtype=float)
    n = a.shape[0]
    rng = np.random.default_rng(seed)
    try:
        fact = lu_factor(a)
    except SingularMatrixError:
        return float("inf")
    norm_a = 0.0
    norm_inv = 0.0
    for _ in range(num_probes):
        x = rng.standard_normal(n)
        x /= np.linalg.norm(x)
        norm_a = max(norm_a, float(np.linalg.norm(a @ x)))
        norm_inv = max(norm_inv, float(np.linalg.norm(lu_solve(fact, x))))
    return norm_a * norm_inv
