"""Tests for the continuous Newton flow."""

import numpy as np
import pytest

from repro.nonlinear.continuous_newton import (
    continuous_newton_solve,
    newton_flow_rhs,
)
from repro.nonlinear.systems import (
    CallableSystem,
    CoupledQuadraticSystem,
    CubicRootSystem,
    SimpleSquareSystem,
)


class TestNewtonFlowRhs:
    def test_direction_is_minus_newton_step(self):
        system = SimpleSquareSystem(2)
        rhs = newton_flow_rhs(system)
        u = np.array([2.0, 0.5])
        # Newton step: J^-1 F = (u^2-1)/(2u) per component.
        expected = -(u**2 - 1.0) / (2.0 * u)
        np.testing.assert_allclose(rhs(0.0, u), expected, atol=1e-10)

    def test_stationary_at_root(self):
        rhs = newton_flow_rhs(CubicRootSystem())
        np.testing.assert_allclose(rhs(0.0, np.array([1.0, 0.0])), 0.0, atol=1e-12)

    def test_singular_jacobian_regularized(self):
        system = CallableSystem(
            1,
            residual=lambda u: np.array([u[0] ** 2]),
            jacobian=lambda u: np.array([[2.0 * u[0]]]),
        )
        out = newton_flow_rhs(system)(0.0, np.array([0.0]))
        assert np.all(np.isfinite(out))


class TestContinuousNewtonSolve:
    def test_behavioral_converges_to_real_root(self):
        result = continuous_newton_solve(CubicRootSystem(), np.array([1.5, 0.05]))
        assert result.converged
        np.testing.assert_allclose(result.u, [1.0, 0.0], atol=1e-4)

    def test_residual_decays_exponentially_along_flow(self):
        # Exact property of the flow: F(u(t)) = F(u(0)) exp(-t).
        system = CubicRootSystem()
        u0 = np.array([1.6, 0.4])
        result = continuous_newton_solve(system, u0, derivative_tolerance=1e-9)
        sol = result.solution
        f0 = np.linalg.norm(system.residual(u0))
        for t_probe in (0.5, 1.0, 2.0):
            if t_probe < sol.final_time:
                u_t = sol.sample(t_probe)[:2]
                norm_t = np.linalg.norm(system.residual(u_t))
                assert norm_t == pytest.approx(f0 * np.exp(-t_probe), rel=0.05)

    def test_converges_from_wide_basin(self):
        # Points that break classical Newton still flow to a root.
        result = continuous_newton_solve(CubicRootSystem(), np.array([0.31, 0.27]))
        assert result.converged
        roots = CubicRootSystem.roots()
        distances = np.linalg.norm(roots - result.u, axis=1)
        assert distances.min() < 1e-3

    def test_circuit_fidelity_matches_behavioral(self):
        system = CoupledQuadraticSystem(1.0, 1.0)
        u0 = np.array([1.0, 1.0])
        behavioral = continuous_newton_solve(system, u0, fidelity="behavioral")
        circuit = continuous_newton_solve(
            system, u0, fidelity="circuit", gain=50.0, time_limit=120.0
        )
        assert behavioral.converged
        assert circuit.converged
        np.testing.assert_allclose(circuit.u, behavioral.u, atol=1e-2)

    def test_circuit_low_gain_lags(self):
        # With insufficient loop gain the quotient block cannot track
        # the outer Newton dynamics: at a fixed horizon the residual is
        # orders of magnitude worse than with adequate gain.
        system = CoupledQuadraticSystem(1.0, 1.0)
        u0 = np.array([1.0, 1.0])
        good = continuous_newton_solve(system, u0, fidelity="circuit", gain=50.0, time_limit=10.0)
        starved = continuous_newton_solve(
            system, u0, fidelity="circuit", gain=0.05, time_limit=10.0
        )
        assert good.residual_norm < 1e-3
        assert starved.residual_norm > 100.0 * good.residual_norm

    def test_settle_far_from_root_reported_as_failure(self):
        # exp(u) has no root; the flow drifts forever; must not report
        # convergence.
        system = CallableSystem(
            1,
            residual=lambda u: np.array([np.exp(u[0]) + 1.0]),
            jacobian=lambda u: np.array([[np.exp(u[0])]]),
        )
        result = continuous_newton_solve(system, np.array([0.0]), time_limit=5.0)
        assert not result.converged

    def test_input_validation(self):
        with pytest.raises(ValueError):
            continuous_newton_solve(CubicRootSystem(), np.zeros(3))
        with pytest.raises(ValueError):
            continuous_newton_solve(CubicRootSystem(), np.zeros(2), fidelity="magic")

    def test_settle_time_reported(self):
        result = continuous_newton_solve(CubicRootSystem(), np.array([1.4, 0.0]))
        assert result.converged
        assert 0.0 < result.settle_time < 60.0
