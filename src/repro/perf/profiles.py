"""Kernel-level runtime instrumentation for the Table 1 workloads.

Table 1 of the paper profiles four engineering PDE solvers and reports
the fraction of runtime spent in their dominant equation-solving
kernel. :class:`KernelProfiler` provides the same measurement for the
mini-apps in :mod:`repro.workloads`: wrap regions in
``with profiler.region("kernel-name")`` and ask for the report.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["KernelProfiler", "ProfileReport"]


@dataclass
class ProfileReport:
    """Fractions of total runtime per instrumented region."""

    total_seconds: float
    region_seconds: Dict[str, float]

    def fraction(self, region: str) -> float:
        """Fraction of total runtime spent in ``region`` (0 when the
        region was never entered)."""
        if self.total_seconds <= 0.0:
            return 0.0
        return self.region_seconds.get(region, 0.0) / self.total_seconds

    def dominant_kernel(self) -> Tuple[str, float]:
        """The region with the largest share and its fraction."""
        if not self.region_seconds:
            raise ValueError("no regions were recorded")
        name = max(self.region_seconds, key=self.region_seconds.get)
        return name, self.fraction(name)


class KernelProfiler:
    """Wall-clock profiler with named, re-entrant regions.

    Regions may nest; nested time is attributed to the innermost region
    only, so fractions are disjoint and sum to at most 1.
    """

    def __init__(self):
        self._region_seconds: Dict[str, float] = {}
        self._stack: List[Tuple[str, float]] = []
        self._total_start: Optional[float] = None
        self._total_seconds = 0.0

    @contextmanager
    def run(self) -> Iterator["KernelProfiler"]:
        """Time the whole workload execution."""
        self._total_start = time.perf_counter()
        try:
            yield self
        finally:
            self._total_seconds += time.perf_counter() - self._total_start
            self._total_start = None

    @contextmanager
    def region(self, name: str) -> Iterator[None]:
        """Attribute the enclosed wall time to ``name``."""
        now = time.perf_counter()
        if self._stack:
            # Pause the enclosing region.
            parent_name, parent_start = self._stack[-1]
            self._region_seconds[parent_name] = (
                self._region_seconds.get(parent_name, 0.0) + now - parent_start
            )
        self._stack.append((name, now))
        try:
            yield
        finally:
            end = time.perf_counter()
            entered_name, start = self._stack.pop()
            self._region_seconds[entered_name] = (
                self._region_seconds.get(entered_name, 0.0) + end - start
            )
            if self._stack:
                # Resume the enclosing region's clock.
                parent_name, _ = self._stack[-1]
                self._stack[-1] = (parent_name, end)

    def report(self) -> ProfileReport:
        if self._total_start is not None:
            raise RuntimeError("cannot report while the run() context is still open")
        return ProfileReport(
            total_seconds=self._total_seconds,
            region_seconds=dict(self._region_seconds),
        )
