"""Tests for the geometric multigrid solver."""

import numpy as np
import pytest

from repro.linalg.multigrid import MultigridPoisson


def manufactured_problem(n):
    """u = sin(pi x) sin(pi y) on the unit square; returns (mg, f, u)."""
    spacing = 1.0 / (n + 1)
    xs = (np.arange(n) + 1) * spacing
    grid_x, grid_y = np.meshgrid(xs, xs, indexing="ij")
    exact = np.sin(np.pi * grid_x) * np.sin(np.pi * grid_y)
    forcing = 2.0 * np.pi**2 * exact
    return MultigridPoisson(n, spacing=spacing), forcing, exact


class TestOperators:
    def test_operator_matches_laplacian_of_quadratic(self):
        n = 7
        mg = MultigridPoisson(n, spacing=1.0)
        # u = constant has -Lap = 0 away from boundaries only; use a
        # single interior spike and check the 5-point pattern instead.
        u = np.zeros((n, n))
        u[3, 3] = 1.0
        out = MultigridPoisson.apply_operator(u, 1.0)
        assert out[3, 3] == pytest.approx(4.0)
        assert out[3, 4] == pytest.approx(-1.0)
        assert out[2, 3] == pytest.approx(-1.0)

    def test_restriction_preserves_constants_in_interior(self):
        fine = np.ones((7, 7))
        coarse = MultigridPoisson._restrict(fine)
        assert coarse.shape == (3, 3)
        # The center coarse node is fully interior: exact preservation.
        assert coarse[1, 1] == pytest.approx(1.0)

    def test_prolongation_of_constant_peaks_at_nodes(self):
        coarse = np.ones((3, 3))
        fine = MultigridPoisson._prolong(coarse, 7)
        assert fine.shape == (7, 7)
        # Coincident nodes keep the coarse value exactly.
        assert fine[1, 1] == pytest.approx(1.0)
        assert fine[3, 5] == pytest.approx(1.0)

    def test_transfer_shapes_roundtrip(self):
        residual = np.random.default_rng(0).standard_normal((15, 15))
        coarse = MultigridPoisson._restrict(residual)
        assert coarse.shape == (7, 7)
        back = MultigridPoisson._prolong(coarse, 15)
        assert back.shape == (15, 15)


class TestSolve:
    @pytest.mark.parametrize("n", [7, 15, 31])
    def test_manufactured_solution(self, n):
        mg, forcing, exact = manufactured_problem(n)
        result = mg.solve(forcing, tol=1e-9)
        assert result.converged
        assert np.max(np.abs(result.solution - exact)) < 10.0 / (n + 1) ** 2

    def test_convergence_factor_is_mesh_independent(self):
        # The multigrid signature: ~constant residual reduction per
        # cycle regardless of grid size.
        factors = []
        for n in (15, 31):
            mg, forcing, _ = manufactured_problem(n)
            result = mg.solve(forcing, tol=1e-10)
            factors.append(result.convergence_factor)
        assert all(factor < 0.2 for factor in factors)
        assert abs(factors[0] - factors[1]) < 0.1

    def test_beats_plain_smoothing(self):
        n = 31
        mg, forcing, _ = manufactured_problem(n)
        result = mg.solve(forcing, tol=1e-8)
        # A pure smoother stalls on smooth error; multigrid converges in
        # a handful of cycles.
        assert result.converged
        assert result.cycles <= 12

    def test_initial_guess_supported(self):
        mg, forcing, exact = manufactured_problem(15)
        cold = mg.solve(forcing, tol=1e-8)
        warm = mg.solve(forcing, u0=exact.copy(), tol=1e-8)
        assert warm.converged
        # The analytic solution is only discretization-error close to
        # the discrete one, but it still starts far nearer than zero.
        assert warm.residual_history[0] < 0.1 * cold.residual_history[0]
        assert warm.cycles <= cold.cycles

    def test_custom_coarse_solver_invoked(self):
        calls = []

        def spy_coarse(f):
            calls.append(f.shape)
            n = int(np.sqrt(f.size))
            size = n * n
            dense = np.zeros((size, size))
            for k in range(size):
                e = np.zeros(size)
                e[k] = 1.0
                dense[:, k] = MultigridPoisson.apply_operator(
                    e.reshape(n, n), 2.0 ** 3 / 16.0
                ).ravel()
            return np.linalg.solve(dense, f.ravel())

        mg = MultigridPoisson(15, spacing=1.0 / 16.0, coarse_solver=spy_coarse)
        forcing = np.ones((15, 15))
        mg.solve(forcing, tol=1e-6, max_cycles=10)
        assert calls  # the pluggable coarse kernel was used

    def test_validation(self):
        with pytest.raises(ValueError):
            MultigridPoisson(8)  # not 2^k - 1
        with pytest.raises(ValueError):
            MultigridPoisson(7, spacing=0.0)
        with pytest.raises(ValueError):
            MultigridPoisson(7, pre_smooth=0, post_smooth=0)
        mg = MultigridPoisson(7)
        with pytest.raises(ValueError):
            mg.solve(np.zeros((5, 5)))
