"""The fixed benchmark suite behind ``repro bench``.

Four benchmarks, each exercising one layer the roadmap's speed work
lands in, each traced with its own :class:`repro.trace.Tracer` so the
report can separate *where the time went* (``linear_solve`` /
``analog_settle`` span sums) from *how much work was done* (Newton
iterations, linear solves — deterministic at fixed seed):

* ``trajectory`` — a figure7-scale implicit Burgers trajectory through
  :func:`repro.experiments.trajectory.run_trajectory` (the method-of-
  lines path every speed PR must not regress);
* ``figure8_seeding`` — the paper's baseline-vs-analog-seeded
  comparison (:func:`repro.experiments.figure8.run_figure8`), whose
  modeled speedup is the headline claim;
* ``serve_batch`` — a batch soak through the fault-tolerant
  :class:`repro.runtime.Runtime` (admission, ladder, absorbed worker
  traces);
* ``kernel_micro`` — the hot-loop microbench: ``csr_from_triplets``
  stencil assembly, CSR matvec, and cached-preconditioner
  :class:`~repro.linalg.kernel.LinearKernel` solves;
* ``service_soak`` — sustained requests/sec through the sharded async
  solve service (:mod:`repro.service`): a stream of cheap digital-only
  solves pushed through admission control (queue bound tighter than
  the stream, so backpressure engages) across several shards, with
  throughput and p99 latency emitted as counters;
* ``fleet_soak`` — the same service front-end with the analog path
  live against a drifting board fleet (:mod:`repro.fleet`): cheap
  quadratic solves on the full ladder, a hot degradation model, and a
  bounded settle budget, so the predictive gate's vetoes
  (``settles_avoided``), the audit stream, and quarantine /
  recalibration churn all fire at measurable, seeded rates. One shard
  on purpose: fleet EWMAs evolve with observation order, and a single
  serial window stream keeps the work metrics bitwise reproducible;
* ``certify_soak`` — the certification layer's cost and its defense,
  in one benchmark: the same Burgers batch is solved uncertified and
  certified (min-of-repeats timing → ``certify_overhead_ratio``, plus
  a bitwise-identity check that certification never perturbs a
  solution), then a certified fleet batch runs under targeted
  ``silent_corruption`` injection so ``corruption_caught`` /
  ``resolves_triggered`` / ``boards_condemned`` land as deterministic
  work metrics the regression gate can pin.

Scales (``--scale``): ``smoke`` is the committed-trajectory /
CI-comparable size (tens of seconds); ``full`` is the deeper local
size. Reports are only comparable at equal scale and seed.

Peak RSS comes from ``resource.getrusage(RUSAGE_SELF)`` — a
process-lifetime high-water mark, so per-benchmark values are
non-decreasing in suite order; the last benchmark's value is the
suite's peak.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Callable, Dict, Optional

import numpy as np

from repro.bench.schema import BENCH_SCHEMA_VERSION, BenchReport, BenchmarkResult
from repro.trace.exporter import build_manifest
from repro.trace.tracer import Tracer

try:  # POSIX only; Windows gets peak_rss_kb = 0 rather than a crash.
    import resource
except ImportError:  # pragma: no cover - non-POSIX
    resource = None  # type: ignore[assignment]

__all__ = ["SCALES", "DEFAULT_SCALE", "BENCHMARK_NAMES", "run_bench_suite"]

DEFAULT_SCALE = "smoke"

# Per-benchmark parameters at each scale. "smoke" is what the committed
# BENCH_<n>.json trajectory and the CI gate run; "full" is the deeper
# local suite (same benchmarks, bigger grids / more repetitions).
SCALES: Dict[str, Dict[str, Dict[str, Any]]] = {
    "smoke": {
        "trajectory": {"nx": 8, "steps": 24, "dt": 0.05, "scheme": "bdf2", "reynolds": 1.0},
        "figure8_seeding": {"grid_n": 8, "reynolds": (0.25, 1.0), "trials": 2},
        "serve_batch": {
            "requests": 6,
            "grids": (2, 4),
            "reynolds": 1.0,
            "max_attempts": 2,
            "analog_time_limit": 20.0,
        },
        "kernel_micro": {"grid_n": 16, "assemblies": 100, "solves": 100},
        "service_soak": {
            "requests": 12,
            "shards": 3,
            "workers_per_shard": 1,
            "batch_window": 2,
            "queue_limit": 8,
            "max_attempts": 2,
        },
        "fleet_soak": {
            "requests": 24,
            "boards": 3,
            "batch_window": 4,
            "queue_limit": 16,
            "max_attempts": 2,
            "drift_sigma": 0.5,
            "analog_time_limit": 0.5,
            "settle_max_steps": 2000,
        },
        "certify_soak": {
            "requests": 6,
            "grids": (2, 4),
            "reynolds": 1.0,
            "analog_time_limit": 20.0,
            "max_attempts": 2,
            "repeats": 3,
            "chaos_requests": 12,
            "chaos_corrupted": 2,
            "boards": 3,
            "chaos_analog_time_limit": 0.5,
            "settle_max_steps": 2000,
        },
    },
    "full": {
        "trajectory": {"nx": 16, "steps": 20, "dt": 0.05, "scheme": "bdf2", "reynolds": 1.0},
        "figure8_seeding": {"grid_n": 16, "reynolds": (0.25, 1.0, 2.0), "trials": 3},
        "serve_batch": {
            "requests": 16,
            "grids": (2, 4, 8),
            "reynolds": 1.0,
            "max_attempts": 2,
            "analog_time_limit": 60.0,
        },
        "kernel_micro": {"grid_n": 24, "assemblies": 200, "solves": 200},
        "service_soak": {
            "requests": 48,
            "shards": 4,
            "workers_per_shard": 1,
            "batch_window": 4,
            "queue_limit": 16,
            "max_attempts": 2,
        },
        "fleet_soak": {
            "requests": 64,
            "boards": 4,
            "batch_window": 8,
            "queue_limit": 32,
            "max_attempts": 2,
            "drift_sigma": 0.5,
            "analog_time_limit": 0.5,
            "settle_max_steps": 2000,
        },
        "certify_soak": {
            "requests": 12,
            "grids": (2, 4, 8),
            "reynolds": 1.0,
            "analog_time_limit": 60.0,
            "max_attempts": 2,
            "repeats": 3,
            "chaos_requests": 32,
            "chaos_corrupted": 4,
            "boards": 4,
            "chaos_analog_time_limit": 0.5,
            "settle_max_steps": 2000,
        },
    },
}

BENCHMARK_NAMES = (
    "trajectory",
    "figure8_seeding",
    "serve_batch",
    "kernel_micro",
    "service_soak",
    "fleet_soak",
    "certify_soak",
)


def _peak_rss_kb() -> int:
    """Process peak resident set size in KiB (0 where unavailable)."""
    if resource is None:  # pragma: no cover - non-POSIX
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux but bytes on macOS.
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        peak //= 1024
    return int(peak)


def _measure(
    name: str,
    params: Dict[str, Any],
    seed: int,
    body: Callable[[Tracer], Dict[str, float]],
) -> BenchmarkResult:
    """Run one benchmark body under a fresh tracer and package it.

    The body receives the tracer, does the work, and returns its
    deterministic ``work`` metrics; wall-clock, span sums/counts,
    counter totals and peak RSS are collected here so every benchmark
    reports the same shape.
    """
    tracer = Tracer(manifest={"benchmark": name})
    t0 = time.perf_counter()
    work = body(tracer)
    wall = time.perf_counter() - t0
    tracer.check_closed()
    names = sorted({record.name for record in tracer.spans})
    return BenchmarkResult(
        name=name,
        wall_seconds=wall,
        span_seconds={span: tracer.total_duration(span) for span in names},
        span_counts={span: len(tracer.spans_named(span)) for span in names},
        counters=dict(tracer.counters),
        work={key: float(value) for key, value in work.items()},
        peak_rss_kb=_peak_rss_kb(),
        params={**params, "seed": seed},
    )


# -- benchmark bodies -------------------------------------------------


def _bench_trajectory(params: Dict[str, Any], seed: int) -> BenchmarkResult:
    from repro.experiments.trajectory import run_trajectory

    def body(tracer: Tracer) -> Dict[str, float]:
        run = run_trajectory(
            nx=params["nx"],
            steps=params["steps"],
            dt=params["dt"],
            scheme=params["scheme"],
            reynolds=params["reynolds"],
            seed=seed,
            tracer=tracer,
        )
        stats = run.trajectory.linear_stats
        return {
            "newton_iterations": run.trajectory.total_newton_iterations,
            "linear_solves": stats.solves,
            "inner_iterations": stats.inner_iterations,
            "preconditioner_builds": stats.preconditioner_builds,
            "steps_converged": sum(
                1 for result in run.trajectory.newton_results if result.converged
            ),
        }

    return _measure("trajectory", params, seed, body)


def _bench_figure8(params: Dict[str, Any], seed: int) -> BenchmarkResult:
    from repro.experiments.figure8 import run_figure8

    def body(tracer: Tracer) -> Dict[str, float]:
        result = run_figure8(
            grid_n=params["grid_n"],
            reynolds_values=tuple(params["reynolds"]),
            trials=params["trials"],
            seed=seed,
            tracer=tracer,
        )
        stats = result.kernel_stats
        rows = result.rows_data
        baseline = float(np.mean([row["baseline digital (s)"] for row in rows])) if rows else 0.0
        seeded = float(np.mean([row["seeded digital (s)"] for row in rows])) if rows else 0.0
        return {
            "linear_solves": stats.solves if stats else 0,
            "inner_iterations": stats.inner_iterations if stats else 0,
            "rows": len(rows),
            # Cost-model outputs: deterministic functions of measured
            # iteration counts, i.e. cross-machine comparable.
            "modeled_baseline_s": baseline,
            "modeled_seeded_s": seeded,
            "modeled_speedup": baseline / seeded if seeded > 0 else 0.0,
        }

    return _measure("figure8_seeding", params, seed, body)


def _bench_serve_batch(params: Dict[str, Any], seed: int) -> BenchmarkResult:
    from repro.runtime import ProblemSpec, RetryPolicy, Runtime, SolveRequest

    def body(tracer: Tracer) -> Dict[str, float]:
        grids = tuple(params["grids"])
        requests = [
            SolveRequest(
                request_id=f"bench-{index:04d}",
                problem=ProblemSpec.burgers(
                    grid_n=grids[index % len(grids)],
                    reynolds=params["reynolds"],
                    seed=seed + index,
                ),
                analog_time_limit=params["analog_time_limit"],
            )
            for index in range(params["requests"])
        ]
        runtime = Runtime(
            workers=1,
            retry=RetryPolicy(max_attempts=params["max_attempts"]),
            seed=seed,
        )
        result = runtime.run_batch(requests, tracer=tracer)
        return {
            "requests_completed": result.completed,
            "requests_failed": result.failed,
            "runtime_attempts": result.counters.get("runtime_attempts", 0),
            "newton_iterations": sum(
                outcome.iterations for outcome in result.outcomes
            ),
        }

    return _measure("serve_batch", params, seed, body)


def _bench_kernel_micro(params: Dict[str, Any], seed: int) -> BenchmarkResult:
    from repro.linalg.kernel import LinearKernel, LinearSolverStats
    from repro.pde.burgers import random_burgers_system

    def body(tracer: Tracer) -> Dict[str, float]:
        rng = np.random.default_rng(seed)
        system, guess = random_burgers_system(params["grid_n"], 1.0, rng)
        jacobian = system.jacobian(guess)
        rhs = -system.residual(guess)

        # Hot path 1: stencil assembly (csr_from_triplets under the hood).
        for _ in range(params["assemblies"]):
            with tracer.span("stencil_assembly", dimension=system.dimension):
                jacobian = system.jacobian(guess)

        # Hot path 2: the CSR matvec every Krylov iteration pays for.
        vector = guess.copy()
        for _ in range(params["assemblies"]):
            with tracer.span("csr_matvec"):
                vector = jacobian.matvec(vector)
            norm = np.linalg.norm(vector)
            if norm > 0:
                vector /= norm

        # Hot path 3: cached-preconditioner kernel solves. One kernel,
        # fixed sparsity pattern: the factorization is built once and
        # reused, exactly the Newton-loop usage profile.
        stats = LinearSolverStats()
        kernel = LinearKernel(stats=stats)  # lifetime stats: charged once per solve
        for _ in range(params["solves"]):
            call_stats = LinearSolverStats()
            with tracer.span("linear_solve") as span:
                kernel.solve(jacobian, rhs, sink=call_stats)
                span.update(
                    inner_iterations=call_stats.inner_iterations,
                    matvecs=call_stats.matvecs,
                    preconditioner_builds=call_stats.preconditioner_builds,
                )
        return {
            "nnz": jacobian.nnz,
            "linear_solves": stats.solves,
            "inner_iterations": stats.inner_iterations,
            "matvecs": stats.matvecs,
            "preconditioner_builds": stats.preconditioner_builds,
        }

    return _measure("kernel_micro", params, seed, body)


def _bench_service_soak(params: Dict[str, Any], seed: int) -> BenchmarkResult:
    import tempfile
    from pathlib import Path

    from repro.runtime import ProblemSpec, RetryPolicy, SolveRequest
    from repro.service import serve_requests
    from repro.trace.exporter import read_trace

    def body(tracer: Tracer) -> Dict[str, float]:
        # Cheap digital-only solves: the soak measures the *service*
        # (admission, routing, windowing, journal/trace merge), not
        # the solver. The queue bound is tighter than the stream, so
        # backpressure engages on every run.
        requests = [
            SolveRequest(
                request_id=f"soak-{index:04d}",
                problem=ProblemSpec.quadratic(
                    rhs0=1.0, rhs1=1.3, guess=(0.1 + 0.01 * (index % 5), 0.1)
                ),
                rungs=("damped_newton",),
                analog_time_limit=1e-3,
            )
            for index in range(params["requests"])
        ]
        with tempfile.TemporaryDirectory() as tmp:
            trace_path = Path(tmp) / "service_soak.jsonl"
            result = serve_requests(
                requests,
                trace_path=trace_path,
                shards=params["shards"],
                workers_per_shard=params["workers_per_shard"],
                queue_limit=params["queue_limit"],
                batch_window=params["batch_window"],
                seed=seed,
                retry=RetryPolicy(
                    max_attempts=params["max_attempts"], base_delay=0.01, max_delay=0.05
                ),
            )
            merged = read_trace(trace_path)
        # Graft the merged shard trace into the bench tracer: the
        # report then carries real per-span sums (linear_solve,
        # newton_iter) alongside the service-level counters.
        tracer.absorb(merged.spans, counters=merged.counters, gauges=merged.gauges)
        tracer.counter("service_requests_per_sec", result.requests_per_second)
        tracer.counter("service_p99_latency_s", result.latency_p99)
        return {
            "requests_completed": result.completed,
            "requests_failed": result.failed,
            "requests_rejected": len(result.rejections),
            "runtime_attempts": result.counters.get("runtime_attempts", 0),
            "newton_iterations": len(merged.spans_named("newton_iter")),
            "linear_solves": len(merged.spans_named("linear_solve")),
        }

    return _measure("service_soak", params, seed, body)


def _bench_fleet_soak(params: Dict[str, Any], seed: int) -> BenchmarkResult:
    import tempfile
    from pathlib import Path

    from repro.analog.health import DegradationModel
    from repro.fleet import FleetConfig
    from repro.runtime import ProblemSpec, RetryPolicy, SolveRequest
    from repro.service import serve_requests
    from repro.trace.exporter import read_trace

    def body(tracer: Tracer) -> Dict[str, float]:
        # The analog path is live here (full ladder, hot drift model),
        # but each settle is bounded by settle_max_steps so a drifted
        # board costs capped work. One shard keeps routing/observation
        # order — and therefore the fleet's EWMA evolution and veto
        # counts — bitwise reproducible for the work-metric gate.
        drift = float(params["drift_sigma"])
        requests = [
            SolveRequest(
                request_id=f"fleet-{index:04d}",
                problem=ProblemSpec.quadratic(
                    rhs0=1.0 + 0.05 * index, rhs1=1.0
                ),
                analog_time_limit=params["analog_time_limit"],
            )
            for index in range(params["requests"])
        ]
        with tempfile.TemporaryDirectory() as tmp:
            trace_path = Path(tmp) / "fleet_soak.jsonl"
            result = serve_requests(
                requests,
                trace_path=trace_path,
                shards=1,
                workers_per_shard=1,
                queue_limit=params["queue_limit"],
                batch_window=params["batch_window"],
                seed=seed,
                retry=RetryPolicy(
                    max_attempts=params["max_attempts"],
                    base_delay=0.0,
                    max_delay=0.0,
                    jitter=0.0,
                ),
                degradation=DegradationModel(
                    offset_drift_sigma=drift,
                    gain_drift_sigma=drift / 2.0,
                    seed=seed + 7,
                ),
                ladder_kwargs={"settle_max_steps": int(params["settle_max_steps"])},
                fleet=FleetConfig(boards=int(params["boards"])),
            )
            merged = read_trace(trace_path)
        tracer.absorb(merged.spans, counters=merged.counters, gauges=merged.gauges)
        tracer.counter("service_requests_per_sec", result.requests_per_second)
        fleet_counters = (result.fleet or {}).get("counters", {})
        return {
            "requests_completed": result.completed,
            "requests_failed": result.failed,
            "runtime_attempts": result.counters.get("runtime_attempts", 0),
            "settles_avoided": fleet_counters.get("settles_avoided", 0),
            "gate_audits": fleet_counters.get("gate_audits", 0),
            "gate_false_positives": fleet_counters.get("gate_false_positive", 0),
            "boards_quarantined": fleet_counters.get("boards_quarantined", 0),
            "board_recalibrations": fleet_counters.get("board_recalibrations", 0),
            "fleet_exhausted": fleet_counters.get("fleet_exhausted", 0),
            "analog_settles": len(merged.spans_named("analog_settle")),
        }

    return _measure("fleet_soak", params, seed, body)


def _bench_certify_soak(params: Dict[str, Any], seed: int) -> BenchmarkResult:
    from repro.fleet import FleetConfig
    from repro.runtime import (
        FaultInjector,
        FaultSpec,
        ProblemSpec,
        RetryPolicy,
        Runtime,
        SolveRequest,
    )

    def body(tracer: Tracer) -> Dict[str, float]:
        grids = tuple(params["grids"])

        def burgers_requests():
            return [
                SolveRequest(
                    request_id=f"certify-{index:04d}",
                    problem=ProblemSpec.burgers(
                        grid_n=grids[index % len(grids)],
                        reynolds=params["reynolds"],
                        seed=seed + index,
                    ),
                    analog_time_limit=params["analog_time_limit"],
                )
                for index in range(params["requests"])
            ]

        def run_once(certify: bool):
            runtime = Runtime(
                workers=1,
                retry=RetryPolicy(max_attempts=params["max_attempts"]),
                seed=seed,
                certify=certify or None,
            )
            t0 = time.perf_counter()
            result = runtime.run_batch(burgers_requests(), tracer=Tracer())
            return time.perf_counter() - t0, result

        # Overhead: min-of-repeats so allocator noise and first-touch
        # costs do not masquerade as certification cost. The solutions
        # of the first certified/uncertified pair must match bitwise —
        # the certificate is a pure observer.
        plain_times, certified_times = [], []
        bitwise_identical = 1.0
        for repeat in range(int(params["repeats"])):
            plain_elapsed, plain = run_once(certify=False)
            certified_elapsed, certified = run_once(certify=True)
            plain_times.append(plain_elapsed)
            certified_times.append(certified_elapsed)
            if repeat == 0:
                for a, b in zip(plain.outcomes, certified.outcomes):
                    same = (
                        a.status == b.status
                        and (a.solution is None) == (b.solution is None)
                        and (
                            a.solution is None
                            or np.array_equal(a.solution, b.solution)
                        )
                    )
                    if not same:
                        bitwise_identical = 0.0
        overhead_ratio = min(certified_times) / min(plain_times)
        tracer.counter("certify_overhead_ratio", overhead_ratio)

        # Defense: a certified fleet batch under targeted silent
        # corruption. Every injected corruption must be caught by the
        # certificate, escalated to a digital re-solve, and blamed on
        # its board — all deterministic at fixed seed, so the gate pins
        # the caught/escalated counts exactly.
        corrupted = [
            f"chaos-{index:04d}"
            for index in range(int(params["chaos_corrupted"]))
        ]
        faults = FaultInjector(
            specs=tuple(
                FaultSpec("silent_corruption", request_id=request_id, attempt=0)
                for request_id in corrupted
            ),
            seed=seed,
        )
        chaos_runtime = Runtime(
            workers=1,
            retry=RetryPolicy(
                max_attempts=params["max_attempts"],
                base_delay=0.0,
                max_delay=0.0,
                jitter=0.0,
            ),
            seed=seed,
            faults=faults,
            certify=True,
            fleet=FleetConfig(boards=int(params["boards"])),
            ladder_kwargs={"settle_max_steps": int(params["settle_max_steps"])},
        )
        chaos_requests = [
            SolveRequest(
                request_id=f"chaos-{index:04d}",
                problem=ProblemSpec.quadratic(rhs0=1.0 + 0.05 * index, rhs1=1.0),
                analog_time_limit=params["chaos_analog_time_limit"],
            )
            for index in range(int(params["chaos_requests"]))
        ]
        chaos = chaos_runtime.run_batch(chaos_requests, tracer=tracer)
        return {
            "requests_completed": chaos.completed,
            "requests_failed": chaos.failed,
            "certificates_checked": chaos.counters.get("certificates_checked", 0),
            "certificates_failed": chaos.counters.get("certificates_failed", 0),
            "corruption_caught": chaos.counters.get("corruption_caught", 0),
            "resolves_triggered": chaos.counters.get("resolves_triggered", 0),
            "boards_condemned": chaos.counters.get("boards_condemned", 0),
            "bitwise_identical": bitwise_identical,
        }

    return _measure("certify_soak", params, seed, body)


_BENCH_RUNNERS: Dict[str, Callable[[Dict[str, Any], int], BenchmarkResult]] = {
    "trajectory": _bench_trajectory,
    "figure8_seeding": _bench_figure8,
    "serve_batch": _bench_serve_batch,
    "kernel_micro": _bench_kernel_micro,
    "service_soak": _bench_service_soak,
    "fleet_soak": _bench_fleet_soak,
    "certify_soak": _bench_certify_soak,
}


def _warmup() -> None:
    """Touch the hot code paths once, untimed, before the suite runs.

    First-call costs (module imports, numpy's allocator growth, the
    first preconditioner factorization) otherwise land entirely on
    whichever benchmark happens to run first and show up as phantom
    regressions between a cold and a warm process.
    """
    from repro.analog.engine import AnalogAccelerator
    from repro.experiments.trajectory import run_trajectory
    from repro.pde.burgers import random_burgers_system

    run_trajectory(nx=2, steps=2, dt=0.05, scheme="implicit-euler", reynolds=1.0, seed=0)
    rng = np.random.default_rng(0)
    system, guess = random_burgers_system(2, 1.0, rng)
    AnalogAccelerator(seed=0).solve(
        system, initial_guess=guess, value_bound=3.0, time_limit=5.0
    )


def run_bench_suite(
    scale: str = DEFAULT_SCALE,
    seed: int = 0,
    only: Optional[Any] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> BenchReport:
    """Run the fixed suite at one scale; returns the full report.

    ``only`` restricts to a subset of benchmark names (test/debug
    seam); ``progress`` is called with each benchmark name as it
    starts (the CLI prints these).
    """
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; choose from {sorted(SCALES)}")
    selected = tuple(only) if only else BENCHMARK_NAMES
    unknown = [name for name in selected if name not in _BENCH_RUNNERS]
    if unknown:
        raise ValueError(f"unknown benchmark(s) {unknown}; choose from {BENCHMARK_NAMES}")
    report = BenchReport(
        scale=scale,
        seed=seed,
        manifest=build_manifest(
            command="bench",
            scale=scale,
            seed=seed,
            benchmarks=list(selected),
            bench_schema=BENCH_SCHEMA_VERSION,
        ),
    )
    _warmup()
    for name in selected:
        if progress is not None:
            progress(name)
        params = dict(SCALES[scale][name])
        report.benchmarks[name] = _BENCH_RUNNERS[name](params, seed)
    return report
