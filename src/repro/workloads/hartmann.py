"""Magnetohydrodynamic Hartmann-flow mini-app (OpenFOAM analogue).

The paper's second Table 1 row: the "2D Hartmann problem" solved by
finite-difference discretization of the incompressible viscous
Navier-Stokes equations coupled with Maxwell's equations, dominated by
preconditioned conjugate gradients at 45.8 % of runtime.

Hartmann flow is pressure-driven channel flow in a transverse magnetic
field. In nondimensional steady form, the streamwise velocity ``u`` and
induced field ``b`` satisfy the coupled elliptic system

    -Lap(u) - Ha db/dy = G
    -Lap(b) - Ha du/dy = 0

on the channel cross-section, with no-slip/perfectly-conducting walls.
The analogue solves it by block Gauss-Seidel over the two fields, each
block an SPD Poisson solve by **preconditioned CG**, plus explicit
coupling-term evaluation in between (the non-kernel work that keeps the
fraction below the bwaves row).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.linalg.iterative import conjugate_gradient
from repro.linalg.preconditioners import JacobiPreconditioner
from repro.pde.boundary import DirichletBoundary
from repro.pde.grid import Grid2D
from repro.pde.poisson import PoissonProblem
from repro.pde.stencils import central_y, pad_with_boundary
from repro.perf.profiles import KernelProfiler, ProfileReport

__all__ = ["HartmannWorkload"]


@dataclass
class HartmannWorkload:
    """Coupled-field MHD solve dominated by preconditioned CG."""

    grid_n: int = 24
    hartmann_number: float = 2.0
    pressure_gradient: float = 1.0
    coupling_sweeps: int = 6
    seed: int = 0

    KERNEL_NAME = "preconditioned CG"
    PAPER_FRACTION = 0.458

    def run(self) -> ProfileReport:
        profiler = KernelProfiler()
        grid = Grid2D.square(self.grid_n, spacing=1.0 / (self.grid_n + 1))
        zero = DirichletBoundary.constant(grid, 0.0)
        u = np.zeros(grid.shape)
        b = np.zeros(grid.shape)

        with profiler.run():
            for _ in range(self.coupling_sweeps):
                # OpenFOAM-style: the fvMatrix is re-assembled for every
                # solve (boundary coefficients fold into the operator).
                with profiler.region("operator assembly"):
                    template = PoissonProblem(grid, np.zeros(grid.shape), boundary=zero)
                    matrix = template.matrix()
                    precond = JacobiPreconditioner(matrix)
                # Coupling terms evaluated explicitly (non-kernel work):
                # finite-difference derivative fields, boundary folding,
                # and the per-sweep field bookkeeping an MHD code does.
                with profiler.region("coupling terms"):
                    db_dy = central_y(pad_with_boundary(b, zero, grid), grid.dy)
                    du_dy = central_y(pad_with_boundary(u, zero, grid), grid.dy)
                    rhs_u = self.pressure_gradient + self.hartmann_number * db_dy
                    rhs_b = self.hartmann_number * du_dy
                    problem_u = PoissonProblem(grid, rhs_u, boundary=zero)
                    problem_b = PoissonProblem(grid, rhs_b, boundary=zero)
                    rhs_u_vec = problem_u.rhs()
                    rhs_b_vec = problem_b.rhs()
                with profiler.region(self.KERNEL_NAME):
                    u = grid.field(
                        conjugate_gradient(
                            matrix, rhs_u_vec, preconditioner=precond, tol=1e-7
                        ).x
                    )
                    b = grid.field(
                        conjugate_gradient(
                            matrix, rhs_b_vec, preconditioner=precond, tol=1e-7
                        ).x
                    )
                with profiler.region("field update & residual check"):
                    # Coupled-system residual the explicit way — the
                    # per-sweep convergence bookkeeping of the solver.
                    res_u = matrix.matvec(grid.flatten(u)) - rhs_u_vec
                    res_b = matrix.matvec(grid.flatten(b)) - rhs_b_vec
                    _ = float(np.linalg.norm(res_u)) + float(np.linalg.norm(res_b))
        return profiler.report()

    def analytic_centerline_velocity(self) -> float:
        """Closed-form Hartmann-flow centerline velocity for validation:
        u(0) = G/Ha^2 * (cosh(Ha/2)/cosh(Ha/2) - 1/cosh(Ha/2)) scaled to
        the unit channel; used by tests as a sanity check of the
        mini-app's physics (monotone decrease with Ha)."""
        ha = self.hartmann_number
        return float(
            self.pressure_gradient / ha**2 * (1.0 - 1.0 / np.cosh(ha / 2.0)) * np.cosh(ha / 2.0)
        )
