"""Ablation: the baseline's damping schedule.

The paper's baseline halves the damping until convergence (Section
6.1) — Section 2.1 notes "In practice it is difficult to choose the
correct step size". This ablation quantifies that: no single fixed
damping is best across Reynolds regimes, and the halving schedule's
restart overhead is the price the baseline pays at Re = 2.0 (the
Figure 8 blow-up the analog seed avoids). It also demonstrates the
equivalence the paper uses: damped Newton IS explicit Euler on the
continuous Newton flow.
"""

import numpy as np
import pytest

from repro.nonlinear.continuous_newton import newton_flow_rhs
from repro.nonlinear.newton import (
    NewtonOptions,
    damped_newton_with_restarts,
    newton_solve,
)
from repro.nonlinear.systems import CallableSystem, CubicRootSystem
from repro.ode.fixed_step import integrate_euler
from repro.pde.burgers import random_burgers_system


def hard_instance(seed=3):
    rng = np.random.default_rng(seed)
    system, _ = random_burgers_system(8, 2.0, rng)
    guess = rng.uniform(-2.0, 2.0, system.dimension)
    return system, guess


def test_no_single_damping_wins_everywhere(benchmark):
    def sweep():
        outcomes = {}
        for damping in (1.0, 0.5, 0.125):
            converged = 0
            iterations = 0
            # Fair budgets: a damped step shrinks the residual by
            # (1 - h) per iteration far from the root, so the cap
            # scales inversely with the damping.
            cap = int(60 / damping)
            for seed in range(6):
                system, guess = hard_instance(seed)
                result = newton_solve(
                    system,
                    guess,
                    NewtonOptions(damping=damping, tolerance=1e-10, max_iterations=cap),
                )
                if result.converged:
                    converged += 1
                    iterations += result.iterations
            outcomes[damping] = (converged, iterations)
        return outcomes

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\ndamping -> (converged of 6, total iterations):", outcomes)
    # Full steps are fastest when they work but fail on some instances;
    # small damping converges more often but costs far more iterations.
    full_converged, _ = outcomes[1.0]
    small_converged, small_iterations = outcomes[0.125]
    assert small_converged >= full_converged
    if full_converged:
        _, full_iterations = outcomes[1.0]
        assert small_iterations > full_iterations


def test_restart_schedule_overhead_quantified(benchmark):
    # On an instance needing damping, the halving schedule's honest
    # total cost is a multiple of the charitable per-run count.
    system = CallableSystem(
        1,
        residual=lambda u: np.array([np.arctan(u[0])]),
        jacobian=lambda u: np.array([[1.0 / (1.0 + u[0] ** 2)]]),
    )
    result = benchmark.pedantic(
        damped_newton_with_restarts,
        args=(system, np.array([2.0]), NewtonOptions(tolerance=1e-10, max_iterations=100)),
        rounds=1,
        iterations=1,
    )
    assert result.converged
    assert result.restarts >= 1
    # The honest total charges the failed full-step pass on top of the
    # successful damped run (the paper's accounting omits it).
    wasted = result.total_iterations_including_restarts - result.iterations
    assert wasted >= 5


def test_damped_newton_is_euler_on_newton_flow(benchmark):
    # Section 2.2: "the damped Newton method is an Euler's method
    # approximation of the continuous Newton method ODE."
    system = CubicRootSystem()
    u0 = np.array([1.4, 0.6])
    h = 0.2
    steps = 10

    euler = benchmark.pedantic(
        integrate_euler,
        args=(newton_flow_rhs(system), 0.0, u0, steps * h),
        kwargs={"dt": h},
        rounds=1,
        iterations=1,
    )

    u = u0.copy()
    for _ in range(steps):
        jac = system.jacobian(u)
        u = u - h * np.linalg.solve(jac, system.residual(u))

    np.testing.assert_allclose(euler.final_state, u, rtol=1e-10, atol=1e-12)
