"""Nondeterminism audit: seeded RNGs, reproducible runs, seeds in traces.

The paper's figures are Monte-Carlo over random problem instances; the
repro is only trustworthy if every random stream is seeded and a rerun
with the same seed retells exactly the same story. Three layers:

* a static audit that no ``default_rng()`` call in ``src/`` is
  unseeded;
* two same-seed ``run_figure7`` runs produce identical rows, identical
  iteration counts and identical kernel accounting;
* the ``--trace`` manifest records the seed, so a trace file is enough
  to rerun what produced it.
"""

import re
from pathlib import Path

from repro.cli import main
from repro.experiments.figure7 import run_figure7
from repro.trace import Tracer, read_trace

SRC = Path(__file__).resolve().parents[2] / "src"

FIGURE7_KWARGS = dict(
    grid_sizes=(2, 4), reynolds_values=(0.01, 1.0), trials=1, seed=123
)


class TestSeededRngAudit:
    def test_no_unseeded_default_rng_in_src(self):
        """``default_rng()`` with no argument draws OS entropy — any such
        call makes figures unreproducible. Every call site must pass a
        seed (or a seeded generator)."""
        offenders = []
        for path in sorted(SRC.rglob("*.py")):
            for number, line in enumerate(path.read_text().splitlines(), start=1):
                if re.search(r"default_rng\(\s*\)", line):
                    offenders.append(f"{path.relative_to(SRC)}:{number}: {line.strip()}")
        assert not offenders, "unseeded default_rng() calls:\n" + "\n".join(offenders)


class TestSameSeedReruns:
    def test_figure7_rows_and_stats_identical(self):
        first = run_figure7(**FIGURE7_KWARGS)
        second = run_figure7(**FIGURE7_KWARGS)
        assert first.rows_data == second.rows_data
        for field in ("solves", "inner_iterations", "matvecs", "preconditioner_builds"):
            assert getattr(first.kernel_stats, field) == getattr(second.kernel_stats, field)

    def test_figure7_traced_iteration_counts_identical(self):
        """Span-level determinism: the same seed replays the same number
        of Newton iterations and linear solves, span for span."""
        traces = []
        for _ in range(2):
            tracer = Tracer()
            run_figure7(**FIGURE7_KWARGS, tracer=tracer)
            traces.append(tracer)
        for name in ("newton_iter", "linear_solve", "newton_attempt", "solve"):
            assert len(traces[0].spans_named(name)) == len(traces[1].spans_named(name)), name
        first_inner = [
            span.attrs.get("inner_iterations") for span in traces[0].spans_named("linear_solve")
        ]
        second_inner = [
            span.attrs.get("inner_iterations") for span in traces[1].spans_named("linear_solve")
        ]
        assert first_inner == second_inner


class TestSeedInTraceManifest:
    def test_cli_trace_records_seed_and_settings(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert (
            main(
                [
                    "figure7",
                    "--nx",
                    "4",
                    "--reynolds",
                    "1.0",
                    "--trials",
                    "1",
                    "--seed",
                    "42",
                    "--trace",
                    str(path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        manifest = read_trace(path).manifest
        assert manifest["seed"] == 42
        assert manifest["command"] == "figure7"
        assert manifest["grid_sizes"] == [4]
        assert "repro_version" in manifest
