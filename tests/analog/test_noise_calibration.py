"""Tests for noise processes and calibration."""

import numpy as np
import pytest

from repro.analog.calibration import CalibrationConfig, ProcessVariation
from repro.analog.noise import NoiseModel, quantize_midrise


class TestQuantization:
    def test_quantization_error_bounded_by_step(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(-1.0, 1.0, 1000)
        out = quantize_midrise(values, bits=8, full_scale=1.0)
        step = 2.0 / 256
        assert np.max(np.abs(out - values)) <= step / 2 + 1e-12

    def test_clipping_at_rails(self):
        out = quantize_midrise(np.array([5.0, -5.0]), bits=8, full_scale=1.0)
        assert out[0] <= 1.0
        assert out[1] >= -1.0

    def test_more_bits_lower_error(self):
        values = np.linspace(-0.9, 0.9, 101)
        err8 = np.abs(quantize_midrise(values, 8, 1.0) - values).max()
        err12 = np.abs(quantize_midrise(values, 12, 1.0) - values).max()
        assert err12 < err8

    def test_validation(self):
        with pytest.raises(ValueError):
            quantize_midrise(np.zeros(1), bits=0, full_scale=1.0)
        with pytest.raises(ValueError):
            quantize_midrise(np.zeros(1), bits=8, full_scale=0.0)


class TestNoiseModel:
    def test_defaults_valid(self):
        noise = NoiseModel()
        assert noise.adc_bits == 8
        assert noise.full_scale == 1.0

    def test_ideal_has_no_error(self):
        noise = NoiseModel.ideal()
        values = np.linspace(-0.5, 0.5, 11)
        np.testing.assert_allclose(noise.adc_read(values), values, atol=1e-8)
        assert noise.residual_mismatch_sigma == 0.0

    def test_saturate(self):
        noise = NoiseModel()
        np.testing.assert_array_equal(
            noise.saturate(np.array([2.0, -2.0, 0.5])), [1.0, -1.0, 0.5]
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            NoiseModel(adc_bits=0)
        with pytest.raises(ValueError):
            NoiseModel(process_sigma=-0.1)
        with pytest.raises(ValueError):
            NoiseModel(full_scale=-1.0)


class TestProcessVariation:
    def test_deterministic_per_seed(self):
        noise = NoiseModel()
        a = ProcessVariation(noise, seed=3).draw_gain_errors(10)
        b = ProcessVariation(noise, seed=3).draw_gain_errors(10)
        np.testing.assert_array_equal(a, b)

    def test_different_dies_differ(self):
        noise = NoiseModel()
        a = ProcessVariation(noise, seed=1).draw_gain_errors(10)
        b = ProcessVariation(noise, seed=2).draw_gain_errors(10)
        assert not np.allclose(a, b)

    def test_calibration_shrinks_errors(self):
        noise = NoiseModel(process_sigma=0.05, residual_mismatch_sigma=0.005)
        variation = ProcessVariation(noise, seed=0)
        raw = variation.draw_gain_errors(2000)
        calibrated = variation.calibrate(raw, CalibrationConfig())
        assert np.std(calibrated) < np.std(raw)

    def test_disabled_calibration_is_identity(self):
        noise = NoiseModel()
        variation = ProcessVariation(noise, seed=0)
        raw = variation.draw_gain_errors(100)
        out = variation.calibrate(raw, CalibrationConfig(enabled=False))
        np.testing.assert_array_equal(out, raw)

    def test_residual_floor_respected(self):
        # Even with huge averaging, residual mismatch does not vanish.
        noise = NoiseModel(residual_mismatch_sigma=0.01)
        variation = ProcessVariation(noise, seed=0)
        raw = variation.draw_gain_errors(2000)
        out = variation.calibrate(raw, CalibrationConfig(measurement_repeats=10_000))
        assert np.std(out) > 0.005

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CalibrationConfig(measurement_repeats=0)
