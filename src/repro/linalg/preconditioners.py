"""Preconditioners for the Krylov solvers.

The workload characterization in Table 1 of the paper names
*preconditioned* conjugate gradients and SOR as the dominant kernels of
the OpenFOAM and deal.II solvers; ILU(0) is the standard companion of
Bi-CGstab for nonsymmetric stencil matrices. All of them are provided
here over our own :class:`~repro.linalg.sparse.CsrMatrix`.
"""

from __future__ import annotations

import numpy as np

from repro.linalg.sparse import CsrMatrix

__all__ = [
    "Preconditioner",
    "IdentityPreconditioner",
    "JacobiPreconditioner",
    "Ilu0Preconditioner",
    "SsorPreconditioner",
]


class Preconditioner:
    """Interface: ``apply(r)`` returns an approximation of ``A^-1 r``."""

    def apply(self, r: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class IdentityPreconditioner(Preconditioner):
    """No-op preconditioner (plain Krylov iteration)."""

    def apply(self, r: np.ndarray) -> np.ndarray:
        return r


class JacobiPreconditioner(Preconditioner):
    """Diagonal scaling ``M = diag(A)``."""

    def __init__(self, matrix: CsrMatrix):
        diag = matrix.diagonal()
        if np.any(diag == 0.0):
            raise ValueError("Jacobi preconditioner requires a nonzero diagonal")
        self._inv_diag = 1.0 / diag

    def apply(self, r: np.ndarray) -> np.ndarray:
        return self._inv_diag * r


class Ilu0Preconditioner(Preconditioner):
    """Incomplete LU with zero fill-in on the CSR sparsity pattern.

    The factorization overwrites values only where the original matrix
    has structural nonzeros (the IKJ variant of Saad's ILU(0)); applying
    the preconditioner is one sparse forward and one sparse backward
    sweep.
    """

    def __init__(self, matrix: CsrMatrix):
        if matrix.num_rows != matrix.num_cols:
            raise ValueError("ILU(0) requires a square matrix")
        n = matrix.num_rows
        self._n = n
        self._indptr = matrix.indptr.copy()
        self._indices = matrix.indices.copy()
        self._data = matrix.data.copy()
        # Position of the diagonal entry inside each row's slice.
        self._diag_pos = np.full(n, -1, dtype=np.int64)
        for i in range(n):
            start, stop = self._indptr[i], self._indptr[i + 1]
            for pos in range(start, stop):
                if self._indices[pos] == i:
                    self._diag_pos[i] = pos
                    break
            if self._diag_pos[i] < 0:
                raise ValueError(f"ILU(0) needs a structural diagonal entry in row {i}")
        self._factorize()

    def _factorize(self) -> None:
        n = self._n
        indptr, indices, data = self._indptr, self._indices, self._data
        # Scratch map from column index to position in the current row.
        col_to_pos = np.full(n, -1, dtype=np.int64)
        for i in range(n):
            start, stop = indptr[i], indptr[i + 1]
            col_to_pos[indices[start:stop]] = np.arange(start, stop)
            for pos in range(start, stop):
                k = indices[pos]
                if k >= i:
                    break
                pivot = data[self._diag_pos[k]]
                if pivot == 0.0:
                    raise ValueError(f"ILU(0) zero pivot in row {k}")
                factor = data[pos] / pivot
                data[pos] = factor
                # Update row i against row k's upper part, zero fill-in.
                k_start, k_stop = indptr[k], indptr[k + 1]
                for kpos in range(self._diag_pos[k] + 1, k_stop):
                    col = indices[kpos]
                    target = col_to_pos[col]
                    if target >= 0:
                        data[target] -= factor * data[kpos]
            col_to_pos[indices[start:stop]] = -1

    def apply(self, r: np.ndarray) -> np.ndarray:
        n = self._n
        indptr, indices, data = self._indptr, self._indices, self._data
        y = np.array(r, dtype=float, copy=True)
        # Forward solve L y = r (unit diagonal L).
        for i in range(n):
            start = indptr[i]
            acc = 0.0
            for pos in range(start, self._diag_pos[i]):
                acc += data[pos] * y[indices[pos]]
            y[i] -= acc
        # Backward solve U x = y.
        for i in range(n - 1, -1, -1):
            stop = indptr[i + 1]
            acc = 0.0
            for pos in range(self._diag_pos[i] + 1, stop):
                acc += data[pos] * y[indices[pos]]
            y[i] = (y[i] - acc) / data[self._diag_pos[i]]
        return y


class SsorPreconditioner(Preconditioner):
    """Symmetric SOR preconditioner with relaxation factor ``omega``."""

    def __init__(self, matrix: CsrMatrix, omega: float = 1.0):
        if not 0.0 < omega < 2.0:
            raise ValueError(f"omega must be in (0, 2), got {omega}")
        self._matrix = matrix
        self._omega = omega
        diag = matrix.diagonal()
        if np.any(diag == 0.0):
            raise ValueError("SSOR requires a nonzero diagonal")
        self._diag = diag

    def apply(self, r: np.ndarray) -> np.ndarray:
        matrix, omega, diag = self._matrix, self._omega, self._diag
        n = matrix.num_rows
        y = np.zeros(n)
        # Forward sweep (D/omega + L) y = r.
        for i in range(n):
            cols, vals = matrix.row(i)
            mask = cols < i
            acc = float(vals[mask] @ y[cols[mask]])
            y[i] = omega * (r[i] - acc) / diag[i]
        # Backward sweep (D/omega + U) x = D y / omega.
        x = np.zeros(n)
        for i in range(n - 1, -1, -1):
            cols, vals = matrix.row(i)
            mask = cols > i
            acc = float(vals[mask] @ x[cols[mask]])
            x[i] = y[i] - omega * acc / diag[i]
        return x
