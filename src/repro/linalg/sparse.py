"""A compressed-sparse-row matrix built from scratch.

The Jacobians of finite-difference PDE stencils are five-point sparse;
the paper's digital baselines (Bi-CGstab, PCG, sparse QR on the GPU)
all consume this structure. We implement our own CSR container rather
than depending on scipy so every kernel the performance models charge
for is visible in this repository.

The usual construction path is :class:`CooBuilder` (append triplets
while walking a stencil) followed by :meth:`CooBuilder.to_csr`, which
sorts, deduplicates (summing duplicates, the standard FEM assembly
convention) and packs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Tuple

import numpy as np

__all__ = ["CooBuilder", "CsrMatrix", "eye", "diags", "csr_from_triplets"]


def csr_from_triplets(
    num_rows: int, num_cols: int, rows: np.ndarray, cols: np.ndarray, vals: np.ndarray
) -> "CsrMatrix":
    """Vectorized triplet-to-CSR packing (duplicates summed).

    The fast path for stencil assembly inside solver inner loops, where
    the per-call overhead of :class:`CooBuilder`'s Python lists would
    dominate; semantics match ``CooBuilder.to_csr`` exactly.
    """
    rows = np.asarray(rows, dtype=np.int64).ravel()
    cols = np.asarray(cols, dtype=np.int64).ravel()
    vals = np.asarray(vals, dtype=float).ravel()
    if not (rows.shape == cols.shape == vals.shape):
        raise ValueError("rows, cols, and values must have matching lengths")
    if rows.size:
        if rows.min() < 0 or rows.max() >= num_rows:
            raise IndexError("row index outside matrix")
        if cols.min() < 0 or cols.max() >= num_cols:
            raise IndexError("column index outside matrix")
    else:
        return CsrMatrix(
            shape=(num_rows, num_cols),
            indptr=np.zeros(num_rows + 1, dtype=np.int64),
            indices=np.zeros(0, dtype=np.int64),
            data=np.zeros(0, dtype=float),
        )
    order = np.lexsort((cols, rows))
    rows, cols, vals = rows[order], cols[order], vals[order]
    is_new = np.ones(rows.size, dtype=bool)
    is_new[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
    group = np.cumsum(is_new) - 1
    merged_vals = np.zeros(int(group[-1]) + 1, dtype=float)
    np.add.at(merged_vals, group, vals)
    merged_rows = rows[is_new]
    merged_cols = cols[is_new]
    indptr = np.zeros(num_rows + 1, dtype=np.int64)
    np.add.at(indptr, merged_rows + 1, 1)
    np.cumsum(indptr, out=indptr)
    return CsrMatrix(
        shape=(num_rows, num_cols), indptr=indptr, indices=merged_cols, data=merged_vals
    )


@dataclass
class CooBuilder:
    """Triplet accumulator for assembling a :class:`CsrMatrix`."""

    num_rows: int
    num_cols: int
    _rows: List[int] = field(default_factory=list)
    _cols: List[int] = field(default_factory=list)
    _vals: List[float] = field(default_factory=list)

    def add(self, row: int, col: int, value: float) -> None:
        """Append one entry; duplicates are summed at pack time."""
        if not (0 <= row < self.num_rows and 0 <= col < self.num_cols):
            raise IndexError(f"entry ({row}, {col}) outside {self.num_rows}x{self.num_cols}")
        self._rows.append(row)
        self._cols.append(col)
        self._vals.append(float(value))

    def extend(self, entries: Iterable[Tuple[int, int, float]]) -> None:
        for row, col, value in entries:
            self.add(row, col, value)

    def add_many(self, rows: np.ndarray, cols: np.ndarray, values: np.ndarray) -> None:
        """Vectorized bulk append (used by PDE stencil assembly)."""
        rows = np.asarray(rows, dtype=np.int64).ravel()
        cols = np.asarray(cols, dtype=np.int64).ravel()
        values = np.asarray(values, dtype=float).ravel()
        if not (rows.shape == cols.shape == values.shape):
            raise ValueError("rows, cols, and values must have matching lengths")
        if rows.size == 0:
            return
        if rows.min() < 0 or rows.max() >= self.num_rows:
            raise IndexError("row index outside matrix")
        if cols.min() < 0 or cols.max() >= self.num_cols:
            raise IndexError("column index outside matrix")
        self._rows.extend(rows.tolist())
        self._cols.extend(cols.tolist())
        self._vals.extend(values.tolist())

    def __len__(self) -> int:
        return len(self._vals)

    def to_csr(self) -> "CsrMatrix":
        """Sort by (row, col), merge duplicates, and pack into CSR."""
        rows = np.asarray(self._rows, dtype=np.int64)
        cols = np.asarray(self._cols, dtype=np.int64)
        vals = np.asarray(self._vals, dtype=float)
        if rows.size == 0:
            indptr = np.zeros(self.num_rows + 1, dtype=np.int64)
            return CsrMatrix(
                shape=(self.num_rows, self.num_cols),
                indptr=indptr,
                indices=np.zeros(0, dtype=np.int64),
                data=np.zeros(0, dtype=float),
            )
        order = np.lexsort((cols, rows))
        rows, cols, vals = rows[order], cols[order], vals[order]
        # Merge consecutive duplicates by summing their values.
        is_new = np.ones(rows.size, dtype=bool)
        is_new[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
        group = np.cumsum(is_new) - 1
        merged_vals = np.zeros(int(group[-1]) + 1, dtype=float)
        np.add.at(merged_vals, group, vals)
        merged_rows = rows[is_new]
        merged_cols = cols[is_new]
        indptr = np.zeros(self.num_rows + 1, dtype=np.int64)
        np.add.at(indptr, merged_rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return CsrMatrix(
            shape=(self.num_rows, self.num_cols),
            indptr=indptr,
            indices=merged_cols,
            data=merged_vals,
        )


@dataclass
class CsrMatrix:
    """Compressed sparse row matrix with the kernels the solvers need."""

    shape: Tuple[int, int]
    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray

    def __post_init__(self) -> None:
        num_rows, _ = self.shape
        if self.indptr.shape[0] != num_rows + 1:
            raise ValueError("indptr length must be num_rows + 1")
        if self.indices.shape[0] != self.data.shape[0]:
            raise ValueError("indices and data must be the same length")

    # -- basic properties ------------------------------------------------

    @property
    def num_rows(self) -> int:
        return self.shape[0]

    @property
    def num_cols(self) -> int:
        return self.shape[1]

    @property
    def nnz(self) -> int:
        """Number of stored (structurally nonzero) entries."""
        return int(self.data.shape[0])

    # -- kernels ----------------------------------------------------------

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Sparse matrix-vector product ``A @ x``."""
        x = np.asarray(x, dtype=float)
        if x.shape[0] != self.num_cols:
            raise ValueError(f"vector length {x.shape[0]} != num_cols {self.num_cols}")
        products = self.data * x[self.indices]
        out = np.zeros(self.num_rows)
        row_ids = self._row_ids()
        np.add.at(out, row_ids, products)
        return out

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        """Transposed product ``A.T @ y`` without materializing ``A.T``."""
        y = np.asarray(y, dtype=float)
        if y.shape[0] != self.num_rows:
            raise ValueError(f"vector length {y.shape[0]} != num_rows {self.num_rows}")
        out = np.zeros(self.num_cols)
        row_ids = self._row_ids()
        np.add.at(out, self.indices, self.data * y[row_ids])
        return out

    def _row_ids(self) -> np.ndarray:
        return np.repeat(np.arange(self.num_rows), np.diff(self.indptr))

    def diagonal(self) -> np.ndarray:
        """Main diagonal as a dense vector (zeros where absent)."""
        n = min(self.shape)
        diag = np.zeros(n)
        row_ids = self._row_ids()
        hits = (row_ids == self.indices) & (row_ids < n)
        diag[row_ids[hits]] = self.data[hits]
        return diag

    def row(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """Column indices and values of row ``i`` as views."""
        start, stop = self.indptr[i], self.indptr[i + 1]
        return self.indices[start:stop], self.data[start:stop]

    def transpose(self) -> "CsrMatrix":
        """Explicit transpose, itself in CSR form."""
        return csr_from_triplets(
            self.num_cols, self.num_rows, self.indices, self._row_ids(), self.data
        )

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense array (tests and small solves only)."""
        out = np.zeros(self.shape)
        row_ids = self._row_ids()
        out[row_ids, self.indices] = self.data
        return out

    def scaled(self, alpha: float) -> "CsrMatrix":
        """Return ``alpha * A`` sharing structure, copying data."""
        return CsrMatrix(
            shape=self.shape,
            indptr=self.indptr,
            indices=self.indices,
            data=self.data * float(alpha),
        )

    def add(self, other: "CsrMatrix") -> "CsrMatrix":
        """Structural sum ``A + B`` (shapes must match)."""
        if self.shape != other.shape:
            raise ValueError(f"shape mismatch {self.shape} vs {other.shape}")
        return csr_from_triplets(
            self.num_rows,
            self.num_cols,
            np.concatenate([self._row_ids(), other._row_ids()]),
            np.concatenate([self.indices, other.indices]),
            np.concatenate([self.data, other.data]),
        )

    def frobenius_norm(self) -> float:
        return float(np.sqrt(np.sum(self.data**2)))

    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        return self.matvec(x)


def eye(n: int, scale: float = 1.0) -> CsrMatrix:
    """Sparse identity (optionally scaled)."""
    return CsrMatrix(
        shape=(n, n),
        indptr=np.arange(n + 1, dtype=np.int64),
        indices=np.arange(n, dtype=np.int64),
        data=np.full(n, float(scale)),
    )


def diags(values: np.ndarray) -> CsrMatrix:
    """Sparse diagonal matrix from a dense vector."""
    values = np.asarray(values, dtype=float)
    n = values.shape[0]
    return CsrMatrix(
        shape=(n, n),
        indptr=np.arange(n + 1, dtype=np.int64),
        indices=np.arange(n, dtype=np.int64),
        data=values.copy(),
    )
