"""The linear Poisson equation as an elliptic reference problem.

``-Lap(u) = f`` with Dirichlet boundaries, five-point discretized. This
is the problem class the authors' *prior* work accelerated ([22, 23],
linear elliptic PDEs); here it serves as the linear substrate of the
Table 1 workload mini-apps (pressure solves, Helmholtz shifts) and as a
sanity reference for the sparse solvers.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.linalg.iterative import IterativeResult, conjugate_gradient
from repro.linalg.preconditioners import Preconditioner
from repro.linalg.sparse import CooBuilder, CsrMatrix
from repro.pde.boundary import DirichletBoundary
from repro.pde.grid import Grid2D

__all__ = ["PoissonProblem"]


class PoissonProblem:
    """Five-point Poisson problem ``-Lap(u) = f`` on a :class:`Grid2D`.

    With a ``helmholtz_shift`` ``s`` the operator becomes
    ``-Lap(u) + s u``, the Helmholtz form the deal.II workload of
    Table 1 solves with SOR and CG.
    """

    def __init__(
        self,
        grid: Grid2D,
        forcing: np.ndarray,
        boundary: Optional[DirichletBoundary] = None,
        helmholtz_shift: float = 0.0,
    ):
        self.grid = grid
        self.forcing = np.asarray(forcing, dtype=float)
        if self.forcing.shape != grid.shape:
            raise ValueError(f"forcing must have shape {grid.shape}")
        self.boundary = boundary or DirichletBoundary.constant(grid, 0.0)
        self.boundary.validate(grid)
        if helmholtz_shift < 0.0:
            raise ValueError("helmholtz_shift must be nonnegative (keeps the operator SPD)")
        self.helmholtz_shift = float(helmholtz_shift)

    def matrix(self) -> CsrMatrix:
        """Assemble the SPD system matrix."""
        grid = self.grid
        nx, ny = grid.nx, grid.ny
        inv_dx2 = 1.0 / grid.dx**2
        inv_dy2 = 1.0 / grid.dy**2
        builder = CooBuilder(grid.num_nodes, grid.num_nodes)
        jj, ii = np.meshgrid(np.arange(ny), np.arange(nx), indexing="ij")
        k = (jj * nx + ii).ravel()
        center = 2.0 * (inv_dx2 + inv_dy2) + self.helmholtz_shift
        builder.add_many(k, k, np.full(k.shape, center))
        east = (ii < nx - 1).ravel()
        west = (ii > 0).ravel()
        north = (jj < ny - 1).ravel()
        south = (jj > 0).ravel()
        builder.add_many(k[east], k[east] + 1, np.full(east.sum(), -inv_dx2))
        builder.add_many(k[west], k[west] - 1, np.full(west.sum(), -inv_dx2))
        builder.add_many(k[north], k[north] + nx, np.full(north.sum(), -inv_dy2))
        builder.add_many(k[south], k[south] - nx, np.full(south.sum(), -inv_dy2))
        return builder.to_csr()

    def rhs(self) -> np.ndarray:
        """Forcing plus the boundary contributions moved to the RHS."""
        grid = self.grid
        rhs = self.forcing.copy()
        inv_dx2 = 1.0 / grid.dx**2
        inv_dy2 = 1.0 / grid.dy**2
        rhs[:, 0] += self.boundary.west * inv_dx2
        rhs[:, -1] += self.boundary.east * inv_dx2
        rhs[0, :] += self.boundary.south * inv_dy2
        rhs[-1, :] += self.boundary.north * inv_dy2
        return grid.flatten(rhs)

    def solve(
        self,
        preconditioner: Optional[Preconditioner] = None,
        tol: float = 1e-10,
        max_iterations: int = 10_000,
    ) -> IterativeResult:
        """Solve with (preconditioned) conjugate gradients."""
        return conjugate_gradient(
            self.matrix(),
            self.rhs(),
            preconditioner=preconditioner,
            tol=tol,
            max_iterations=max_iterations,
        )

    def solution_field(self, result: IterativeResult) -> np.ndarray:
        """Reshape a solve result into a ``(ny, nx)`` field."""
        return self.grid.field(result.x)
