"""Direct tests of the preconditioner implementations."""

import numpy as np
import pytest

from repro.linalg.preconditioners import (
    IdentityPreconditioner,
    Ilu0Preconditioner,
    JacobiPreconditioner,
    SsorPreconditioner,
)
from repro.linalg.sparse import CooBuilder, eye


def tridiag(n, lower=-1.0, diag=4.0, upper=-1.0):
    builder = CooBuilder(n, n)
    for i in range(n):
        builder.add(i, i, diag)
        if i > 0:
            builder.add(i, i - 1, lower)
        if i < n - 1:
            builder.add(i, i + 1, upper)
    return builder.to_csr()


def test_identity_is_noop():
    r = np.array([1.0, -2.0, 3.0])
    np.testing.assert_array_equal(IdentityPreconditioner().apply(r), r)


class TestJacobi:
    def test_apply_divides_by_diagonal(self):
        mat = tridiag(4, diag=2.0)
        out = JacobiPreconditioner(mat).apply(np.full(4, 6.0))
        np.testing.assert_allclose(out, np.full(4, 3.0))

    def test_zero_diagonal_rejected(self):
        builder = CooBuilder(2, 2)
        builder.add(0, 1, 1.0)
        builder.add(1, 0, 1.0)
        with pytest.raises(ValueError):
            JacobiPreconditioner(builder.to_csr())


class TestIlu0:
    def test_exact_for_triangular_pattern(self):
        # For a matrix whose LU factors fit the sparsity pattern exactly
        # (tridiagonal), ILU(0) is a *complete* LU and apply() solves
        # the system exactly.
        mat = tridiag(6)
        x_true = np.random.default_rng(0).standard_normal(6)
        b = mat.matvec(x_true)
        out = Ilu0Preconditioner(mat).apply(b)
        np.testing.assert_allclose(out, x_true, rtol=1e-10, atol=1e-12)

    def test_identity_matrix(self):
        pre = Ilu0Preconditioner(eye(3))
        r = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(pre.apply(r), r)

    def test_requires_square(self):
        builder = CooBuilder(2, 3)
        builder.add(0, 0, 1.0)
        with pytest.raises(ValueError):
            Ilu0Preconditioner(builder.to_csr())

    def test_requires_structural_diagonal(self):
        builder = CooBuilder(2, 2)
        builder.add(0, 0, 1.0)
        builder.add(1, 0, 1.0)  # no (1, 1) entry
        with pytest.raises(ValueError):
            Ilu0Preconditioner(builder.to_csr())

    def test_approximates_inverse_on_stencil(self):
        # 2-D Laplacian: ILU(0) is inexact but must reduce the residual
        # of a single application versus doing nothing.
        n = 5
        size = n * n
        builder = CooBuilder(size, size)
        for j in range(n):
            for i in range(n):
                k = j * n + i
                builder.add(k, k, 4.0)
                if i > 0:
                    builder.add(k, k - 1, -1.0)
                if i < n - 1:
                    builder.add(k, k + 1, -1.0)
                if j > 0:
                    builder.add(k, k - n, -1.0)
                if j < n - 1:
                    builder.add(k, k + n, -1.0)
        mat = builder.to_csr()
        b = np.ones(size)
        approx = Ilu0Preconditioner(mat).apply(b)
        residual_after = np.linalg.norm(b - mat.matvec(approx))
        residual_before = np.linalg.norm(b)
        assert residual_after < 0.5 * residual_before


class TestSsor:
    def test_omega_validated(self):
        mat = tridiag(3)
        with pytest.raises(ValueError):
            SsorPreconditioner(mat, omega=0.0)

    def test_zero_diagonal_rejected(self):
        builder = CooBuilder(2, 2)
        builder.add(0, 1, 1.0)
        builder.add(1, 0, 1.0)
        with pytest.raises(ValueError):
            SsorPreconditioner(builder.to_csr())

    def test_reduces_residual(self):
        mat = tridiag(8)
        b = np.ones(8)
        out = SsorPreconditioner(mat, omega=1.2).apply(b)
        assert np.linalg.norm(b - mat.matvec(out)) < np.linalg.norm(b)
