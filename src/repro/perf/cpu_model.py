"""Cost model of the paper's CPU baseline.

The baseline digital solver is "a parallelized damped Newton solver,
implemented as a vectorized, 16-threaded OpenMP program running on two
Intel Xeon X5550 CPUs running at 2.67 GHz" (Section 6.1). We run the
same algorithm (our damped Newton with the halving restart schedule)
and charge modeled wall-clock per operation:

* each Newton iteration assembles the stencil residual/Jacobian
  (streaming work proportional to the stored nonzeros) and solves
  ``J delta = F`` with a threaded direct dense solve — the structure
  that reproduces Figure 8's absolute times: ~1e-5 s per iteration at
  2x2 up to ~1e-2 s per iteration at 16x16;
* a fixed per-iteration overhead covers OpenMP fork/join, reductions,
  and damping logic.

With these constants and this library's measured iteration counts, the
modeled times land on the paper's Figure 7/8 ranges: 16x16 baseline
runs take ~0.07-0.1 s at low Reynolds numbers and blow up toward ~1 s
at Re = 2.0 where the damping search kicks in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.nonlinear.newton import NewtonResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.linalg.kernel import LinearSolverStats

__all__ = ["CpuModel"]


@dataclass(frozen=True)
class CpuModel:
    """Time/energy model of the dual-Xeon X5550 baseline.

    Attributes
    ----------
    effective_gflops:
        Sustained throughput of the 16-thread dense solve (well below
        the ~85 GFLOPS peak of two X5550s: small matrices, panel
        dependencies).
    iteration_overhead_seconds:
        Fixed per-Newton-iteration cost: thread fork/join, residual
        norm reductions, damping logic.
    flops_per_nonzero_assembly:
        Work to compute one Jacobian nonzero plus its residual share.
    power_watts:
        Package power of two X5550s (95 W TDP each) plus board.
    """

    effective_gflops: float = 10.0
    iteration_overhead_seconds: float = 2.0e-5
    flops_per_nonzero_assembly: float = 12.0
    power_watts: float = 220.0

    def newton_iteration_seconds(self, num_unknowns: int, nnz: int) -> float:
        """Modeled seconds of one damped-Newton iteration.

        Charges sparse assembly plus a dense LU solve of the
        ``num_unknowns``-sized Newton system ((2/3) n^3 + 2 n^2 flops).
        """
        if num_unknowns < 0 or nnz < 0:
            raise ValueError("operation counts must be nonnegative")
        n = float(num_unknowns)
        flops = nnz * self.flops_per_nonzero_assembly + (2.0 / 3.0) * n**3 + 2.0 * n**2
        return self.iteration_overhead_seconds + flops / (self.effective_gflops * 1e9)

    def solve_seconds(
        self, result: NewtonResult, num_unknowns: int, nnz: int, count_restarts: bool = False
    ) -> float:
        """Modeled seconds of a whole Newton solve.

        ``count_restarts = False`` reproduces the paper's charitable
        accounting ("counting only the time spent using the correct
        damping parameter"); True charges the honest total.
        """
        iterations = (
            result.total_iterations_including_restarts if count_restarts else result.iterations
        )
        iterations = max(iterations, result.iterations)
        return iterations * self.newton_iteration_seconds(num_unknowns, nnz)

    def solve_seconds_from_counts(self, iterations: int, num_unknowns: int, nnz: int) -> float:
        """Modeled seconds from explicit counts (equal-accuracy runs)."""
        if iterations < 0:
            raise ValueError("iterations must be nonnegative")
        return iterations * self.newton_iteration_seconds(num_unknowns, nnz)

    def solve_seconds_from_stats(
        self, stats: "LinearSolverStats", num_unknowns: int, nnz: int
    ) -> float:
        """Modeled seconds from measured linear-kernel accounting.

        Unlike :meth:`solve_seconds` (which charges a dense LU per Newton
        iteration), this charges what the iterative kernel actually did:
        sparse assembly per outer solve, ~4 sparse matvecs' work per
        preconditioner build, and 2 nnz flops per recorded matvec —
        so reused factorizations translate into cheaper modeled time.
        """
        if num_unknowns < 0 or nnz < 0:
            raise ValueError("operation counts must be nonnegative")
        assembly_flops = stats.solves * nnz * self.flops_per_nonzero_assembly
        build_flops = stats.preconditioner_builds * 4.0 * 2.0 * nnz
        krylov_flops = stats.matvecs * 2.0 * nnz
        seconds = (assembly_flops + build_flops + krylov_flops) / (self.effective_gflops * 1e9)
        return seconds + stats.solves * self.iteration_overhead_seconds

    def energy_joules(self, seconds: float) -> float:
        if seconds < 0.0:
            raise ValueError("seconds must be nonnegative")
        return self.power_watts * seconds
