"""Schema-versioned benchmark reports (``BENCH_<n>.json``).

The repo's performance trajectory is a sequence of numbered JSON
reports at the repository root: ``BENCH_1.json``, ``BENCH_2.json``, …
— one per PR that cares about speed. Each report is one JSON document:

* ``bench_schema`` — integer version of *this* layout;
* ``manifest`` — provenance, stamped by the same
  :func:`repro.trace.exporter.build_manifest` that stamps every trace
  header (``repro_version``, ``created_unix``, plus the bench command
  line: scale, seed);
* ``scale`` / ``seed`` — the suite parameters (reports are only
  comparable at equal scale and seed);
* ``benchmarks`` — name → :class:`BenchmarkResult`: wall-clock,
  per-span-name duration sums and counts from :mod:`repro.trace`,
  tracer counter totals, deterministic *work* metrics (Newton
  iterations, linear solves — bitwise reproducible at fixed seed, the
  cross-machine regression signal), and peak RSS from
  ``resource.getrusage``.

:func:`validate_report` is the contract the comparator and CI enforce;
it returns a list of human-readable problems (empty = valid) rather
than raising, so a gate can show everything wrong at once.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BENCH_FILE_PATTERN",
    "BenchmarkResult",
    "BenchReport",
    "validate_report",
    "bench_index",
    "list_bench_files",
    "latest_bench_path",
    "next_bench_path",
]

BENCH_SCHEMA_VERSION = 1

# BENCH_<n>.json with a positive integer index.
BENCH_FILE_PATTERN = re.compile(r"^BENCH_(\d+)\.json$")

PathLike = Union[str, Path]


@dataclass
class BenchmarkResult:
    """One benchmark's measurements.

    ``span_seconds``/``span_counts`` are per-span-name duration sums
    and record counts from the benchmark's tracer (``linear_solve``,
    ``analog_settle``, …). ``work`` holds deterministic effort metrics
    — identical across machines at fixed seed — while ``wall_seconds``
    and ``span_seconds`` are machine-local timings.
    """

    name: str
    wall_seconds: float
    span_seconds: Dict[str, float] = field(default_factory=dict)
    span_counts: Dict[str, int] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)
    work: Dict[str, float] = field(default_factory=dict)
    peak_rss_kb: int = 0
    params: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "wall_seconds": self.wall_seconds,
            "span_seconds": dict(self.span_seconds),
            "span_counts": dict(self.span_counts),
            "counters": dict(self.counters),
            "work": dict(self.work),
            "peak_rss_kb": self.peak_rss_kb,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "BenchmarkResult":
        return cls(
            name=str(doc["name"]),
            wall_seconds=float(doc["wall_seconds"]),
            span_seconds={k: float(v) for k, v in doc.get("span_seconds", {}).items()},
            span_counts={k: int(v) for k, v in doc.get("span_counts", {}).items()},
            counters={k: float(v) for k, v in doc.get("counters", {}).items()},
            work={k: float(v) for k, v in doc.get("work", {}).items()},
            peak_rss_kb=int(doc.get("peak_rss_kb", 0)),
            params=dict(doc.get("params", {})),
        )

    def metric(self, name: str) -> Optional[float]:
        """Look up one metric by dotted path: ``wall_seconds``,
        ``span_seconds.linear_solve``, ``work.newton_iterations``,
        ``counters.runtime_attempts``; None when absent."""
        if name == "wall_seconds":
            return float(self.wall_seconds)
        if name == "peak_rss_kb":
            return float(self.peak_rss_kb)
        group, _, key = name.partition(".")
        table = {
            "span_seconds": self.span_seconds,
            "span_counts": self.span_counts,
            "counters": self.counters,
            "work": self.work,
        }.get(group)
        if table is None or key not in table:
            return None
        return float(table[key])


@dataclass
class BenchReport:
    """One full suite run: manifest plus every benchmark's result."""

    scale: str
    seed: int
    manifest: Dict[str, Any] = field(default_factory=dict)
    benchmarks: Dict[str, BenchmarkResult] = field(default_factory=dict)
    bench_schema: int = BENCH_SCHEMA_VERSION

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bench_schema": self.bench_schema,
            "scale": self.scale,
            "seed": self.seed,
            "manifest": dict(self.manifest),
            "benchmarks": {
                name: self.benchmarks[name].to_dict()
                for name in sorted(self.benchmarks)
            },
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "BenchReport":
        problems = validate_report(doc)
        if problems:
            raise ValueError("invalid bench report: " + "; ".join(problems))
        return cls(
            scale=str(doc["scale"]),
            seed=int(doc["seed"]),
            manifest=dict(doc.get("manifest", {})),
            benchmarks={
                name: BenchmarkResult.from_dict(bench_doc)
                for name, bench_doc in doc["benchmarks"].items()
            },
            bench_schema=int(doc["bench_schema"]),
        )

    def save(self, path: PathLike) -> Path:
        from repro.checkpoint.atomic import atomic_write_text

        path = Path(path)
        atomic_write_text(
            path, json.dumps(self.to_dict(), indent=2, sort_keys=False) + "\n"
        )
        return path

    def render(self) -> str:
        """Human-readable summary table (the ``repro bench`` output)."""
        from repro.reporting import ascii_table

        rows = []
        for name in sorted(self.benchmarks):
            bench = self.benchmarks[name]
            rows.append(
                {
                    "benchmark": name,
                    "wall (s)": f"{bench.wall_seconds:.3f}",
                    "linear_solve (s)": f"{bench.span_seconds.get('linear_solve', 0.0):.3f}",
                    "analog_settle (s)": f"{bench.span_seconds.get('analog_settle', 0.0):.3f}",
                    "newton iters": int(bench.work.get("newton_iterations", 0)),
                    "linear solves": int(bench.work.get("linear_solves", 0)),
                    "peak RSS (MiB)": f"{bench.peak_rss_kb / 1024:.1f}",
                }
            )
        header = (
            f"bench suite: scale={self.scale} seed={self.seed} "
            f"schema={self.bench_schema} repro={self.manifest.get('repro_version', '?')}"
        )
        return f"{header}\n\n{ascii_table(rows)}"

    @classmethod
    def load(cls, path: PathLike) -> "BenchReport":
        try:
            doc = json.loads(Path(path).read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not valid JSON: {exc}") from exc
        try:
            return cls.from_dict(doc)
        except ValueError as exc:
            raise ValueError(f"{path}: {exc}") from exc


def validate_report(doc: Any) -> List[str]:
    """Structural validation of a bench-report dict; [] when valid."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return [f"report must be a JSON object, got {type(doc).__name__}"]
    schema = doc.get("bench_schema")
    if not isinstance(schema, int):
        problems.append("missing integer 'bench_schema'")
    elif schema > BENCH_SCHEMA_VERSION:
        problems.append(
            f"bench_schema {schema} is newer than this reader "
            f"({BENCH_SCHEMA_VERSION}); upgrade repro"
        )
    if not isinstance(doc.get("scale"), str):
        problems.append("missing string 'scale'")
    if not isinstance(doc.get("seed"), int):
        problems.append("missing integer 'seed'")
    manifest = doc.get("manifest")
    if not isinstance(manifest, dict):
        problems.append("missing object 'manifest'")
    benchmarks = doc.get("benchmarks")
    if not isinstance(benchmarks, dict) or not benchmarks:
        problems.append("missing non-empty object 'benchmarks'")
        return problems
    for name, bench_doc in benchmarks.items():
        if not isinstance(bench_doc, dict):
            problems.append(f"benchmarks[{name!r}] must be an object")
            continue
        if bench_doc.get("name") != name:
            problems.append(f"benchmarks[{name!r}]: 'name' field disagrees with key")
        wall = bench_doc.get("wall_seconds")
        if not isinstance(wall, (int, float)) or wall < 0:
            problems.append(f"benchmarks[{name!r}]: missing non-negative 'wall_seconds'")
        for group in ("span_seconds", "span_counts", "counters", "work", "params"):
            value = bench_doc.get(group, {})
            if not isinstance(value, dict):
                problems.append(f"benchmarks[{name!r}]: {group!r} must be an object")
        for group in ("span_seconds", "span_counts", "counters", "work"):
            value = bench_doc.get(group, {})
            if isinstance(value, dict):
                for key, number in value.items():
                    if not isinstance(number, (int, float)):
                        problems.append(
                            f"benchmarks[{name!r}]: {group}.{key} is not numeric"
                        )
    return problems


# -- trajectory file management ---------------------------------------


def bench_index(path: PathLike) -> Optional[int]:
    """The ``<n>`` of a ``BENCH_<n>.json`` filename; None otherwise."""
    match = BENCH_FILE_PATTERN.match(Path(path).name)
    return int(match.group(1)) if match else None


def list_bench_files(root: PathLike = ".") -> List[Tuple[int, Path]]:
    """All ``BENCH_<n>.json`` files under ``root``, ordered by index."""
    found = []
    for path in Path(root).glob("BENCH_*.json"):
        index = bench_index(path)
        if index is not None:
            found.append((index, path))
    return sorted(found)


def latest_bench_path(root: PathLike = ".") -> Optional[Path]:
    files = list_bench_files(root)
    return files[-1][1] if files else None


def next_bench_path(root: PathLike = ".") -> Path:
    """The next free slot in the trajectory (``BENCH_<latest+1>.json``)."""
    files = list_bench_files(root)
    next_index = files[-1][0] + 1 if files else 1
    return Path(root) / f"BENCH_{next_index}.json"
