"""Digital Newton's method: classical, damped, and the paper's baseline.

Section 2.1 of the paper reviews the two digital variants:

* **classical Newton**: ``u <- u - J(u)^{-1} F(u)`` — quadratically
  convergent near a root, fractally sensitive to the initial guess;
* **damped Newton**: the full step is scaled by ``h in (0, 1]``, which
  grows the convergence basins at the cost of more iterations, and is
  the Euler discretization of the continuous Newton ODE.

The paper's *baseline digital solver* (Section 6.1) starts at damping
1.0 and halves the damping on failure until convergence is possible,
counting only the final (successful) run's work. That restart schedule
is :func:`damped_newton_with_restarts`, which reports both the
charitable "paper accounting" and the true total work.

Each Newton step solves ``J delta = F``. The linear kernel is
pluggable and comes in two forms:

* a stateful :class:`~repro.linalg.kernel.LinearKernel` — the
  preferred hot-path form. The kernel owns its preconditioner and
  reuses the factorization across Newton steps while the Jacobian's
  sparsity pattern is unchanged (refreshing only when the Krylov
  residual-reduction rate degrades), and it charges every inner
  iteration to a :class:`~repro.linalg.kernel.LinearSolverStats` sink,
  so ``NewtonResult.linear_stats`` reflects the true inner work the
  CPU/GPU cost models bill for;
* a bare ``solver(jacobian, rhs)`` callable, kept as a thin
  backward-compatible adapter (stats then only count outer solves).

When no solver is given, :func:`newton_solve` builds a fresh
``LinearKernel`` per solve: dense LU for array Jacobians,
Jacobi-preconditioned Bi-CGstab (with GMRES and emergency-dense
fallbacks) for CSR — and the per-solve statistics are recorded instead
of silently dropped. :func:`make_sparse_linear_solver` now returns a
``LinearKernel`` (which is itself callable), so existing call sites
keep working while gaining factorization reuse and additive fallback
accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Union

import numpy as np

from repro.linalg.dense import SingularMatrixError
from repro.linalg.kernel import LinearKernel, LinearSolverStats
from repro.linalg.sparse import CsrMatrix
from repro.nonlinear.systems import NonlinearSystem
from repro.trace.tracer import TracerLike, as_tracer

__all__ = [
    "IterationHook",
    "NewtonOptions",
    "NewtonResult",
    "LinearSolverStats",
    "LinearKernel",
    "newton_solve",
    "damped_newton_with_restarts",
    "make_sparse_linear_solver",
]

JacobianLike = Union[np.ndarray, CsrMatrix]
LinearSolver = Callable[[JacobianLike, np.ndarray], np.ndarray]
# Called at the top of every Newton iteration with (iteration,
# residual_norm). The fault-tolerant runtime uses it as its cooperative
# cancellation seam: a deadline check raises
# :class:`repro.runtime.api.DeadlineExceeded` to abort the solve, and
# the chaos harness's FaultInjector uses it to inject bounded hangs.
# Exceptions raised here propagate out of the solve (trace spans close
# on the way out).
IterationHook = Callable[[int, float], None]
# Accepted everywhere a linear solver is pluggable: a stateful kernel
# or the legacy bare callable.
LinearSolverLike = Union[LinearKernel, LinearSolver]


class NewtonDivergence(RuntimeError):
    """Raised internally when an iteration produces a non-finite state."""


@dataclass
class NewtonOptions:
    """Knobs of the digital Newton iteration.

    Attributes
    ----------
    damping:
        Step-size fraction ``h``; 1.0 is classical Newton.
    tolerance:
        Convergence threshold on the residual 2-norm. The paper's
        high-precision runs use double-epsilon-scaled tolerances.
    max_iterations:
        Iteration cap; hitting it reports non-convergence.
    divergence_threshold:
        Residual growth beyond this multiple of the initial residual is
        declared divergence (saves pointless iterations).
    """

    damping: float = 1.0
    tolerance: float = 1e-12
    max_iterations: int = 200
    divergence_threshold: float = 1e6

    def __post_init__(self) -> None:
        if not 0.0 < self.damping <= 1.0:
            raise ValueError(f"damping must be in (0, 1], got {self.damping}")
        if self.tolerance <= 0.0:
            raise ValueError("tolerance must be positive")
        if self.max_iterations <= 0:
            raise ValueError("max_iterations must be positive")


@dataclass
class NewtonResult:
    """Outcome of a (possibly restarted) Newton solve."""

    u: np.ndarray
    converged: bool
    iterations: int
    residual_norm: float
    residual_history: List[float] = field(default_factory=list)
    damping_used: float = 1.0
    restarts: int = 0
    total_iterations_including_restarts: int = 0
    linear_stats: LinearSolverStats = field(default_factory=LinearSolverStats)
    total_linear_stats: Optional[LinearSolverStats] = None
    failure_reason: Optional[str] = None


def default_linear_solver(
    jacobian: JacobianLike, rhs: np.ndarray, stats: Optional[LinearSolverStats] = None
) -> np.ndarray:
    """Backward-compatible one-shot solve: dense LU for arrays,
    preconditioned Krylov (with fallbacks) for CSR.

    Prefer passing a :class:`LinearKernel` to the Newton drivers — a
    fresh kernel per call cannot reuse factorizations. ``stats``, when
    given, receives the solve's full inner-iteration accounting.
    """
    return LinearKernel(stats=stats).solve(jacobian, rhs)


def make_sparse_linear_solver(
    tol: float = 1e-10,
    max_iterations: int = 2_000,
    stats: Optional[LinearSolverStats] = None,
    preconditioner_kind: str = "jacobi",
) -> LinearKernel:
    """Build the library's production sparse kernel for Newton steps.

    Thin adapter over :class:`~repro.linalg.kernel.LinearKernel`
    (returned directly — a kernel instance is a valid
    ``solver(jacobian, rhs)`` callable). Runs preconditioned Bi-CGstab
    (the Table 1 kernel of the bwaves-style solvers); if it stalls,
    falls back to restarted GMRES, and finally to a dense solve for
    small systems. The factorization is cached and reused while the
    CSR sparsity pattern is unchanged, and inner-iteration counts are
    recorded **additively across all attempts** in ``stats`` when
    provided — the CPU/GPU models charge per inner iteration.

    ``preconditioner_kind`` selects ``"jacobi"`` (default — fully
    vectorized, right for the diagonally dominant Burgers Jacobians),
    ``"ilu0"`` (stronger but row-serial), or ``"none"``.
    """
    return LinearKernel(
        tol=tol,
        max_iterations=max_iterations,
        stats=stats,
        preconditioner_kind=preconditioner_kind,
    )


def _traced_linear_solve(
    tracer: TracerLike,
    kernel: Optional[LinearKernel],
    solve: Optional[LinearSolver],
    jacobian: JacobianLike,
    rhs: np.ndarray,
    stats: LinearSolverStats,
) -> np.ndarray:
    """One inner linear solve, charged to ``stats`` and (when a
    recording tracer is given) wrapped in a ``linear_solve`` span whose
    attributes carry the PR-1 kernel counters for exactly this call."""
    if not tracer.active:
        if kernel is not None:
            return kernel.solve(jacobian, rhs, sink=stats)
        delta = solve(jacobian, rhs)
        stats.solves += 1
        return delta
    with tracer.span("linear_solve") as span:
        if kernel is not None:
            call_stats = LinearSolverStats()
            delta = kernel.solve(jacobian, rhs, sink=call_stats)
            stats.merge(call_stats)
            span.update(
                solves=call_stats.solves,
                inner_iterations=call_stats.inner_iterations,
                matvecs=call_stats.matvecs,
                preconditioner_builds=call_stats.preconditioner_builds,
                gmres_fallbacks=call_stats.gmres_fallbacks,
                dense_fallbacks=call_stats.dense_fallbacks,
            )
        else:
            delta = solve(jacobian, rhs)
            stats.solves += 1
            span.update(solves=1, inner_iterations=0, matvecs=0, preconditioner_builds=0)
    return delta


def newton_solve(
    system: NonlinearSystem,
    u0: np.ndarray,
    options: Optional[NewtonOptions] = None,
    linear_solver: Optional[LinearSolverLike] = None,
    tracer: Optional[TracerLike] = None,
    iteration_hook: Optional[IterationHook] = None,
) -> NewtonResult:
    """Run (damped) Newton's method from ``u0``.

    The iteration is ``u <- u - h * J(u)^{-1} F(u)`` with ``h`` fixed at
    ``options.damping``. Convergence is declared when the residual
    2-norm drops below ``options.tolerance``; divergence when the state
    stops being finite, the Jacobian is singular to working precision,
    or the residual grows past ``options.divergence_threshold`` times
    its initial value.

    ``linear_solver`` may be a stateful
    :class:`~repro.linalg.kernel.LinearKernel` (preferred: the
    preconditioner is reused across the Newton steps and the full
    inner-solve accounting lands in ``NewtonResult.linear_stats``) or a
    bare callable. When omitted, a fresh kernel is created for this
    solve.

    ``tracer`` (a :class:`repro.trace.Tracer`) records one
    ``newton_iter`` span per iteration — residual norm and damping as
    attributes — each containing a ``linear_solve`` span carrying the
    inner kernel counters. The default is the no-op null tracer.
    """
    options = options or NewtonOptions()
    tracer = as_tracer(tracer)
    kernel: Optional[LinearKernel]
    if linear_solver is None:
        kernel = LinearKernel()
        solve: Optional[LinearSolver] = None
    elif isinstance(linear_solver, LinearKernel):
        kernel = linear_solver
        solve = None
    else:
        kernel = None
        solve = linear_solver
    u = np.array(u0, dtype=float, copy=True)
    stats = LinearSolverStats()

    residual = system.residual(u)
    norm = float(np.linalg.norm(residual))
    history = [norm]
    initial_norm = max(norm, 1e-300)

    if norm <= options.tolerance:
        return NewtonResult(
            u=u,
            converged=True,
            iterations=0,
            residual_norm=norm,
            residual_history=history,
            damping_used=options.damping,
            linear_stats=stats,
        )

    for iteration in range(1, options.max_iterations + 1):
        if iteration_hook is not None:
            iteration_hook(iteration, norm)
        with tracer.span(
            "newton_iter", iteration=iteration, damping=options.damping
        ) as iter_span:
            jacobian = system.jacobian(u)
            try:
                delta = _traced_linear_solve(tracer, kernel, solve, jacobian, residual, stats)
            except SingularMatrixError:
                iter_span.set("failure", "singular Jacobian")
                return NewtonResult(
                    u=u,
                    converged=False,
                    iterations=iteration - 1,
                    residual_norm=norm,
                    residual_history=history,
                    damping_used=options.damping,
                    linear_stats=stats,
                    failure_reason="singular Jacobian",
                )
            u = u - options.damping * delta
            if not np.all(np.isfinite(u)):
                iter_span.set("failure", "non-finite iterate")
                return NewtonResult(
                    u=u,
                    converged=False,
                    iterations=iteration,
                    residual_norm=float("inf"),
                    residual_history=history,
                    damping_used=options.damping,
                    linear_stats=stats,
                    failure_reason="non-finite iterate",
                )
            residual = system.residual(u)
            norm = float(np.linalg.norm(residual))
            history.append(norm)
            iter_span.set("residual_norm", norm)
            if norm <= options.tolerance:
                return NewtonResult(
                    u=u,
                    converged=True,
                    iterations=iteration,
                    residual_norm=norm,
                    residual_history=history,
                    damping_used=options.damping,
                    linear_stats=stats,
                )
            if norm > options.divergence_threshold * initial_norm:
                iter_span.set("failure", "residual diverged")
                return NewtonResult(
                    u=u,
                    converged=False,
                    iterations=iteration,
                    residual_norm=norm,
                    residual_history=history,
                    damping_used=options.damping,
                    linear_stats=stats,
                    failure_reason="residual diverged",
                )
    return NewtonResult(
        u=u,
        converged=False,
        iterations=options.max_iterations,
        residual_norm=norm,
        residual_history=history,
        damping_used=options.damping,
        linear_stats=stats,
        failure_reason="iteration cap reached",
    )


def damped_newton_with_restarts(
    system: NonlinearSystem,
    u0: np.ndarray,
    options: Optional[NewtonOptions] = None,
    linear_solver: Optional[LinearSolverLike] = None,
    min_damping: float = 1.0 / 1024.0,
    tracer: Optional[TracerLike] = None,
    iteration_hook: Optional[IterationHook] = None,
) -> NewtonResult:
    """The paper's baseline solver: halve the damping until convergence.

    Starts at ``options.damping`` (default 1.0). On failure, halves the
    damping and restarts from ``u0``, down to ``min_damping``. Matching
    the paper's charitable accounting ("we give the digital solver the
    advantage counting only the time spent using the correct damping
    parameter"), the returned ``iterations`` counts only the successful
    run; the honest total including failed restarts is in
    ``total_iterations_including_restarts``, and the honest
    inner-linear-solve total across every attempt is in
    ``total_linear_stats`` (``linear_stats`` keeps the successful run's
    share). A :class:`~repro.linalg.kernel.LinearKernel` passed as
    ``linear_solver`` is shared across the restart attempts, so the
    preconditioner built on the first attempt keeps paying off.
    """
    options = options or NewtonOptions()
    tracer = as_tracer(tracer)
    if linear_solver is None:
        # One kernel for the whole restart schedule: the sparsity
        # pattern is fixed, so failed-damping attempts reuse the
        # factorization instead of rebuilding it.
        linear_solver = LinearKernel()
    damping = options.damping
    restarts = 0
    total_iterations = 0
    total_stats = LinearSolverStats()
    last: Optional[NewtonResult] = None
    while damping >= min_damping:
        attempt_options = NewtonOptions(
            damping=damping,
            tolerance=options.tolerance,
            max_iterations=options.max_iterations,
            divergence_threshold=options.divergence_threshold,
        )
        with tracer.span("newton_attempt", damping=damping, restart=restarts) as attempt:
            result = newton_solve(
                system,
                u0,
                attempt_options,
                linear_solver,
                tracer=tracer,
                iteration_hook=iteration_hook,
            )
            attempt.update(converged=result.converged, iterations=result.iterations)
        total_iterations += result.iterations
        total_stats.merge(result.linear_stats)
        if not result.converged:
            tracer.counter("newton_restarts")
        if result.converged:
            result.restarts = restarts
            result.total_iterations_including_restarts = total_iterations
            result.total_linear_stats = total_stats
            return result
        last = result
        restarts += 1
        damping /= 2.0
    assert last is not None
    last.restarts = restarts
    last.total_iterations_including_restarts = total_iterations
    last.total_linear_stats = total_stats
    last.failure_reason = f"no damping in [{min_damping}, {options.damping}] converged"
    return last
