"""Hypothesis property suite for the fleet scheduler.

The routing safety invariants the chaos tier relies on, checked over
arbitrary interleavings of route / observe / kill operations:

* the fleet NEVER hands out an ineligible board — every non-exhausted
  assignment names a board that was neither quarantined nor killed at
  decision time (and the fleet's own audit log agrees:
  ``routed_while_ineligible`` stays zero);
* exhaustion is structured and exact — ``fleet_exhausted`` is returned
  iff no eligible board existed when the route was requested, never as
  a spurious fallback while healthy capacity remained;
* quarantine honours hysteresis — a board is only ever quarantined at
  or past ``min_observations`` observations, and recalibration (the
  only quarantine exit short of ``kill``) always bumps the epoch.
"""

from dataclasses import dataclass
from typing import Optional, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import AnalogFleet, FleetConfig, PredictiveSeedGate
from repro.runtime.api import ProblemSpec, SolveRequest


@dataclass
class _Report:
    """The slice of a ladder report the fleet's observe() reads."""

    rung: Optional[str]
    rungs_tried: Tuple[str, ...]
    health: Optional[dict]


def _request(index: int) -> SolveRequest:
    return SolveRequest(f"prop-{index:04d}", ProblemSpec.quadratic())


_OPS = st.lists(
    st.one_of(
        # route, then feed back synthetic evidence (rejected?, drift).
        st.tuples(
            st.just("route"),
            st.booleans(),
            st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
        ),
        st.tuples(st.just("kill"), st.integers(min_value=0, max_value=3)),
    ),
    max_size=40,
)


@st.composite
def _scenarios(draw):
    boards = draw(st.integers(min_value=1, max_value=4))
    config = FleetConfig(
        boards=boards,
        min_observations=draw(st.integers(min_value=1, max_value=3)),
        quarantine_rejections=draw(st.floats(min_value=0.3, max_value=0.9)),
        quarantine_drift=draw(st.floats(min_value=0.5, max_value=2.0)),
        recalibration_pressure=draw(st.floats(min_value=0.5, max_value=1.0)),
        # Gating is irrelevant to the routing invariants; disabling it
        # keeps every routed attempt an observable analog attempt.
        gate=PredictiveSeedGate(enabled=False),
    )
    return config, draw(_OPS)


@given(_scenarios())
@settings(max_examples=60, deadline=None)
def test_routing_never_hands_out_ineligible_board(scenario):
    config, ops = scenario
    fleet = AnalogFleet(config, seed=3)
    for index, op in enumerate(ops):
        if op[0] == "kill":
            board_id = op[1] % config.boards
            fleet.kill_board(board_id)
            assert not fleet.boards[board_id].eligible
            continue
        _, rejected, drift = op
        eligible_before = {board.board_id for board in fleet.eligible_boards()}
        assignment, events = fleet.route(_request(index), attempt=0)
        if eligible_before:
            # Healthy capacity existed: it must be used, and only a
            # board healthy at decision time may be named.
            assert not assignment.fleet_exhausted
            assert assignment.board_id in eligible_before
            assert "fleet_exhausted" not in events
        else:
            # No healthy board: exhaustion must be structured, not a
            # route to a quarantined/killed board.
            assert assignment.fleet_exhausted
            assert events.get("fleet_exhausted") == 1
            continue
        fleet.observe(
            assignment,
            _Report(
                rung="damped_newton" if rejected else "hybrid",
                rungs_tried=("hybrid",),
                health={"gain_drift": {"t0": drift}, "offset_drift": {}},
            ),
        )
    stats = fleet.stats()
    assert stats["routed_while_ineligible"] == 0
    for board in fleet.boards:
        if board.quarantined:
            assert board.observations >= config.min_observations
        if board.recalibrations:
            assert board.epoch == board.recalibrations


@given(st.integers(min_value=1, max_value=4), st.integers(min_value=0, max_value=12))
@settings(max_examples=40, deadline=None)
def test_all_boards_killed_always_exhausts(boards, extra_routes):
    fleet = AnalogFleet(FleetConfig(boards=boards), seed=0)
    for board_id in range(boards):
        fleet.kill_board(board_id)
    for index in range(1 + extra_routes):
        assignment, events = fleet.route(_request(index), attempt=0)
        assert assignment.fleet_exhausted
        assert assignment.skip_analog
    assert fleet.stats()["counters"]["fleet_exhausted"] == 1 + extra_routes
    assert fleet.stats()["routed_while_ineligible"] == 0
