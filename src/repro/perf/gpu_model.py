"""Cost model of the paper's GPU baseline (Section 6.3).

"For our baseline digital solver we offload work to a QR factorization
solver, provided in the Nvidia cuSolver GPU sparse linear algebra
library, running on an Nvidia GTX 1070 GPU."

Each Newton step is charged:

* a kernel-pipeline overhead (launches, symbolic analysis reuse,
  host-device synchronization) — dominant at small sizes,
* a sparse-traffic term proportional to the Jacobian's stored nonzeros
  (assembly upload + factor/solve memory traffic), and
* a factorization-flop term from
  :func:`repro.linalg.qr.qr_operation_count`, which grows superlinearly
  with the grid because the stencil bandwidth grows with grid width —
  the reason 32x32 costs far more per step than 16x16 in Figure 9.

Default constants are calibrated so the Figure 9 baseline points
(0.51 s at 16x16, 2.75 s at 32x32, Re = 2.0) are reproduced with this
library's measured Newton iteration counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.linalg.qr import qr_operation_count
from repro.linalg.sparse import CsrMatrix
from repro.nonlinear.newton import NewtonResult

__all__ = ["GpuModel"]


@dataclass(frozen=True)
class GpuModel:
    """Time/energy model of the GTX 1070 cuSolver-QR Newton baseline.

    Attributes
    ----------
    step_overhead_seconds:
        Fixed per-Newton-step cost (kernel launches, transfers, sync).
    seconds_per_nonzero:
        Sparse assembly/solve traffic per stored Jacobian nonzero.
    effective_gflops:
        Sustained factorization throughput on stencil-banded sparse QR
        (far below the 6.5 TFLOPS peak: short panels, irregular
        parallelism).
    power_watts:
        Effective average draw of the cuSolver pipeline. Calibrated to
        the paper's Figure 9 energy/time ratios (which imply ~47-71 W
        average, far below the GTX 1070's 150 W TDP: sparse QR on these
        sizes is launch- and transfer-bound).
    """

    step_overhead_seconds: float = 1.0e-3
    seconds_per_nonzero: float = 4.0e-7
    effective_gflops: float = 25.0
    power_watts: float = 60.0

    def newton_step_seconds(self, jacobian: CsrMatrix) -> float:
        """Modeled seconds of one Newton step's QR solve on the GPU."""
        flops = qr_operation_count(jacobian)
        return (
            self.step_overhead_seconds
            + jacobian.nnz * self.seconds_per_nonzero
            + flops / (self.effective_gflops * 1e9)
        )

    def solve_seconds(
        self, result: NewtonResult, jacobian: CsrMatrix, count_restarts: bool = False
    ) -> float:
        """Modeled seconds of a whole GPU-offloaded Newton solve."""
        iterations = (
            result.total_iterations_including_restarts if count_restarts else result.iterations
        )
        iterations = max(iterations, result.iterations)
        return iterations * self.newton_step_seconds(jacobian)

    def energy_joules(self, seconds: float) -> float:
        if seconds < 0.0:
            raise ValueError("seconds must be nonnegative")
        return self.power_watts * seconds
