"""The paper's headline method: analog-seeded digital solving.

* :mod:`repro.core.hybrid` — the hybrid pipeline: an (approximate)
  analog continuous-Newton solve seeds a high-precision digital Newton
  solver, which then starts inside the quadratic convergence region and
  needs no damping (Section 6.2).
* :mod:`repro.core.gauss_seidel` — red-black *nonlinear* Gauss-Seidel
  decomposition, the divide-and-conquer scheme that fits problems
  larger than the accelerator (32x32 grids on a 16x16-capable chip)
  onto the analog hardware (Section 6.3).
"""

from repro.core.hybrid import HybridResult, HybridSolver
from repro.core.gauss_seidel import RedBlackGaussSeidel, GaussSeidelResult

__all__ = [
    "HybridResult",
    "HybridSolver",
    "RedBlackGaussSeidel",
    "GaussSeidelResult",
]
