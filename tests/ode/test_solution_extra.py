"""Additional tests for OdeSolution bookkeeping."""

import numpy as np
import pytest

from repro.ode.solution import OdeSolution


def make_solution():
    ts = [0.0, 1.0, 2.0]
    ys = [np.array([0.0]), np.array([1.0]), np.array([4.0])]
    return OdeSolution.from_lists(ts, ys, settled=True, settle_time=2.0, rhs_evaluations=12)


class TestOdeSolution:
    def test_from_lists_roundtrip(self):
        solution = make_solution()
        assert solution.final_time == 2.0
        assert solution.final_state[0] == 4.0
        assert solution.settled
        assert solution.settle_time == 2.0
        assert solution.rhs_evaluations == 12

    def test_sample_midpoint_interpolates(self):
        solution = make_solution()
        assert solution.sample(0.5)[0] == pytest.approx(0.5)
        assert solution.sample(1.5)[0] == pytest.approx(2.5)

    def test_sample_at_nodes_exact(self):
        solution = make_solution()
        assert solution.sample(1.0)[0] == pytest.approx(1.0)

    def test_sample_clamps(self):
        solution = make_solution()
        assert solution.sample(-1.0)[0] == 0.0
        assert solution.sample(10.0)[0] == 4.0

    def test_degenerate_equal_times(self):
        solution = OdeSolution.from_lists(
            [0.0, 0.0], [np.array([1.0]), np.array([2.0])]
        )
        # Zero-width interval: weight collapses to the earlier sample.
        assert np.isfinite(solution.sample(0.0)[0])

    def test_defaults(self):
        solution = OdeSolution.from_lists([0.0], [np.array([3.0])])
        assert not solution.settled
        assert solution.settle_time is None
        assert solution.rejected_steps == 0
