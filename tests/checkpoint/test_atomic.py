"""Atomic-write primitives and bitwise array/digest serialization."""

import json
import os

import numpy as np
import pytest

from repro.checkpoint.atomic import (
    atomic_write_bytes,
    atomic_write_text,
    decode_array,
    encode_array,
    payload_digest,
)


class TestAtomicWrites:
    def test_write_then_read_back(self, tmp_path):
        path = tmp_path / "f.txt"
        atomic_write_text(path, "hello\n")
        assert path.read_text() == "hello\n"
        atomic_write_bytes(path, b"\x00\x01\x02")
        assert path.read_bytes() == b"\x00\x01\x02"

    def test_replaces_existing_file(self, tmp_path):
        path = tmp_path / "f.txt"
        path.write_text("old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"

    def test_no_temp_litter_after_success(self, tmp_path):
        atomic_write_text(tmp_path / "f.txt", "data")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["f.txt"]

    def test_failure_leaves_no_partial_target(self, tmp_path):
        path = tmp_path / "f.txt"
        path.write_text("intact")
        with pytest.raises(TypeError):
            atomic_write_bytes(path, object())  # not bytes -> write fails
        assert path.read_text() == "intact"
        assert sorted(p.name for p in tmp_path.iterdir()) == ["f.txt"]


class TestArrayCodec:
    @pytest.mark.parametrize(
        "array",
        [
            np.arange(6, dtype=float),
            np.linspace(-1, 1, 12).reshape(3, 4),
            np.array([np.pi, -0.0, 1e-308, 1e308]),
            np.array([], dtype=float),
            np.arange(4, dtype=np.int64),
        ],
    )
    def test_roundtrip_is_bitwise(self, array):
        decoded = decode_array(encode_array(array))
        assert decoded.dtype == array.dtype
        assert decoded.shape == array.shape
        assert decoded.tobytes() == array.tobytes()

    def test_special_values_survive(self):
        array = np.array([np.nan, np.inf, -np.inf])
        decoded = decode_array(encode_array(array))
        # NaN payload bits included: compare raw bytes, not values.
        assert decoded.tobytes() == array.tobytes()

    def test_noncontiguous_input_is_canonicalized(self):
        base = np.arange(20, dtype=float).reshape(4, 5)
        view = base[:, ::2]  # non-contiguous strided view
        decoded = decode_array(encode_array(view))
        np.testing.assert_array_equal(decoded, view)


class TestPayloadDigest:
    def test_insensitive_to_key_order(self):
        assert payload_digest({"a": 1, "b": [2, 3]}) == payload_digest(
            {"b": [2, 3], "a": 1}
        )

    def test_sensitive_to_values(self):
        assert payload_digest({"a": 1.0}) != payload_digest({"a": 1.0000000001})

    def test_stable_across_json_roundtrip(self):
        """The property resume leans on: load(dump(payload)) re-digests
        to the same hash, floats included."""
        payload = {
            "x": [0.1 + 0.2, 1e-17, 3.141592653589793],
            "nested": {"arr": encode_array(np.linspace(0, 1, 7))},
            "flag": None,
        }
        roundtripped = json.loads(json.dumps(payload, allow_nan=True))
        assert payload_digest(roundtripped) == payload_digest(payload)

    def test_tuples_digest_like_lists(self):
        # json.dumps writes tuples as arrays, so a journal record built
        # from tuples must hash-validate after a parse returns lists.
        assert payload_digest({"v": (1, 2, 3)}) == payload_digest({"v": [1, 2, 3]})
