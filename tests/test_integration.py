"""Cross-module integration tests: full pipelines end to end."""

import numpy as np
import pytest

from repro.analog import AnalogAccelerator, NoiseModel, solution_error
from repro.core import HybridSolver, RedBlackGaussSeidel
from repro.linalg import MultigridPoisson
from repro.nonlinear import (
    NewtonOptions,
    SimpleSquareSystem,
    damped_newton_with_restarts,
    homotopy_solve,
    newton_solve,
)
from repro.pde import (
    BratuProblem1D,
    BurgersTimeStepper,
    DirichletBoundary,
    Grid2D,
    PoissonProblem,
    random_burgers_system,
)


class TestPdeToHybridPipeline:
    """PDE discretization -> analog seed -> digital polish, end to end."""

    def test_time_step_system_solved_by_hybrid(self):
        grid = Grid2D.square(4)
        bc = DirichletBoundary.constant(grid, 0.0)
        stepper = BurgersTimeStepper(grid, reynolds=1.0, dt=0.5, boundary_u=bc, boundary_v=bc)
        rng = np.random.default_rng(0)
        u = rng.uniform(-0.5, 0.5, grid.shape)
        v = rng.uniform(-0.5, 0.5, grid.shape)
        system = stepper.step_system(u, v)
        solver = HybridSolver(AnalogAccelerator(seed=1))
        result = solver.solve(system, initial_guess=system.pack(u, v))
        assert result.converged
        assert system.residual_norm(result.u) < 1e-9

    def test_hybrid_solution_feeds_next_time_step(self):
        # Two consecutive steps, the hybrid output of the first being
        # the (physical) input to the second.
        grid = Grid2D.square(3)
        bc = DirichletBoundary.constant(grid, 0.0)
        solver = HybridSolver(AnalogAccelerator(seed=2))

        def hybrid_step(system, guess):
            return solver.solve(system, initial_guess=guess).digital

        stepper = BurgersTimeStepper(
            grid, reynolds=1.0, dt=0.2, boundary_u=bc, boundary_v=bc, solver=hybrid_step
        )
        u0 = np.full(grid.shape, 0.4)
        v0 = np.zeros(grid.shape)
        u, v, results = stepper.evolve(u0, v0, num_steps=2)
        assert all(r.converged for r in results)
        assert np.max(np.abs(u)) < np.max(np.abs(u0))


class TestDecomposedHybridPipeline:
    """Gauss-Seidel decomposition with analog subdomain solves."""

    def test_analog_blocks_seed_full_newton(self):
        system, _ = random_burgers_system(6, 1.0, np.random.default_rng(3))
        accelerator = AnalogAccelerator(seed=3)

        def analog_block(sub, sub_guess):
            result = accelerator.solve(sub, initial_guess=sub_guess, value_bound=3.0)
            return result.solution if result.converged else sub_guess

        decomposition = RedBlackGaussSeidel(system, block_size=3, subdomain_solver=analog_block)
        guess = np.random.default_rng(4).uniform(-1.0, 1.0, system.dimension)
        gs = decomposition.solve(initial_guess=guess, tolerance=0.05, max_sweeps=6)
        polished = newton_solve(system, gs.u, NewtonOptions(tolerance=1e-10, max_iterations=40))
        assert polished.converged
        assert polished.iterations <= 10


class TestMultigridWithAnalogCoarseSolver:
    """The prior-work partitioning (Table 5 row 2): multigrid with an
    analog kernel on the coarse residual equation."""

    def test_analog_coarse_solver_still_converges(self):
        n = 15
        spacing = 1.0 / (n + 1)
        # Coarsest grid is 3x3 = 9 unknowns: an accelerator-sized solve.
        accelerator = AnalogAccelerator(seed=5, noise=NoiseModel(residual_offset_sigma=0.005))

        def analog_coarse(f):
            from repro.nonlinear.systems import CallableSystem

            flat_f = np.asarray(f, dtype=float).ravel()
            coarse_n = int(np.sqrt(flat_f.size))
            h = spacing * (n + 1) / (coarse_n + 1)

            system = CallableSystem(
                flat_f.size,
                residual=lambda x: MultigridPoisson.apply_operator(
                    x.reshape(coarse_n, coarse_n), h
                ).ravel()
                - flat_f,
                jacobian=None,
            )
            result = accelerator.solve(
                system,
                initial_guess=np.zeros(flat_f.size),
                value_bound=max(1.0, float(np.abs(flat_f).max())),
            )
            return result.solution

        mg = MultigridPoisson(n, spacing=spacing, coarsest=3, coarse_solver=analog_coarse)
        xs = (np.arange(n) + 1) * spacing
        gx, gy = np.meshgrid(xs, xs, indexing="ij")
        exact = np.sin(np.pi * gx) * np.sin(np.pi * gy)
        forcing = 2.0 * np.pi**2 * exact
        result = mg.solve(forcing, tol=1e-6, max_cycles=8)
        # The analog coarse kernel's error floor prevents convergence to
        # the digital tolerance (the prior work's documented trade) but
        # the cycles still reduce the residual by orders of magnitude
        # and deliver an engineering-accurate solution.
        history = result.residual_history
        assert min(history) < 1e-2 * history[0]
        assert np.max(np.abs(result.solution - exact)) < 5e-3


class TestHomotopyOnPde:
    """Homotopy continuation applied to a PDE stencil system."""

    def test_bratu_branch_reached_from_trivial_system(self):
        hard = BratuProblem1D(num_nodes=8, lam=1.5)
        simple = SimpleSquareSystem(dimension=8)
        result = homotopy_solve(simple, hard, np.ones(8))
        assert result.converged
        assert hard.residual_norm(result.u) < 1e-8


class TestAnalogAgainstGolden:
    """Analog error metric measured against golden digital solutions,
    at a grid size beyond the physical prototype (a 'scaled-up' run)."""

    def test_4x4_scaled_accelerator_error_band(self):
        system, guess = random_burgers_system(4, 1.0, np.random.default_rng(6))
        golden = damped_newton_with_restarts(
            system, guess, NewtonOptions(tolerance=1e-12, max_iterations=150)
        )
        assert golden.converged
        accelerator = AnalogAccelerator(seed=6)
        analog = accelerator.solve(system, initial_guess=guess)
        assert analog.converged
        error = solution_error(analog.scaled_solution, golden.u / analog.scale)
        assert error < 0.15


class TestLinearStackConsistency:
    """Poisson solved three ways must agree."""

    def test_cg_multigrid_and_dense_agree(self):
        n = 15
        spacing = 1.0 / (n + 1)
        grid = Grid2D.square(n, spacing=spacing)
        rng = np.random.default_rng(7)
        forcing = rng.standard_normal(grid.shape)
        problem = PoissonProblem(grid, forcing)
        cg = problem.solve(tol=1e-11)
        assert cg.converged
        mg = MultigridPoisson(n, spacing=spacing).solve(forcing, tol=1e-11)
        assert mg.converged
        dense = np.linalg.solve(problem.matrix().to_dense(), problem.rhs())
        np.testing.assert_allclose(cg.x, dense, atol=1e-7)
        np.testing.assert_allclose(grid.flatten(mg.solution), dense, atol=1e-7)
