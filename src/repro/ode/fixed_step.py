"""Fixed-step explicit integrators (Euler, classical RK4).

The paper points out that the *damped Newton method is an Euler
discretization of the continuous Newton ODE* (Section 2.2); having an
explicit Euler integrator in the library lets the ablation benches show
that correspondence directly: ``integrate_euler`` on the Newton flow
with step ``h`` reproduces damped Newton with damping ``h``.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.ode.solution import OdeSolution

__all__ = ["integrate_euler", "integrate_rk4"]

Rhs = Callable[[float, np.ndarray], np.ndarray]


def _run_fixed(
    rhs: Rhs,
    t0: float,
    y0: np.ndarray,
    t_end: float,
    dt: float,
    stepper: Callable[[Rhs, float, np.ndarray, float], np.ndarray],
    evals_per_step: int,
    record_every: int,
) -> OdeSolution:
    if dt <= 0.0:
        raise ValueError(f"step size must be positive, got {dt}")
    if t_end <= t0:
        raise ValueError("t_end must be greater than t0")
    y = np.array(y0, dtype=float, copy=True)
    t = float(t0)
    ts = [t]
    ys = [y.copy()]
    steps = 0
    while t < t_end - 1e-15:
        step = min(dt, t_end - t)
        y = stepper(rhs, t, y, step)
        t += step
        steps += 1
        if steps % record_every == 0 or t >= t_end - 1e-15:
            ts.append(t)
            ys.append(y.copy())
    return OdeSolution.from_lists(ts, ys, rhs_evaluations=steps * evals_per_step)


def _euler_step(rhs: Rhs, t: float, y: np.ndarray, dt: float) -> np.ndarray:
    return y + dt * rhs(t, y)


def _rk4_step(rhs: Rhs, t: float, y: np.ndarray, dt: float) -> np.ndarray:
    k1 = rhs(t, y)
    k2 = rhs(t + dt / 2.0, y + dt / 2.0 * k1)
    k3 = rhs(t + dt / 2.0, y + dt / 2.0 * k2)
    k4 = rhs(t + dt, y + dt * k3)
    return y + dt / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4)


def integrate_euler(
    rhs: Rhs,
    t0: float,
    y0: np.ndarray,
    t_end: float,
    dt: float,
    record_every: int = 1,
) -> OdeSolution:
    """Explicit Euler with fixed step ``dt``."""
    return _run_fixed(rhs, t0, y0, t_end, dt, _euler_step, 1, record_every)


def integrate_rk4(
    rhs: Rhs,
    t0: float,
    y0: np.ndarray,
    t_end: float,
    dt: float,
    record_every: int = 1,
) -> OdeSolution:
    """Classical fourth-order Runge-Kutta with fixed step ``dt``."""
    return _run_fixed(rhs, t0, y0, t_end, dt, _rk4_step, 4, record_every)
