"""Request/outcome contract of the fault-tolerant solve runtime.

The runtime's API is deliberately process-boundary-shaped: a
:class:`SolveRequest` carries a *description* of a problem (a
picklable :class:`ProblemSpec`), never a live system object, so the
same request can be executed in this process, in a pool worker, or
retried in-process after a worker crash, and always builds the
identical problem. A :class:`SolveOutcome` is the one terminal shape
every request ends in — converged, failed, or timed out — with the
degradation-ladder rung that produced the answer, the retry/fault
history, and the residual actually achieved. The runtime never lets a
solve escape as a raised exception or a hang.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "DeadlineExceeded",
    "PoolBroken",
    "QueueFull",
    "Deadline",
    "ProblemSpec",
    "RetryPolicy",
    "SolveRequest",
    "SolveOutcome",
    "TERMINAL_STATUSES",
    "stable_seed",
]

# Every outcome ends in exactly one of these.
TERMINAL_STATUSES = ("converged", "failed", "timeout")


class DeadlineExceeded(RuntimeError):
    """A solve ran past its per-request deadline (cooperative check)."""


class QueueFull(RuntimeError):
    """The runtime's bounded work queue rejected a submission."""


class PoolBroken(RuntimeError):
    """The process pool died and the runtime was told not to degrade.

    Raised by :class:`~repro.runtime.runtime.Runtime` only under
    ``on_pool_break="fail"`` — the posture a multi-shard service wants,
    where a broken shard should surface as a crash (so the service can
    fail requests over to healthy shards via the journal) instead of
    silently limping along in-process on the dead shard's host.
    """


def stable_seed(*parts: Any) -> int:
    """A process- and run-stable 63-bit seed derived from ``parts``.

    Python's builtin ``hash`` is salted per interpreter, so every
    derived random stream (backoff jitter, fault draws, per-attempt
    accelerator dies) keys off this instead — the same
    (runtime seed, request id, attempt) triple yields the same stream
    in a pool worker as in-process, which is what makes ``workers=1``
    and ``workers=4`` runs bitwise-identical.
    """
    text = ":".join(str(part) for part in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") >> 1


class Deadline:
    """A per-attempt time budget with a cooperative raise-on-expiry check."""

    def __init__(self, seconds: float, clock: Callable[[], float] = time.monotonic):
        if seconds <= 0:
            raise ValueError("deadline seconds must be positive")
        self.seconds = float(seconds)
        self._clock = clock
        self._t0 = clock()

    @property
    def remaining(self) -> float:
        return self.seconds - (self._clock() - self._t0)

    @property
    def expired(self) -> bool:
        return self.remaining <= 0.0

    def check(self) -> None:
        if self.expired:
            raise DeadlineExceeded(f"deadline of {self.seconds:.3f}s exceeded")


@dataclass(frozen=True)
class ProblemSpec:
    """A picklable recipe for one nonlinear problem instance.

    ``kind`` selects the factory; ``params`` (a sorted tuple of
    key/value pairs, kept hashable) parameterizes it. :meth:`build`
    returns the live ``(system, initial_guess)`` pair and is always
    called inside whichever process executes the attempt.
    """

    kind: str
    params: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def burgers(cls, grid_n: int, reynolds: float, seed: int) -> "ProblemSpec":
        """A random 2-D Burgers instance (the paper's Section 6.1 setup)."""
        return cls(
            kind="burgers",
            params=(("grid_n", int(grid_n)), ("reynolds", float(reynolds)), ("seed", int(seed))),
        )

    @classmethod
    def quadratic(cls, rhs0: float = 1.0, rhs1: float = 1.0,
                  guess: Tuple[float, float] = (1.0, 1.0)) -> "ProblemSpec":
        """The paper's Equation 2 coupled quadratic (cheap; soak tests)."""
        return cls(
            kind="quadratic",
            params=(("rhs0", float(rhs0)), ("rhs1", float(rhs1)),
                    ("guess", (float(guess[0]), float(guess[1])))),
        )

    def as_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def build(self):
        """Instantiate ``(system, initial_guess)`` for this spec."""
        params = self.as_dict()
        if self.kind == "burgers":
            from repro.pde.burgers import random_burgers_system

            rng = np.random.default_rng(params["seed"])
            return random_burgers_system(params["grid_n"], params["reynolds"], rng)
        if self.kind == "quadratic":
            from repro.nonlinear.systems import CoupledQuadraticSystem

            system = CoupledQuadraticSystem(params["rhs0"], params["rhs1"])
            return system, np.asarray(params["guess"], dtype=float)
        raise ValueError(f"unknown problem kind {self.kind!r}")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and seeded jitter.

    ``delay_for`` is a pure function of (runtime seed, request id,
    attempt), so the schedule a request experiences is independent of
    worker count and of what the rest of the batch is doing.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0 or self.jitter < 0:
            raise ValueError("delays and jitter must be nonnegative")

    def delay_for(self, seed: int, request_id: str, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (attempts count from 0)."""
        base = min(self.max_delay, self.base_delay * (2.0 ** max(attempt - 1, 0)))
        rng = np.random.default_rng(stable_seed(seed, request_id, attempt, "backoff"))
        return float(base * (1.0 + self.jitter * rng.uniform()))


@dataclass
class SolveRequest:
    """One unit of work for the runtime.

    Attributes
    ----------
    request_id:
        Caller-chosen identifier; unique within a batch. Keys the
        request's fault draws, backoff jitter and accelerator die.
    problem:
        The picklable problem recipe.
    deadline_seconds:
        Per-attempt time budget. Enforced cooperatively inside the
        solver (iteration hook) and, in pooled mode, by a parent-side
        watchdog with a grace margin for true hangs.
    rungs:
        Optional override of the degradation-ladder rung order (e.g.
        ``("damped_newton",)`` for digital-only soak batches).
    """

    request_id: str
    problem: ProblemSpec
    deadline_seconds: Optional[float] = None
    rungs: Optional[Tuple[str, ...]] = None
    value_bound: float = 3.0
    analog_time_limit: float = 60.0

    def __post_init__(self) -> None:
        if not self.request_id:
            raise ValueError("request_id must be nonempty")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive when set")


@dataclass
class SolveOutcome:
    """The terminal record of one request: every request gets exactly one.

    ``status`` is one of :data:`TERMINAL_STATUSES`; ``rung`` names the
    degradation-ladder rung that produced the accepted solution (or
    ``None`` when nothing converged); ``rungs_tried`` is the ladder
    path of the final attempt in order; ``faults`` lists every fault
    injected across all attempts (chaos runs) plus runtime-observed
    events such as ``worker_crash``.
    """

    request_id: str
    status: str
    rung: Optional[str] = None
    residual_norm: float = float("inf")
    attempts: int = 1
    retries: int = 0
    rungs_tried: Tuple[str, ...] = ()
    faults: Tuple[str, ...] = ()
    error: Optional[str] = None
    solution: Optional[np.ndarray] = None
    elapsed_seconds: float = 0.0
    iterations: int = 0
    attempt_history: List[str] = field(default_factory=list)
    """Per-attempt statuses in order, e.g. ``["timeout", "converged"]``."""
    health: Optional[Dict[str, Any]] = None
    """Final attempt's analog board state
    (:meth:`~repro.analog.health.DegradationSchedule.state_dict`) when a
    degradation model was active; rides into the batch journal so a
    resumed run restores identical board wear."""
    certificate: Optional[Any] = None
    """The :class:`~repro.certify.SolveCertificate` that admitted this
    answer when the runtime ran with certification on (``None`` for
    uncertified runs and non-converged outcomes). Journaled with the
    outcome so ``--resume`` replay and ``repro verify-journal`` can
    re-verify the commit instead of trusting it."""

    def __post_init__(self) -> None:
        if self.status not in TERMINAL_STATUSES:
            raise ValueError(
                f"status must be one of {TERMINAL_STATUSES}, got {self.status!r}"
            )

    @property
    def ok(self) -> bool:
        return self.status == "converged"
