"""A-priori seed gating: veto doomed analog settles before paying.

PR 4's :class:`~repro.analog.health.SeedQualityGate` judges a seed
*after* the settle — the settle time and the ADC readout are already
spent by the time a drifted board's seed is rejected. The
hybrid-dynamical accuracy-bounds analysis (arXiv:2410.06397) says the
post-settle relative residual of an analog seed scales, to first
order, with the board's accumulated drift amplified by the problem's
conditioning: a stiff, large system turns the same physical drift into
a proportionally worse seed. That gives an *a-priori* score the fleet
can act on:

``predicted = (w_r * rejection_EWMA + w_d * drift_EWMA) * kappa(P)``

where the EWMAs are the board's observed evidence (fraction of recent
hybrid rungs whose seed the post-settle gate rejected, and the drift
magnitude its schedules reported) and ``kappa`` is
:func:`problem_conditioning` — a cheap proxy for the bound's
amplification factor. A score over ``threshold`` (the same 1.0
acceptance bound the post-settle gate uses: "no worse than the naive
guess") predicts a rejection, so the settle is skipped and the ladder
degrades straight to damped Newton (``settles_avoided``).

**Honest accounting**: a veto that skips the settle can never learn it
was wrong. So a seeded fraction of would-be vetoes (``audit_rate``,
keyed by ``stable_seed(seed, request, attempt, "gate_audit")`` like
every other stream) runs the settle anyway; an audited settle whose
seed the post-settle gate then *accepts* is counted as
``gate_false_positive``, one it rejects as ``gate_vetoes_confirmed``.
The trace's ``predictive_gate`` spans carry the prediction, the
decision, and the audit verdict, so predicted-vs-actual is always
reconstructible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Tuple

import numpy as np

from repro.analog.health import _stable_seed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fleet.board import AnalogBoard
    from repro.runtime.api import ProblemSpec

__all__ = ["PredictiveSeedGate", "problem_conditioning"]


def problem_conditioning(problem: "ProblemSpec") -> float:
    """Conditioning proxy ``kappa(P) >= 1`` for the gate's amplification.

    For the Burgers instances this grows with system size (more tiles
    sharing one board's drift budget, log-ish like the bound's
    dimension factor) and with Reynolds-number stiffness in either
    direction (advection- or diffusion-dominated both condition worse
    than the balanced regime). The coupled quadratic is tiny and
    benign: ``kappa = 1``.
    """
    params = problem.as_dict()
    if problem.kind == "burgers":
        dimension = 2 * int(params["grid_n"]) ** 2
        reynolds = float(params["reynolds"])
        stiffness = max(reynolds, 1.0 / reynolds) if reynolds > 0 else 1.0
        return math.sqrt(1.0 + math.log2(max(dimension, 1))) * stiffness**0.25
    return 1.0


@dataclass(frozen=True)
class PredictiveSeedGate:
    """Scores (board health x problem conditioning); vetoes up front.

    ``threshold`` mirrors the post-settle gate's acceptance bound: a
    predicted relative residual above it means the settle is expected
    to be rejected and is skipped. ``min_observations`` keeps the gate
    honest on cold boards — with no evidence it always allows (which is
    also what keeps a healthy one-board fleet bitwise identical to the
    pre-fleet path: penalty 0 never crosses any threshold).
    """

    threshold: float = 1.0
    rejection_weight: float = 2.0
    drift_weight: float = 4.0
    min_observations: int = 2
    audit_rate: float = 0.125
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.threshold <= 0.0:
            raise ValueError("threshold must be positive")
        if self.min_observations < 1:
            raise ValueError("min_observations must be at least 1")
        if not 0.0 <= self.audit_rate <= 1.0:
            raise ValueError("audit_rate must be in [0, 1]")

    def penalty(self, board: "AnalogBoard") -> float:
        """The board-health half of the score (also the routing key)."""
        return (
            self.rejection_weight * board.rejection_ewma
            + self.drift_weight * board.drift_ewma
        )

    def predict(self, board: "AnalogBoard", problem: "ProblemSpec") -> Tuple[float, float]:
        """Predicted relative seed quality and the conditioning used."""
        kappa = problem_conditioning(problem)
        return self.penalty(board) * kappa, kappa

    def decide(
        self,
        board: "AnalogBoard",
        problem: "ProblemSpec",
        runtime_seed: int,
        request_id: str,
        attempt: int,
    ) -> Tuple[str, float, float]:
        """Returns ``(decision, predicted, conditioning)``.

        ``decision`` is ``"allow"``, ``"veto"``, or ``"audit"`` (a
        would-be veto selected — by a seeded draw, so any worker count
        replays it — to run anyway and score the prediction).
        """
        predicted, kappa = self.predict(board, problem)
        if (
            not self.enabled
            or board.observations < self.min_observations
            or predicted <= self.threshold
        ):
            return "allow", predicted, kappa
        draw = np.random.default_rng(
            _stable_seed(runtime_seed, request_id, attempt, "gate_audit")
        ).uniform()
        if draw < self.audit_rate:
            return "audit", predicted, kappa
        return "veto", predicted, kappa
