"""Suite-wide test configuration.

Hypothesis deadlines are disabled globally: the property tests exercise
numerical kernels whose wall-clock varies wildly with machine load
(this suite is routinely run alongside the paper-scale experiment
sweep), and a deadline flake tells us nothing about correctness.

``--update-golden`` rewrites the pinned CLI outputs under
``tests/golden/`` instead of comparing against them; run it after an
intentional output change and commit the refreshed files.
"""

from pathlib import Path

import pytest
from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")

GOLDEN_DIR = Path(__file__).parent / "golden"


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/*.txt from the current CLI output",
    )
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="run tests marked slow (the soak/stress tier; CI runs them nightly)",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="slow soak test; pass --runslow to run")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture
def golden(request):
    """Compare (or, with --update-golden, record) a named golden text.

    Usage: ``golden("table5", normalized_output)``. Asserts equality
    against ``tests/golden/<name>.txt``; with ``--update-golden`` it
    writes the file and passes.
    """
    update = request.config.getoption("--update-golden")

    def compare(name: str, actual: str) -> None:
        path = GOLDEN_DIR / f"{name}.txt"
        if update:
            GOLDEN_DIR.mkdir(exist_ok=True)
            path.write_text(actual, encoding="utf-8")
            return
        if not path.exists():
            pytest.fail(
                f"golden file {path} missing; run pytest with --update-golden to create it"
            )
        expected = path.read_text(encoding="utf-8")
        assert actual == expected, (
            f"CLI output for {name!r} drifted from {path}.\n"
            "If the change is intentional, refresh with: pytest --update-golden"
        )

    return compare
