"""Benchmark: Figure 8 — baseline vs analog-seeded solver across Re.

Regenerates the Reynolds sweep on 16x16 problems to full precision and
checks the figure's shape: baseline and seeded times are comparable at
low Reynolds numbers, the baseline blows up near Re = 2.0 where the
damping search kicks in, and the seeded solver stays flat (the paper's
0.81 s vs 0.05 s point).
"""

from repro.experiments.figure8 import run_figure8

REYNOLDS = (0.25, 2.0)


def test_figure8(benchmark):
    result = benchmark.pedantic(
        run_figure8,
        kwargs={"grid_n": 16, "reynolds_values": REYNOLDS, "trials": 3},
        rounds=1,
        iterations=1,
    )
    print("\n" + result.render())

    low = result.row_at(0.25)
    high = result.row_at(2.0)
    assert low is not None and high is not None

    # Low Reynolds: baseline within a small factor of the seeded time.
    assert low["baseline digital (s)"] < 4.0 * low["seeded digital (s)"]

    # Re = 2.0: the baseline blows up (paper: 0.81 s vs ~0.08 s)...
    assert high["baseline digital (s)"] > 5.0 * low["baseline digital (s)"]
    # ...while the seeded time stays flat across Reynolds numbers.
    assert high["seeded digital (s)"] < 3.0 * low["seeded digital (s)"]

    # The headline: a large seeding speedup at Re = 2.0.
    assert high["speedup"] > 5.0

    # Analog seeding time is negligible next to either digital time.
    assert high["analog seed (s)"] < 0.01 * high["seeded digital (s)"] * 100
    assert high["analog seed (s)"] < high["seeded digital (s)"]
