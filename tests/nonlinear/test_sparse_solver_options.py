"""Tests for the configurable sparse Newton linear kernel."""

import numpy as np
import pytest

from repro.linalg.sparse import CooBuilder
from repro.nonlinear.newton import LinearSolverStats, make_sparse_linear_solver


def stencil(n, asym=0.3):
    builder = CooBuilder(n, n)
    for i in range(n):
        builder.add(i, i, 4.0)
        if i > 0:
            builder.add(i, i - 1, -1.0 - asym)
        if i < n - 1:
            builder.add(i, i + 1, -1.0 + asym)
    return builder.to_csr()


@pytest.mark.parametrize("kind", ["jacobi", "ilu0", "none"])
def test_all_preconditioner_kinds_solve(kind):
    mat = stencil(30)
    x_true = np.random.default_rng(0).standard_normal(30)
    solver = make_sparse_linear_solver(preconditioner_kind=kind)
    x = solver(mat, mat.matvec(x_true))
    np.testing.assert_allclose(x, x_true, rtol=1e-6, atol=1e-8)


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        make_sparse_linear_solver(preconditioner_kind="magic")


def test_singular_system_falls_back_to_least_squares():
    # A structurally singular matrix: the kernel must still return a
    # finite direction (the regularized/lstsq emergency path).
    builder = CooBuilder(4, 4)
    for i in range(4):
        builder.add(i, 0, 1.0)  # rank-1 with zero diagonal rows 1..3
        builder.add(i, i, 1e-30)
    mat = builder.to_csr()
    solver = make_sparse_linear_solver()
    out = solver(mat, np.ones(4))
    assert np.all(np.isfinite(out))


def test_large_system_uses_lapack_fallback_quickly():
    # A 700-unknown singular-ish system must not grind through the
    # pure-Python LU (the >512 guard routes to LAPACK).
    import time

    n = 700
    builder = CooBuilder(n, n)
    for i in range(n):
        builder.add(i, i, 1e-14)  # near-singular diagonal
        if i > 0:
            builder.add(i, i - 1, 1.0)
        if i < n - 1:
            builder.add(i, i + 1, -1.0)
    mat = builder.to_csr()
    solver = make_sparse_linear_solver(max_iterations=50)
    start = time.perf_counter()
    out = solver(mat, np.ones(n))
    elapsed = time.perf_counter() - start
    assert np.all(np.isfinite(out))
    assert elapsed < 30.0


def test_stats_capture_inner_iterations():
    stats = LinearSolverStats()
    solver = make_sparse_linear_solver(stats=stats)
    mat = stencil(20)
    solver(mat, np.ones(20))
    assert stats.solves == 1
    assert stats.inner_iterations >= 1
