"""Property suites for repro.trace (Hypothesis).

Three invariants the rest of the PR leans on:

* span nesting is LIFO for *any* push/pop interleaving — depths,
  parent links and completion order always reconstruct a forest;
* the JSONL export round-trips spans, attributes, counters and gauges
  for arbitrary (JSON-representable) content;
* counters are additive under shard merging, regardless of how the
  counts are split across shards.
"""

import json
import string

from hypothesis import given
from hypothesis import strategies as st

from repro.trace import (
    TraceNestingError,
    Tracer,
    merge_traces,
    read_trace,
    write_trace,
)

names = st.text(string.ascii_lowercase + "_", min_size=1, max_size=12)

# Attribute values constrained to what JSON represents exactly (floats
# must round-trip; NaN/inf are not JSON).
attr_values = st.one_of(
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=20),
    st.none(),
)
attr_dicts = st.dictionaries(names, attr_values, max_size=4)

# A walk is a sequence of push (open child span) / pop (close innermost)
# operations; pops on an empty stack are skipped at interpretation time.
walks = st.lists(
    st.tuples(st.sampled_from(["push", "pop"]), names), min_size=1, max_size=40
)


def _run_walk(tracer: Tracer, walk) -> int:
    """Interpret a walk against a tracer; returns how many spans opened."""
    stack = []
    opened = 0
    for op, name in walk:
        if op == "push":
            stack.append(tracer.span(name))
            opened += 1
        elif stack:
            stack.pop().close()
    while stack:
        stack.pop().close()
    return opened


class TestNestingProperties:
    @given(walks)
    def test_any_lifo_walk_reconstructs_a_forest(self, walk):
        tracer = Tracer()
        opened = _run_walk(tracer, walk)
        tracer.check_closed()
        assert len(tracer.spans) == opened
        by_id = {record.span_id: record for record in tracer.spans}
        seen = set()
        for record in tracer.spans:  # completion order: children first
            if record.parent_id is None:
                assert record.depth == 0
            else:
                parent = by_id[record.parent_id]
                assert record.depth == parent.depth + 1
                # A span starts within its parent's lifetime and ends
                # before it (children complete first).
                assert parent.t_start <= record.t_start
                assert record.t_end <= parent.t_end
            assert record.span_id not in seen
            seen.add(record.span_id)
        # ids are unique and allocated 1..N in open order
        assert sorted(seen) == list(range(1, opened + 1))

    @given(walks)
    def test_non_lifo_close_always_raises(self, walk):
        tracer = Tracer()
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        try:
            outer.close()
            assert False, "closing a non-innermost span must raise"
        except TraceNestingError:
            pass
        # The failed close must not corrupt the stack: LIFO still works.
        inner.close()
        outer.close()
        tracer.check_closed()


class TestRoundTripProperties:
    @given(
        spans=st.lists(st.tuples(names, attr_dicts), max_size=10),
        counters=st.dictionaries(names, st.integers(0, 10**6), max_size=5),
        gauges=st.dictionaries(
            names, st.floats(allow_nan=False, allow_infinity=False, width=64), max_size=5
        ),
        manifest=st.dictionaries(names, st.integers(0, 100), max_size=3),
    )
    def test_jsonl_round_trip_is_lossless(self, tmp_path_factory, spans, counters, gauges, manifest):
        tracer = Tracer(manifest=manifest)
        for name, attrs in spans:
            with tracer.span(name, **attrs):
                pass
        for name, value in counters.items():
            tracer.counter(name, value)
        for name, value in gauges.items():
            tracer.gauge(name, value)

        path = tmp_path_factory.mktemp("trace") / "t.jsonl"
        trace = read_trace(write_trace(tracer, path))

        assert [(s["name"], s["attrs"]) for s in trace.spans] == [
            (name, attrs) for name, attrs in spans
        ]
        assert trace.counters == counters
        assert trace.gauges == gauges
        for key, value in manifest.items():
            # built-in manifest fields (schema/version) ride alongside;
            # "type" is the reserved record tag readers dispatch on, so
            # build_manifest refuses to let a user field overwrite it.
            if key == "type":
                continue
            assert trace.manifest[key] == value
        assert trace.manifest["type"] == "manifest"
        # The file itself is line-by-line JSON.
        for line in path.read_text().splitlines():
            json.loads(line)


class TestMergeProperties:
    @given(
        shard_counters=st.lists(
            st.dictionaries(names, st.integers(0, 10**6), max_size=4),
            min_size=1,
            max_size=4,
        ),
        spans_per_shard=st.lists(st.integers(0, 5), min_size=1, max_size=4),
    )
    def test_counters_additive_and_ids_unique_under_merge(
        self, tmp_path_factory, shard_counters, spans_per_shard
    ):
        tmp = tmp_path_factory.mktemp("shards")
        paths = []
        expected: dict = {}
        total_spans = 0
        for index, counters in enumerate(shard_counters):
            tracer = Tracer(manifest={"experiment": f"shard{index}"})
            count = spans_per_shard[index % len(spans_per_shard)]
            for _ in range(count):
                with tracer.span("work"):
                    pass
            total_spans += count
            for name, value in counters.items():
                tracer.counter(name, value)
                expected[name] = expected.get(name, 0) + value
            paths.append(write_trace(tracer, tmp / f"{index}.jsonl"))

        merged = merge_traces(paths, tmp / "merged.jsonl")
        assert merged.counters == expected
        assert len(merged.spans) == total_spans
        ids = [span["id"] for span in merged.spans]
        assert len(set(ids)) == len(ids)
        # Merging one shard with itself doubles every counter.
        doubled = merge_traces([paths[0], paths[0]], tmp / "doubled.jsonl")
        for name, value in shard_counters[0].items():
            assert doubled.counters[name] == 2 * value
