"""Process variation and the calibration procedure.

As fabricated, every analog component's gain deviates from nominal by
process variation and transistor mismatch. The chips calibrate "all
components on the analog datapath" against on-chip references, but "the
calibration precision is itself limited by DAC precision"
(Section 5.4): correction codes are quantized, so a residual error
remains. :class:`ProcessVariation` draws the as-fabricated errors;
:meth:`ProcessVariation.calibrate` applies the DAC-limited correction
and returns the residual errors the execution engine uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analog.noise import NoiseModel

__all__ = ["CalibrationConfig", "ProcessVariation"]


@dataclass(frozen=True)
class CalibrationConfig:
    """How calibration is performed.

    Attributes
    ----------
    enabled:
        Disabled calibration leaves raw process variation in place
        (used by ablation benches to show calibration is load-bearing).
    measurement_repeats:
        Averaging repeats per component measurement; more repeats beat
        down thermal noise in the measured gain (sqrt law).
    drift_tolerance:
        How far (in full-scale residual units, per variable) the board
        may drift from this calibration before it is considered out of
        tolerance — the flagging threshold the health monitor
        (:class:`repro.analog.health.HealthMonitor`) inherits. The
        default sits well above the worst per-tile residual a healthy
        5.38 %-RMS seed leaves (unlucky dies reach ~0.5 full-scale
        units per variable), so it only trips on genuine degradation,
        never on the paper's operating point.
    """

    enabled: bool = True
    measurement_repeats: int = 16
    drift_tolerance: float = 1.2

    def __post_init__(self) -> None:
        if self.measurement_repeats <= 0:
            raise ValueError("measurement_repeats must be positive")
        if self.drift_tolerance <= 0.0:
            raise ValueError("drift_tolerance must be positive")


class ProcessVariation:
    """Per-component multiplicative gain errors and offsets of one die.

    The draw is deterministic given a seed, so one ``ProcessVariation``
    instance behaves like one physical chip across runs — re-running a
    problem on the same "chip" sees the same mismatch, while different
    seeds model different dies.
    """

    def __init__(self, noise: NoiseModel, seed: int = 0):
        self.noise = noise
        self.seed = int(seed)
        self._rng = np.random.default_rng(seed)

    def draw_gain_errors(self, count: int) -> np.ndarray:
        """As-fabricated relative gain errors for ``count`` components."""
        return self.noise.process_sigma * self._rng.standard_normal(count)

    def draw_offsets(self, count: int) -> np.ndarray:
        """As-fabricated input-referred offsets (pre-calibration).

        Current-mode stages carry offsets of several percent of full
        scale before trimming; calibration is what brings the chip into
        its useful accuracy regime (Section 5.4).
        """
        return 2.0 * self.noise.process_sigma * self.noise.full_scale * self._rng.standard_normal(count)

    def residual_offsets(self, count: int) -> np.ndarray:
        """Post-calibration offsets: offset cancellation is bounded by
        the same DAC-code quantization as gain trim, leaving the
        ``residual_offset_sigma`` floor."""
        return self.noise.residual_offset_sigma * self.noise.full_scale * self._rng.standard_normal(count)

    def calibrate(
        self, gain_errors: np.ndarray, config: CalibrationConfig
    ) -> np.ndarray:
        """Residual gain errors after DAC-limited calibration.

        Calibration measures each component's gain (thermal noise
        averaged down by ``measurement_repeats``) and subtracts a
        correction quantized to the DAC's step size. The residual is
        the sum of measurement noise and correction quantization, which
        is what bounds the chip's accuracy.
        """
        gain_errors = np.asarray(gain_errors, dtype=float)
        if not config.enabled:
            return gain_errors.copy()
        measurement_noise = (
            self.noise.thermal_noise_sigma
            / np.sqrt(config.measurement_repeats)
            * self._rng.standard_normal(gain_errors.shape)
        )
        measured = gain_errors + measurement_noise
        dac_step = 2.0 * self.noise.full_scale / 2**self.noise.dac_bits
        # Correction codes quantize to the DAC step (relative units).
        correction = np.round(measured / dac_step) * dac_step
        residual = gain_errors - correction + measurement_noise
        # Floor at the specified post-calibration mismatch: effects the
        # correction cannot reach (temperature drift, local mismatch).
        floor = self.noise.residual_mismatch_sigma * self._rng.standard_normal(gain_errors.shape)
        return residual + floor
