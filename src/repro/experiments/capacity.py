"""Fleet capacity planning: boards needed vs. request rate vs. SLO.

The north star's "many users, many boards" question in its operational
form: given an offered load (requests per batch) and an accuracy SLO
(the residual bound an analog-served answer must meet), how many
boards does the fleet need so that a target fraction of requests is
actually served on the analog path? Every request still *completes* —
the ladder degrades to damped Newton when the fleet vetoes or runs
out of healthy boards — but each veto, quarantine, or exhaustion
forfeits the analog speedup the fleet exists to deliver, so the
capacity metric is the **analog service level**: the fraction of
requests that converged off the hybrid rung within the SLO.

``run_capacity`` sweeps a grid of (boards, rate) cells. Each cell is
one serial :class:`~repro.runtime.runtime.Runtime` batch over cheap
coupled-quadratic instances against a drifting
:class:`~repro.analog.health.DegradationModel`, with a bounded settle
budget (``settle_max_steps``) so a badly drifted board costs a capped
amount of work instead of unbounded integrator wall-clock. All the
usual seed discipline applies: a cell's outcome depends only on
(seed, boards, rate), never on which cells ran before it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analog.health import DegradationModel
from repro.fleet import FleetConfig
from repro.reporting import ascii_table
from repro.runtime.api import ProblemSpec, RetryPolicy, SolveRequest
from repro.runtime.runtime import Runtime
from repro.trace.tracer import TracerLike, as_tracer

__all__ = ["CapacityResult", "run_capacity"]


@dataclass
class CapacityResult:
    """The sweep grid plus the boards-needed answer per rate."""

    slo: float
    target: float
    boards_list: Tuple[int, ...]
    rates: Tuple[int, ...]
    rows: List[Dict[str, Any]] = field(default_factory=list)

    def cell(self, boards: int, rate: int) -> Optional[Dict[str, Any]]:
        for row in self.rows:
            if row["boards"] == boards and row["rate"] == rate:
                return row
        return None

    def boards_needed(self) -> Dict[int, Optional[int]]:
        """Per rate: the smallest swept fleet meeting the target, or
        ``None`` when no swept size does (capacity exhausted)."""
        needed: Dict[int, Optional[int]] = {}
        for rate in self.rates:
            needed[rate] = None
            for boards in sorted(self.boards_list):
                row = self.cell(boards, rate)
                if row is not None and row["analog_fraction"] >= self.target:
                    needed[rate] = boards
                    break
        return needed

    def render(self) -> str:
        table = ascii_table(
            [
                {
                    "boards": row["boards"],
                    "rate": row["rate"],
                    "analog_served": row["analog_served"],
                    "analog_fraction": f"{row['analog_fraction']:.2f}",
                    "slo_met": "yes" if row["analog_fraction"] >= self.target else "no",
                    "settles_avoided": row["settles_avoided"],
                    "exhausted": row["fleet_exhausted"],
                    "quarantines": row["quarantines"],
                }
                for row in self.rows
            ]
        )
        needed_lines = []
        for rate, boards in sorted(self.boards_needed().items()):
            needed_lines.append(
                f"  rate {rate}: {boards} board(s)"
                if boards is not None
                else f"  rate {rate}: beyond swept fleet sizes"
            )
        headline = (
            f"fleet capacity: accuracy SLO residual <= {self.slo:g}, "
            f"target analog fraction >= {self.target:g}"
        )
        return "\n".join(
            [headline, "", table, "", "boards needed per rate:"] + needed_lines
        )


def run_capacity(
    boards_list: Sequence[int] = (1, 2, 4),
    rates: Sequence[int] = (8, 16),
    slo: float = 1e-6,
    target: float = 0.75,
    drift_sigma: float = 0.35,
    seed: int = 0,
    analog_time_limit: float = 0.5,
    settle_max_steps: int = 2000,
    retry: Optional[RetryPolicy] = None,
    tracer: Optional[TracerLike] = None,
) -> CapacityResult:
    """Sweep boards x rate and measure the analog service level.

    One Runtime per cell, all sharing the sweep ``seed``; the
    degradation model drifts with ``drift_sigma`` so boards sicken,
    get vetoed, quarantine, and recalibrate at realistic frequencies.
    """
    boards_list = tuple(int(b) for b in boards_list)
    rates = tuple(int(r) for r in rates)
    if not boards_list or min(boards_list) < 1:
        raise ValueError("boards_list must name fleet sizes >= 1")
    if not rates or min(rates) < 1:
        raise ValueError("rates must name request counts >= 1")
    tracer = as_tracer(tracer)
    retry = retry or RetryPolicy(max_attempts=2, base_delay=0.0, max_delay=0.0, jitter=0.0)
    result = CapacityResult(
        slo=float(slo), target=float(target), boards_list=boards_list, rates=rates
    )
    for boards in boards_list:
        for rate in rates:
            with tracer.span("capacity_cell", boards=boards, rate=rate):
                degradation = DegradationModel(
                    offset_drift_sigma=float(drift_sigma),
                    gain_drift_sigma=float(drift_sigma) / 2.0,
                    seed=seed,
                )
                runtime = Runtime(
                    seed=seed,
                    retry=retry,
                    degradation=degradation,
                    ladder_kwargs={"settle_max_steps": int(settle_max_steps)},
                    fleet=FleetConfig(boards=boards),
                )
                requests = [
                    SolveRequest(
                        request_id=f"cap-{rate}-{index:04d}",
                        problem=ProblemSpec.quadratic(1.0 + 0.05 * index, 1.0),
                        analog_time_limit=analog_time_limit,
                    )
                    for index in range(rate)
                ]
                batch = runtime.run_batch(requests)
                analog_served = sum(
                    1
                    for outcome in batch.outcomes
                    if outcome.ok
                    and outcome.rung == "hybrid"
                    and outcome.residual_norm is not None
                    and outcome.residual_norm <= slo
                )
                stats = runtime.fleet.stats()
                counters = stats["counters"]
                result.rows.append(
                    {
                        "boards": boards,
                        "rate": rate,
                        "completed": batch.completed,
                        "analog_served": analog_served,
                        "analog_fraction": analog_served / float(rate),
                        "settles_avoided": int(counters.get("settles_avoided", 0)),
                        "fleet_exhausted": int(counters.get("fleet_exhausted", 0)),
                        "quarantines": int(counters.get("boards_quarantined", 0)),
                        "recalibrations": int(counters.get("board_recalibrations", 0)),
                    }
                )
    return result
