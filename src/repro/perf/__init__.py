"""Time and energy models for the three compute substrates.

The paper's evaluation compares wall-clock time and energy across a
16-thread Xeon CPU baseline, a GTX 1070 GPU baseline (cuSolver sparse
QR inside each Newton step), and the analog accelerator. We have none
of that hardware, so — as in any architecture study — seconds and
joules come from *cost models driven by real operation counts*:

* iteration counts, inner-solve counts and sparse operation counts are
  measured from this library's actual solver runs;
* :class:`~repro.perf.cpu_model.CpuModel` and
  :class:`~repro.perf.gpu_model.GpuModel` convert them to modeled time
  and energy with constants calibrated against the paper's Figures 8-9;
* :class:`~repro.perf.analog_model.AnalogTimingModel` converts the
  continuous Newton settle time (in flow units) to seconds, normalized
  to the measured 2x2 prototype exactly as the paper normalizes its
  simulated scaled-up accelerators (Section 6.1);
* :class:`~repro.perf.profiles.KernelProfiler` instruments the Table 1
  workload mini-apps.
"""

from repro.perf.analog_model import AnalogTimingModel
from repro.perf.cpu_model import CpuModel
from repro.perf.gpu_model import GpuModel
from repro.perf.profiles import KernelProfiler, ProfileReport
from repro.perf.summary import SubstrateCost, solve_cost_summary

__all__ = [
    "AnalogTimingModel",
    "CpuModel",
    "GpuModel",
    "KernelProfiler",
    "ProfileReport",
    "SubstrateCost",
    "solve_cost_summary",
]
