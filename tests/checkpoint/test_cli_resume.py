"""CLI resume flows in-process, with golden output for the resumed batch."""

import json
import re

import pytest

from repro.cli import main


def _run_cli(argv, capsys):
    assert main(argv) == 0
    return capsys.readouterr().out


def _normalize(text):
    masked = re.sub(r"\d+\.\d+s", "X.XXs", text)
    return "\n".join(line.rstrip() for line in masked.splitlines()) + "\n"


def _truncate_after_outcomes(path, keep):
    lines = path.read_text().splitlines()
    positions = [
        i for i, line in enumerate(lines) if json.loads(line)["kind"] == "outcome_committed"
    ]
    cut = positions[keep]
    path.write_text("\n".join(lines[:cut]) + "\n" + lines[cut][:40] + "\n")


BATCH = ["serve-batch", "--requests", "5", "--grids", "2", "--analog-time-limit", "0.001"]


class TestServeBatchResumeCli:
    def test_resumed_batch_output_matches_golden(self, tmp_path, capsys, golden):
        """The full rendered output of a crash-resumed batch is pinned:
        headline with the replay tag, every outcome row re-solved or
        replayed bitwise, and the counter table."""
        journal = tmp_path / "batch.journal"
        _run_cli(BATCH + ["--journal", str(journal)], capsys)
        _truncate_after_outcomes(journal, keep=3)
        resumed = _run_cli(["serve-batch", "--resume", str(journal)], capsys)
        assert "[3 replayed from journal]" in resumed
        golden("serve_batch_resume", _normalize(resumed))

    def test_resume_matches_uninterrupted_output(self, tmp_path, capsys):
        reference = _run_cli(BATCH + ["--journal", str(tmp_path / "a.journal")], capsys)
        journal = tmp_path / "b.journal"
        _run_cli(BATCH + ["--journal", str(journal)], capsys)
        _truncate_after_outcomes(journal, keep=2)
        resumed = _run_cli(["serve-batch", "--resume", str(journal)], capsys)
        assert _normalize(resumed).replace(" [2 replayed from journal]", "") == _normalize(
            reference
        )

    def test_journal_and_resume_together_is_an_error(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["serve-batch", "--journal", "a", "--resume", "b"])


class TestTrajectoryCli:
    def test_trajectory_output_matches_golden(self, tmp_path, capsys, golden):
        """The trajectory report is wall-clock-free by design, states
        hash included, so it is pinned without masking."""
        out = _run_cli(
            [
                "trajectory",
                "--nx",
                "4",
                "--steps",
                "12",
                "--checkpoint-every",
                "4",
                "--checkpoint-dir",
                str(tmp_path / "ck"),
            ],
            capsys,
        )
        golden("trajectory", _normalize(out))

    def test_resume_without_checkpoint_dir_fails(self):
        with pytest.raises(ValueError, match="checkpoint directory"):
            main(["trajectory", "--nx", "2", "--steps", "2", "--resume"])

    def test_out_saves_states(self, tmp_path, capsys):
        import numpy as np

        out_path = tmp_path / "states.npy"
        _run_cli(
            ["trajectory", "--nx", "3", "--steps", "4", "--out", str(out_path)],
            capsys,
        )
        states = np.load(out_path)
        assert states.shape == (5, 18)  # steps+1 rows, 2 * nx * nx columns
