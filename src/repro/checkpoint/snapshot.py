"""Trajectory snapshots: periodic, atomic, hash-validated, resumable.

An :class:`~repro.pde.timestepping.ImplicitStepper` integration is the
longest-running thing this library does (the Figure 7/8 trajectories
run hundreds of implicit steps, each a full Newton solve), and before
this module a crash at step 199 of 200 cost the whole run. The
:class:`TrajectoryCheckpointer` makes the cost one checkpoint interval:

* every ``every`` steps (and at the final step) it serializes the
  complete integration state — current level ``y``, elapsed model time
  ``t``, the BDF2 history level, the per-step Newton records, the
  aggregated linear stats, the *linear kernel's cached preconditioner*
  (pickled; without it a resumed run would refactorize from a later
  Jacobian and diverge in the low bits), and the tracer-counter deltas
  accumulated so far;
* each snapshot is one JSON file written atomically (tmp + fsync +
  rename, :mod:`repro.checkpoint.atomic`) and carries a SHA-256
  content hash of its payload, so a torn or bit-flipped file is
  *detected*, counted (``checkpoints_rejected``), and skipped — resume
  falls back to the newest snapshot that validates;
* :func:`resume_trajectory` restores the stepper and trajectory from
  the last valid snapshot and continues via
  :meth:`~repro.pde.timestepping.ImplicitStepper.continue_run`. The
  guarantee (enforced by the chaos tier): a run killed at a random
  step and resumed is bitwise identical to the uninterrupted run —
  states, Newton records, kernel accounting, trace counters.

Trust note: snapshots embed a pickle of the kernel's preconditioner,
so — like any pickle — they must only be loaded from directories the
run itself writes. The content hash defends against *corruption*, not
against an adversary who can already write to the checkpoint dir.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import re
from dataclasses import fields as dataclass_fields
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.checkpoint.atomic import (
    atomic_write_text,
    decode_array,
    encode_array,
    payload_digest,
)
from repro.checkpoint.signals import GracefulShutdown, RunInterrupted
from repro.linalg.kernel import LinearSolverStats
from repro.nonlinear.newton import NewtonResult
from repro.pde.timestepping import ImplicitStepper, TrajectoryResult
from repro.trace.tracer import TracerLike, as_tracer

__all__ = [
    "SNAPSHOT_SCHEMA",
    "SnapshotError",
    "TrajectorySnapshot",
    "TrajectoryCheckpointer",
    "resume_trajectory",
]

SNAPSHOT_SCHEMA = 1
_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{8})\.json$")


class SnapshotError(ValueError):
    """A snapshot file failed validation (torn write, corruption,
    schema mismatch). Resume treats this as "skip and fall back"."""


def _stats_to_dict(stats: LinearSolverStats) -> Dict[str, int]:
    return {f.name: getattr(stats, f.name) for f in dataclass_fields(stats)}


def _stats_from_dict(record: Dict[str, int]) -> LinearSolverStats:
    return LinearSolverStats(**record)


def _newton_result_to_dict(result: NewtonResult) -> Dict[str, Any]:
    return {
        "u": encode_array(result.u),
        "converged": bool(result.converged),
        "iterations": int(result.iterations),
        "residual_norm": float(result.residual_norm),
        "residual_history": [float(v) for v in result.residual_history],
        "damping_used": float(result.damping_used),
        "restarts": int(result.restarts),
        "total_iterations_including_restarts": int(
            result.total_iterations_including_restarts
        ),
        "linear_stats": _stats_to_dict(result.linear_stats),
        "total_linear_stats": (
            None
            if result.total_linear_stats is None
            else _stats_to_dict(result.total_linear_stats)
        ),
        "failure_reason": result.failure_reason,
    }


def _newton_result_from_dict(record: Dict[str, Any]) -> NewtonResult:
    return NewtonResult(
        u=decode_array(record["u"]),
        converged=record["converged"],
        iterations=record["iterations"],
        residual_norm=record["residual_norm"],
        residual_history=list(record["residual_history"]),
        damping_used=record["damping_used"],
        restarts=record["restarts"],
        total_iterations_including_restarts=record[
            "total_iterations_including_restarts"
        ],
        linear_stats=_stats_from_dict(record["linear_stats"]),
        total_linear_stats=(
            None
            if record["total_linear_stats"] is None
            else _stats_from_dict(record["total_linear_stats"])
        ),
        failure_reason=record["failure_reason"],
    )


class TrajectorySnapshot:
    """One validated snapshot, parsed back into live state."""

    def __init__(self, payload: Dict[str, Any], path: Optional[Path] = None):
        self.payload = payload
        self.path = path

    # -- capture --------------------------------------------------------

    @classmethod
    def capture(
        cls,
        stepper: ImplicitStepper,
        trajectory: TrajectoryResult,
        step: int,
        steps: int,
        counters: Dict[str, float],
    ) -> "TrajectorySnapshot":
        history = stepper.history
        payload: Dict[str, Any] = {
            "kind": "trajectory_snapshot",
            "schema": SNAPSHOT_SCHEMA,
            "step": int(step),
            "steps": int(steps),
            "t": float(step * stepper.dt),
            "dt": float(stepper.dt),
            "scheme": stepper.scheme,
            "dimension": int(stepper.operator.dimension),
            "y": encode_array(trajectory.states[step]),
            "states": encode_array(trajectory.states[: step + 1]),
            "bdf2_history": None if history is None else encode_array(history),
            "newton_results": [
                _newton_result_to_dict(result)
                for result in trajectory.newton_results[:step]
            ],
            "linear_stats": _stats_to_dict(trajectory.linear_stats),
            "kernel_state": base64.b64encode(
                pickle.dumps(stepper.kernel.checkpoint_state(), protocol=2)
            ).decode("ascii"),
            "counters": {name: float(value) for name, value in counters.items()},
        }
        return cls(payload)

    # -- persistence ----------------------------------------------------

    def write(self, path: Path) -> Path:
        envelope = {
            "schema": SNAPSHOT_SCHEMA,
            "kind": "trajectory_snapshot",
            "sha256": payload_digest(self.payload),
            "payload": self.payload,
        }
        atomic_write_text(path, json.dumps(envelope, allow_nan=True) + "\n")
        self.path = path
        return path

    @classmethod
    def load(cls, path: Path) -> "TrajectorySnapshot":
        """Parse and validate one snapshot file; raises
        :class:`SnapshotError` on any torn/corrupt/mismatched content."""
        try:
            text = Path(path).read_text(encoding="utf-8")
            envelope = json.loads(text)
        except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SnapshotError(f"{path}: unreadable snapshot ({exc})") from exc
        if not isinstance(envelope, dict) or envelope.get("kind") != "trajectory_snapshot":
            raise SnapshotError(f"{path}: not a trajectory snapshot")
        if envelope.get("schema") != SNAPSHOT_SCHEMA:
            raise SnapshotError(
                f"{path}: snapshot schema {envelope.get('schema')!r} != {SNAPSHOT_SCHEMA}"
            )
        payload = envelope.get("payload")
        expected = envelope.get("sha256")
        if not isinstance(payload, dict) or not isinstance(expected, str):
            raise SnapshotError(f"{path}: malformed snapshot envelope")
        actual = payload_digest(payload)
        if actual != expected:
            raise SnapshotError(
                f"{path}: content hash mismatch (stored {expected[:12]}..., "
                f"recomputed {actual[:12]}...)"
            )
        return cls(payload, path=Path(path))

    # -- restoration ----------------------------------------------------

    @property
    def step(self) -> int:
        return int(self.payload["step"])

    @property
    def counters(self) -> Dict[str, float]:
        return dict(self.payload.get("counters", {}))

    def restore_stepper(self, stepper: ImplicitStepper) -> None:
        """Reinstall stepper-side state (scheme compatibility checked)."""
        if stepper.scheme != self.payload["scheme"]:
            raise SnapshotError(
                f"snapshot was taken with scheme {self.payload['scheme']!r}, "
                f"stepper uses {stepper.scheme!r}"
            )
        if stepper.operator.dimension != self.payload["dimension"]:
            raise SnapshotError(
                f"snapshot dimension {self.payload['dimension']} != "
                f"operator dimension {stepper.operator.dimension}"
            )
        if abs(stepper.dt - self.payload["dt"]) > 0.0:
            raise SnapshotError(
                f"snapshot dt {self.payload['dt']} != stepper dt {stepper.dt}"
            )
        history = self.payload["bdf2_history"]
        stepper.restore_history(None if history is None else decode_array(history))
        kernel_state = pickle.loads(base64.b64decode(self.payload["kernel_state"]))
        stepper.kernel.restore_checkpoint_state(kernel_state)

    def restore_trajectory(self, steps: int) -> TrajectoryResult:
        """Rebuild the trajectory prefix into a full-size result."""
        prefix = decode_array(self.payload["states"])
        if steps < self.step:
            raise SnapshotError(
                f"snapshot is at step {self.step}, cannot resume a {steps}-step run"
            )
        states = np.empty((steps + 1, prefix.shape[1]))
        states[: self.step + 1] = prefix
        return TrajectoryResult(
            states=states,
            newton_results=[
                _newton_result_from_dict(record)
                for record in self.payload["newton_results"]
            ],
            linear_stats=_stats_from_dict(self.payload["linear_stats"]),
        )


class TrajectoryCheckpointer:
    """Periodic snapshot writer + resume reader for one checkpoint dir.

    Parameters
    ----------
    directory:
        Where snapshots live (created on first save). One trajectory
        per directory.
    every:
        Snapshot every N completed steps; the final step is always
        snapshotted so a completed run leaves a terminal snapshot.
    keep:
        Retain the newest ``keep`` snapshots (older ones are pruned
        after each successful save). Keeping more than one is the
        defense in depth behind hash validation: if the newest file is
        corrupt, resume falls back to the one before it.
    shutdown:
        Optional :class:`~repro.checkpoint.signals.GracefulShutdown`;
        when a SIGTERM/SIGINT has been received, the checkpointer
        flushes a final snapshot after the current step and raises
        :class:`~repro.checkpoint.signals.RunInterrupted`.
    crash_at_step:
        Chaos seam: ``os._exit(9)`` at the *start* of this step's
        bookkeeping, simulating a SIGKILL at a deterministic point
        (used by the kill-and-resume suites; never set in production).
    """

    def __init__(
        self,
        directory: Union[str, Path],
        every: int = 10,
        keep: int = 3,
        shutdown: Optional[GracefulShutdown] = None,
        crash_at_step: Optional[int] = None,
    ):
        if every < 1:
            raise ValueError("every must be at least 1")
        if keep < 1:
            raise ValueError("keep must be at least 1")
        self.directory = Path(directory)
        self.every = int(every)
        self.keep = int(keep)
        self.shutdown = shutdown
        self.crash_at_step = crash_at_step
        self.saved = 0
        self.rejected = 0
        self._baseline_counters: Dict[str, float] = {}

    # -- write side -----------------------------------------------------

    def begin(self, tracer: TracerLike) -> None:
        """Record the tracer-counter baseline so snapshots carry only
        the deltas accumulated by *this* trajectory."""
        self._baseline_counters = dict(getattr(tracer, "counters", {}) or {})

    def _counter_delta(self, tracer: TracerLike) -> Dict[str, float]:
        current = getattr(tracer, "counters", {}) or {}
        delta = {}
        for name, value in current.items():
            base = self._baseline_counters.get(name, 0)
            if value != base:
                delta[name] = value - base
        return delta

    def snapshot_path(self, step: int) -> Path:
        return self.directory / f"snapshot-{step:08d}.json"

    def after_step(
        self,
        stepper: ImplicitStepper,
        trajectory: TrajectoryResult,
        step: int,
        steps: int,
        tracer: TracerLike,
    ) -> None:
        """Called by the stepper after every completed step."""
        if self.crash_at_step is not None and step >= self.crash_at_step:
            os._exit(9)  # chaos seam: a SIGKILL would land exactly here
        interrupted = self.shutdown is not None and self.shutdown.requested
        if step % self.every == 0 or step == steps or interrupted:
            self.save(stepper, trajectory, step, steps, tracer)
        if interrupted:
            exc = RunInterrupted(
                f"shutdown requested; trajectory checkpointed at step {step}/{steps}"
            )
            # Give the caller what it needs to report the partial run
            # without re-reading the snapshot it just flushed.
            exc.step = step
            exc.trajectory = trajectory
            raise exc

    def save(
        self,
        stepper: ImplicitStepper,
        trajectory: TrajectoryResult,
        step: int,
        steps: int,
        tracer: Optional[TracerLike] = None,
    ) -> Path:
        tracer = as_tracer(tracer)
        self.directory.mkdir(parents=True, exist_ok=True)
        # Bump before capture: the count rides inside the snapshot's own
        # counter delta, so a resumed run's checkpoints_written equals
        # the uninterrupted run's (snapshot steps are deterministic).
        tracer.counter("checkpoints_written")
        snapshot = TrajectorySnapshot.capture(
            stepper, trajectory, step, steps, self._counter_delta(tracer)
        )
        path = snapshot.write(self.snapshot_path(step))
        self.saved += 1
        self._prune()
        return path

    def _prune(self) -> None:
        existing = self.list_snapshots()
        for _step, path in existing[: -self.keep]:
            try:
                path.unlink()
            except OSError:
                pass

    # -- read side ------------------------------------------------------

    def list_snapshots(self) -> List[Tuple[int, Path]]:
        """(step, path) pairs, ascending by step."""
        if not self.directory.is_dir():
            return []
        found = []
        for entry in self.directory.iterdir():
            match = _SNAPSHOT_RE.match(entry.name)
            if match:
                found.append((int(match.group(1)), entry))
        return sorted(found)

    def load_latest(
        self, tracer: Optional[TracerLike] = None
    ) -> Optional[TrajectorySnapshot]:
        """Newest snapshot that validates; torn/corrupt files are
        counted (``checkpoints_rejected``) and skipped, never fatal."""
        tracer = as_tracer(tracer)
        for _step, path in reversed(self.list_snapshots()):
            try:
                return TrajectorySnapshot.load(path)
            except SnapshotError:
                self.rejected += 1
                tracer.counter("checkpoints_rejected")
        return None


_UNLOADED = object()  # sentinel: resume_trajectory should load the snapshot itself


def resume_trajectory(
    stepper: ImplicitStepper,
    y0: np.ndarray,
    steps: int,
    checkpoint: TrajectoryCheckpointer,
    tracer: Optional[TracerLike] = None,
    snapshot: Any = _UNLOADED,
) -> TrajectoryResult:
    """Run (or resume) a trajectory against a checkpoint directory.

    With no valid snapshot present this is exactly ``stepper.run``;
    otherwise the stepper and trajectory are restored from the newest
    valid snapshot (its tracer-counter deltas re-applied, so resumed
    counters match an uninterrupted run) and the integration continues
    from the following step. Either way the result is bitwise identical
    to a never-interrupted ``stepper.run(y0, steps)``.

    Callers that already called ``checkpoint.load_latest`` (to report
    the resume point, say) pass the result as ``snapshot`` — including
    ``None`` for "nothing valid" — so corrupt files are not re-counted
    by a second scan.
    """
    tracer = as_tracer(tracer)
    if snapshot is _UNLOADED:
        snapshot = checkpoint.load_latest(tracer)
    if snapshot is None:
        return stepper.run(y0, steps, tracer=tracer, checkpoint=checkpoint)
    snapshot.restore_stepper(stepper)
    trajectory = snapshot.restore_trajectory(steps)
    if getattr(tracer, "active", False) and snapshot.counters:
        tracer.absorb([], counters=snapshot.counters)
    checkpoint.begin(tracer)
    if snapshot.step >= steps:
        return trajectory
    return stepper.continue_run(
        trajectory, snapshot.step + 1, steps, tracer=tracer, checkpoint=checkpoint
    )
