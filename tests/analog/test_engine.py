"""Tests for the analog execution engine."""

import numpy as np
import pytest

from repro.analog.engine import AnalogAccelerator, DistortedSystem, solution_error
from repro.analog.noise import NoiseModel
from repro.nonlinear.newton import NewtonOptions, damped_newton_with_restarts
from repro.nonlinear.systems import CoupledQuadraticSystem, CubicRootSystem, check_jacobian
from repro.pde.burgers import random_burgers_system


class TestSolutionError:
    def test_zero_for_identical(self):
        a = np.array([1.0, 2.0])
        assert solution_error(a, a) == 0.0

    def test_matches_equation6(self):
        a = np.array([1.0, 2.0, 3.0])
        d = np.array([1.1, 1.9, 3.0])
        expected = np.sqrt((0.01 + 0.01 + 0.0) / 3.0)
        assert solution_error(a, d) == pytest.approx(expected)

    def test_scale_normalizes(self):
        a = np.array([3.0])
        d = np.array([0.0])
        assert solution_error(a, d, scale=3.0) == pytest.approx(1.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            solution_error(np.zeros(2), np.zeros(3))


class TestDistortedSystem:
    def test_zero_distortion_is_identity(self):
        system = CoupledQuadraticSystem(1.0, 1.0)
        distorted = DistortedSystem(system, np.zeros(2), np.zeros(2), np.zeros(2))
        u = np.array([0.4, -0.2])
        np.testing.assert_allclose(distorted.residual(u), system.residual(u))

    def test_jacobian_consistent_with_residual(self):
        system = CoupledQuadraticSystem(0.5, 1.5)
        distorted = DistortedSystem(
            system,
            equation_gains=np.array([0.05, -0.03]),
            state_gains=np.array([0.02, 0.01]),
            offsets=np.array([0.01, -0.02]),
        )
        check_jacobian(distorted, np.array([0.3, 0.7]), rtol=1e-4, atol=1e-5)

    def test_root_shift_is_order_of_distortion(self):
        system = CubicRootSystem()
        distorted = DistortedSystem(
            system,
            equation_gains=np.zeros(2),
            state_gains=np.full(2, 0.01),
            offsets=np.zeros(2),
        )
        from repro.nonlinear.newton import newton_solve

        result = newton_solve(distorted, np.array([1.1, 0.0]))
        assert result.converged
        # Root of F((1+e)u) is u*/(1+e).
        np.testing.assert_allclose(result.u, [1.0 / 1.01, 0.0], atol=1e-6)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            DistortedSystem(CubicRootSystem(), np.zeros(3), np.zeros(2), np.zeros(2))


class TestAnalogAccelerator:
    def test_solves_small_system(self):
        acc = AnalogAccelerator(seed=0)
        system = CoupledQuadraticSystem(1.0, 1.0)
        result = acc.solve(system, initial_guess=np.array([1.0, 1.0]), value_bound=3.0)
        assert result.converged
        # Approximate: within a few percent of a true root.
        roots = system.real_roots()
        distance = min(np.linalg.norm(result.solution - r) for r in roots)
        assert distance < 0.5

    def test_burgers_2x2_accuracy_within_paper_band(self):
        # One die, a handful of problems: error is percent-level, not
        # exact and not garbage (Figure 6's regime).
        errors = []
        for trial in range(5):
            acc = AnalogAccelerator(seed=trial)
            system, guess = random_burgers_system(2, 1.0, np.random.default_rng(trial))
            digital = damped_newton_with_restarts(
                system, guess, NewtonOptions(tolerance=1e-12, max_iterations=200)
            )
            assert digital.converged
            analog = acc.solve(system, initial_guess=guess)
            assert analog.converged
            errors.append(
                solution_error(analog.scaled_solution, digital.u / analog.scale)
            )
        rms = float(np.sqrt(np.mean(np.array(errors) ** 2)))
        assert 0.005 < rms < 0.15

    def test_ideal_hardware_is_nearly_exact(self):
        acc = AnalogAccelerator(noise=NoiseModel.ideal(), seed=0)
        system, guess = random_burgers_system(2, 1.0, np.random.default_rng(3))
        digital = damped_newton_with_restarts(
            system, guess, NewtonOptions(tolerance=1e-12, max_iterations=200)
        )
        analog = acc.solve(system, initial_guess=guess)
        assert analog.converged
        err = solution_error(analog.scaled_solution, digital.u / analog.scale)
        assert err < 1e-3

    def test_settle_time_reported(self):
        acc = AnalogAccelerator(seed=0)
        result = acc.solve(CoupledQuadraticSystem(1.0, 1.0), initial_guess=np.array([1.0, 1.0]))
        assert 0.0 < result.settle_time_units < 60.0

    def test_same_die_same_result(self):
        system, guess = random_burgers_system(2, 1.0, np.random.default_rng(4))
        a = AnalogAccelerator(seed=9).solve(system, initial_guess=guess)
        b = AnalogAccelerator(seed=9).solve(system, initial_guess=guess)
        np.testing.assert_allclose(a.solution, b.solution, atol=1e-6)

    def test_different_dies_differ(self):
        system, guess = random_burgers_system(2, 1.0, np.random.default_rng(5))
        a = AnalogAccelerator(seed=1).solve(system, initial_guess=guess)
        b = AnalogAccelerator(seed=2).solve(system, initial_guess=guess)
        assert not np.allclose(a.solution, b.solution, atol=1e-6)

    def test_fixed_board_capacity_enforced(self):
        from repro.analog.fabric import FabricCapacityError

        acc = AnalogAccelerator(seed=0, num_chips=2)
        system, guess = random_burgers_system(3, 1.0, np.random.default_rng(0))
        with pytest.raises(FabricCapacityError):
            acc.solve(system, initial_guess=guess)

    def test_adc_repeats_validated(self):
        with pytest.raises(ValueError):
            AnalogAccelerator(adc_repeats=0)


class TestTrajectoryRecording:
    def test_trajectory_attached_on_request(self):
        from repro.nonlinear.systems import CoupledQuadraticSystem

        acc = AnalogAccelerator(seed=0)
        result = acc.solve(
            CoupledQuadraticSystem(1.0, 1.0),
            initial_guess=np.array([1.0, 1.0]),
            record_trajectory=True,
        )
        assert result.trajectory is not None
        assert result.trajectory.ys.shape[1] == 2
        # The transient ends where the readout says it ends.
        np.testing.assert_allclose(
            result.trajectory.final_state, result.scaled_solution, atol=0.05
        )

    def test_trajectory_absent_by_default(self):
        from repro.nonlinear.systems import CoupledQuadraticSystem

        acc = AnalogAccelerator(seed=0)
        result = acc.solve(
            CoupledQuadraticSystem(1.0, 1.0), initial_guess=np.array([1.0, 1.0])
        )
        assert result.trajectory is None

    def test_transient_residual_decays_on_ideal_hardware(self):
        # On noisy hardware the transient settles at the DISTORTED
        # system's root (true residual bounded by the distortion), so
        # the clean exponential-decay invariant is checked on ideal
        # silicon.
        from repro.nonlinear.systems import CoupledQuadraticSystem

        system = CoupledQuadraticSystem(1.0, 1.0)
        acc = AnalogAccelerator(seed=1, noise=NoiseModel.ideal())
        result = acc.solve(
            system, initial_guess=np.array([1.0, 1.0]), record_trajectory=True
        )
        trajectory = result.trajectory
        start = system.residual_norm(result.scale * trajectory.ys[0])
        end = system.residual_norm(result.scale * trajectory.ys[-1])
        assert end < 1e-3 * start
