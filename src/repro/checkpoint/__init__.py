"""Durability layer: snapshots, write-ahead journals, graceful shutdown.

Three pieces, one discipline (never lose more than one interval of
work, never resume from a torn file):

* :mod:`repro.checkpoint.atomic` — crash-safe write primitives and
  bitwise array/hash codecs;
* :mod:`repro.checkpoint.snapshot` — periodic trajectory snapshots and
  :func:`resume_trajectory` (bitwise-identical resume of an
  interrupted :class:`~repro.pde.timestepping.ImplicitStepper` run);
* :mod:`repro.checkpoint.journal` — the batch runtime's write-ahead
  journal and :func:`read_journal` replay;
* :mod:`repro.checkpoint.signals` — SIGTERM/SIGINT -> checkpointed
  ``interrupted`` exit instead of a crash.

Exports resolve lazily (PEP 562): :mod:`repro.trace.exporter` imports
the atomic helpers from here, and eagerly importing the snapshot and
journal modules (which reach back into the PDE/runtime layers, which
import trace) would close an import cycle.
"""

from __future__ import annotations

from typing import Any

from repro.checkpoint.atomic import (
    atomic_write_bytes,
    atomic_write_text,
    decode_array,
    encode_array,
    fsync_directory,
    payload_digest,
)

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "decode_array",
    "encode_array",
    "fsync_directory",
    "payload_digest",
    "GracefulShutdown",
    "RunInterrupted",
    "SnapshotError",
    "TrajectoryCheckpointer",
    "TrajectorySnapshot",
    "resume_trajectory",
    "BatchJournal",
    "JournalError",
    "JournalReplay",
    "read_journal",
]

_LAZY = {
    "GracefulShutdown": "repro.checkpoint.signals",
    "RunInterrupted": "repro.checkpoint.signals",
    "SnapshotError": "repro.checkpoint.snapshot",
    "TrajectoryCheckpointer": "repro.checkpoint.snapshot",
    "TrajectorySnapshot": "repro.checkpoint.snapshot",
    "resume_trajectory": "repro.checkpoint.snapshot",
    "BatchJournal": "repro.checkpoint.journal",
    "JournalError": "repro.checkpoint.journal",
    "JournalReplay": "repro.checkpoint.journal",
    "read_journal": "repro.checkpoint.journal",
}


def __getattr__(name: str) -> Any:
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
