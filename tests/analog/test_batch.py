"""Tests for batched accelerator runs and transfer accounting."""

import numpy as np
import pytest

from repro.analog.engine import AnalogAccelerator
from repro.pde.burgers import random_burgers_system


def make_batch(count, n=2, reynolds=1.0):
    systems, guesses = [], []
    for trial in range(count):
        system, guess = random_burgers_system(n, reynolds, np.random.default_rng(trial))
        systems.append(system)
        guesses.append(guess)
    return systems, guesses


class TestSolveBatch:
    def test_batch_solves_all_instances(self):
        systems, guesses = make_batch(3)
        accelerator = AnalogAccelerator(seed=0)
        results = accelerator.solve_batch(systems, guesses)
        assert len(results) == 3
        assert all(r.converged for r in results)

    def test_only_first_run_reconfigures(self):
        # Section 5.1: the configuration survives across instances of
        # the same kind of problem.
        systems, guesses = make_batch(3)
        results = AnalogAccelerator(seed=1).solve_batch(systems, guesses)
        assert results[0].reconfigured
        assert not results[1].reconfigured
        assert not results[2].reconfigured

    def test_transfer_accounting(self):
        systems, guesses = make_batch(2)
        results = AnalogAccelerator(seed=2, adc_repeats=4).solve_batch(systems, guesses)
        n = systems[0].dimension
        for result in results:
            # ICs + 4 constant DACs per variable in; repeats reads out.
            assert result.dac_writes == n + 4 * n
            assert result.adc_reads == n * 4

    def test_batch_matches_individual_solves(self):
        systems, guesses = make_batch(2)
        batch = AnalogAccelerator(seed=3).solve_batch(systems, guesses)
        singles = [
            AnalogAccelerator(seed=3).solve(system, initial_guess=guess)
            for system, guess in zip(systems, guesses)
        ]
        # Same die, same problems: the first batch entry matches its
        # standalone counterpart bit-for-bit up to the run-noise draw.
        np.testing.assert_allclose(batch[0].solution, singles[0].solution, atol=1e-3)

    def test_dimension_mismatch_rejected(self):
        sys_a, _ = random_burgers_system(2, 1.0, np.random.default_rng(0))
        sys_b, _ = random_burgers_system(3, 1.0, np.random.default_rng(1))
        with pytest.raises(ValueError):
            AnalogAccelerator(seed=4).solve_batch([sys_a, sys_b])

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            AnalogAccelerator(seed=5).solve_batch([])

    def test_guess_count_validated(self):
        systems, guesses = make_batch(2)
        with pytest.raises(ValueError):
            AnalogAccelerator(seed=6).solve_batch(systems, guesses[:1])
