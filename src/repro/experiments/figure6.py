"""Figure 6: distribution of analog solution error over random problems.

"We use the analog accelerator to solve 400 sets of nonlinear equations
that would be generated from a 2D Burgers' equation stencil. The
constants ... are randomly chosen between a dynamic range of -3.0 and
3.0. ... The total RMS error for the 400 trials is 5.38%."

The driver replays that protocol on the simulated accelerator: for each
trial, a fresh random 2x2 stencil problem, a golden digital solve, an
analog solve on a per-trial die, and the Equation 6 error between them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.analog.engine import AnalogAccelerator, solution_error
from repro.analog.noise import NoiseModel
from repro.nonlinear.newton import NewtonOptions, damped_newton_with_restarts
from repro.pde.burgers import random_burgers_system
from repro.reporting import ascii_table

__all__ = ["Figure6Result", "run_figure6", "PAPER_RMS_ERROR"]

PAPER_RMS_ERROR = 0.0538


@dataclass
class Figure6Result:
    errors: np.ndarray
    total_rms: float
    failed_trials: int

    def histogram(self, bins: int = 12) -> List[dict]:
        counts, edges = np.histogram(self.errors * 100.0, bins=bins)
        return [
            {
                "error bin (%)": f"{edges[i]:.2f}-{edges[i + 1]:.2f}",
                "trials": int(counts[i]),
            }
            for i in range(len(counts))
        ]

    def rows(self) -> List[dict]:
        return self.histogram()

    def render(self) -> str:
        summary = (
            f"trials: {self.errors.size} (skipped {self.failed_trials} with no digital root)\n"
            f"total RMS error: {self.total_rms * 100:.2f}%  (paper: {PAPER_RMS_ERROR * 100:.2f}%)\n"
        )
        return summary + ascii_table(self.histogram())


def run_figure6(
    trials: int = 400,
    grid_n: int = 2,
    reynolds: float = 1.0,
    noise: NoiseModel = None,
    seed: int = 0,
) -> Figure6Result:
    """Replay the 400-trial error-distribution experiment."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    noise = noise or NoiseModel()
    errors = []
    failed = 0
    for trial in range(trials):
        rng = np.random.default_rng(seed + trial)
        system, guess = random_burgers_system(grid_n, reynolds, rng)
        digital = damped_newton_with_restarts(
            system, guess, NewtonOptions(tolerance=1e-12, max_iterations=200)
        )
        if not digital.converged:
            failed += 1
            continue
        accelerator = AnalogAccelerator(noise=noise, seed=seed + trial)
        analog = accelerator.solve(system, initial_guess=guess, value_bound=3.0)
        errors.append(solution_error(analog.scaled_solution, digital.u / analog.scale))
    errors_arr = np.asarray(errors)
    return Figure6Result(
        errors=errors_arr,
        total_rms=float(np.sqrt(np.mean(errors_arr**2))) if errors_arr.size else float("nan"),
        failed_trials=failed,
    )
