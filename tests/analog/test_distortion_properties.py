"""Property-based tests for the hardware distortion model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analog.engine import DistortedSystem
from repro.nonlinear.newton import newton_solve
from repro.nonlinear.systems import CoupledQuadraticSystem

small = st.floats(min_value=-0.05, max_value=0.05, allow_nan=False)
coords = st.floats(min_value=-2.0, max_value=2.0, allow_nan=False)


@settings(max_examples=30)
@given(small, small, small, small, coords, coords)
def test_property_residual_formula(g0, g1, h0, h1, x, y):
    """D(w) = diag(1+g) F(diag(1+h) w) + c, verified pointwise."""
    system = CoupledQuadraticSystem(1.0, 1.0)
    offsets = np.array([0.01, -0.02])
    distorted = DistortedSystem(
        system,
        equation_gains=np.array([g0, g1]),
        state_gains=np.array([h0, h1]),
        offsets=offsets,
    )
    w = np.array([x, y])
    expected = (1.0 + np.array([g0, g1])) * system.residual(
        (1.0 + np.array([h0, h1])) * w
    ) + offsets
    np.testing.assert_allclose(distorted.residual(w), expected, atol=1e-12)


@settings(max_examples=20)
@given(small, small)
def test_property_root_shift_first_order(g, h):
    """For pure state-gain distortion the root shift is exactly the
    inverse gain; equation gains alone leave the root fixed."""
    system = CoupledQuadraticSystem(1.0, 1.0)
    true_root = system.real_roots()[0]

    gain_only = DistortedSystem(
        system,
        equation_gains=np.full(2, g),
        state_gains=np.zeros(2),
        offsets=np.zeros(2),
    )
    result = newton_solve(gain_only, true_root + 0.01)
    if result.converged:
        np.testing.assert_allclose(result.u, true_root, atol=1e-7)

    state_only = DistortedSystem(
        system,
        equation_gains=np.zeros(2),
        state_gains=np.full(2, h),
        offsets=np.zeros(2),
    )
    result = newton_solve(state_only, true_root)
    if result.converged:
        np.testing.assert_allclose(result.u, true_root / (1.0 + h), atol=1e-7)


@settings(max_examples=20)
@given(small, small, coords, coords)
def test_property_jacobian_matches_finite_difference(g, h, x, y):
    from repro.nonlinear.systems import check_jacobian

    system = CoupledQuadraticSystem(0.7, -0.4)
    distorted = DistortedSystem(
        system,
        equation_gains=np.array([g, -g]),
        state_gains=np.array([h, h / 2.0]),
        offsets=np.array([0.005, -0.005]),
    )
    check_jacobian(distorted, np.array([x, y]), rtol=1e-3, atol=1e-3)
