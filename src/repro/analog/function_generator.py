"""Analog nonlinear function generators (lookup-table approach).

The accelerator's multipliers and summers realize polynomial
nonlinearities natively; transcendental functions (``e^u``, ``sin u``)
"would require analog nonlinear function generators" (Section 7). The
related work [18, 19] summarized in Table 5 realized them as a
*continuous-time digital lookup*: the analog input is digitized, a
lookup table (SRAM) supplies the function value, and a DAC returns it
to the analog domain — continuously, without clocking the computation.

:class:`LookupTableFunction` models that path: input quantization to
the table's address resolution, tabulated values with optional output
DAC quantization, and saturation at the table's input range. The
``derivative_table`` companion makes the pair usable wherever the
library expects ``(f, df)`` — e.g. the Bratu problem's pluggable
exponential (:mod:`repro.pde.bratu`).

The model exposes exactly the failure mode the paper warns about:
inputs outside the table's range saturate, and there is no scaling
identity like Section 5.3's quadratic rule to prevent that.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

__all__ = ["LookupTableFunction", "make_exp_pair"]


class LookupTableFunction:
    """A tabulated scalar function applied elementwise.

    Parameters
    ----------
    function:
        The mathematical function being tabulated.
    input_range:
        Addressable input interval ``(lo, hi)``; inputs outside clamp
        to the ends (the generator's saturation).
    table_bits:
        Address resolution: the table holds ``2^table_bits`` entries.
    output_bits:
        Optional DAC quantization of the table's output values; ``None``
        stores exact values (a wide SRAM word).
    interpolate:
        Linear interpolation between adjacent entries (the smoother
        continuous-time behaviour of [18, 19]) versus raw staircase
        lookup.
    """

    def __init__(
        self,
        function: Callable[[np.ndarray], np.ndarray],
        input_range: Tuple[float, float],
        table_bits: int = 10,
        output_bits: int = None,
        interpolate: bool = True,
    ):
        lo, hi = input_range
        if not lo < hi:
            raise ValueError(f"input_range must be increasing, got {input_range}")
        if table_bits <= 0:
            raise ValueError("table_bits must be positive")
        self.lo = float(lo)
        self.hi = float(hi)
        self.table_bits = int(table_bits)
        self.interpolate = bool(interpolate)
        size = 2**table_bits
        self._inputs = np.linspace(lo, hi, size)
        values = np.asarray(function(self._inputs), dtype=float)
        if output_bits is not None:
            if output_bits <= 0:
                raise ValueError("output_bits must be positive")
            span = float(np.max(np.abs(values))) or 1.0
            step = 2.0 * span / 2**output_bits
            values = np.round(values / step) * step
        self._values = values

    @property
    def table_size(self) -> int:
        return self._inputs.shape[0]

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        clamped = np.clip(x, self.lo, self.hi)
        if self.interpolate:
            return np.interp(clamped, self._inputs, self._values)
        # Staircase: nearest-entry lookup.
        step = (self.hi - self.lo) / (self.table_size - 1)
        idx = np.clip(np.round((clamped - self.lo) / step).astype(int), 0, self.table_size - 1)
        return self._values[idx]

    def max_error(self, reference: Callable[[np.ndarray], np.ndarray], probes: int = 4096) -> float:
        """Worst-case deviation from ``reference`` over the input range."""
        xs = np.linspace(self.lo, self.hi, probes)
        return float(np.max(np.abs(self(xs) - np.asarray(reference(xs), dtype=float))))

    def saturates_at(self, x: np.ndarray) -> np.ndarray:
        """Boolean mask of inputs outside the addressable range — the
        dynamic-range failure Section 7 predicts for transcendental
        nonlinearities."""
        x = np.asarray(x, dtype=float)
        return (x < self.lo) | (x > self.hi)


def make_exp_pair(
    input_range: Tuple[float, float] = (-1.0, 6.0),
    table_bits: int = 10,
    output_bits: int = None,
    interpolate: bool = True,
) -> Tuple[LookupTableFunction, LookupTableFunction]:
    """``(exp, exp)`` lookup pair for the Bratu problem.

    The derivative of ``e^u`` is itself, so one table shape serves both;
    two instances are returned because the physical design would burn
    two generator slots (function and Jacobian datapaths, Figure 1).
    """
    return (
        LookupTableFunction(np.exp, input_range, table_bits, output_bits, interpolate),
        LookupTableFunction(np.exp, input_range, table_bits, output_bits, interpolate),
    )
