"""Structured 2-D grids for finite-difference discretization."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Grid2D"]


@dataclass(frozen=True)
class Grid2D:
    """A uniform ``nx x ny`` grid of *interior* nodes.

    Boundary values live on a ghost ring around the interior (handled
    by :class:`~repro.pde.boundary.DirichletBoundary`); only interior
    nodes are unknowns. Following the paper's isotropic normalization
    (Section 4.4: "We choose values for dt, dx, and dy so these
    coefficients are eliminated"), the default spacing is 1.

    Index convention: node ``(i, j)`` is column ``i`` (x-direction) and
    row ``j`` (y-direction); the flattened index is ``j * nx + i``
    (row-major, matching ``numpy.reshape`` of a ``(ny, nx)`` array).
    """

    nx: int
    ny: int
    dx: float = 1.0
    dy: float = 1.0

    def __post_init__(self) -> None:
        if self.nx <= 0 or self.ny <= 0:
            raise ValueError(f"grid must have positive extents, got {self.nx}x{self.ny}")
        if self.dx <= 0.0 or self.dy <= 0.0:
            raise ValueError("grid spacings must be positive")

    @classmethod
    def square(cls, n: int, spacing: float = 1.0) -> "Grid2D":
        """Square ``n x n`` grid, the shape used throughout the paper."""
        return cls(nx=n, ny=n, dx=spacing, dy=spacing)

    @property
    def num_nodes(self) -> int:
        return self.nx * self.ny

    @property
    def shape(self) -> tuple:
        """Array shape ``(ny, nx)`` of a field on this grid."""
        return (self.ny, self.nx)

    def flat_index(self, i: int, j: int) -> int:
        """Flattened index of interior node ``(i, j)``."""
        if not (0 <= i < self.nx and 0 <= j < self.ny):
            raise IndexError(f"node ({i}, {j}) outside {self.nx}x{self.ny} grid")
        return j * self.nx + i

    def node_coordinates(self, i: int, j: int) -> tuple:
        """Physical coordinates of interior node ``(i, j)``; the ghost
        ring sits at index -1 and nx/ny."""
        return ((i + 1) * self.dx, (j + 1) * self.dy)

    def field(self, values: np.ndarray) -> np.ndarray:
        """Reshape a flat vector into a ``(ny, nx)`` field."""
        values = np.asarray(values, dtype=float)
        if values.shape != (self.num_nodes,):
            raise ValueError(f"expected {self.num_nodes} values, got {values.shape}")
        return values.reshape(self.ny, self.nx)

    def flatten(self, field: np.ndarray) -> np.ndarray:
        """Flatten a ``(ny, nx)`` field into the unknown ordering."""
        field = np.asarray(field, dtype=float)
        if field.shape != self.shape:
            raise ValueError(f"expected shape {self.shape}, got {field.shape}")
        return field.reshape(-1)

    def interior_meshgrid(self) -> tuple:
        """Coordinate arrays ``(xs, ys)`` of shape ``(ny, nx)``."""
        xs = (np.arange(self.nx) + 1) * self.dx
        ys = (np.arange(self.ny) + 1) * self.dy
        return np.meshgrid(xs, ys, indexing="xy")
