"""The public API surface: everything advertised imports and exists."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.linalg",
    "repro.ode",
    "repro.nonlinear",
    "repro.pde",
    "repro.analog",
    "repro.core",
    "repro.perf",
    "repro.optimize",
    "repro.workloads",
    "repro.experiments",
    "repro.reporting",
    "repro.runtime",
    "repro.service",
    "repro.trace",
    "repro.checkpoint",
    "repro.fleet",
    "repro.bench",
    "repro.certify",
    "repro.cli",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_package_imports(package):
    importlib.import_module(package)


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{package}.__all__ lists missing {name}"


@pytest.mark.parametrize("package", PACKAGES)
def test_module_docstrings_present(package):
    module = importlib.import_module(package)
    assert module.__doc__ and len(module.__doc__.strip()) > 40, package


def test_headline_api_at_top_level():
    import repro

    assert hasattr(repro, "HybridSolver")
    assert hasattr(repro, "AnalogAccelerator")
    assert hasattr(repro, "random_burgers_system")


def test_every_public_class_documented():
    # Spot-check: all exported callables/classes of the core packages
    # carry docstrings.
    for package in ("repro.core", "repro.analog", "repro.nonlinear"):
        module = importlib.import_module(package)
        for name in module.__all__:
            obj = getattr(module, name)
            if callable(obj):
                assert obj.__doc__, f"{package}.{name} lacks a docstring"
