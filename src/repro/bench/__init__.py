"""repro.bench: the performance scoreboard (ROADMAP item 3).

Machine-readable benchmark reports plus the regression gate that makes
"measurably faster" enforceable:

* :mod:`repro.bench.schema` — schema-versioned ``BENCH_<n>.json``
  reports (wall-clock, :mod:`repro.trace` span sums, counter totals,
  deterministic work metrics, peak RSS) and the numbered-trajectory
  file conventions;
* :mod:`repro.bench.suite` — the fixed suite ``repro bench`` runs: a
  figure7-scale Burgers trajectory, the figure8 seeding comparison, a
  ``serve-batch`` soak through :mod:`repro.runtime`, and a
  ``LinearKernel``/stencil microbench;
* :mod:`repro.bench.compare` — the hot-path comparator behind
  ``repro bench --compare`` and ``scripts/check_bench_regression.py``.
"""

from repro.bench.compare import (
    DEFAULT_TIME_TOLERANCE,
    DEFAULT_WORK_TOLERANCE,
    HOT_PATHS,
    ComparisonResult,
    HotPath,
    MetricComparison,
    ScaleMismatch,
    compare_reports,
)
from repro.bench.schema import (
    BENCH_SCHEMA_VERSION,
    BenchReport,
    BenchmarkResult,
    bench_index,
    latest_bench_path,
    list_bench_files,
    next_bench_path,
    validate_report,
)
from repro.bench.suite import (
    BENCHMARK_NAMES,
    DEFAULT_SCALE,
    SCALES,
    run_bench_suite,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BENCHMARK_NAMES",
    "DEFAULT_SCALE",
    "DEFAULT_TIME_TOLERANCE",
    "DEFAULT_WORK_TOLERANCE",
    "HOT_PATHS",
    "SCALES",
    "BenchReport",
    "BenchmarkResult",
    "ComparisonResult",
    "HotPath",
    "MetricComparison",
    "ScaleMismatch",
    "bench_index",
    "compare_reports",
    "latest_bench_path",
    "list_bench_files",
    "next_bench_path",
    "run_bench_suite",
    "validate_report",
]
