"""Benchmark: Figure 2 — continuous Newton basins for u^3 - 1.

Regenerates the basin-of-attraction maps and asserts the figure's
claims: the chip returns all three cube roots; which root depends on
the initial condition; and the continuous Newton basins are more
contiguous than classical/damped Newton's fractal ones.
"""

import numpy as np

from repro.experiments.figure2 import run_figure2


def test_figure2(benchmark):
    result = benchmark.pedantic(
        run_figure2, kwargs={"resolution": 96, "noise_level": 1e-3}, rounds=1, iterations=1
    )
    print("\n" + result.render())

    analog = result.maps["continuous Newton (analog)"]
    classical = result.maps["classical Newton (digital)"]
    damped = result.maps["damped Newton (digital, h=0.25)"]

    # "the chip is able to return all of the three roots"
    assert set(np.unique(analog.labels)) - {-1} == {0, 1, 2}

    # "Which root it converges to depends on the choice of the initial
    # condition": every root owns a substantial share of the plane.
    assert analog.root_fractions().min() > 0.2

    # "The convergence basins are more contiguous compared to those in
    # classical or damped Newton methods."
    assert result.scores["continuous Newton (analog)"] > result.scores[
        "classical Newton (digital)"
    ]
    assert (
        result.scores["continuous Newton (analog)"]
        >= result.scores["damped Newton (digital, h=0.25)"]
    )

    # Damping already smooths the fractal relative to classical Newton
    # (Section 2.1's "pictures become less complex").
    assert (
        result.scores["damped Newton (digital, h=0.25)"]
        > result.scores["classical Newton (digital)"]
    )

    # Nearly every pixel converges under the flow.
    assert analog.converged_fraction > 0.95
