"""Additional hybrid-solver and decomposition coverage."""

import numpy as np
import pytest

from repro.analog.engine import AnalogAccelerator
from repro.analog.noise import NoiseModel
from repro.core.gauss_seidel import RedBlackGaussSeidel
from repro.core.hybrid import HybridSolver
from repro.pde.boundary import DirichletBoundary
from repro.pde.burgers import BurgersStencilSystem, random_burgers_system
from repro.pde.grid import Grid2D


class TestHybridSolverConfigurations:
    def test_ideal_accelerator_gives_one_step_polish(self):
        solver = HybridSolver(AnalogAccelerator(noise=NoiseModel.ideal(), seed=0))
        system, guess = random_burgers_system(2, 1.0, np.random.default_rng(0))
        result = solver.solve(system, initial_guess=guess)
        assert result.converged
        # An exact seed needs at most a couple of cleanup iterations.
        assert result.digital_iterations <= 3

    def test_degraded_accelerator_still_converges(self):
        noisy = NoiseModel(residual_mismatch_sigma=0.08, residual_offset_sigma=0.08)
        solver = HybridSolver(AnalogAccelerator(noise=noisy, seed=1))
        system, guess = random_burgers_system(2, 1.0, np.random.default_rng(1))
        result = solver.solve(system, initial_guess=guess)
        assert result.converged
        assert result.residual_norm < 1e-9

    def test_default_guess_is_zero_vector(self):
        solver = HybridSolver(AnalogAccelerator(seed=2))
        system, _ = random_burgers_system(2, 0.5, np.random.default_rng(2))
        result = solver.solve(system)
        assert result.converged

    def test_baseline_default_guess(self):
        solver = HybridSolver(AnalogAccelerator(seed=3))
        system, _ = random_burgers_system(2, 0.5, np.random.default_rng(3))
        baseline = solver.solve_baseline(system)
        assert baseline.converged


class TestGaussSeidelRectangular:
    def test_non_square_grid_blocks(self):
        grid = Grid2D(nx=6, ny=4)
        rng = np.random.default_rng(0)
        system = BurgersStencilSystem(
            grid=grid,
            reynolds=1.0,
            rhs_u=rng.uniform(-1, 1, grid.shape),
            rhs_v=rng.uniform(-1, 1, grid.shape),
            boundary_u=DirichletBoundary.random(grid, rng),
            boundary_v=DirichletBoundary.random(grid, rng),
        )
        decomposition = RedBlackGaussSeidel(system, block_size=3)
        covered = np.zeros(grid.shape, dtype=int)
        for block in decomposition.blocks:
            covered[block.j0 : block.j1, block.i0 : block.i1] += 1
        np.testing.assert_array_equal(covered, 1)
        result = decomposition.solve(tolerance=1e-3, max_sweeps=30)
        assert result.converged

    def test_boundary_values_flow_into_edge_blocks(self):
        # A block on the global west edge must see the global west
        # boundary, not frozen interior values.
        grid = Grid2D.square(4)
        rng = np.random.default_rng(1)
        west = np.array([9.0, 9.0, 9.0, 9.0])
        boundary_u = DirichletBoundary(
            west=west, east=np.zeros(4), south=np.zeros(4), north=np.zeros(4)
        )
        system = BurgersStencilSystem(
            grid=grid,
            reynolds=1.0,
            rhs_u=np.zeros(grid.shape),
            rhs_v=np.zeros(grid.shape),
            boundary_u=boundary_u,
            boundary_v=DirichletBoundary.constant(grid, 0.0),
        )
        decomposition = RedBlackGaussSeidel(system, block_size=2)
        west_block = next(b for b in decomposition.blocks if b.i0 == 0)
        sub = decomposition.block_system(
            west_block, np.zeros(grid.shape), np.zeros(grid.shape)
        )
        np.testing.assert_array_equal(sub.boundary_u.west, west[west_block.j0 : west_block.j1])
