"""Tests for the 2-D viscous Burgers' stencil system and time stepper."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nonlinear.newton import NewtonOptions, damped_newton_with_restarts
from repro.nonlinear.systems import check_jacobian
from repro.pde.boundary import DirichletBoundary
from repro.pde.burgers import (
    BurgersStencilSystem,
    BurgersTimeStepper,
    random_burgers_system,
    reynolds_character,
)
from repro.pde.grid import Grid2D


def make_system(n=3, reynolds=1.0, seed=0, weight=1.0):
    system, guess = random_burgers_system(n, reynolds, np.random.default_rng(seed))
    if weight != 1.0:
        system = BurgersStencilSystem(
            grid=system.grid,
            reynolds=system.reynolds,
            rhs_u=system.rhs_u,
            rhs_v=system.rhs_v,
            boundary_u=system.boundary_u,
            boundary_v=system.boundary_v,
            weight=weight,
        )
    return system, guess


class TestBurgersResidual:
    def test_dimension_is_two_fields(self):
        system, _ = make_system(n=4)
        assert system.dimension == 32

    def test_pack_split_roundtrip(self):
        system, _ = make_system(n=3)
        rng = np.random.default_rng(1)
        u = rng.standard_normal((3, 3))
        v = rng.standard_normal((3, 3))
        u2, v2 = system.split(system.pack(u, v))
        np.testing.assert_array_equal(u, u2)
        np.testing.assert_array_equal(v, v2)

    def test_residual_single_node_by_hand(self):
        # 1x1 grid: the stencil reduces to a closed-form expression.
        grid = Grid2D.square(1)
        bu = DirichletBoundary(
            west=np.array([1.0]), east=np.array([2.0]), south=np.array([3.0]), north=np.array([4.0])
        )
        bv = DirichletBoundary.constant(grid, 0.5)
        re = 2.0
        system = BurgersStencilSystem(
            grid,
            re,
            rhs_u=np.array([[0.7]]),
            rhs_v=np.array([[0.1]]),
            boundary_u=bu,
            boundary_v=bv,
        )
        u, v = 0.3, -0.2
        ux = (2.0 - 1.0) / 2.0
        uy = (4.0 - 3.0) / 2.0
        lap_u = 1.0 + 2.0 + 3.0 + 4.0 - 4.0 * u
        expected_fu = u + u * ux + v * uy - lap_u / re - 0.7
        vx = (0.5 - 0.5) / 2.0
        vy = (0.5 - 0.5) / 2.0
        lap_v = 4.0 * 0.5 - 4.0 * v
        expected_fv = v + u * vx + v * vy - lap_v / re - 0.1
        residual = system.residual(np.array([u, v]))
        np.testing.assert_allclose(residual, [expected_fu, expected_fv], atol=1e-14)

    def test_rhs_shift_moves_residual(self):
        system, guess = make_system(n=2)
        base = system.residual(guess)
        shifted = BurgersStencilSystem(
            grid=system.grid,
            reynolds=system.reynolds,
            rhs_u=system.rhs_u + 1.0,
            rhs_v=system.rhs_v,
            boundary_u=system.boundary_u,
            boundary_v=system.boundary_v,
        )
        delta = shifted.residual(guess) - base
        np.testing.assert_allclose(delta[:4], -1.0, atol=1e-14)
        np.testing.assert_allclose(delta[4:], 0.0, atol=1e-14)

    def test_validation(self):
        grid = Grid2D.square(2)
        bc = DirichletBoundary.constant(grid)
        with pytest.raises(ValueError):
            BurgersStencilSystem(grid, -1.0, np.zeros((2, 2)), np.zeros((2, 2)), bc, bc)
        with pytest.raises(ValueError):
            BurgersStencilSystem(grid, 1.0, np.zeros((3, 3)), np.zeros((2, 2)), bc, bc)
        with pytest.raises(ValueError):
            BurgersStencilSystem(grid, 1.0, np.zeros((2, 2)), np.zeros((2, 2)), bc, bc, weight=0.0)


class TestBurgersJacobian:
    @pytest.mark.parametrize("n,reynolds", [(1, 1.0), (2, 0.5), (3, 2.0), (4, 5.0)])
    def test_jacobian_matches_finite_differences(self, n, reynolds):
        system, guess = make_system(n=n, reynolds=reynolds, seed=n)
        check_jacobian(system, guess, rtol=1e-4, atol=1e-5)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=1000))
    def test_property_jacobian_random_states(self, seed):
        system, _ = make_system(n=2, reynolds=1.0, seed=0)
        rng = np.random.default_rng(seed)
        state = rng.uniform(-2.0, 2.0, system.dimension)
        check_jacobian(system, state, rtol=1e-4, atol=1e-5)

    def test_jacobian_sparsity_five_point_plus_coupling(self):
        system, guess = make_system(n=4)
        jac = system.jacobian(guess)
        # <= 6 nonzeros per row: 5-point stencil + cross-field coupling.
        row_counts = np.diff(jac.indptr)
        assert np.max(row_counts) <= 6
        assert jac.nnz < system.dimension * 6 + 1

    def test_jacobian_weight_scales_offdiagonal(self):
        sys1, guess = make_system(n=2, weight=1.0)
        sys2, _ = make_system(n=2, weight=0.5)
        j1 = sys1.jacobian(guess).to_dense()
        j2 = sys2.jacobian(guess).to_dense()
        off1 = j1 - np.diag(np.diag(j1))
        off2 = j2 - np.diag(np.diag(j2))
        np.testing.assert_allclose(off2, 0.5 * off1, atol=1e-12)

    def test_diagonal_dominance_decreases_with_reynolds(self):
        # The Section 6.1 effect: high Re weakens the Jacobian diagonal.
        rng_state = np.zeros(0)
        low, _ = make_system(n=3, reynolds=0.1, seed=5)
        high, _ = make_system(n=3, reynolds=10.0, seed=5)
        state = np.random.default_rng(6).uniform(-1, 1, low.dimension)
        assert high.diagonal_dominance(state) < low.diagonal_dominance(state)


class TestBurgersSolve:
    @pytest.mark.parametrize("reynolds", [0.1, 1.0])
    def test_newton_solves_random_problem(self, reynolds):
        system, guess = make_system(n=3, reynolds=reynolds, seed=3)
        result = damped_newton_with_restarts(
            system, guess, NewtonOptions(tolerance=1e-10, max_iterations=100)
        )
        assert result.converged
        assert system.residual_norm(result.u) < 1e-9

    def test_solution_satisfies_manufactured_problem(self):
        # Choose a target state, compute the RHS that makes it a root,
        # then recover it from a perturbed guess.
        grid = Grid2D.square(3)
        rng = np.random.default_rng(7)
        bu = DirichletBoundary.random(grid, rng)
        bv = DirichletBoundary.random(grid, rng)
        target_u = rng.uniform(-1, 1, grid.shape)
        target_v = rng.uniform(-1, 1, grid.shape)
        probe = BurgersStencilSystem(
            grid, 1.0, np.zeros(grid.shape), np.zeros(grid.shape), bu, bv
        )
        target = probe.pack(target_u, target_v)
        residual_at_target = probe.residual(target)
        n = grid.num_nodes
        system = BurgersStencilSystem(
            grid,
            1.0,
            rhs_u=grid.field(residual_at_target[:n]),
            rhs_v=grid.field(residual_at_target[n:]),
            boundary_u=bu,
            boundary_v=bv,
        )
        result = damped_newton_with_restarts(system, target + 0.01 * rng.standard_normal(2 * n))
        assert result.converged
        np.testing.assert_allclose(result.u, target, atol=1e-7)


class TestBurgersTimeStepper:
    def test_diffusion_decays_fields(self):
        # Pure diffusion regime (tiny Re... careful: small Re = strong
        # diffusion): an initial bump with zero boundaries decays.
        grid = Grid2D.square(4)
        bc = DirichletBoundary.constant(grid, 0.0)
        stepper = BurgersTimeStepper(grid, reynolds=0.5, dt=0.1, boundary_u=bc, boundary_v=bc)
        u0 = np.full(grid.shape, 0.5)
        v0 = np.zeros(grid.shape)
        u, v, results = stepper.evolve(u0, v0, num_steps=5)
        assert all(r.converged for r in results)
        assert np.max(np.abs(u)) < np.max(np.abs(u0))

    def test_constant_state_with_matching_boundary_is_steady(self):
        # u = v = c everywhere (including boundaries): advective and
        # diffusive terms vanish, so the state is a fixed point.
        grid = Grid2D.square(3)
        c = 0.7
        bc = DirichletBoundary.constant(grid, c)
        stepper = BurgersTimeStepper(grid, reynolds=1.0, dt=0.2, boundary_u=bc, boundary_v=bc)
        u0 = np.full(grid.shape, c)
        u, v, results = stepper.evolve(u0, u0.copy(), num_steps=3)
        assert all(r.converged for r in results)
        np.testing.assert_allclose(u, c, atol=1e-8)
        np.testing.assert_allclose(v, c, atol=1e-8)

    def test_step_reports_newton_result(self):
        grid = Grid2D.square(3)
        bc = DirichletBoundary.constant(grid, 0.0)
        stepper = BurgersTimeStepper(grid, reynolds=1.0, dt=0.1, boundary_u=bc, boundary_v=bc)
        _, _, result = stepper.step(np.zeros(grid.shape), np.zeros(grid.shape))
        assert result.converged

    def test_dt_validated(self):
        grid = Grid2D.square(2)
        bc = DirichletBoundary.constant(grid)
        with pytest.raises(ValueError):
            BurgersTimeStepper(grid, 1.0, dt=0.0, boundary_u=bc, boundary_v=bc)

    def test_crank_nicolson_second_order_in_time(self):
        # Halving dt should reduce the time-discretization error ~4x,
        # measured against a fine-dt reference trajectory.
        grid = Grid2D.square(3)
        bc = DirichletBoundary.constant(grid, 0.0)
        rng = np.random.default_rng(11)
        u0 = rng.uniform(-0.5, 0.5, grid.shape)
        v0 = rng.uniform(-0.5, 0.5, grid.shape)

        def final_state(dt, steps):
            stepper = BurgersTimeStepper(
                grid, reynolds=1.0, dt=dt, boundary_u=bc, boundary_v=bc
            )
            u, v, results = stepper.evolve(u0, v0, num_steps=steps)
            assert all(r.converged for r in results)
            return np.concatenate([u.ravel(), v.ravel()])

        reference = final_state(0.0125, 64)
        coarse = final_state(0.1, 8)
        fine = final_state(0.05, 16)
        err_coarse = np.linalg.norm(coarse - reference)
        err_fine = np.linalg.norm(fine - reference)
        assert 2.5 < err_coarse / err_fine < 6.0


class TestReynoldsCharacter:
    def test_large_reynolds_is_hyperbolic_quasilinear(self):
        character = reynolds_character(10.0)
        assert character.regime == "large"
        assert "hyperbolic" in character.dominant_character
        assert character.nonlinearity == "quasilinear"

    def test_small_reynolds_is_parabolic(self):
        character = reynolds_character(0.01)
        assert character.regime == "small"
        assert "parabolic" in character.dominant_character

    def test_validation(self):
        with pytest.raises(ValueError):
            reynolds_character(0.0)


class TestRandomProblemGenerator:
    def test_constants_within_declared_range(self):
        system, guess = random_burgers_system(4, 1.0, np.random.default_rng(0))
        assert np.max(np.abs(system.rhs_u)) <= 3.0
        assert np.max(np.abs(system.rhs_v)) <= 3.0
        assert np.max(np.abs(guess)) <= 1.0

    def test_reproducible_with_seed(self):
        a, ga = random_burgers_system(3, 1.0, np.random.default_rng(42))
        b, gb = random_burgers_system(3, 1.0, np.random.default_rng(42))
        np.testing.assert_array_equal(a.rhs_u, b.rhs_u)
        np.testing.assert_array_equal(ga, gb)


class TestBurgersForcing:
    def test_forcing_shifts_steady_state(self):
        # Constant forcing drives the implicit step away from zero.
        grid = Grid2D.square(3)
        bc = DirichletBoundary.constant(grid, 0.0)
        forced = BurgersTimeStepper(
            grid,
            reynolds=1.0,
            dt=0.2,
            boundary_u=bc,
            boundary_v=bc,
            forcing_u=np.full(grid.shape, 0.5),
        )
        u, v, results = forced.evolve(np.zeros(grid.shape), np.zeros(grid.shape), num_steps=3)
        assert all(r.converged for r in results)
        assert np.mean(u) > 0.05
        # The unforced v field stays near zero.
        assert abs(np.mean(v)) < np.mean(u) / 2.0

    def test_zero_forcing_matches_default(self):
        grid = Grid2D.square(3)
        bc = DirichletBoundary.constant(grid, 0.0)
        rng = np.random.default_rng(0)
        u0 = rng.uniform(-0.3, 0.3, grid.shape)
        v0 = rng.uniform(-0.3, 0.3, grid.shape)
        default = BurgersTimeStepper(grid, reynolds=1.0, dt=0.1, boundary_u=bc, boundary_v=bc)
        explicit = BurgersTimeStepper(
            grid,
            reynolds=1.0,
            dt=0.1,
            boundary_u=bc,
            boundary_v=bc,
            forcing_u=np.zeros(grid.shape),
            forcing_v=np.zeros(grid.shape),
        )
        ua, va, _ = default.evolve(u0, v0, num_steps=2)
        ub, vb, _ = explicit.evolve(u0, v0, num_steps=2)
        np.testing.assert_allclose(ua, ub, atol=1e-12)
        np.testing.assert_allclose(va, vb, atol=1e-12)
