"""Tests for grids, boundaries, and finite-difference stencils."""

import numpy as np
import pytest

from repro.pde.boundary import DirichletBoundary
from repro.pde.grid import Grid2D
from repro.pde.stencils import central_x, central_y, laplacian_5pt, pad_with_boundary


class TestGrid2D:
    def test_square_factory(self):
        grid = Grid2D.square(4)
        assert grid.nx == grid.ny == 4
        assert grid.num_nodes == 16
        assert grid.shape == (4, 4)

    def test_flat_index_row_major(self):
        grid = Grid2D(nx=3, ny=2)
        assert grid.flat_index(0, 0) == 0
        assert grid.flat_index(2, 0) == 2
        assert grid.flat_index(0, 1) == 3

    def test_flat_index_bounds(self):
        grid = Grid2D.square(2)
        with pytest.raises(IndexError):
            grid.flat_index(2, 0)

    def test_field_flatten_roundtrip(self):
        grid = Grid2D(nx=3, ny=2)
        values = np.arange(6.0)
        np.testing.assert_array_equal(grid.flatten(grid.field(values)), values)

    def test_field_shape_checked(self):
        grid = Grid2D.square(2)
        with pytest.raises(ValueError):
            grid.field(np.zeros(5))
        with pytest.raises(ValueError):
            grid.flatten(np.zeros((3, 3)))

    def test_validation(self):
        with pytest.raises(ValueError):
            Grid2D(nx=0, ny=2)
        with pytest.raises(ValueError):
            Grid2D(nx=2, ny=2, dx=0.0)

    def test_node_coordinates_offset_by_ghost(self):
        grid = Grid2D.square(3, spacing=0.5)
        assert grid.node_coordinates(0, 0) == (0.5, 0.5)

    def test_meshgrid_shapes(self):
        grid = Grid2D(nx=4, ny=3)
        xs, ys = grid.interior_meshgrid()
        assert xs.shape == (3, 4)
        assert ys.shape == (3, 4)


class TestDirichletBoundary:
    def test_constant_factory(self):
        grid = Grid2D(nx=3, ny=2)
        boundary = DirichletBoundary.constant(grid, 2.5)
        boundary.validate(grid)
        assert boundary.west.shape == (2,)
        assert boundary.south.shape == (3,)
        assert np.all(boundary.north == 2.5)

    def test_random_within_range(self):
        grid = Grid2D.square(5)
        boundary = DirichletBoundary.random(grid, np.random.default_rng(0), -2.0, 2.0)
        for side in (boundary.west, boundary.east, boundary.south, boundary.north):
            assert np.all(np.abs(side) <= 2.0)

    def test_validate_rejects_wrong_shapes(self):
        grid = Grid2D(nx=3, ny=2)
        bad = DirichletBoundary(
            west=np.zeros(3), east=np.zeros(2), south=np.zeros(3), north=np.zeros(3)
        )
        with pytest.raises(ValueError):
            bad.validate(grid)

    def test_scaled(self):
        grid = Grid2D.square(2)
        boundary = DirichletBoundary.constant(grid, 1.0).scaled(0.5)
        assert np.all(boundary.west == 0.5)


class TestPadding:
    def test_pad_places_values(self):
        grid = Grid2D(nx=2, ny=2)
        boundary = DirichletBoundary(
            west=np.array([1.0, 2.0]),
            east=np.array([3.0, 4.0]),
            south=np.array([5.0, 6.0]),
            north=np.array([7.0, 8.0]),
        )
        padded = pad_with_boundary(np.zeros((2, 2)), boundary, grid)
        assert padded.shape == (4, 4)
        np.testing.assert_array_equal(padded[1:-1, 0], [1.0, 2.0])
        np.testing.assert_array_equal(padded[1:-1, -1], [3.0, 4.0])
        np.testing.assert_array_equal(padded[0, 1:-1], [5.0, 6.0])
        np.testing.assert_array_equal(padded[-1, 1:-1], [7.0, 8.0])

    def test_pad_shape_checked(self):
        grid = Grid2D.square(2)
        boundary = DirichletBoundary.constant(grid)
        with pytest.raises(ValueError):
            pad_with_boundary(np.zeros((3, 3)), boundary, grid)


class TestStencils:
    def _padded_from_function(self, f, n=8, spacing=0.1):
        grid = Grid2D.square(n, spacing=spacing)
        xs = np.arange(n + 2) * spacing
        full_x, full_y = np.meshgrid(xs, xs, indexing="xy")
        return f(full_x, full_y), grid

    def test_central_x_exact_for_linear(self):
        padded, grid = self._padded_from_function(lambda x, y: 3.0 * x + y)
        np.testing.assert_allclose(central_x(padded, grid.dx), 3.0, atol=1e-12)

    def test_central_y_exact_for_linear(self):
        padded, grid = self._padded_from_function(lambda x, y: x - 2.0 * y)
        np.testing.assert_allclose(central_y(padded, grid.dy), -2.0, atol=1e-12)

    def test_laplacian_exact_for_quadratic(self):
        padded, grid = self._padded_from_function(lambda x, y: x**2 + 2.0 * y**2)
        np.testing.assert_allclose(laplacian_5pt(padded, grid.dx, grid.dy), 6.0, atol=1e-9)

    def test_second_order_convergence(self):
        # Error of the Laplacian of sin(x)sin(y) shrinks ~4x when the
        # spacing halves.
        def error(spacing):
            n = int(round(1.0 / spacing)) - 1
            xs = np.arange(n + 2) * spacing
            fx, fy = np.meshgrid(xs, xs, indexing="xy")
            padded = np.sin(np.pi * fx) * np.sin(np.pi * fy)
            exact = -2.0 * np.pi**2 * padded[1:-1, 1:-1]
            approx = laplacian_5pt(padded, spacing, spacing)
            return np.max(np.abs(approx - exact))

        ratio = error(1.0 / 8.0) / error(1.0 / 16.0)
        assert 3.0 < ratio < 5.0
