"""Ablation: where the approximate seed comes from.

Section 3.3 compares the paper's analog seeding against digital
mixed-precision approaches. This bench runs the same *approximate seed
+ exact polish* pattern from three seed sources and quantifies the
trade the paper describes:

* float32 factorization (digital low precision, ~1e-6 seeds) — on
  *linear* systems, via iterative refinement;
* the analog accelerator (~5e-2 seeds) — on the nonlinear Burgers
  system, via hybrid Newton polish;
* no seed at all — the damped-Newton baseline.

The point is structural: any seed inside the contraction region turns
the exact method into a few cheap polish steps; the seed's precision
sets how few.
"""

import numpy as np
import pytest

from repro.analog.engine import AnalogAccelerator
from repro.core.hybrid import HybridSolver
from repro.linalg.refinement import mixed_precision_solve
from repro.pde.burgers import random_burgers_system


def test_float32_seed_polish_steps(benchmark):
    rng = np.random.default_rng(0)
    a = rng.standard_normal((40, 40)) + 40.0 * np.eye(40)
    b = a @ rng.standard_normal(40)

    result = benchmark.pedantic(mixed_precision_solve, args=(a, b), rounds=1, iterations=1)
    assert result.converged
    # ~1e-7-grade seed: one or two refinement steps reach double eps.
    assert result.refinement_steps <= 3
    assert result.low_precision_residual / np.linalg.norm(b) < 1e-4


def test_analog_seed_polish_steps(benchmark):
    system, guess = random_burgers_system(3, 1.0, np.random.default_rng(1))
    solver = HybridSolver(AnalogAccelerator(seed=1))

    hybrid = benchmark.pedantic(
        solver.solve, args=(system,), kwargs={"initial_guess": guess}, rounds=1, iterations=1
    )
    assert hybrid.converged
    # ~5e-2-grade seed: a few quadratic Newton steps.
    assert 1 <= hybrid.digital_iterations <= 8


def test_seed_precision_orders_polish_cost(benchmark):
    """Coarser seeds cost more polish — measured across both worlds."""

    def run():
        rng = np.random.default_rng(2)
        a = rng.standard_normal((30, 30)) + 30.0 * np.eye(30)
        b = a @ rng.standard_normal(30)
        refined = mixed_precision_solve(a, b)

        system, guess = random_burgers_system(3, 1.0, np.random.default_rng(3))
        hybrid = HybridSolver(AnalogAccelerator(seed=3)).solve(system, initial_guess=guess)
        baseline = HybridSolver(AnalogAccelerator(seed=3)).solve_baseline(
            system, initial_guess=guess
        )
        return refined, hybrid, baseline

    refined, hybrid, baseline = benchmark.pedantic(run, rounds=1, iterations=1)
    assert refined.converged and hybrid.converged and baseline.converged
    # float32 seed (~1e-7) polishes in fewer steps than the analog seed
    # (~5e-2), which in turn needs no damping search at all.
    assert refined.refinement_steps <= hybrid.digital_iterations
    assert hybrid.digital.restarts == 0
