"""Figure 7: time to convergence, digital vs analog, at equal accuracy.

For grid sizes 2x2 through 16x16 and a sweep of Reynolds numbers, both
solvers are run on the same randomly generated Burgers problems and
stopped at the same (analog-grade) accuracy; time comes from the CPU
cost model driven by measured iteration counts on the digital side and
from the settle-time normalization on the analog side.

Expected shape (the paper's): digital time grows with every quadrupling
of the problem and with the Reynolds number; analog time is roughly
flat in both, crossing digital around the 4x4 grid and winning ~100x at
16x16. Data points thin out at high Reynolds numbers because fewer
random problems have a solution at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.analog.engine import AnalogAccelerator
from repro.analog.noise import NoiseModel
from repro.experiments.common import ANALOG_ERROR_TARGET, equal_accuracy_damped_newton
from repro.linalg.kernel import LinearKernel, LinearSolverStats
from repro.nonlinear.newton import NewtonOptions, damped_newton_with_restarts
from repro.perf.analog_model import AnalogTimingModel
from repro.perf.cpu_model import CpuModel
from repro.pde.burgers import random_burgers_system
from repro.reporting import ascii_table, render_kernel_stats
from repro.trace.tracer import TracerLike, as_tracer

__all__ = ["Figure7Result", "run_figure7"]


@dataclass
class Figure7Result:
    rows_data: List[dict]
    grid_sizes: Tuple[int, ...]
    reynolds_values: Tuple[float, ...]
    kernel_stats: Optional[LinearSolverStats] = None

    def rows(self) -> List[dict]:
        return self.rows_data

    def render(self) -> str:
        table = ascii_table(self.rows_data)
        stats = render_kernel_stats(self.kernel_stats, label="digital linear kernel")
        return f"{table}\n\n{stats}" if stats else table

    def cell(self, grid_n: int, reynolds: float) -> Optional[dict]:
        for row in self.rows_data:
            if row["grid"] == f"{grid_n}x{grid_n}" and row["Reynolds number"] == reynolds:
                return row
        return None

    def speedup_at(self, grid_n: int) -> List[float]:
        """Digital/analog time ratios across Reynolds values at one size."""
        return [
            row["digital time (s)"] / row["analog time (s)"]
            for row in self.rows_data
            if row["grid"] == f"{grid_n}x{grid_n}" and row["analog time (s)"] > 0
        ]


def run_figure7(
    grid_sizes: Tuple[int, ...] = (2, 4, 8, 16),
    reynolds_values: Tuple[float, ...] = (0.01, 0.1, 1.0, 2.0),
    trials: int = 2,
    seed: int = 0,
    cpu_model: Optional[CpuModel] = None,
    analog_model: Optional[AnalogTimingModel] = None,
    tracer: Optional[TracerLike] = None,
) -> Figure7Result:
    """Run the grid-size x Reynolds sweep at equal accuracy.

    Each random problem instance gets one
    :class:`~repro.linalg.kernel.LinearKernel` shared by its golden
    solve and its equal-accuracy run: the sparsity pattern is fixed per
    instance, so the preconditioner is factorized far fewer times than
    linear systems are solved. The aggregated accounting is returned in
    ``Figure7Result.kernel_stats``.

    ``tracer`` records one ``solve`` span per trial (grid, Reynolds and
    trial index as attributes) containing the golden and equal-accuracy
    digital legs' ``linear_solve`` spans and the accelerator's
    ``analog_settle`` span. Summing the ``linear_solve`` span counters
    reproduces ``kernel_stats`` exactly — the analog flow's internal
    solves are deliberately not charged to either.
    """
    cpu_model = cpu_model or CpuModel()
    analog_model = analog_model or AnalogTimingModel()
    tracer = as_tracer(tracer)
    sweep_stats = LinearSolverStats()
    rows = []
    for grid_n in grid_sizes:
        for reynolds in reynolds_values:
            digital_times = []
            analog_times = []
            solved = 0
            for trial in range(trials):
                rng = np.random.default_rng(seed + 1000 * grid_n + trial)
                system, guess = random_burgers_system(grid_n, reynolds, rng)
                # Per-instance kernel: golden + equal-accuracy solves
                # share the factorization; sweep_stats aggregates.
                kernel = LinearKernel(stats=sweep_stats)
                with tracer.span(
                    "solve",
                    solver="figure7-trial",
                    grid=f"{grid_n}x{grid_n}",
                    reynolds=float(reynolds),
                    trial=trial,
                ) as trial_span:
                    golden = damped_newton_with_restarts(
                        system,
                        guess,
                        NewtonOptions(tolerance=1e-11, max_iterations=100),
                        linear_solver=kernel,
                        # Bounded damping search: instances that need deeper
                        # damping are treated as unsolvable, matching the
                        # paper's sparse-data protocol at high Reynolds.
                        min_damping=1.0 / 64.0,
                        tracer=tracer,
                    )
                    if not golden.converged:
                        # As in the paper: some random high-Re problems have
                        # no reachable solution; those points are dropped.
                        trial_span.set("dropped", True)
                        continue
                    solved += 1
                    scale = 3.3  # dynamic-range scale of the +-3 constants
                    digital = equal_accuracy_damped_newton(
                        system,
                        guess,
                        golden.u,
                        scale=scale,
                        target_error=ANALOG_ERROR_TARGET,
                        max_iterations=100,
                        min_damping=1.0 / 64.0,
                        kernel=kernel,
                        tracer=tracer,
                    )
                    if digital.reached_target:
                        nnz = system.jacobian(guess).nnz
                        digital_times.append(
                            cpu_model.solve_seconds_from_counts(
                                digital.iterations, system.dimension, nnz
                            )
                        )
                    accelerator = AnalogAccelerator(noise=NoiseModel(), seed=seed + trial)
                    analog = accelerator.solve(
                        system, initial_guess=guess, value_bound=3.0, tracer=tracer
                    )
                    if analog.converged:
                        analog_times.append(analog_model.seconds(analog.settle_time_units))
                    trial_span.update(
                        digital_iterations=digital.iterations,
                        reached_target=digital.reached_target,
                        analog_converged=analog.converged,
                    )
            if not digital_times or not analog_times:
                continue
            rows.append(
                {
                    "grid": f"{grid_n}x{grid_n}",
                    "Reynolds number": reynolds,
                    "problems solved": solved,
                    "digital time (s)": float(np.mean(digital_times)),
                    "analog time (s)": float(np.mean(analog_times)),
                    "digital/analog": float(np.mean(digital_times) / np.mean(analog_times)),
                }
            )
    return Figure7Result(
        rows_data=rows,
        grid_sizes=tuple(grid_sizes),
        reynolds_values=tuple(reynolds_values),
        kernel_stats=sweep_stats,
    )
