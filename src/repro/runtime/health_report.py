"""The ``health-report`` driver: watch one board age across solves.

Runs a sequence of Burgers problems through a :class:`DegradationLadder`
whose accelerator carries an (optional) degradation model, and renders
what the health layer saw: per-solve ladder verdicts alongside the
:class:`~repro.analog.health.HealthMonitor`'s tile statistics,
quarantine decisions, and reconciliation counters. With no degradation
the report is the healthy-board baseline (every solve on the hybrid
rung, no flags); with drift it is the full story the chaos tier
asserts — gate rejections, ladder demotions, quarantines, and the
recalibration that restores hybrid-rung service.

Everything is seeded, so the report is bitwise reproducible — the CLI's
golden-file test pins it.

With ``boards=N`` the same solve sequence runs through a
:class:`~repro.runtime.runtime.Runtime` drawing from an N-board
:class:`~repro.fleet.scheduler.AnalogFleet`, and the report adds a
per-board table. A board the scheduler never routed to (or that only
ever got vetoed) has zero settled attempts; its rate columns render
"-" instead of dividing by zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.analog.engine import AnalogAccelerator
from repro.analog.health import DegradationModel
from repro.reporting import ascii_table
from repro.runtime.api import ProblemSpec
from repro.runtime.ladder import DegradationLadder
from repro.trace.tracer import TracerLike, as_tracer

__all__ = ["HealthReportResult", "run_health_report"]


def _rate(numerator: float, denominator: float) -> Optional[float]:
    """A rate that is ``None`` (rendered "-") on an empty denominator."""
    if not denominator:
        return None
    return numerator / denominator


def _fmt(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.2f}"


@dataclass
class HealthReportResult:
    """Per-solve ladder verdicts plus the monitor's final report."""

    rows: List[dict]
    health_report: str
    solves: int
    degradation_active: bool
    board_rows: Optional[List[Dict[str, Any]]] = None
    fleet_counters: Optional[Dict[str, float]] = None

    def render(self) -> str:
        header = (
            f"health report: {self.solves} solve(s), degradation "
            f"{'on' if self.degradation_active else 'off'}"
        )
        parts = [header, ascii_table(self.rows), self.health_report]
        if self.board_rows is not None:
            parts.append(
                "fleet boards:\n\n"
                + ascii_table(
                    [
                        {
                            "board": row["board"],
                            "epoch": row["epoch"],
                            "routed": row["routed"],
                            "settled": row["observations"],
                            "veto rate": _fmt(_rate(row["vetoes"], row["routed"])),
                            "rejection EWMA": (
                                "-"
                                if row["observations"] == 0
                                else f"{row['rejection_ewma']:.2f}"
                            ),
                            "quarantined": "yes" if row["quarantined"] else "-",
                            "killed": "yes" if row["killed"] else "-",
                        }
                        for row in self.board_rows
                    ]
                )
            )
            counters = self.fleet_counters or {}
            parts.append(
                "fleet counters: "
                + (
                    ", ".join(
                        f"{name}={value:g}" for name, value in sorted(counters.items())
                    )
                    or "(none)"
                )
            )
        return "\n\n".join(parts)


def run_health_report(
    solves: int = 8,
    grid_n: int = 2,
    reynolds: float = 1.0,
    seed: int = 0,
    degradation: Optional[DegradationModel] = None,
    analog_time_limit: float = 60.0,
    boards: Optional[int] = None,
    settle_max_steps: Optional[int] = None,
    tracer: Optional[TracerLike] = None,
) -> HealthReportResult:
    """Age one board across ``solves`` Burgers solves and report.

    The accelerator (die seeded by ``seed``) persists across the whole
    sequence, so the monitor's EWMAs, quarantine and recalibration
    state accumulate exactly as they would in a long-lived service.
    With ``boards=N`` the solves instead route through an N-board
    fleet and the report grows a per-board table.
    """
    if solves < 1:
        raise ValueError("solves must be at least 1")
    tracer = as_tracer(tracer)
    if boards is not None:
        return _run_fleet_health_report(
            solves=solves,
            grid_n=grid_n,
            reynolds=reynolds,
            seed=seed,
            degradation=degradation,
            analog_time_limit=analog_time_limit,
            boards=boards,
            settle_max_steps=settle_max_steps,
            tracer=tracer,
        )
    accelerator = AnalogAccelerator(seed=seed, degradation=degradation)
    ladder = DegradationLadder(accelerator=accelerator)
    monitor = accelerator.health
    rows: List[dict] = []
    with tracer.span("health_report", solves=solves, grid_n=grid_n):
        for index in range(solves):
            system, guess = ProblemSpec.burgers(
                grid_n=grid_n, reynolds=reynolds, seed=seed + index
            ).build()
            result = ladder.solve(
                system,
                initial_guess=guess,
                analog_time_limit=analog_time_limit,
                tracer=tracer,
            )
            rows.append(
                {
                    "solve": index,
                    "rung": result.rung or "-",
                    "converged": "yes" if result.converged else "no",
                    "rungs tried": ">".join(result.rungs_tried),
                    "residual": f"{result.residual_norm:.1e}",
                    "rejected": monitor.seeds_rejected,
                    "quarantined": len(monitor.quarantined),
                    "recals": monitor.recalibrations,
                }
            )
    return HealthReportResult(
        rows=rows,
        health_report=monitor.render_report(),
        solves=solves,
        degradation_active=degradation is not None and degradation.active,
    )


def _run_fleet_health_report(
    solves: int,
    grid_n: int,
    reynolds: float,
    seed: int,
    degradation: Optional[DegradationModel],
    analog_time_limit: float,
    boards: int,
    settle_max_steps: Optional[int],
    tracer,
) -> HealthReportResult:
    """The ``boards=N`` variant: same solves, routed through a fleet."""
    from repro.fleet import FleetConfig
    from repro.runtime.api import RetryPolicy, SolveRequest
    from repro.runtime.runtime import Runtime

    if boards < 1:
        raise ValueError("boards must be at least 1")
    ladder_kwargs = (
        {"settle_max_steps": int(settle_max_steps)} if settle_max_steps else None
    )
    runtime = Runtime(
        seed=seed,
        retry=RetryPolicy(max_attempts=2, base_delay=0.0, max_delay=0.0, jitter=0.0),
        degradation=degradation,
        ladder_kwargs=ladder_kwargs,
        fleet=FleetConfig(boards=boards),
    )
    requests = [
        SolveRequest(
            request_id=f"health-{index:04d}",
            problem=ProblemSpec.burgers(
                grid_n=grid_n, reynolds=reynolds, seed=seed + index
            ),
            analog_time_limit=analog_time_limit,
        )
        for index in range(solves)
    ]
    with tracer.span("health_report", solves=solves, grid_n=grid_n, boards=boards):
        batch = runtime.run_batch(requests)
    rows = [
        {
            "solve": index,
            "rung": outcome.rung or "-",
            "converged": "yes" if outcome.ok else "no",
            "rungs tried": ">".join(outcome.rungs_tried) or "-",
            "residual": (
                f"{outcome.residual_norm:.1e}"
                if outcome.residual_norm != float("inf")
                else "-"
            ),
            "attempts": outcome.attempts,
        }
        for index, outcome in enumerate(batch.outcomes)
    ]
    stats = runtime.fleet.stats()
    summary = (
        f"fleet of {boards} board(s): {stats['routes']} route(s), "
        f"quarantine pressure {stats['quarantine_pressure']:.2f}, "
        f"routed while ineligible {stats['routed_while_ineligible']}"
    )
    return HealthReportResult(
        rows=rows,
        health_report=summary,
        solves=solves,
        degradation_active=degradation is not None and degradation.active,
        board_rows=stats["boards"],
        fleet_counters=stats["counters"],
    )
