"""Analog device health: degradation fault models, monitoring, gating.

The paper's hybrid pipeline stands on one assumption: the analog seed
is good enough (5.38 % RMS, Figure 6) that undamped digital Newton
starts inside the quadratic basin. The rest of the repo calibrates a
:class:`~repro.analog.fabric.Fabric` once at construction and then
trusts every seed unconditionally — but real analog hardware degrades
*between* calibrations: bias currents drift with temperature, devices
age, tiles stick at a rail, DAC channels die. This module makes the
analog substrate a first-class fault domain:

* :class:`DegradationModel` / :class:`DegradationSchedule` — seeded,
  picklable, time-dependent fault models layered on top of the
  post-calibration residual errors drawn by
  :class:`~repro.analog.calibration.ProcessVariation`: calibration
  drift as a per-component random walk, deterministic bias toward
  saturation, stuck tiles, dead DAC channels. The schedule advances by
  one step on every ``exec_start`` of the fabric it is attached to —
  degradation is a function of *use and time*, not of construction.
* :class:`SeedQualityGate` / :class:`SeedQuality` — a cheap
  residual-norm acceptance test that judges an analog seed *before* it
  is handed to undamped Newton. The score is always finite (NaN/Inf in
  a saturated or dead-tile seed clamp to a large rejectable value, see
  :data:`NONFINITE_QUALITY`), so a broken seed can never propagate
  non-finite values into the digital polish.
* :class:`HealthMonitor` / :class:`TileHealth` — online per-tile
  residual statistics across solves (EWMA of per-variable residual in
  full-scale units, settle-time EWMA, saturation counts), tile
  flagging when the observed drift exceeds the calibration tolerance,
  quarantine bookkeeping, and recalibration-pressure accounting.

Randomness discipline matches :mod:`repro.runtime`: every draw is
keyed by a SHA-256 ``stable_seed`` of ``(seed, purpose, step,
component name)``, so a schedule replays identically in any process,
at any worker count, and regardless of how many fabrics it has been
attached to — the property the workers=1 == workers=4 bitwise
determinism harness checks.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "NONFINITE_QUALITY",
    "DegradationModel",
    "DegradationSchedule",
    "SeedQuality",
    "SeedQualityGate",
    "TileHealth",
    "HealthMonitor",
]

# The finite sentinel a non-finite seed's quality score clamps to:
# large enough that no gate accepts it, small enough that downstream
# arithmetic (logging, comparisons, EWMA updates) stays finite.
NONFINITE_QUALITY = 1e30


def _stable_seed(*parts: Any) -> int:
    """Process-stable 63-bit seed (mirrors ``repro.runtime.api.stable_seed``).

    Duplicated here rather than imported so the analog layer never
    depends on the runtime package above it.
    """
    text = ":".join(str(part) for part in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") >> 1


# ---------------------------------------------------------------------------
# Degradation fault models
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DegradationModel:
    """Parameters of one board's degradation processes (picklable).

    All rates and sigmas are *per schedule step*; one step is one
    ``exec_start`` of the attached fabric.

    Attributes
    ----------
    gain_drift_sigma:
        Sigma of the per-component random walk added to relative gain
        errors each step (temperature drift of bias currents).
    offset_drift_sigma:
        Sigma of the per-component offset random walk, in full-scale
        units (the dominant long-run error per the memristor analog
        simulator literature).
    gain_drift_bias:
        Deterministic per-step gain drift applied to every component —
        a positive bias models the saturation-prone datapath whose
        signals creep toward the rails with age.
    stuck_tile_rate:
        Per-step probability that each still-healthy tile sticks at
        the rail (its datapath multipliers pin their offsets at full
        scale).
    dead_dac_rate:
        Per-step probability that each live DAC channel dies (output
        reads zero; the missing programmed constant appears as a
        full-scale equation offset to first order).
    stuck_tiles / dead_dacs:
        Deterministic component names applied on the first step, for
        targeted scenarios and tests.
    seed:
        Root of every draw the schedule makes.
    """

    gain_drift_sigma: float = 0.0
    offset_drift_sigma: float = 0.0
    gain_drift_bias: float = 0.0
    stuck_tile_rate: float = 0.0
    dead_dac_rate: float = 0.0
    stuck_tiles: Tuple[str, ...] = ()
    dead_dacs: Tuple[str, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("gain_drift_sigma", "offset_drift_sigma"):
            if getattr(self, name) < 0.0:
                raise ValueError(f"{name} must be nonnegative")
        for name in ("stuck_tile_rate", "dead_dac_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")

    @classmethod
    def from_spec(cls, text: str) -> "DegradationModel":
        """Parse a ``key=value,key=value`` spec (the CLI's
        ``--degradation`` flag) into a model.

        List-valued keys take ``;``-separated names, e.g.
        ``offset_drift_sigma=0.2,stuck_tiles=chip0.tile1;chip0.tile3``.
        """
        kwargs: Dict[str, Any] = {}
        fields = cls.__dataclass_fields__  # type: ignore[attr-defined]
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            key = key.strip()
            if not sep or key not in fields:
                raise ValueError(
                    f"degradation spec {part!r} is not of the form key=value "
                    f"with key one of {sorted(fields)}"
                )
            if key in ("stuck_tiles", "dead_dacs"):
                kwargs[key] = tuple(name for name in value.split(";") if name)
            elif key == "seed":
                kwargs[key] = int(value)
            else:
                kwargs[key] = float(value)
        return cls(**kwargs)

    @property
    def active(self) -> bool:
        return bool(
            self.gain_drift_sigma
            or self.offset_drift_sigma
            or self.gain_drift_bias
            or self.stuck_tile_rate
            or self.dead_dac_rate
            or self.stuck_tiles
            or self.dead_dacs
        )


class DegradationSchedule:
    """Seeded, picklable degradation state advanced once per ``exec_start``.

    The schedule owns the *drift state* (accumulated random walks keyed
    by component name, the stuck-tile and dead-DAC sets, the step
    counter); the fabric's components carry their post-calibration
    baselines (``calibrated_gain_error`` / ``calibrated_offset``), so
    applying the schedule is idempotent and works identically whether
    the accelerator reuses one fabric (``solve_batch``) or builds a
    fresh one per solve — same component names, same walks.

    Recalibration (:meth:`reset`) zeroes the drift walks — the trim
    DACs re-null what drifted — but stuck tiles and dead DACs are
    *hardware* faults and survive recalibration.
    """

    def __init__(self, model: DegradationModel, seed: Optional[int] = None):
        self.model = model
        self.seed = int(model.seed if seed is None else seed)
        self.step = 0
        self.gain_drift: Dict[str, float] = {}
        self.offset_drift: Dict[str, float] = {}
        self.stuck_tiles = set(model.stuck_tiles)
        self.dead_dacs = set(model.dead_dacs)
        self.resets = 0

    def __getstate__(self):
        return self.__dict__.copy()

    def __setstate__(self, state):
        self.__dict__.update(state)

    def state_dict(self) -> Dict[str, Any]:
        """JSON-able snapshot of the mutable wear state (the model's
        parameters live in ``self.model`` and are serialized by the
        runtime config, not here). Sets become sorted lists so the
        encoding — and any content hash over it — is deterministic."""
        return {
            "seed": self.seed,
            "step": self.step,
            "gain_drift": {name: self.gain_drift[name] for name in sorted(self.gain_drift)},
            "offset_drift": {name: self.offset_drift[name] for name in sorted(self.offset_drift)},
            "stuck_tiles": sorted(self.stuck_tiles),
            "dead_dacs": sorted(self.dead_dacs),
            "resets": self.resets,
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Reinstall wear state captured by :meth:`state_dict` (the
        checkpoint-resume path: a restored board has the same drift
        walks, stuck tiles, dead DACs and step count as the original)."""
        self.seed = int(state["seed"])
        self.step = int(state["step"])
        self.gain_drift = dict(state.get("gain_drift") or {})
        self.offset_drift = dict(state.get("offset_drift") or {})
        self.stuck_tiles = set(state.get("stuck_tiles") or ())
        self.dead_dacs = set(state.get("dead_dacs") or ())
        self.resets = int(state.get("resets", 0))

    def _draw(self, purpose: str, name: str) -> np.random.Generator:
        return np.random.default_rng(_stable_seed(self.seed, purpose, self.step, name))

    def advance(self, fabric) -> None:
        """One degradation step: walk the drift, maybe break hardware.

        Called by :meth:`repro.analog.fabric.Fabric.exec_start` so
        every accelerator run ages the board by one step. Applies the
        accumulated state to the fabric's components on top of their
        calibrated baselines.
        """
        model = self.model
        self.step += 1
        for chip in fabric.chips:
            for tile in chip.tiles:
                if model.stuck_tile_rate > 0.0 and tile.name not in self.stuck_tiles:
                    if self._draw("stuck", tile.name).uniform() < model.stuck_tile_rate:
                        self.stuck_tiles.add(tile.name)
                for component in tile.components():
                    name = component.name
                    if model.gain_drift_sigma > 0.0 or model.gain_drift_bias:
                        step = model.gain_drift_bias
                        if model.gain_drift_sigma > 0.0:
                            step += model.gain_drift_sigma * float(
                                self._draw("gain_drift", name).standard_normal()
                            )
                        self.gain_drift[name] = self.gain_drift.get(name, 0.0) + step
                    if model.offset_drift_sigma > 0.0:
                        walk = model.offset_drift_sigma * float(
                            self._draw("offset_drift", name).standard_normal()
                        )
                        self.offset_drift[name] = self.offset_drift.get(name, 0.0) + walk
                for dac in tile.dacs:
                    if model.dead_dac_rate > 0.0 and dac.name not in self.dead_dacs:
                        if self._draw("dead_dac", dac.name).uniform() < model.dead_dac_rate:
                            self.dead_dacs.add(dac.name)
        self.apply(fabric)

    def apply(self, fabric) -> None:
        """Impose the current degradation state on a fabric's components.

        Idempotent: each component's error is its calibrated baseline
        plus the accumulated drift, never drift-on-drift.
        """
        full_scale = fabric.noise.full_scale
        for chip in fabric.chips:
            for tile in chip.tiles:
                stuck = tile.name in self.stuck_tiles
                tile.stuck = stuck
                for component in tile.components():
                    name = component.name
                    component.gain_error = (
                        component.calibrated_gain_error + self.gain_drift.get(name, 0.0)
                    )
                    component.offset = (
                        component.calibrated_offset + self.offset_drift.get(name, 0.0)
                    )
                if stuck:
                    # A stuck tile's datapath pins at the rail: each
                    # multiplier stage contributes a full-scale offset.
                    for multiplier in tile.multipliers:
                        multiplier.offset = full_scale
                for dac in tile.dacs:
                    dac.dead = dac.name in self.dead_dacs

    def reset(self) -> None:
        """Recalibration: re-null the drift; hardware faults persist."""
        self.gain_drift.clear()
        self.offset_drift.clear()
        self.resets += 1

    def drift_magnitude(self) -> float:
        """Largest accumulated drift across components (diagnostics)."""
        magnitudes = [abs(v) for v in self.gain_drift.values()]
        magnitudes += [abs(v) for v in self.offset_drift.values()]
        return max(magnitudes, default=0.0)


# ---------------------------------------------------------------------------
# Seed-quality gating
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SeedQuality:
    """Verdict of the gate on one analog seed. ``quality`` is always
    finite: the residual norm of the seed relative to the residual at
    the digital initial guess (< 1 means the seed improved on it)."""

    quality: float
    accepted: bool
    threshold: float
    finite: bool
    """False when the raw analog solution carried NaN/Inf (the gate
    clamped the score to :data:`NONFINITE_QUALITY`)."""


@dataclass(frozen=True)
class SeedQualityGate:
    """Cheap residual-norm acceptance test for analog seeds.

    ``max_relative_residual`` is the acceptance bound on
    ``|F(seed)| / max(|F(guess)|, floor)``. The default of 1.0 accepts
    any seed that is no worse than the naive initial guess — at the
    paper's 5.38 %-RMS operating point a healthy seed scores far below
    it (typically 0.05–0.3), so the default only rejects seeds that
    are actively harmful, where undamped Newton would start outside
    the quadratic basin and burn a failed hybrid rung.
    """

    max_relative_residual: float = 1.0
    reference_floor: float = 1e-12
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.max_relative_residual <= 0.0:
            raise ValueError("max_relative_residual must be positive")
        if self.reference_floor <= 0.0:
            raise ValueError("reference_floor must be positive")

    def assess(
        self,
        solution: np.ndarray,
        residual_norm: float,
        reference_norm: float,
    ) -> SeedQuality:
        """Judge a seed from its residual norm; never returns NaN/Inf."""
        solution = np.asarray(solution, dtype=float)
        finite = bool(np.all(np.isfinite(solution))) and bool(np.isfinite(residual_norm))
        if finite and np.isfinite(reference_norm):
            reference = max(float(reference_norm), self.reference_floor)
            quality = min(float(residual_norm) / reference, NONFINITE_QUALITY)
        else:
            quality = NONFINITE_QUALITY
            finite = False
        accepted = (not self.enabled) or quality <= self.max_relative_residual
        return SeedQuality(
            quality=quality,
            accepted=accepted,
            threshold=self.max_relative_residual,
            finite=finite,
        )


# ---------------------------------------------------------------------------
# Online health monitoring
# ---------------------------------------------------------------------------


@dataclass
class TileHealth:
    """Running statistics for one tile, updated per accelerator run."""

    name: str
    observations: int = 0
    residual_ewma: float = 0.0
    """EWMA of the tile's per-variable seed residual in full-scale
    (scaled) units — the per-tile slice of Equation 6's error metric."""
    settle_ewma: float = 0.0
    saturation_count: int = 0
    flagged: bool = False
    quarantined: bool = False
    flag_reason: Optional[str] = None

    def observe(
        self,
        residual: float,
        settle_time: float,
        saturated: bool,
        alpha: float,
        settled: bool = True,
    ) -> None:
        if saturated:
            self.saturation_count += 1
        if not settled:
            # An unsettled run's residual reflects the time budget, not
            # the tile — only saturation evidence counts.
            return
        residual = float(residual)
        if not np.isfinite(residual):
            residual = NONFINITE_QUALITY
        if self.observations == 0:
            self.residual_ewma = residual
            self.settle_ewma = float(settle_time)
        else:
            self.residual_ewma += alpha * (residual - self.residual_ewma)
            self.settle_ewma += alpha * (float(settle_time) - self.settle_ewma)
        self.observations += 1


class HealthMonitor:
    """Tracks per-tile health across solves; flags, quarantines, and
    decides when recalibration is due.

    Parameters
    ----------
    drift_tolerance:
        Bound on a tile's residual EWMA (full-scale units) before it is
        flagged as drifted beyond calibration tolerance. Defaults to
        :attr:`repro.analog.calibration.CalibrationConfig.drift_tolerance`
        when a config is given, else 1.2 — comfortably above the worst
        per-tile residual a healthy 5.38 %-RMS seed leaves (unlucky
        dies reach ~0.5 full-scale units), far below a drifted board's.
    saturation_limit:
        Saturation observations before a tile is flagged saturation-prone.
    min_observations:
        Observations required before residual flagging can fire (one
        bad solve is weather; two is climate).
    settle_anomaly_factor:
        A run settling this many times slower than the board-wide EWMA
        is recorded as a settle anomaly (reported, not flagged on).
    recalibration_pressure:
        Quarantined fraction of the board at which recalibration is
        scheduled.
    ewma_alpha:
        Smoothing factor of every EWMA.
    """

    def __init__(
        self,
        drift_tolerance: Optional[float] = None,
        saturation_limit: int = 3,
        min_observations: int = 2,
        settle_anomaly_factor: float = 5.0,
        recalibration_pressure: float = 0.25,
        ewma_alpha: float = 0.5,
        calibration=None,
    ):
        if drift_tolerance is None:
            drift_tolerance = getattr(calibration, "drift_tolerance", None)
        self.drift_tolerance = 1.2 if drift_tolerance is None else float(drift_tolerance)
        if self.drift_tolerance <= 0.0:
            raise ValueError("drift_tolerance must be positive")
        if saturation_limit < 1:
            raise ValueError("saturation_limit must be at least 1")
        if min_observations < 1:
            raise ValueError("min_observations must be at least 1")
        if not 0.0 < recalibration_pressure <= 1.0:
            raise ValueError("recalibration_pressure must be in (0, 1]")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        self.saturation_limit = int(saturation_limit)
        self.min_observations = int(min_observations)
        self.settle_anomaly_factor = float(settle_anomaly_factor)
        self.recalibration_pressure = float(recalibration_pressure)
        self.ewma_alpha = float(ewma_alpha)
        self.tiles: Dict[str, TileHealth] = {}
        self.board_settle_ewma = 0.0
        self.solves_observed = 0
        self.settled_solves = 0
        self.unsettled_solves = 0
        self.settle_anomalies = 0
        # The three reconciliation counters of the health layer.
        self.seeds_rejected = 0
        self.tiles_quarantined = 0
        self.recalibrations = 0

    # -- observation ----------------------------------------------------

    def tile(self, name: str) -> TileHealth:
        health = self.tiles.get(name)
        if health is None:
            health = self.tiles[name] = TileHealth(name=name)
        return health

    def observe_solve(
        self,
        tile_names: Sequence[str],
        scaled_residuals: np.ndarray,
        settle_time_units: float,
        saturated: np.ndarray,
        settled: bool = True,
    ) -> List[str]:
        """Fold one accelerator run into the statistics.

        ``scaled_residuals`` are per-variable |residual| in full-scale
        units, ordered like ``tile_names`` (one variable per tile);
        ``saturated`` flags variables measured at the ADC rails.
        ``settled=False`` (the flow ran out of its time budget) records
        saturation evidence only: an unsettled residual says nothing
        about calibration drift. Returns the names of tiles *newly*
        flagged by this observation.
        """
        scaled_residuals = np.asarray(scaled_residuals, dtype=float)
        saturated = np.asarray(saturated, dtype=bool)
        settle = float(settle_time_units)
        if not np.isfinite(settle):
            settle = 0.0
        if settled:
            if self.settled_solves == 0:
                self.board_settle_ewma = settle
            else:
                if (
                    self.board_settle_ewma > 0.0
                    and settle > self.settle_anomaly_factor * self.board_settle_ewma
                ):
                    self.settle_anomalies += 1
                self.board_settle_ewma += self.ewma_alpha * (settle - self.board_settle_ewma)
            self.settled_solves += 1
        else:
            self.unsettled_solves += 1
        self.solves_observed += 1
        newly_flagged: List[str] = []
        for index, name in enumerate(tile_names):
            health = self.tile(name)
            health.observe(
                residual=scaled_residuals[index],
                settle_time=settle,
                saturated=bool(saturated[index]),
                alpha=self.ewma_alpha,
                settled=settled,
            )
            if health.flagged:
                continue
            if (
                health.observations >= self.min_observations
                and health.residual_ewma > self.drift_tolerance
            ):
                health.flagged = True
                health.flag_reason = (
                    f"residual EWMA {health.residual_ewma:.3g} beyond "
                    f"calibration tolerance {self.drift_tolerance:.3g}"
                )
            elif health.saturation_count >= self.saturation_limit:
                health.flagged = True
                health.flag_reason = (
                    f"saturated {health.saturation_count} times (limit "
                    f"{self.saturation_limit})"
                )
            if health.flagged:
                newly_flagged.append(name)
        return newly_flagged

    def note_seed_rejected(self) -> None:
        self.seeds_rejected += 1

    # -- quarantine and recalibration -----------------------------------

    @property
    def quarantined(self) -> Tuple[str, ...]:
        return tuple(
            sorted(name for name, h in self.tiles.items() if h.quarantined)
        )

    def flagged(self) -> Tuple[str, ...]:
        return tuple(sorted(name for name, h in self.tiles.items() if h.flagged))

    def quarantine_flagged(self) -> List[str]:
        """Quarantine every flagged-but-free tile; returns the new names."""
        newly = []
        for name in self.flagged():
            health = self.tiles[name]
            if not health.quarantined:
                health.quarantined = True
                newly.append(name)
        self.tiles_quarantined += len(newly)
        return newly

    def quarantine_pressure(self, total_tiles: int) -> float:
        if total_tiles <= 0:
            return 0.0
        return len(self.quarantined) / float(total_tiles)

    def should_recalibrate(self, total_tiles: int) -> bool:
        return self.quarantine_pressure(total_tiles) >= self.recalibration_pressure

    def note_recalibration(self) -> None:
        """Recalibration resets the drift story: statistics restart from
        a trimmed board and every quarantine lifts (a tile whose fault
        is *hardware*, not drift, will re-flag within
        ``min_observations`` solves and be re-quarantined)."""
        self.recalibrations += 1
        self.tiles.clear()
        self.board_settle_ewma = 0.0
        self.solves_observed = 0
        self.settled_solves = 0
        self.unsettled_solves = 0

    def apply_quarantine(self, fabric) -> None:
        """Mark this monitor's quarantined tiles on a (fresh) fabric."""
        names = set(self.quarantined)
        for chip in fabric.chips:
            for tile in chip.tiles:
                tile.quarantined = tile.name in names

    # -- reporting -------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        return {
            "seeds_rejected": self.seeds_rejected,
            "tiles_quarantined": self.tiles_quarantined,
            "recalibrations": self.recalibrations,
        }

    def board_summary(self) -> Dict[str, Any]:
        """Board-level rates, safe on a board that never settled.

        Every rate is ``None`` when its denominator is zero — a board
        with zero settled attempts (fresh, fully vetoed, or freshly
        recalibrated) is idle, not broken, and must render as "-"
        rather than divide by zero.
        """
        tiles = list(self.tiles.values())
        observed = self.solves_observed
        return {
            "solves_observed": observed,
            "settled_solves": self.settled_solves,
            "settle_rate": (self.settled_solves / observed) if observed else None,
            "rejection_rate": (self.seeds_rejected / observed) if observed else None,
            "mean_residual_ewma": (
                sum(tile.residual_ewma for tile in tiles) / len(tiles) if tiles else None
            ),
            "tiles_flagged": len(self.flagged()),
            "tiles_quarantined": len(self.quarantined),
        }

    def report_rows(self) -> List[dict]:
        rows = []
        for name in sorted(self.tiles):
            health = self.tiles[name]
            rows.append(
                {
                    "tile": name,
                    "obs": health.observations,
                    "residual EWMA": f"{health.residual_ewma:.3g}",
                    "settle EWMA": f"{health.settle_ewma:.3g}",
                    "saturations": health.saturation_count,
                    "flagged": "yes" if health.flagged else "-",
                    "quarantined": "yes" if health.quarantined else "-",
                    "reason": health.flag_reason or "-",
                }
            )
        return rows

    def render_report(self) -> str:
        from repro.reporting import ascii_table

        if not self.tiles:
            body = "(no solves observed)"
        else:
            body = ascii_table(self.report_rows())
        counter_rows = [
            {"counter": name, "value": value}
            for name, value in sorted(self.counters().items())
        ]
        summary = (
            f"{self.solves_observed} solve(s) observed "
            f"({self.unsettled_solves} unsettled), "
            f"{len(self.flagged())} tile(s) flagged, "
            f"{len(self.quarantined)} quarantined, "
            f"{self.settle_anomalies} settle anomaly(ies), "
            f"drift tolerance {self.drift_tolerance:.3g}"
        )
        return "\n\n".join(
            ["analog health report", summary, body, ascii_table(counter_rows)]
        )
