"""Kill-and-resume, end to end through the CLI in real subprocesses.

The crash seams (``--crash-at-step`` / ``--crash-after-outcomes``)
``os._exit(9)`` at a deterministic point — the same teardown a SIGKILL
delivers (no atexit, no finally blocks, no flushes) without the races
of signaling a live process. Each scenario then resumes from what the
dead process left on disk and asserts the output is byte-identical to
a run that was never killed.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

pytestmark = pytest.mark.chaos

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _run_cli(*argv, check=True):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    if check and proc.returncode != 0:
        raise AssertionError(
            f"CLI {argv} failed ({proc.returncode}):\n{proc.stdout}\n{proc.stderr}"
        )
    return proc


TRAJ_ARGS = ("--nx", "4", "--steps", "12", "--checkpoint-every", "4")


def _traj_fingerprint(stdout):
    """The deterministic lines of the trajectory report (everything
    except the checkpoint bookkeeping, which legitimately differs)."""
    return [
        line
        for line in stdout.splitlines()
        if not line.startswith(("checkpoints:", "resumed from"))
    ]


class TestTrajectoryKillResume:
    def test_sigkill_then_resume_is_bitwise_identical(self, tmp_path):
        reference = _run_cli(
            "trajectory", *TRAJ_ARGS, "--checkpoint-dir", str(tmp_path / "ref")
        )

        victim_dir = str(tmp_path / "victim")
        crashed = _run_cli(
            "trajectory",
            *TRAJ_ARGS,
            "--checkpoint-dir",
            victim_dir,
            "--crash-at-step",
            "7",
            check=False,
        )
        assert crashed.returncode == 9  # died mid-run, as instructed

        resumed = _run_cli(
            "trajectory", *TRAJ_ARGS, "--checkpoint-dir", victim_dir, "--resume"
        )
        assert "resumed from checkpoint at step 4" in resumed.stdout
        # The headline guarantee: the resumed run's states hash (raw
        # float bytes of the whole trajectory) matches uninterrupted.
        assert _traj_fingerprint(resumed.stdout) == _traj_fingerprint(reference.stdout)

    def test_resume_skips_a_corrupted_snapshot(self, tmp_path):
        reference = _run_cli(
            "trajectory", *TRAJ_ARGS, "--checkpoint-dir", str(tmp_path / "ref")
        )
        victim_dir = tmp_path / "victim"
        crashed = _run_cli(
            "trajectory",
            *TRAJ_ARGS,
            "--checkpoint-dir",
            str(victim_dir),
            "--crash-at-step",
            "11",
            check=False,
        )
        assert crashed.returncode == 9
        # Corrupt the newest surviving snapshot: resume must fall back.
        newest = sorted(victim_dir.glob("snapshot-*.json"))[-1]
        newest.write_bytes(newest.read_bytes()[:128])
        resumed = _run_cli(
            "trajectory", *TRAJ_ARGS, "--checkpoint-dir", str(victim_dir), "--resume"
        )
        assert "resumed from checkpoint at step 4" in resumed.stdout
        assert "1 rejected as corrupt" in resumed.stdout
        assert _traj_fingerprint(resumed.stdout) == _traj_fingerprint(reference.stdout)


BATCH_ARGS = ("--requests", "5", "--grids", "2", "--analog-time-limit", "0.001")


def _mask_elapsed(text):
    import re

    return re.sub(r"\d+\.\d+s", "X.XXs", text)


class TestBatchKillResume:
    def test_crash_mid_batch_then_resume_matches_reference(self, tmp_path):
        reference = _run_cli(
            "serve-batch", *BATCH_ARGS, "--journal", str(tmp_path / "ref.journal")
        )

        journal = tmp_path / "victim.journal"
        crashed = _run_cli(
            "serve-batch",
            *BATCH_ARGS,
            "--journal",
            str(journal),
            "--crash-after-outcomes",
            "2",
            check=False,
        )
        assert crashed.returncode == 9
        assert journal.exists()

        resumed = _run_cli("serve-batch", "--resume", str(journal))
        assert "[2 replayed from journal]" in resumed.stdout
        expected = _mask_elapsed(reference.stdout)
        actual = _mask_elapsed(resumed.stdout).replace(" [2 replayed from journal]", "")
        assert actual == expected


class TestGracefulSigterm:
    def test_sigterm_flushes_snapshot_and_marks_interrupted(self, tmp_path):
        """A real SIGTERM mid-trajectory: the run checkpoints what it
        has, reports INTERRUPTED, and the follow-up --resume completes
        to the exact uninterrupted result."""
        # Long enough (~2 s) that a SIGTERM sent 1 s in lands mid-run.
        slow_args = ("--nx", "10", "--steps", "300", "--checkpoint-every", "10")
        reference = _run_cli(
            "trajectory", *slow_args, "--checkpoint-dir", str(tmp_path / "ref")
        )
        victim_dir = str(tmp_path / "victim")
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "trajectory",
                *slow_args,
                "--checkpoint-dir",
                victim_dir,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        time.sleep(1.0)  # let it get past startup and into the stepping loop
        proc.send_signal(signal.SIGTERM)
        stdout, _ = proc.communicate(timeout=300)
        if "INTERRUPTED" not in stdout:
            pytest.skip("run finished before SIGTERM landed; nothing to interrupt")
        assert list(Path(victim_dir).glob("snapshot-*.json"))  # flushed a snapshot

        resumed = _run_cli(
            "trajectory", *slow_args, "--checkpoint-dir", victim_dir, "--resume"
        )
        assert _traj_fingerprint(resumed.stdout) == _traj_fingerprint(reference.stdout)
