"""LinearKernel: preconditioner reuse, invalidation, fallback accounting."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.linalg.kernel import LinearKernel, LinearSolverStats
from repro.linalg.sparse import CooBuilder, CsrMatrix, diags, eye
from repro.nonlinear.newton import _traced_linear_solve
from repro.trace import Tracer


def _tridiag(n: int, diag: float = 4.0, off: float = -1.0) -> CsrMatrix:
    builder = CooBuilder(n, n)
    for i in range(n):
        builder.add(i, i, diag)
        if i > 0:
            builder.add(i, i - 1, off)
        if i < n - 1:
            builder.add(i, i + 1, off)
    return builder.to_csr()


class TestPreconditionerReuse:
    def test_single_factorization_across_same_pattern_solves(self):
        """>= 3 solves with an unchanged pattern pay <= 1 factorization."""
        kernel = LinearKernel()
        rng = np.random.default_rng(0)
        base = _tridiag(30)
        for step in range(4):
            # Same symbolic structure, drifting values — the Newton-step
            # regime the cache is built for.
            matrix = CsrMatrix(
                shape=base.shape,
                indptr=base.indptr,
                indices=base.indices,
                data=base.data * (1.0 + 0.01 * step),
            )
            rhs = rng.normal(size=30)
            delta = kernel.solve(matrix, rhs)
            np.testing.assert_allclose(matrix.matvec(delta), rhs, atol=1e-7)
        assert kernel.factorizations == 1
        assert kernel.reuses == 3
        assert kernel.stats.solves == 4
        assert kernel.stats.preconditioner_builds == 1
        assert kernel.stats.preconditioner_reuse_fraction == pytest.approx(0.75)

    def test_pattern_change_invalidates_cache(self):
        kernel = LinearKernel()
        kernel.solve(_tridiag(20), np.ones(20))
        assert kernel.factorizations == 1
        # New size => new symbolic structure => fresh factorization.
        kernel.solve(_tridiag(24), np.ones(24))
        assert kernel.factorizations == 2
        # Same size but different sparsity (diagonal only) also rebuilds.
        kernel.solve(diags(np.full(24, 2.0)), np.ones(24))
        assert kernel.factorizations == 3
        assert kernel.reuses == 0

    def test_reset_drops_cache(self):
        kernel = LinearKernel()
        matrix = _tridiag(16)
        kernel.solve(matrix, np.ones(16))
        kernel.reset()
        kernel.solve(matrix, np.ones(16))
        assert kernel.factorizations == 2

    def test_degraded_reuse_triggers_refresh(self):
        """A stale factorization that stalls Bi-CGstab is refreshed."""
        n = 40
        kernel = LinearKernel(
            preconditioner_kind="ilu0",
            refresh_min_iterations=1,
            refresh_iteration_ratio=1.0,
        )
        kernel.solve(_tridiag(n, diag=4.0), np.ones(n))
        assert kernel.factorizations == 1
        # Values drift far from the factorized ones: an indefinite
        # matrix the old ILU(0) preconditions badly.
        drifted = _tridiag(n, diag=0.5, off=-1.0)
        delta = kernel.solve(drifted, np.ones(n))
        assert kernel.refreshes == 1
        assert kernel.factorizations == 2
        np.testing.assert_allclose(drifted.matvec(delta), np.ones(n), atol=1e-6)
        # Both attempts were charged additively to the same solve.
        assert kernel.stats.solves == 2
        assert kernel.stats.preconditioner_builds == 2


class TestStatsAccounting:
    def test_dense_input_charged_as_direct_solve(self):
        kernel = LinearKernel()
        delta = kernel.solve(np.array([[2.0, 0.0], [0.0, 4.0]]), np.array([2.0, 8.0]))
        np.testing.assert_allclose(delta, [1.0, 2.0])
        assert kernel.stats.solves == 1
        assert kernel.stats.inner_iterations == 0
        assert kernel.stats.preconditioner_builds == 0

    def test_per_call_sink_and_lifetime_stats_both_charged(self):
        kernel = LinearKernel()
        matrix = _tridiag(12)
        sink_a = LinearSolverStats()
        sink_b = LinearSolverStats()
        kernel.solve(matrix, np.ones(12), sink=sink_a)
        kernel.solve(matrix, np.ones(12), sink=sink_b)
        assert sink_a.solves == 1 and sink_b.solves == 1
        assert kernel.stats.solves == 2
        assert kernel.stats.inner_iterations == (
            sink_a.inner_iterations + sink_b.inner_iterations
        )
        # Only the first call factorized; the sink records reflect that.
        assert sink_a.preconditioner_builds == 1
        assert sink_b.preconditioner_builds == 0

    def test_sink_identical_to_lifetime_stats_not_double_charged(self):
        stats = LinearSolverStats()
        kernel = LinearKernel(stats=stats)
        kernel.solve(_tridiag(10), np.ones(10), sink=stats)
        assert stats.solves == 1

    def test_dense_fallback_additive_accounting(self):
        """A singular CSR system stalls Bi-CGstab; dense fallback is
        charged *in addition to* the failed Krylov attempt."""
        n = 6
        # Rank-deficient: last row duplicates row 0, but the rhs demands
        # a different value there — no exact solution exists, so every
        # Krylov attempt stalls and the lstsq-backed dense path answers.
        builder = CooBuilder(n, n)
        for i in range(n - 1):
            builder.add(i, i, 1.0)
        builder.add(n - 1, 0, 1.0)
        builder.add(n - 1, n - 1, 0.0)
        matrix = builder.to_csr()
        kernel = LinearKernel(max_iterations=20)
        rhs = np.ones(n)
        rhs[-1] = 2.0
        delta = kernel.solve(matrix, rhs)
        assert np.all(np.isfinite(delta))
        stats = kernel.stats
        assert stats.solves == 1
        assert stats.dense_fallbacks == 1
        assert stats.gmres_fallbacks == 0
        # The failed Krylov attempts' work is still on the bill.
        assert stats.matvecs > 0

    def test_gmres_fallback_for_large_systems(self):
        """Above the dense-routing cap, a stalled Bi-CGstab falls back
        to GMRES and both attempts are charged."""
        n = 50
        matrix = _tridiag(n, diag=0.05, off=-1.0)  # indefinite: stalls Bi-CGstab
        kernel = LinearKernel(
            max_iterations=5,
            gmres_fallback_iterations=200,
            dense_fallback_max_rows=10,  # force the "too large for dense" route
            preconditioner_kind="none",
        )
        delta = kernel.solve(matrix, np.ones(n))
        stats = kernel.stats
        assert stats.gmres_fallbacks == 1
        assert stats.dense_fallbacks == 0
        assert stats.solves == 1
        # Additive: Bi-CGstab's matvecs plus GMRES's.
        assert stats.matvecs > 5
        assert np.all(np.isfinite(delta))

    def test_merge_is_additive(self):
        a = LinearSolverStats(solves=2, inner_iterations=10, matvecs=21, preconditioner_builds=1)
        b = LinearSolverStats(solves=1, inner_iterations=4, matvecs=9, dense_fallbacks=1)
        a.merge(b)
        assert a.solves == 3
        assert a.inner_iterations == 14
        assert a.matvecs == 30
        assert a.preconditioner_builds == 1
        assert a.dense_fallbacks == 1

    def test_as_row_keys_stable(self):
        row = LinearSolverStats().as_row()
        assert list(row) == [
            "linear solves",
            "inner iterations",
            "matvecs",
            "preconditioner builds",
            "reuse fraction",
            "GMRES fallbacks",
            "dense fallbacks",
        ]


class TestTracedAccounting:
    """The tracing layer's accounting contract: summing the per-call
    ``linear_solve`` span attributes reproduces the kernel's lifetime
    stats exactly, for any interleaving of sizes and value drifts."""

    COUNTER_FIELDS = (
        "solves",
        "inner_iterations",
        "matvecs",
        "preconditioner_builds",
        "gmres_fallbacks",
        "dense_fallbacks",
    )

    @given(
        calls=st.lists(
            st.tuples(st.sampled_from([8, 12, 17]), st.floats(0.0, 0.5)),
            min_size=1,
            max_size=8,
        )
    )
    def test_span_sums_equal_lifetime_stats(self, calls):
        lifetime = LinearSolverStats()
        kernel = LinearKernel(stats=lifetime)
        tracer = Tracer()
        result_stats = LinearSolverStats()
        for n, drift in calls:
            matrix = _tridiag(n, diag=4.0 + drift)
            _traced_linear_solve(tracer, kernel, None, matrix, np.ones(n), result_stats)
        tracer.check_closed()
        spans = tracer.spans_named("linear_solve")
        assert len(spans) == len(calls)
        for field in self.COUNTER_FIELDS:
            span_total = sum(span.attrs[field] for span in spans)
            assert span_total == getattr(lifetime, field), field
            # The per-solve sink the Newton result keeps sees the same
            # totals: nothing is double- or under-charged by tracing.
            assert span_total == getattr(result_stats, field), field

    def test_traced_and_untraced_solves_agree(self):
        matrix = _tridiag(20)
        rhs = np.ones(20)
        plain = LinearKernel().solve(matrix, rhs)
        traced_stats = LinearSolverStats()
        traced = _traced_linear_solve(
            Tracer(), LinearKernel(), None, matrix, rhs, traced_stats
        )
        np.testing.assert_allclose(traced, plain)
        assert traced_stats.solves == 1


class TestCallableCompatibility:
    def test_kernel_is_a_linear_solver_callable(self):
        kernel = LinearKernel()
        matrix = eye(8, scale=2.0)
        delta = kernel(matrix, np.full(8, 4.0))
        np.testing.assert_allclose(delta, np.full(8, 2.0), atol=1e-9)

    def test_validates_preconditioner_kind(self):
        with pytest.raises(ValueError):
            LinearKernel(preconditioner_kind="cholesky")
