"""Transonic-flow mini-app: the SPEC 410.bwaves analogue.

410.bwaves simulates "3D transonic transient laminar viscous flow" by
finite-difference discretization with implicit time stepping on the
compressible viscous Navier-Stokes equations; its dominant kernel is
Bi-CGstab at 76.7 % (+11.7 % other solver work) of runtime (Table 1).

The analogue here: 2-D viscous Burgers (the momentum subset of
Navier-Stokes, Section 4.1) with implicit Crank-Nicolson stepping, each
step's Newton iteration solving its linear system with
**ILU(0)-preconditioned Bi-CGstab** — the identical inner-kernel
structure on a structured grid. Structured FD assembly is cheap and
vectorized, so the Krylov kernel (iterations plus preconditioner
sweeps) dominates, reproducing the Table 1 observation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.linalg.iterative import bicgstab
from repro.linalg.preconditioners import Ilu0Preconditioner
from repro.nonlinear.newton import NewtonOptions, newton_solve
from repro.pde.boundary import DirichletBoundary
from repro.pde.burgers import BurgersTimeStepper
from repro.pde.grid import Grid2D
from repro.perf.profiles import KernelProfiler, ProfileReport

__all__ = ["TransonicFlowWorkload"]


@dataclass
class TransonicFlowWorkload:
    """Implicit FD flow stepping dominated by Bi-CGstab.

    Attributes mirror Table 1's row: ``KERNEL_NAME`` is the dominant
    kernel, ``PAPER_FRACTION`` the runtime share the paper measured.
    """

    grid_n: int = 16
    reynolds: float = 2.0
    dt: float = 0.1
    num_steps: int = 4
    seed: int = 0

    KERNEL_NAME = "Bi-CGstab"
    PAPER_FRACTION = 0.767

    def run(self) -> ProfileReport:
        profiler = KernelProfiler()
        rng = np.random.default_rng(self.seed)
        grid = Grid2D.square(self.grid_n)
        boundary_u = DirichletBoundary.random(grid, rng, -0.5, 0.5)
        boundary_v = DirichletBoundary.random(grid, rng, -0.5, 0.5)

        def instrumented_linear_solver(jacobian, rhs):
            with profiler.region(self.KERNEL_NAME):
                precond = Ilu0Preconditioner(jacobian)
                result = bicgstab(jacobian, rhs, preconditioner=precond, tol=1e-12)
                return result.x

        def solver(system, guess):
            return newton_solve(
                system,
                guess,
                NewtonOptions(tolerance=1e-8, max_iterations=40),
                linear_solver=instrumented_linear_solver,
            )

        stepper = BurgersTimeStepper(
            grid,
            reynolds=self.reynolds,
            dt=self.dt,
            boundary_u=boundary_u,
            boundary_v=boundary_v,
            solver=solver,
        )
        u = rng.uniform(-0.5, 0.5, grid.shape)
        v = rng.uniform(-0.5, 0.5, grid.shape)
        with profiler.run():
            with profiler.region("time stepping"):
                stepper.evolve(u, v, num_steps=self.num_steps)
        return profiler.report()
