"""Ablation: how analog seed quality drives the digital polish cost.

The hybrid method's value rests on the seed landing inside Newton's
quadratic convergence region. This ablation sweeps the accelerator's
noise level from ideal silicon to far-worse-than-prototype and measures
the digital polish iterations: percent-level seeds cost only a couple
more iterations than perfect ones (the flat part the paper exploits),
while badly degraded seeds lose the benefit.
"""

import numpy as np
import pytest

from repro.analog.engine import AnalogAccelerator
from repro.analog.noise import NoiseModel
from repro.core.hybrid import HybridSolver
from repro.pde.burgers import random_burgers_system

NOISE_LEVELS = {
    "ideal": NoiseModel.ideal(),
    "prototype (paper)": NoiseModel(),
    "4x worse": NoiseModel(residual_mismatch_sigma=0.08, residual_offset_sigma=0.094),
}


def polish_iterations(noise, trials=3):
    iterations = []
    for trial in range(trials):
        system, guess = random_burgers_system(4, 1.0, np.random.default_rng(trial))
        solver = HybridSolver(AnalogAccelerator(noise=noise, seed=trial))
        result = solver.solve(system, initial_guess=guess)
        if result.converged:
            iterations.append(result.digital_iterations)
    return iterations


def test_seed_quality_sweep(benchmark):
    def sweep():
        return {name: polish_iterations(noise) for name, noise in NOISE_LEVELS.items()}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\npolish iterations by seed quality:", results)

    means = {name: float(np.mean(iters)) for name, iters in results.items() if iters}
    assert set(means) == set(NOISE_LEVELS)

    # Percent-level (prototype) seeds cost at most a few extra polish
    # iterations over ideal silicon - the quadratic basin is forgiving.
    assert means["prototype (paper)"] <= means["ideal"] + 4.0
    # Seed quality is monotone: worse silicon never helps.
    assert means["ideal"] <= means["prototype (paper)"] + 0.5
    assert means["prototype (paper)"] <= means["4x worse"] + 0.5


def test_all_noise_levels_still_converge(benchmark):
    # Even the degraded accelerator seeds well enough for the polish +
    # fallback pipeline to reach full precision.
    def run_all():
        return {name: polish_iterations(noise, trials=2) for name, noise in NOISE_LEVELS.items()}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for name, iterations in results.items():
        assert iterations, f"{name}: no trial converged"
